//! End-to-end trace-substrate validation over the calibrated SPEC suite.
//!
//! The trace substrate's contract is *bit*-identity: a pipeline fed by
//! a `TraceReplay` of a captured stream must retire the same
//! instructions in the same cycles as one fed by the live `Oracle`, for
//! every release scheme. `sim::verify_capture_replay` checks exactly
//! that (retired streams element-wise, plus cycle counts); here it runs
//! over every SPEC profile, so a codec or replay regression on any
//! profile's stream shape — branchy, strided, pointer-chasing,
//! FP-heavy — fails by name.

use atr::pipeline::CoreConfig;
use atr::sim::verify_capture_replay;
use atr::workload::spec;

/// Tiny per-scheme budget; ×4 schemes ×2 substrates per profile keeps
/// the suite CI-sized while still crossing flushes and region releases.
const INSTS: u64 = 2_000;

#[test]
fn every_profile_replays_bit_identically_under_every_scheme() {
    let dir = std::env::temp_dir().join(format!("atr_trace_replay_e2e_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    for profile in spec::all_profiles() {
        let program = profile.build();
        let compared = verify_capture_replay(&CoreConfig::default(), &program, INSTS, &dir)
            .unwrap_or_else(|e| panic!("{}: {e}", profile.name));
        assert!(
            compared >= 4 * INSTS as usize,
            "{}: compared only {compared} retired instructions",
            profile.name
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}
