//! Cross-scheme differential validation over the calibrated SPEC suite.
//!
//! Register-release schemes are timing mechanisms: on every profile the
//! four schemes must retire bit-identical architectural streams, each
//! equal to the oracle's functional replay. This is the end-to-end
//! guarantee that ATR's early releases never alter what the program
//! *computes* — only when its registers free.

use atr::pipeline::CoreConfig;
use atr::sim::run_differential;
use atr::workload::{spec, SpecProfile};

/// Tiny per-run budget: enough to cross several thousand branches and
/// a few flushes per profile while keeping the whole suite CI-sized.
const INSTS: u64 = 3_000;

fn check_suite(profiles: &[SpecProfile]) {
    for profile in profiles {
        let program = profile.build();
        let report = run_differential(&CoreConfig::default(), &program, INSTS, false)
            .unwrap_or_else(|e| panic!("{}: {e}", profile.name));
        assert!(
            report.compared >= (report.streams.len() - 1) * INSTS as usize,
            "{}: compared only {} retired instructions",
            profile.name,
            report.compared
        );
    }
}

#[test]
fn all_schemes_retire_identical_streams_on_every_int_profile() {
    check_suite(&spec::spec2017_int());
}

#[test]
fn all_schemes_retire_identical_streams_on_every_fp_profile() {
    check_suite(&spec::spec2017_fp());
}
