//! Cross-crate integration tests: workload → frontend → memory → core →
//! pipeline → analysis, through the umbrella crate's public API.

use atr::core::ReleaseScheme;
use atr::isa::RegClass;
use atr::pipeline::{CoreConfig, OooCore};
use atr::sim::{run, RunSpec};
use atr::workload::{spec, Oracle, ProfileParams};

fn quick(scheme: ReleaseScheme, rf: usize) -> RunSpec {
    RunSpec {
        scheme,
        rf_size: rf,
        warmup: 3_000,
        measure: 15_000,
        collect_events: false,
        audit: false,
        telemetry: atr::telemetry::TelemetryConfig::default(),
    }
}

#[test]
fn umbrella_crate_exposes_the_full_stack() {
    let program = spec::spec2017_int()[0].build();
    let result = run(&CoreConfig::default(), program, &quick(ReleaseScheme::Baseline, 128));
    assert!(result.ipc > 0.05);
    assert!(result.stats.retired >= 15_000);
}

#[test]
fn fig6_pipeline_agrees_with_paper_band() {
    // The calibrated suite averages must stay near the paper's numbers
    // even at a small measurement budget: atomic ratio 17.04% int /
    // 13.14% fp, within a generous band.
    let mut int_sum = 0.0;
    let mut n = 0.0;
    for p in spec::spec2017_int().iter().take(4) {
        let spec = RunSpec { collect_events: true, ..quick(ReleaseScheme::Baseline, 280) };
        let r = run(&CoreConfig::default(), p.build(), &spec);
        let ratios = atr::analysis::region_ratios(&r.lifetimes, RegClass::Int, true);
        int_sum += ratios.atomic;
        n += 1.0;
    }
    let avg = int_sum / n;
    assert!((0.05..0.45).contains(&avg), "int atomic ratio {avg} out of band");
}

#[test]
fn scheme_ordering_holds_under_pressure_across_profiles() {
    for name in ["perlbench", "cactu"] {
        let program = spec::find_profile(name).unwrap().build();
        let base =
            run(&CoreConfig::default(), program.clone(), &quick(ReleaseScheme::Baseline, 64)).ipc;
        let combined = run(
            &CoreConfig::default(),
            program,
            &quick(ReleaseScheme::Combined { redefine_delay: 0 }, 64),
        )
        .ipc;
        assert!(
            combined >= base * 0.995,
            "{name}: combined {combined} must not lose to baseline {base}"
        );
    }
}

#[test]
fn lifetime_analysis_composes_with_simulation() {
    let program = ProfileParams { seed: 77, ..ProfileParams::default() }.build();
    let spec = RunSpec { collect_events: true, ..quick(ReleaseScheme::Baseline, 280) };
    let r = run(&CoreConfig::default(), program, &spec);
    let life = atr::analysis::lifecycle_breakdown(&r.lifetimes, RegClass::Int);
    assert!(life.samples > 500);
    let total = life.in_use + life.unused + life.verified_unused;
    assert!((total - 1.0).abs() < 1e-9, "fractions must partition: {total}");
    let gaps = atr::analysis::atomic_region_gaps(&r.lifetimes, RegClass::Int);
    assert!(
        gaps.rename_to_commit > gaps.rename_to_redefine,
        "commit must come after redefinition on average"
    );
}

#[test]
fn consumer_width_sensitivity_matches_s5_4() {
    // §5.4: a 3-bit counter performs like a wide one because atomic
    // regions rarely have >6 consumers.
    let program = spec::find_profile("exchange2").unwrap().build();
    let ipc_with_width = |width: u32| {
        let mut cfg = CoreConfig::default()
            .with_rf_size(64)
            .with_scheme(ReleaseScheme::Atr { redefine_delay: 0 });
        cfg.rename.counter_width = width;
        let mut core = OooCore::new(cfg, Oracle::new(program.clone()));
        core.run(40_000).ipc()
    };
    let w3 = ipc_with_width(3);
    let w8 = ipc_with_width(8);
    assert!((w3 / w8 - 1.0).abs() < 0.02, "3-bit counter should match a wide one: {w3} vs {w8}");
    // A 1-bit-counter-equivalent (width 2: max one consumer) must lose
    // release opportunities.
    let w2 = ipc_with_width(2);
    assert!(w2 <= w8 * 1.005, "narrower counters cannot be faster");
}

#[test]
fn redefine_delay_sensitivity_matches_fig13() {
    let program = spec::find_profile("imagick").unwrap().build();
    let ipc_with_delay = |delay: u32| {
        let cfg = CoreConfig::default()
            .with_rf_size(64)
            .with_scheme(ReleaseScheme::Atr { redefine_delay: delay });
        OooCore::new(cfg, Oracle::new(program.clone())).run(40_000).ipc()
    };
    let d0 = ipc_with_delay(0);
    let d2 = ipc_with_delay(2);
    assert!(d2 > d0 * 0.97, "a 2-cycle marking pipeline must cost almost nothing: {d0} vs {d2}");
}

#[test]
fn hardware_models_reproduce_s4_4_claims() {
    let logic = atr::analysis::BulkReleaseLogic::default().report();
    assert!(logic.gates > 1_500 && logic.gates < 5_000);
    assert!(logic.max_frequency_ghz(3) > 4.0, "pipelined marking must exceed 4 GHz");

    let power = atr::analysis::CorePowerModel::default();
    let saving = power.estimate(204, 204).power_saving_vs(&power.estimate(280, 280));
    assert!((0.02..0.10).contains(&saving), "power saving {saving}");
}

#[test]
fn table1_and_table2_are_live() {
    let rows = atr::sim::table1(&CoreConfig::default());
    assert!(rows.iter().any(|(k, v)| k.contains("ROB") && v.contains("512")));
    assert_eq!(spec::all_profiles().len(), 23);
}
