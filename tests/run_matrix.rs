//! Integration tests of the run-matrix engine: parallel execution must
//! be bit-identical to serial, and a shared matrix must deduplicate the
//! overlapping points of the figure experiments.

use atr_core::ReleaseScheme;
use atr_pipeline::CoreConfig;
use atr_sim::executor::execute_with;
use atr_sim::experiments::{fig01_points, fig10_points, fig11_points};
use atr_sim::{RunMatrix, SimConfig, SimPoint};
use std::collections::HashSet;

fn tiny() -> SimConfig {
    SimConfig { core: CoreConfig::default(), warmup: 500, measure: 2_000 }
}

/// A small mixed batch: several profiles × schemes × RF sizes, one
/// point with event collection.
fn mixed_points(sim: &SimConfig) -> Vec<SimPoint> {
    let mut points = Vec::new();
    for profile in ["505.mcf_r", "548.exchange2_r", "508.namd_r"] {
        for scheme in [ReleaseScheme::Baseline, ReleaseScheme::Atr { redefine_delay: 0 }] {
            for rf in [64usize, 224] {
                points.push(SimPoint::new(profile, scheme, rf, sim.warmup, sim.measure));
            }
        }
    }
    points.push(
        SimPoint::new("525.x264_r", ReleaseScheme::Baseline, 280, sim.warmup, sim.measure)
            .with_events(),
    );
    points
}

#[test]
fn parallel_execution_is_bit_identical_to_serial() {
    let sim = tiny();
    let points = mixed_points(&sim);
    let serial = execute_with(&sim.core, &points, 1);
    let parallel = execute_with(&sim.core, &points, 4);
    assert_eq!(serial.len(), parallel.len());
    for (i, (s, p)) in serial.iter().zip(&parallel).enumerate() {
        assert_eq!(
            s.ipc.to_bits(),
            p.ipc.to_bits(),
            "ipc differs at point {i} ({})",
            points[i].label()
        );
        assert_eq!(s.avg_int_occupancy.to_bits(), p.avg_int_occupancy.to_bits());
        assert_eq!(s.avg_fp_occupancy.to_bits(), p.avg_fp_occupancy.to_bits());
        // Whole-run stats and the lifetime log must agree field by field.
        assert_eq!(format!("{:?}", s.stats), format!("{:?}", p.stats));
        assert_eq!(s.lifetimes.len(), p.lifetimes.len());
    }
}

#[test]
fn shared_matrix_deduplicates_figure_overlap() {
    let sim = tiny();
    let mut points = fig01_points(&sim);
    points.extend(fig10_points(&sim, &[64, 224]));
    points.extend(fig11_points(&sim));

    let unique: HashSet<&SimPoint> = points.iter().collect();
    assert!(unique.len() < points.len(), "fig01/fig10/fig11 must overlap on baseline points");

    let mut matrix = RunMatrix::new();
    matrix.ensure(&sim.core, &points);
    assert_eq!(matrix.requested(), points.len());
    assert_eq!(matrix.executed(), unique.len(), "each unique point must simulate exactly once");

    // Re-ensuring any subset must hit the cache, not the simulator.
    matrix.ensure(&sim.core, &fig11_points(&sim));
    assert_eq!(matrix.executed(), unique.len(), "re-ensure must not re-execute");

    // And every declared point must be readable back.
    for p in &points {
        assert!(matrix.ipc(p) > 0.0);
    }
}
