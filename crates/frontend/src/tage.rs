//! TAGE direction predictor with a loop predictor (TAGE-L).
//!
//! This is the TAGE-SC-L-class predictor of Table 1: a bimodal base
//! table, a set of partially tagged tables indexed with geometrically
//! increasing global-history lengths, usefulness-driven allocation and
//! aging, plus a confidence-gated loop predictor that captures the
//! fixed-trip-count back-edges the workload generator emits. (The
//! statistical corrector of full TAGE-SC-L is omitted; its contribution
//! is small at these table sizes and it does not interact with the
//! register-release schemes under study.)

use crate::history::GlobalHistory;
use crate::predictor::DirectionPredictor;

/// TAGE geometry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TageConfig {
    /// log2 of base (bimodal) table entries.
    pub base_bits: usize,
    /// log2 of entries per tagged table.
    pub table_bits: usize,
    /// Tag width in bits.
    pub tag_bits: usize,
    /// History length per tagged table, ascending.
    pub history_lengths: Vec<usize>,
    /// Enable the loop predictor.
    pub loop_predictor: bool,
    /// log2 of loop-predictor entries.
    pub loop_bits: usize,
}

impl Default for TageConfig {
    fn default() -> Self {
        TageConfig {
            base_bits: 14,
            table_bits: 11,
            tag_bits: 9,
            history_lengths: vec![4, 8, 16, 32, 64, 128],
            loop_predictor: true,
            loop_bits: 8,
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct TaggedEntry {
    tag: u16,
    /// Signed prediction counter in [-4, 3]; >= 0 predicts taken.
    ctr: i8,
    /// Usefulness counter in [0, 3].
    useful: u8,
}

#[derive(Debug, Clone, Copy, Default)]
struct LoopEntry {
    tag: u16,
    /// Learned trip count (taken executions + 1 per loop entry).
    trip: u32,
    /// Current iteration counter.
    count: u32,
    /// Confidence in [0, 3]; >= 3 allows the loop predictor to override.
    conf: u8,
}

/// The TAGE-L predictor. See the [module docs](self).
#[derive(Debug, Clone)]
pub struct Tage {
    cfg: TageConfig,
    base: Vec<u8>,
    tables: Vec<Vec<TaggedEntry>>,
    loops: Vec<LoopEntry>,
    /// LFSR for pseudo-random allocation.
    lfsr: u32,
    updates: u64,
}

struct Lookup {
    provider: Option<usize>,
    provider_idx: usize,
    alt_taken: bool,
    base_idx: usize,
}

impl Tage {
    /// Creates a TAGE-L predictor.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has no tagged tables or a history
    /// length exceeding the supported maximum.
    #[must_use]
    pub fn new(cfg: TageConfig) -> Self {
        assert!(!cfg.history_lengths.is_empty(), "need at least one tagged table");
        assert!(
            cfg.history_lengths.iter().all(|&l| l <= crate::history::MAX_HISTORY_BITS),
            "history length exceeds maximum"
        );
        let tables = cfg
            .history_lengths
            .iter()
            .map(|_| vec![TaggedEntry::default(); 1 << cfg.table_bits])
            .collect();
        Tage {
            base: vec![1; 1 << cfg.base_bits],
            loops: vec![LoopEntry::default(); 1 << cfg.loop_bits],
            tables,
            lfsr: 0xace1,
            updates: 0,
            cfg,
        }
    }

    /// Creates a TAGE-L with the default Table 1 geometry.
    #[must_use]
    pub fn default_config() -> Self {
        Tage::new(TageConfig::default())
    }

    fn idx(&self, t: usize, pc: u64, hist: &GlobalHistory) -> usize {
        let w = self.cfg.table_bits;
        let h = hist.fold(self.cfg.history_lengths[t], w);
        let mask = (1u64 << w) - 1;
        (((pc >> 2) ^ (pc >> (2 + w as u64)) ^ h ^ (t as u64).wrapping_mul(0x9e37)) & mask) as usize
    }

    fn tag(&self, t: usize, pc: u64, hist: &GlobalHistory) -> u16 {
        let w = self.cfg.tag_bits;
        let h = hist.fold(self.cfg.history_lengths[t], w);
        let h2 = hist.fold(self.cfg.history_lengths[t], w.saturating_sub(1).max(1));
        let mask = (1u64 << w) - 1;
        ((((pc >> 2) ^ h ^ (h2 << 1)) & mask) as u16).max(1) // 0 = invalid
    }

    fn lookup(&self, pc: u64, hist: &GlobalHistory) -> Lookup {
        let base_idx = ((pc >> 2) & ((1u64 << self.cfg.base_bits) - 1)) as usize;
        let mut provider = None;
        let mut provider_idx = 0;
        let mut alt_taken = self.base[base_idx] >= 2;
        for t in (0..self.tables.len()).rev() {
            let i = self.idx(t, pc, hist);
            if self.tables[t][i].tag == self.tag(t, pc, hist) {
                if provider.is_none() {
                    provider = Some(t);
                    provider_idx = i;
                } else {
                    // First shorter match becomes altpred.
                    alt_taken = self.tables[t][i].ctr >= 0;
                    break;
                }
            }
        }
        Lookup { provider, provider_idx, alt_taken, base_idx }
    }

    fn loop_idx(&self, pc: u64) -> usize {
        ((pc >> 2) & ((1u64 << self.cfg.loop_bits) - 1)) as usize
    }

    fn loop_tag(pc: u64) -> u16 {
        (((pc >> 2) ^ (pc >> 14)) & 0x3fff) as u16 | 1
    }

    fn loop_predict(&self, pc: u64) -> Option<bool> {
        if !self.cfg.loop_predictor {
            return None;
        }
        let e = &self.loops[self.loop_idx(pc)];
        if e.tag == Self::loop_tag(pc) && e.conf >= 3 && e.trip > 1 {
            Some(e.count + 1 < e.trip)
        } else {
            None
        }
    }

    fn loop_update(&mut self, pc: u64, taken: bool) {
        if !self.cfg.loop_predictor {
            return;
        }
        let i = self.loop_idx(pc);
        let tag = Self::loop_tag(pc);
        let e = &mut self.loops[i];
        if e.tag != tag {
            // Reallocate on a not-taken (loop exit) so counting starts
            // aligned with an entry.
            if !taken {
                *e = LoopEntry { tag, trip: 0, count: 0, conf: 0 };
            }
            return;
        }
        if taken {
            e.count += 1;
            if e.trip > 0 && e.count >= e.trip {
                // Ran past the learned trip: wrong trip count.
                e.conf = 0;
                e.trip = 0;
            }
        } else {
            let observed = e.count + 1;
            if e.trip == observed {
                e.conf = (e.conf + 1).min(3);
            } else {
                e.trip = observed;
                e.conf = 0;
            }
            e.count = 0;
        }
    }

    fn next_rand(&mut self) -> u32 {
        // 16-bit Fibonacci LFSR.
        let bit = (self.lfsr ^ (self.lfsr >> 2) ^ (self.lfsr >> 3) ^ (self.lfsr >> 5)) & 1;
        self.lfsr = (self.lfsr >> 1) | (bit << 15);
        self.lfsr
    }
}

impl DirectionPredictor for Tage {
    fn predict(&mut self, pc: u64, hist: &GlobalHistory) -> bool {
        if let Some(loop_pred) = self.loop_predict(pc) {
            return loop_pred;
        }
        let l = self.lookup(pc, hist);
        match l.provider {
            Some(t) => self.tables[t][l.provider_idx].ctr >= 0,
            None => self.base[l.base_idx] >= 2,
        }
    }

    fn update(&mut self, pc: u64, hist: &GlobalHistory, taken: bool) {
        self.updates += 1;
        self.loop_update(pc, taken);

        let l = self.lookup(pc, hist);
        let provider_taken = match l.provider {
            Some(t) => self.tables[t][l.provider_idx].ctr >= 0,
            None => self.base[l.base_idx] >= 2,
        };
        let mispredicted = provider_taken != taken;

        // Update provider (or base).
        match l.provider {
            Some(t) => {
                let e = &mut self.tables[t][l.provider_idx];
                e.ctr = if taken { (e.ctr + 1).min(3) } else { (e.ctr - 1).max(-4) };
                // Usefulness: provider differed from altpred and was right.
                if provider_taken != l.alt_taken {
                    if provider_taken == taken {
                        e.useful = (e.useful + 1).min(3);
                    } else if e.useful > 0 {
                        e.useful -= 1;
                    }
                }
            }
            None => {
                let c = &mut self.base[l.base_idx];
                if taken {
                    *c = (*c + 1).min(3);
                } else {
                    *c = c.saturating_sub(1);
                }
            }
        }

        // Allocate a longer-history entry on misprediction.
        if mispredicted {
            let start = l.provider.map_or(0, |t| t + 1);
            if start < self.tables.len() {
                let r = self.next_rand() as usize;
                let mut allocated = false;
                for off in 0..(self.tables.len() - start) {
                    let t = start + (off + r) % (self.tables.len() - start);
                    let i = self.idx(t, pc, hist);
                    if self.tables[t][i].useful == 0 {
                        self.tables[t][i] = TaggedEntry {
                            tag: self.tag(t, pc, hist),
                            ctr: if taken { 0 } else { -1 },
                            useful: 0,
                        };
                        allocated = true;
                        break;
                    }
                }
                if !allocated {
                    for t in start..self.tables.len() {
                        let i = self.idx(t, pc, hist);
                        if self.tables[t][i].useful > 0 {
                            self.tables[t][i].useful -= 1;
                        }
                    }
                }
            }
        }

        // Periodic usefulness aging.
        if self.updates.is_multiple_of(1 << 18) {
            for table in &mut self.tables {
                for e in table.iter_mut() {
                    e.useful >>= 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_pattern(tage: &mut Tage, pc: u64, pattern: &[bool], reps: usize) -> f64 {
        let mut hist = GlobalHistory::new();
        let (mut correct, mut total) = (0usize, 0usize);
        for _ in 0..reps {
            for &t in pattern {
                let p = tage.predict(pc, &hist);
                tage.update(pc, &hist, t);
                hist.push(t);
                if p == t {
                    correct += 1;
                }
                total += 1;
            }
        }
        correct as f64 / total as f64
    }

    #[test]
    fn learns_biased_branches() {
        let mut t = Tage::default_config();
        let acc = run_pattern(&mut t, 0x1000, &[true; 9], 300);
        assert!(acc > 0.98, "accuracy {acc}");
    }

    #[test]
    fn learns_history_patterns_bimodal_cannot() {
        let mut t = Tage::default_config();
        let pattern = [true, true, false, true, false, false, true, false];
        let acc = run_pattern(&mut t, 0x2000, &pattern, 400);
        assert!(acc > 0.90, "pattern accuracy {acc}");
    }

    #[test]
    fn loop_predictor_nails_fixed_trip_counts() {
        let mut t = Tage::default_config();
        // Trip count 7: T,T,T,T,T,T,F repeating.
        let mut pattern = vec![true; 6];
        pattern.push(false);
        let acc = run_pattern(&mut t, 0x3000, &pattern, 300);
        assert!(acc > 0.97, "loop accuracy {acc}");
    }

    #[test]
    fn loop_predictor_disabled_still_works() {
        let cfg = TageConfig { loop_predictor: false, ..TageConfig::default() };
        let mut t = Tage::new(cfg);
        let acc = run_pattern(&mut t, 0x3000, &[true, true, true, false], 400);
        assert!(acc > 0.85, "no-loop accuracy {acc}");
    }

    #[test]
    fn distinguishes_branches_with_shared_history() {
        let mut t = Tage::default_config();
        let mut hist = GlobalHistory::new();
        for _ in 0..2000 {
            t.update(0x100, &hist, true);
            hist.push(true);
            t.update(0x200, &hist, false);
            hist.push(false);
        }
        assert!(t.predict(0x100, &hist));
        assert!(!t.predict(0x200, &hist));
    }

    #[test]
    fn long_period_pattern_is_learned_via_long_history() {
        // A period-30 pattern needs more history than gshare-size
        // predictors track; TAGE's long-history tables memorize the
        // (pc, history-window) -> outcome mapping.
        let mut x: u32 = 98765;
        let pattern: Vec<bool> = (0..30)
            .map(|_| {
                x = x.wrapping_mul(1103515245).wrapping_add(12345);
                (x >> 16) & 1 == 1
            })
            .collect();
        let mut t = Tage::default_config();
        let mut hist = GlobalHistory::new();
        let (mut correct, mut total) = (0usize, 0usize);
        for rep in 0..400 {
            for &b in &pattern {
                let p = t.predict(0x200, &hist);
                t.update(0x200, &hist, b);
                hist.push(b);
                if rep > 200 {
                    if p == b {
                        correct += 1;
                    }
                    total += 1;
                }
            }
        }
        let acc = correct as f64 / total as f64;
        assert!(acc > 0.90, "long-pattern accuracy {acc}");
    }

    #[test]
    #[should_panic(expected = "at least one tagged table")]
    fn empty_config_panics() {
        let _ = Tage::new(TageConfig { history_lengths: vec![], ..TageConfig::default() });
    }
}
