//! The branch prediction unit: the bundle the pipeline's fetch stage
//! talks to.
//!
//! One [`Bpu::predict`] call per fetched control-flow instruction makes
//! the direction/target prediction and *speculatively* updates the
//! histories and RAS; the returned [`Prediction`] carries a
//! [`BpuSnapshot`] of the pre-prediction state. On resolve the pipeline
//! calls [`Bpu::train`]; on a misprediction it calls [`Bpu::recover`]
//! with the snapshot and the actual outcome, which restores state and
//! re-applies the corrected update.

use crate::btb::Btb;
use crate::history::{GlobalHistory, PathHistory};
use crate::indirect::IndirectPredictor;
use crate::predictor::{Bimodal, DirectionPredictor, Gshare, PredictorKind};
use crate::ras::Ras;
use crate::tage::{Tage, TageConfig};
use atr_isa::{OpClass, StaticInst};

/// Branch prediction unit configuration (Table 1 defaults).
#[derive(Debug, Clone, PartialEq)]
pub struct BpuConfig {
    /// Which direction predictor to use.
    pub kind: PredictorKind,
    /// TAGE geometry when `kind` is [`PredictorKind::Tage`].
    pub tage: TageConfig,
    /// log2 entries for bimodal/gshare baselines.
    pub simple_bits: usize,
    /// Total BTB entries (Table 1: 12K).
    pub btb_entries: usize,
    /// BTB associativity.
    pub btb_ways: usize,
    /// log2 entries of the indirect target predictor (Table 1: 3K,
    /// rounded to 4096 for power-of-two indexing).
    pub indirect_bits: usize,
    /// Path-history bits for the indirect predictor.
    pub indirect_path_bits: usize,
    /// Return address stack depth.
    pub ras_depth: usize,
}

impl Default for BpuConfig {
    fn default() -> Self {
        BpuConfig {
            kind: PredictorKind::Tage,
            tage: TageConfig::default(),
            simple_bits: 14,
            btb_entries: 12 * 1024,
            btb_ways: 6,
            indirect_bits: 12,
            indirect_path_bits: 16,
            ras_depth: 32,
        }
    }
}

/// Recovery snapshot of all speculative BPU state.
#[derive(Debug, Clone)]
pub struct BpuSnapshot {
    ghist: GlobalHistory,
    path: PathHistory,
    ras: Ras,
}

/// One control-flow prediction.
#[derive(Debug, Clone)]
pub struct Prediction {
    /// Predicted direction (always `true` for unconditional control flow).
    pub taken: bool,
    /// Predicted next PC.
    pub next_pc: u64,
    /// Did the BTB know this branch? (A predicted-taken BTB miss costs a
    /// fetch bubble, charged by the pipeline.)
    pub btb_hit: bool,
    /// Pre-prediction state for recovery and training.
    pub snapshot: BpuSnapshot,
}

enum Dir {
    Bimodal(Bimodal),
    Gshare(Gshare),
    Tage(Box<Tage>),
}

impl Dir {
    fn predict(&mut self, pc: u64, h: &GlobalHistory) -> bool {
        match self {
            Dir::Bimodal(p) => p.predict(pc, h),
            Dir::Gshare(p) => p.predict(pc, h),
            Dir::Tage(p) => p.predict(pc, h),
        }
    }

    fn update(&mut self, pc: u64, h: &GlobalHistory, taken: bool) {
        match self {
            Dir::Bimodal(p) => p.update(pc, h, taken),
            Dir::Gshare(p) => p.update(pc, h, taken),
            Dir::Tage(p) => p.update(pc, h, taken),
        }
    }
}

/// The branch prediction unit. See the [module docs](self).
pub struct Bpu {
    dir: Dir,
    btb: Btb,
    indirect: IndirectPredictor,
    ras: Ras,
    ghist: GlobalHistory,
    path: PathHistory,
    predictions: u64,
}

impl std::fmt::Debug for Bpu {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Bpu").field("predictions", &self.predictions).finish_non_exhaustive()
    }
}

impl Bpu {
    /// Creates a BPU from a configuration.
    #[must_use]
    pub fn new(cfg: &BpuConfig) -> Self {
        let dir = match cfg.kind {
            PredictorKind::Bimodal => Dir::Bimodal(Bimodal::new(1 << cfg.simple_bits)),
            PredictorKind::Gshare => Dir::Gshare(Gshare::new(cfg.simple_bits, 16)),
            PredictorKind::Tage => Dir::Tage(Box::new(Tage::new(cfg.tage.clone()))),
        };
        Bpu {
            dir,
            btb: Btb::new(cfg.btb_entries, cfg.btb_ways),
            indirect: IndirectPredictor::new(cfg.indirect_bits, cfg.indirect_path_bits),
            ras: Ras::new(cfg.ras_depth),
            ghist: GlobalHistory::new(),
            path: PathHistory::new(),
            predictions: 0,
        }
    }

    /// Total predictions made.
    #[must_use]
    pub fn predictions(&self) -> u64 {
        self.predictions
    }

    /// Predicts the control-flow instruction `inst` and speculatively
    /// updates histories and the RAS.
    ///
    /// # Panics
    ///
    /// Panics if `inst` is not control flow.
    pub fn predict(&mut self, inst: &StaticInst) -> Prediction {
        assert!(inst.class.is_control_flow(), "predict() on non-control-flow {inst}");
        self.predictions += 1;
        let snapshot = BpuSnapshot { ghist: self.ghist, path: self.path, ras: self.ras.clone() };
        let btb_hit = self.btb.lookup(inst.pc).is_some();
        let (taken, next_pc) = self.speculate(inst, None);
        if !btb_hit {
            // Decode knows direct targets; fill so only the first
            // encounter pays the taken-miss bubble.
            if let Some(t) = inst.taken_target {
                self.btb.insert(inst.pc, t, inst.class);
            }
        }
        Prediction { taken, next_pc, btb_hit, snapshot }
    }

    /// Applies the speculative state updates for `inst`. With
    /// `forced = Some((taken, target))` the update uses the resolved
    /// outcome instead of predicting (the recovery path).
    fn speculate(&mut self, inst: &StaticInst, forced: Option<(bool, u64)>) -> (bool, u64) {
        let (taken, next_pc) = match inst.class {
            OpClass::CondBranch => {
                let taken = match forced {
                    Some((t, _)) => t,
                    None => self.dir.predict(inst.pc, &self.ghist),
                };
                let next = if taken {
                    inst.taken_target.expect("conditional branch without target")
                } else {
                    inst.fallthrough
                };
                self.ghist.push(taken);
                (taken, next)
            }
            OpClass::DirectJump => (true, inst.taken_target.expect("jump without target")),
            OpClass::Call => {
                self.ras.push(inst.fallthrough);
                (true, inst.taken_target.expect("call without target"))
            }
            OpClass::Return => {
                let predicted = self.ras.pop();
                let next = match forced {
                    Some((_, t)) => t,
                    None => predicted.unwrap_or(inst.fallthrough),
                };
                (true, next)
            }
            OpClass::IndirectJump => {
                let next = match forced {
                    Some((_, t)) => t,
                    None => self
                        .indirect
                        .predict(inst.pc, &self.path)
                        .or_else(|| self.btb.lookup(inst.pc).map(|e| e.target))
                        .unwrap_or(inst.fallthrough),
                };
                (true, next)
            }
            _ => unreachable!("speculate() on non-control-flow"),
        };
        if taken {
            self.path.push_edge(inst.pc, next_pc);
        }
        (taken, next_pc)
    }

    /// Trains the predictors with a resolved outcome. `snapshot` must be
    /// the one returned by the corresponding `predict` call.
    pub fn train(&mut self, inst: &StaticInst, snapshot: &BpuSnapshot, taken: bool, target: u64) {
        match inst.class {
            OpClass::CondBranch => self.dir.update(inst.pc, &snapshot.ghist, taken),
            OpClass::IndirectJump => self.indirect.update(inst.pc, &snapshot.path, target),
            _ => {}
        }
        if taken {
            self.btb.insert(inst.pc, target, inst.class);
        }
    }

    /// Recovers from a misprediction of `inst`: restores the snapshot
    /// and re-applies the speculative update with the actual outcome.
    pub fn recover(&mut self, inst: &StaticInst, snapshot: &BpuSnapshot, taken: bool, target: u64) {
        self.restore(snapshot);
        let _ = self.speculate(inst, Some((taken, target)));
    }

    /// Restores all speculative state to `snapshot` (used by exception
    /// flushes, which unwind to an arbitrary point).
    pub fn restore(&mut self, snapshot: &BpuSnapshot) {
        self.ghist = snapshot.ghist;
        self.path = snapshot.path;
        self.ras = snapshot.ras.clone();
    }

    /// BTB (hits, misses).
    #[must_use]
    pub fn btb_stats(&self) -> (u64, u64) {
        self.btb.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atr_isa::ArchReg;

    fn bpu() -> Bpu {
        Bpu::new(&BpuConfig::default())
    }

    fn branch(pc: u64, target: u64) -> StaticInst {
        StaticInst::cond_branch(pc, target, &[ArchReg::int(0)])
    }

    #[test]
    fn call_return_round_trip() {
        let mut b = bpu();
        let call = {
            let mut i = StaticInst::new(0x100, OpClass::Call, None, &[]);
            i.taken_target = Some(0x4000);
            i
        };
        let ret = StaticInst::new(0x4000, OpClass::Return, None, &[]);
        let pc1 = b.predict(&call);
        assert_eq!(pc1.next_pc, 0x4000);
        let pc2 = b.predict(&ret);
        assert_eq!(pc2.next_pc, call.fallthrough);
    }

    #[test]
    fn conditional_learns_with_training() {
        let mut b = bpu();
        let br = branch(0x200, 0x300);
        let mut correct = 0;
        for i in 0..200 {
            let p = b.predict(&br);
            let actual = true;
            if p.taken == actual {
                correct += 1;
            }
            b.train(&br, &p.snapshot, actual, 0x300);
            if p.taken != actual {
                b.recover(&br, &p.snapshot, actual, 0x300);
            }
            let _ = i;
        }
        assert!(correct > 190, "accuracy {correct}/200");
    }

    #[test]
    fn recovery_restores_ras() {
        let mut b = bpu();
        let call = {
            let mut i = StaticInst::new(0x100, OpClass::Call, None, &[]);
            i.taken_target = Some(0x4000);
            i
        };
        // Predict a branch (snapshot), then pollute the RAS down the
        // wrong path with a call, then recover.
        let _ = b.predict(&call); // real call: RAS = [0x104]
        let br = branch(0x4000, 0x4100);
        let p = b.predict(&br);
        let wrong_call = {
            let mut i = StaticInst::new(0x4100, OpClass::Call, None, &[]);
            i.taken_target = Some(0x8000);
            i
        };
        let _ = b.predict(&wrong_call); // wrong-path push
        b.recover(&br, &p.snapshot, !p.taken, 0);
        // The RAS must contain exactly the real call's return address.
        let ret = StaticInst::new(0x9000, OpClass::Return, None, &[]);
        let rp = b.predict(&ret);
        assert_eq!(rp.next_pc, 0x104);
    }

    #[test]
    fn indirect_predicts_after_training() {
        let mut b = bpu();
        let ij = StaticInst::new(0x500, OpClass::IndirectJump, None, &[ArchReg::int(1)]);
        let p0 = b.predict(&ij);
        b.train(&ij, &p0.snapshot, true, 0xa000);
        b.recover(&ij, &p0.snapshot, true, 0xa000);
        let p1 = b.predict(&ij);
        assert_eq!(p1.next_pc, 0xa000);
    }

    #[test]
    fn btb_miss_reported_once() {
        let mut b = bpu();
        let br = branch(0x600, 0x700);
        let p0 = b.predict(&br);
        assert!(!p0.btb_hit);
        let p1 = b.predict(&br);
        assert!(p1.btb_hit);
    }

    #[test]
    #[should_panic(expected = "non-control-flow")]
    fn predicting_alu_panics() {
        let mut b = bpu();
        let alu = StaticInst::alu(0x10, ArchReg::int(1), &[]);
        let _ = b.predict(&alu);
    }
}
