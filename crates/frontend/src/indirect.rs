//! Indirect branch target prediction (Table 1's 3K-entry indirect BTB).
//!
//! A two-level scheme in the ITTAGE spirit, sized down: a path-history
//! tagged table captures per-path targets (virtual dispatch reached from
//! different call sites), with a per-PC last-target table as fallback.

use crate::history::PathHistory;

#[derive(Debug, Clone, Copy, Default)]
struct TaggedTarget {
    tag: u16,
    target: u64,
    conf: u8,
}

/// Indirect target predictor: path-tagged first level plus per-PC
/// last-target fallback.
#[derive(Debug, Clone)]
pub struct IndirectPredictor {
    tagged: Vec<TaggedTarget>,
    last: Vec<(u64, u64)>, // (pc, target)
    index_bits: usize,
    path_bits: usize,
}

impl IndirectPredictor {
    /// Creates a predictor with `2^index_bits` tagged entries using
    /// `path_bits` of path history.
    ///
    /// # Panics
    ///
    /// Panics if `index_bits` is 0 or greater than 20.
    #[must_use]
    pub fn new(index_bits: usize, path_bits: usize) -> Self {
        assert!(index_bits > 0 && index_bits <= 20, "index bits out of range");
        IndirectPredictor {
            tagged: vec![TaggedTarget::default(); 1 << index_bits],
            last: vec![(0, 0); 1 << index_bits],
            index_bits,
            path_bits: path_bits.min(64),
        }
    }

    fn tagged_idx(&self, pc: u64, path: &PathHistory) -> usize {
        let mask = (1u64 << self.index_bits) - 1;
        (((pc >> 2) ^ path.low(self.path_bits)) & mask) as usize
    }

    fn tag(pc: u64, path: &PathHistory) -> u16 {
        ((((pc >> 2) ^ (path.low(16) << 3) ^ (pc >> 13)) & 0xffff) as u16) | 1
    }

    fn last_idx(&self, pc: u64) -> usize {
        ((pc >> 2) & ((1u64 << self.index_bits) - 1)) as usize
    }

    /// Predicts the target of the indirect branch at `pc` under `path`.
    /// Returns `None` when nothing is known (fetch stalls on resolve).
    #[must_use]
    pub fn predict(&self, pc: u64, path: &PathHistory) -> Option<u64> {
        let e = &self.tagged[self.tagged_idx(pc, path)];
        if e.tag == Self::tag(pc, path) && e.conf >= 1 {
            return Some(e.target);
        }
        let (lpc, target) = self.last[self.last_idx(pc)];
        if lpc == pc {
            Some(target)
        } else {
            None
        }
    }

    /// Trains with the resolved target, using the path history at
    /// prediction time.
    pub fn update(&mut self, pc: u64, path: &PathHistory, target: u64) {
        let i = self.tagged_idx(pc, path);
        let tag = Self::tag(pc, path);
        let e = &mut self.tagged[i];
        if e.tag == tag {
            if e.target == target {
                e.conf = (e.conf + 1).min(3);
            } else if e.conf > 0 {
                e.conf -= 1;
            } else {
                e.target = target;
                e.conf = 1;
            }
        } else if e.conf == 0 {
            *e = TaggedTarget { tag, target, conf: 1 };
        } else {
            e.conf -= 1;
        }
        let li = self.last_idx(pc);
        self.last[li] = (pc, target);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_predicts_none() {
        let p = IndirectPredictor::new(10, 12);
        assert_eq!(p.predict(0x100, &PathHistory::new()), None);
    }

    #[test]
    fn monomorphic_site_predicts_last_target() {
        let mut p = IndirectPredictor::new(10, 12);
        let path = PathHistory::new();
        p.update(0x100, &path, 0x4000);
        assert_eq!(p.predict(0x100, &path), Some(0x4000));
    }

    #[test]
    fn path_disambiguates_polymorphic_site() {
        let mut p = IndirectPredictor::new(12, 16);
        let mut path_a = PathHistory::new();
        path_a.push_target(0x1111_0004);
        let mut path_b = PathHistory::new();
        path_b.push_target(0x2222_0008);
        for _ in 0..8 {
            p.update(0x500, &path_a, 0xa000);
            p.update(0x500, &path_b, 0xb000);
        }
        assert_eq!(p.predict(0x500, &path_a), Some(0xa000));
        assert_eq!(p.predict(0x500, &path_b), Some(0xb000));
    }

    #[test]
    fn retrains_on_target_change() {
        let mut p = IndirectPredictor::new(10, 12);
        let path = PathHistory::new();
        for _ in 0..4 {
            p.update(0x100, &path, 0x4000);
        }
        for _ in 0..6 {
            p.update(0x100, &path, 0x5000);
        }
        assert_eq!(p.predict(0x100, &path), Some(0x5000));
    }
}
