//! Speculative branch history registers.

/// Maximum global history length supported (bits).
pub const MAX_HISTORY_BITS: usize = 128;

/// Global direction history: a shift register of the most recent branch
/// outcomes, updated *speculatively* at predict time and restored from a
/// snapshot on misprediction recovery.
///
/// The register is stored as two 64-bit words; [`GlobalHistory::fold`]
/// XOR-folds the youngest `len` bits down to `width` bits for use as a
/// predictor table index or tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GlobalHistory {
    bits: [u64; 2],
}

impl GlobalHistory {
    /// An empty (all not-taken) history.
    #[must_use]
    pub fn new() -> Self {
        GlobalHistory::default()
    }

    /// Shifts in one outcome (youngest bit at position 0).
    pub fn push(&mut self, taken: bool) {
        self.bits[1] = (self.bits[1] << 1) | (self.bits[0] >> 63);
        self.bits[0] = (self.bits[0] << 1) | u64::from(taken);
    }

    /// The youngest `n` bits (`n <= 64`) as an integer.
    ///
    /// # Panics
    ///
    /// Panics if `n > 64`.
    #[must_use]
    pub fn low(&self, n: usize) -> u64 {
        assert!(n <= 64, "low() supports at most 64 bits");
        if n == 0 {
            0
        } else if n == 64 {
            self.bits[0]
        } else {
            self.bits[0] & ((1u64 << n) - 1)
        }
    }

    /// Raw bit `i` (0 = youngest).
    #[must_use]
    pub fn bit(&self, i: usize) -> bool {
        assert!(i < MAX_HISTORY_BITS);
        (self.bits[i / 64] >> (i % 64)) & 1 == 1
    }

    /// XOR-folds the youngest `len` history bits into `width` bits.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or greater than 64, or `len` exceeds
    /// [`MAX_HISTORY_BITS`].
    #[must_use]
    pub fn fold(&self, len: usize, width: usize) -> u64 {
        assert!(width > 0 && width <= 64, "fold width out of range");
        assert!(len <= MAX_HISTORY_BITS, "history length out of range");
        let mut acc = 0u64;
        let mut i = 0;
        while i < len {
            let take = (len - i).min(width).min(64);
            // Extract bits [i, i+take).
            let mut chunk = 0u64;
            for b in 0..take {
                chunk |= u64::from(self.bit(i + b)) << b;
            }
            acc ^= chunk;
            i += take;
        }
        acc & if width == 64 { u64::MAX } else { (1u64 << width) - 1 }
    }
}

/// Path history: low bits of recent control-flow targets, used to index
/// the indirect target predictor (distinguishes call sites reached via
/// different paths).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PathHistory {
    bits: u64,
}

impl PathHistory {
    /// An empty path history.
    #[must_use]
    pub fn new() -> Self {
        PathHistory::default()
    }

    /// Shifts in two address bits of a taken target.
    pub fn push_target(&mut self, target: u64) {
        self.bits = (self.bits << 2) | ((target >> 2) & 0b11);
    }

    /// Shifts in two bits of a control-flow *edge* (source PC and
    /// target mixed), so different branches reaching the same target
    /// remain distinguishable — what indirect prediction relies on.
    pub fn push_edge(&mut self, pc: u64, target: u64) {
        self.bits = (self.bits << 2) | (((pc >> 2) ^ (target >> 2) ^ (pc >> 7)) & 0b11);
    }

    /// The youngest `n` bits (`n <= 64`).
    #[must_use]
    pub fn low(&self, n: usize) -> u64 {
        assert!(n <= 64);
        if n == 64 {
            self.bits
        } else if n == 0 {
            0
        } else {
            self.bits & ((1u64 << n) - 1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_shifts_youngest_first() {
        let mut h = GlobalHistory::new();
        h.push(true);
        h.push(false);
        h.push(true);
        // youngest = taken(1), then 0, then 1 -> 0b101
        assert_eq!(h.low(3), 0b101);
        assert!(h.bit(0));
        assert!(!h.bit(1));
        assert!(h.bit(2));
    }

    #[test]
    fn history_carries_across_word_boundary() {
        let mut h = GlobalHistory::new();
        h.push(true);
        for _ in 0..64 {
            h.push(false);
        }
        assert!(h.bit(64), "the taken bit should have shifted into the high word");
    }

    #[test]
    fn fold_of_short_history_is_low_bits() {
        let mut h = GlobalHistory::new();
        for b in [true, false, true, true] {
            h.push(b);
        }
        assert_eq!(h.fold(4, 8), h.low(4));
    }

    #[test]
    fn fold_xors_chunks() {
        let mut h = GlobalHistory::new();
        // 16 bits: two 8-bit chunks; expect xor of them.
        for i in 0..16 {
            h.push(i % 3 == 0);
        }
        let lo = h.low(8);
        let mut hi = 0u64;
        for b in 0..8 {
            hi |= u64::from(h.bit(8 + b)) << b;
        }
        assert_eq!(h.fold(16, 8), lo ^ hi);
    }

    #[test]
    fn fold_differs_for_different_histories() {
        let mut a = GlobalHistory::new();
        let mut b = GlobalHistory::new();
        for i in 0..50 {
            a.push(i % 2 == 0);
            b.push(i % 3 == 0);
        }
        assert_ne!(a.fold(50, 11), b.fold(50, 11));
    }

    #[test]
    fn snapshot_restore_by_copy() {
        let mut h = GlobalHistory::new();
        h.push(true);
        let snap = h;
        h.push(false);
        h.push(false);
        assert_ne!(h, snap);
        let restored = snap;
        assert_eq!(restored.low(1), 1);
    }

    #[test]
    fn path_history_tracks_targets() {
        let mut p = PathHistory::new();
        p.push_target(0x1004); // bits (0x1004 >> 2) & 3 = 1
        p.push_target(0x1008); // bits = 2
        assert_eq!(p.low(4), 0b0110);
    }

    #[test]
    #[should_panic(expected = "at most 64")]
    fn low_too_wide_panics() {
        let h = GlobalHistory::new();
        let _ = h.low(65);
    }
}
