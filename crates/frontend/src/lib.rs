//! Decoupled-frontend substrate: branch prediction for the ATR simulator.
//!
//! The paper's baseline is a Golden-Cove-like core with a TAGE-SC-L-class
//! predictor, a 12K-entry BTB, a 3K-entry indirect target buffer, and a
//! return address stack (Table 1). This crate implements that substrate:
//!
//! * [`GlobalHistory`] / [`PathHistory`] — speculative branch history with
//!   snapshot/restore for misprediction recovery;
//! * [`DirectionPredictor`] implementations: [`Bimodal`], [`Gshare`], and
//!   [`Tage`] (tagged geometric-history predictor with a loop predictor,
//!   the workhorse of TAGE-SC-L);
//! * [`Btb`] — set-associative branch target buffer;
//! * [`Ras`] — return address stack;
//! * [`IndirectPredictor`] — path-history-tagged indirect target predictor;
//! * [`Bpu`] — the bundle the pipeline talks to: one `predict` per
//!   control-flow instruction, `resolve` at execute, snapshot/restore on
//!   flush.
//!
//! Branch *mispredictions are the events that make early register release
//! dangerous* — every unsafe case in the paper (Fig 2) starts with one —
//! so prediction quality directly controls how often ATR's flush-walk
//! machinery runs.

pub mod bpu;
pub mod btb;
pub mod history;
pub mod indirect;
pub mod predictor;
pub mod ras;
pub mod tage;

pub use bpu::{Bpu, BpuConfig, BpuSnapshot, Prediction};
pub use btb::{Btb, BtbEntry};
pub use history::{GlobalHistory, PathHistory};
pub use indirect::IndirectPredictor;
pub use predictor::{Bimodal, DirectionPredictor, Gshare, PredictorKind};
pub use ras::Ras;
pub use tage::{Tage, TageConfig};
