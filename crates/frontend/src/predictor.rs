//! Direction predictors: the common trait plus two classic baselines.

use crate::history::GlobalHistory;

/// A conditional-branch direction predictor.
///
/// `predict` is called at fetch with the current speculative history;
/// `update` is called at resolve with the *history the prediction was
/// made under* (the pipeline snapshots it), so implementations recompute
/// their table indices deterministically rather than carrying metadata.
pub trait DirectionPredictor {
    /// Predicts the direction of the conditional branch at `pc`.
    fn predict(&mut self, pc: u64, hist: &GlobalHistory) -> bool;

    /// Trains the predictor with the resolved outcome. `hist` must be
    /// the history at prediction time.
    fn update(&mut self, pc: u64, hist: &GlobalHistory, taken: bool);
}

/// Which direction predictor a configuration selects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PredictorKind {
    /// Per-PC 2-bit counters.
    Bimodal,
    /// Global-history-XOR-PC 2-bit counters.
    Gshare,
    /// TAGE with loop predictor (Table 1's TAGE-SC-L-class baseline).
    Tage,
}

#[inline]
fn ctr_update(ctr: &mut u8, taken: bool, max: u8) {
    if taken {
        if *ctr < max {
            *ctr += 1;
        }
    } else if *ctr > 0 {
        *ctr -= 1;
    }
}

/// Classic bimodal predictor: a table of 2-bit saturating counters
/// indexed by PC.
#[derive(Debug, Clone)]
pub struct Bimodal {
    table: Vec<u8>,
    mask: u64,
}

impl Bimodal {
    /// Creates a bimodal predictor with `entries` counters.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two.
    #[must_use]
    pub fn new(entries: usize) -> Self {
        assert!(entries.is_power_of_two(), "table size must be a power of two");
        Bimodal { table: vec![1; entries], mask: entries as u64 - 1 }
    }

    fn index(&self, pc: u64) -> usize {
        ((pc >> 2) & self.mask) as usize
    }
}

impl DirectionPredictor for Bimodal {
    fn predict(&mut self, pc: u64, _hist: &GlobalHistory) -> bool {
        self.table[self.index(pc)] >= 2
    }

    fn update(&mut self, pc: u64, _hist: &GlobalHistory, taken: bool) {
        let i = self.index(pc);
        ctr_update(&mut self.table[i], taken, 3);
    }
}

/// Gshare: 2-bit counters indexed by `pc ^ folded(global history)`.
#[derive(Debug, Clone)]
pub struct Gshare {
    table: Vec<u8>,
    index_bits: usize,
    hist_len: usize,
}

impl Gshare {
    /// Creates a gshare predictor with `2^index_bits` counters using
    /// `hist_len` history bits.
    ///
    /// # Panics
    ///
    /// Panics if `index_bits` is 0 or greater than 24.
    #[must_use]
    pub fn new(index_bits: usize, hist_len: usize) -> Self {
        assert!(index_bits > 0 && index_bits <= 24, "index bits out of range");
        Gshare { table: vec![1; 1 << index_bits], index_bits, hist_len }
    }

    fn index(&self, pc: u64, hist: &GlobalHistory) -> usize {
        let h = hist.fold(self.hist_len, self.index_bits);
        let mask = (1u64 << self.index_bits) - 1;
        (((pc >> 2) ^ h) & mask) as usize
    }
}

impl DirectionPredictor for Gshare {
    fn predict(&mut self, pc: u64, hist: &GlobalHistory) -> bool {
        self.table[self.index(pc, hist)] >= 2
    }

    fn update(&mut self, pc: u64, hist: &GlobalHistory, taken: bool) {
        let i = self.index(pc, hist);
        ctr_update(&mut self.table[i], taken, 3);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn train<P: DirectionPredictor>(p: &mut P, pc: u64, pattern: &[bool], reps: usize) -> f64 {
        let mut hist = GlobalHistory::new();
        let mut correct = 0usize;
        let mut total = 0usize;
        for _ in 0..reps {
            for &t in pattern {
                let pred = p.predict(pc, &hist);
                p.update(pc, &hist, t);
                hist.push(t);
                if pred == t {
                    correct += 1;
                }
                total += 1;
            }
        }
        correct as f64 / total as f64
    }

    #[test]
    fn bimodal_learns_bias() {
        let mut p = Bimodal::new(1024);
        let acc = train(&mut p, 0x400, &[true, true, true, true, true, false], 200);
        assert!(acc > 0.80, "bimodal accuracy {acc}");
    }

    #[test]
    fn bimodal_cannot_learn_alternation() {
        let mut p = Bimodal::new(1024);
        let acc = train(&mut p, 0x400, &[true, false], 500);
        assert!(acc < 0.7, "bimodal should fail on alternation, got {acc}");
    }

    #[test]
    fn gshare_learns_alternation() {
        let mut p = Gshare::new(12, 12);
        let acc = train(&mut p, 0x400, &[true, false], 500);
        assert!(acc > 0.95, "gshare accuracy on alternation {acc}");
    }

    #[test]
    fn gshare_learns_short_patterns() {
        let mut p = Gshare::new(12, 12);
        let acc = train(&mut p, 0x80, &[true, true, false, true, false, false], 400);
        assert!(acc > 0.9, "gshare pattern accuracy {acc}");
    }

    #[test]
    fn predictors_are_per_pc() {
        let mut p = Bimodal::new(1024);
        let hist = GlobalHistory::new();
        for _ in 0..10 {
            p.update(0x100, &hist, true);
            p.update(0x200, &hist, false);
        }
        assert!(p.predict(0x100, &hist));
        assert!(!p.predict(0x200, &hist));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_table_panics() {
        let _ = Bimodal::new(1000);
    }
}
