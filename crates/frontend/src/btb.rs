//! Set-associative branch target buffer.

use atr_isa::OpClass;

/// One BTB entry: the branch's class and its (last) taken target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BtbEntry {
    /// Full-PC tag (software model keeps the full PC).
    pub pc: u64,
    /// Most recent taken target.
    pub target: u64,
    /// Control-flow class (drives RAS/indirect handling at fetch).
    pub class: OpClass,
    /// LRU stamp.
    lru: u64,
}

/// Set-associative BTB (Table 1: 12K entries).
///
/// In this simulator the frontend decodes instructions directly from the
/// static program, so the BTB's modeled role is *taken-branch target
/// latency*: a predicted-taken branch that misses in the BTB costs a
/// fetch bubble (the pipeline charges it), and indirect targets come
/// from the indirect predictor instead.
#[derive(Debug, Clone)]
pub struct Btb {
    sets: Vec<Vec<BtbEntry>>,
    ways: usize,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl Btb {
    /// Creates a BTB with `entries` total entries and `ways` associativity.
    ///
    /// # Panics
    ///
    /// Panics if `ways` is zero, `entries` is not a multiple of `ways`,
    /// or the set count is not a power of two.
    #[must_use]
    pub fn new(entries: usize, ways: usize) -> Self {
        assert!(ways > 0, "need at least one way");
        assert_eq!(entries % ways, 0, "entries must be a multiple of ways");
        let nsets = entries / ways;
        assert!(nsets.is_power_of_two(), "set count must be a power of two");
        Btb { sets: vec![Vec::with_capacity(ways); nsets], ways, tick: 0, hits: 0, misses: 0 }
    }

    fn set_of(&self, pc: u64) -> usize {
        ((pc >> 2) & (self.sets.len() as u64 - 1)) as usize
    }

    /// Looks up `pc`, updating LRU and hit/miss statistics.
    pub fn lookup(&mut self, pc: u64) -> Option<BtbEntry> {
        self.tick += 1;
        let tick = self.tick;
        let set = self.set_of(pc);
        if let Some(e) = self.sets[set].iter_mut().find(|e| e.pc == pc) {
            e.lru = tick;
            self.hits += 1;
            return Some(*e);
        }
        self.misses += 1;
        None
    }

    /// Inserts or updates the entry for `pc` (called at decode/resolve).
    pub fn insert(&mut self, pc: u64, target: u64, class: OpClass) {
        self.tick += 1;
        let tick = self.tick;
        let set = self.set_of(pc);
        let ways = self.ways;
        let set_vec = &mut self.sets[set];
        if let Some(e) = set_vec.iter_mut().find(|e| e.pc == pc) {
            e.target = target;
            e.class = class;
            e.lru = tick;
            return;
        }
        let entry = BtbEntry { pc, target, class, lru: tick };
        if set_vec.len() < ways {
            set_vec.push(entry);
        } else {
            let victim = set_vec.iter_mut().min_by_key(|e| e.lru).expect("non-empty set");
            *victim = entry;
        }
    }

    /// (hits, misses) so far.
    #[must_use]
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit_after_insert() {
        let mut b = Btb::new(1024, 4);
        assert!(b.lookup(0x1000).is_none());
        b.insert(0x1000, 0x2000, OpClass::CondBranch);
        let e = b.lookup(0x1000).unwrap();
        assert_eq!(e.target, 0x2000);
        assert_eq!(e.class, OpClass::CondBranch);
        assert_eq!(b.stats(), (1, 1));
    }

    #[test]
    fn update_replaces_target() {
        let mut b = Btb::new(64, 2);
        b.insert(0x10, 0x100, OpClass::DirectJump);
        b.insert(0x10, 0x200, OpClass::DirectJump);
        assert_eq!(b.lookup(0x10).unwrap().target, 0x200);
    }

    #[test]
    fn lru_evicts_coldest_way() {
        let mut b = Btb::new(8, 2); // 4 sets x 2 ways
        let set_stride = 4 * 4; // pcs mapping to same set differ by nsets << 2
        let (a, c, d) = (0x0u64, set_stride as u64, 2 * set_stride as u64);
        b.insert(a, 1, OpClass::CondBranch);
        b.insert(c, 2, OpClass::CondBranch);
        let _ = b.lookup(a); // warm a
        b.insert(d, 3, OpClass::CondBranch); // evicts c
        assert!(b.lookup(a).is_some());
        assert!(b.lookup(c).is_none());
        assert!(b.lookup(d).is_some());
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_geometry_panics() {
        let _ = Btb::new(12, 4);
    }

    #[test]
    fn distinct_pcs_do_not_alias_within_capacity() {
        let mut b = Btb::new(4096, 4);
        for i in 0..512u64 {
            b.insert(0x1000 + i * 4, i, OpClass::CondBranch);
        }
        for i in 0..512u64 {
            assert_eq!(b.lookup(0x1000 + i * 4).unwrap().target, i);
        }
    }
}
