//! Return address stack with snapshot-based misprediction repair.

/// A fixed-depth return address stack, updated speculatively at fetch.
///
/// The pipeline snapshots the RAS alongside the branch histories at every
/// prediction and restores the snapshot when a flush unwinds past it —
/// the simple and exact software-model equivalent of hardware
/// top-of-stack repair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ras {
    stack: Vec<u64>,
    capacity: usize,
}

impl Ras {
    /// Creates a RAS with the given capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "RAS capacity must be non-zero");
        Ras { stack: Vec::with_capacity(capacity), capacity }
    }

    /// Pushes a return address (on predicting a call). On overflow the
    /// oldest entry is discarded, matching circular hardware stacks.
    pub fn push(&mut self, ret: u64) {
        if self.stack.len() == self.capacity {
            self.stack.remove(0);
        }
        self.stack.push(ret);
    }

    /// Pops the predicted return target (on predicting a return).
    /// Returns `None` when empty (the fetch unit then falls back to the
    /// BTB or stalls until resolve).
    pub fn pop(&mut self) -> Option<u64> {
        self.stack.pop()
    }

    /// Current depth.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.stack.len()
    }

    /// True when no entries are stacked.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.stack.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifo_order() {
        let mut r = Ras::new(8);
        r.push(0x100);
        r.push(0x200);
        assert_eq!(r.pop(), Some(0x200));
        assert_eq!(r.pop(), Some(0x100));
        assert_eq!(r.pop(), None);
    }

    #[test]
    fn overflow_discards_oldest() {
        let mut r = Ras::new(2);
        r.push(1);
        r.push(2);
        r.push(3);
        assert_eq!(r.depth(), 2);
        assert_eq!(r.pop(), Some(3));
        assert_eq!(r.pop(), Some(2));
        assert_eq!(r.pop(), None);
    }

    #[test]
    fn snapshot_restore_is_exact() {
        let mut r = Ras::new(8);
        r.push(0xa);
        r.push(0xb);
        let snap = r.clone();
        let _ = r.pop();
        r.push(0xdead);
        r = snap;
        assert_eq!(r.pop(), Some(0xb));
        assert_eq!(r.pop(), Some(0xa));
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_panics() {
        let _ = Ras::new(0);
    }
}
