//! Comparative prediction-quality tests: the predictor hierarchy must
//! rank as the literature says on the workload substrate's behaviour
//! classes (bimodal < gshare < TAGE-L), and the BPU must stay consistent
//! under speculative update + recovery storms.

use atr_frontend::{
    Bimodal, Bpu, BpuConfig, DirectionPredictor, GlobalHistory, Gshare, PredictorKind, Tage,
};
use atr_isa::{ArchReg, OpClass, StaticInst};

/// Drives a predictor over a deterministic direction stream and returns
/// its accuracy.
fn accuracy<P: DirectionPredictor>(p: &mut P, stream: &[(u64, bool)]) -> f64 {
    let mut hist = GlobalHistory::new();
    let mut hits = 0usize;
    for &(pc, taken) in stream {
        if p.predict(pc, &hist) == taken {
            hits += 1;
        }
        p.update(pc, &hist, taken);
        hist.push(taken);
    }
    hits as f64 / stream.len() as f64
}

/// Interleaved loop branches with different trip counts plus a pattern
/// branch — the substrate's bread-and-butter mixture.
fn loopy_stream(len: usize) -> Vec<(u64, bool)> {
    let mut out = Vec::with_capacity(len);
    let mut i = 0u64;
    while out.len() < len {
        // Loop A: trip 7. Loop B: trip 3. Pattern C: period 5.
        out.push((0x100, i % 7 != 6));
        out.push((0x200, i % 3 != 2));
        out.push((0x300, matches!(i % 5, 0 | 2 | 3)));
        i += 1;
    }
    out.truncate(len);
    out
}

#[test]
fn predictor_hierarchy_ranks_correctly_on_loops() {
    let stream = loopy_stream(12_000);
    let warm = &stream[4_000..];
    let mut bimodal = Bimodal::new(1 << 14);
    let mut gshare = Gshare::new(14, 16);
    let mut tage = Tage::default_config();
    let _ = accuracy(&mut bimodal, &stream[..4_000]);
    let _ = accuracy(&mut gshare, &stream[..4_000]);
    let _ = accuracy(&mut tage, &stream[..4_000]);
    let b = accuracy(&mut bimodal, warm);
    let g = accuracy(&mut gshare, warm);
    let t = accuracy(&mut tage, warm);
    assert!(g > b, "gshare {g} must beat bimodal {b} on history-correlated code");
    assert!(t > 0.97, "TAGE-L must nail mixed loops: {t}");
    assert!(t >= g - 0.01, "TAGE-L {t} must not lose to gshare {g}");
}

#[test]
fn bpu_survives_interleaved_speculation_and_recovery() {
    // Simulates the pipeline's usage: predict several branches ahead,
    // then resolve them oldest-first, recovering on mismatch. The BPU
    // must converge on a deterministic nested-loop pattern.
    let cfg = BpuConfig { kind: PredictorKind::Tage, ..BpuConfig::default() };
    let mut bpu = Bpu::new(&cfg);
    let br = StaticInst::cond_branch(0x40, 0x140, &[ArchReg::int(1)]);
    let outcome = |i: u64| i % 9 != 8;
    let mut correct = 0usize;
    let mut total = 0usize;
    let mut inflight: Vec<(u64, atr_frontend::Prediction)> = Vec::new();
    for i in 0..6_000u64 {
        let p = bpu.predict(&br);
        inflight.push((i, p));
        // Resolve in bursts of 4 (out-of-order-ish timing, in-order resolve).
        if inflight.len() >= 4 {
            for (k, pred) in inflight.drain(..) {
                let actual = outcome(k);
                let target = if actual { 0x140 } else { br.fallthrough };
                bpu.train(&br, &pred.snapshot, actual, target);
                if pred.taken != actual {
                    bpu.recover(&br, &pred.snapshot, actual, target);
                    // Everything younger was squashed.
                    break;
                }
                if k > 3_000 {
                    correct += 1;
                    total += 1;
                }
            }
            inflight.clear();
        }
        let _ = total;
    }
    if total > 0 {
        let acc = correct as f64 / total as f64;
        assert!(acc > 0.85, "post-warmup accuracy under speculation: {acc}");
    }
}

#[test]
fn return_stack_handles_nested_calls() {
    let mut bpu = Bpu::new(&BpuConfig::default());
    let mk_call = |pc: u64, target: u64| {
        let mut i = StaticInst::new(pc, OpClass::Call, None, &[]);
        i.taken_target = Some(target);
        i
    };
    let ret = |pc: u64| StaticInst::new(pc, OpClass::Return, None, &[]);
    // a calls b calls c; returns unwind in LIFO order.
    let _ = bpu.predict(&mk_call(0x100, 0x1000));
    let _ = bpu.predict(&mk_call(0x1000, 0x2000));
    let _ = bpu.predict(&mk_call(0x2000, 0x3000));
    assert_eq!(bpu.predict(&ret(0x3000)).next_pc, 0x2004);
    assert_eq!(bpu.predict(&ret(0x2004)).next_pc, 0x1004);
    assert_eq!(bpu.predict(&ret(0x1004)).next_pc, 0x104);
}

#[test]
fn polymorphic_indirects_converge_with_path_history() {
    // A dispatch site alternating between two targets depending on the
    // preceding call path must become predictable.
    let mut bpu = Bpu::new(&BpuConfig::default());
    let site = StaticInst::new(0x500, OpClass::IndirectJump, None, &[ArchReg::int(2)]);
    let lead_a = StaticInst::jump(0x400, 0x500);
    let lead_b = StaticInst::jump(0x300, 0x500);
    let mut correct = 0usize;
    for i in 0..400 {
        let (lead, target) = if i % 2 == 0 { (&lead_a, 0xa000) } else { (&lead_b, 0xb000) };
        let _ = bpu.predict(lead);
        let p = bpu.predict(&site);
        if p.next_pc == target {
            correct += 1;
        }
        bpu.train(&site, &p.snapshot, true, target);
        if p.next_pc != target {
            bpu.recover(&site, &p.snapshot, true, target);
        }
    }
    assert!(correct > 300, "path-correlated indirect accuracy: {correct}/400");
}
