//! Property test: merging per-SimPoint histograms is exactly
//! equivalent to histogramming the concatenated sample streams.
//!
//! Hand-rolled on atr-rng (no proptest in-tree): many random trials,
//! each drawing a random number of sample streams from a skewed value
//! distribution (zeros, small values, and saturating huge values are
//! all common), then comparing merge-of-parts against one histogram of
//! the whole — count, sum, min/max, and every bucket.

use atr_rng::{RngExt, SeedableRng, SmallRng};
use atr_telemetry::{bucket_of, Log2Hist, NUM_HIST_BUCKETS};

/// Draws a value that exercises every interesting bucket class.
fn skewed_value(rng: &mut SmallRng) -> u64 {
    match rng.random_range(0u32..100) {
        0..=19 => 0,                                  // bucket 0
        20..=59 => rng.random_range(1u64..256),       // low buckets
        60..=89 => rng.random_range(256u64..1 << 20), // mid buckets
        90..=97 => rng.random_range(1u64 << 40..1 << 60),
        _ => rng.random_range((1u64 << 63)..=u64::MAX), // saturating bucket 64
    }
}

#[test]
fn merge_equals_histogram_of_concatenation() {
    let mut rng = SmallRng::seed_from_u64(0xA7B1_7E1E);
    for trial in 0..200 {
        let parts = rng.random_range(1usize..8);
        let mut merged = Log2Hist::new();
        let mut whole = Log2Hist::new();
        let mut total_samples = 0u64;

        for _ in 0..parts {
            // Empty streams must merge as no-ops, so draw 0 often.
            let n = rng.random_range(0usize..64);
            let mut part = Log2Hist::new();
            for _ in 0..n {
                let v = skewed_value(&mut rng);
                part.record(v);
                whole.record(v);
                total_samples += 1;
            }
            merged.merge(&part);
        }

        assert_eq!(merged.count, total_samples, "trial {trial}: count");
        assert_eq!(merged.count, whole.count, "trial {trial}: count vs whole");
        assert_eq!(merged.sum, whole.sum, "trial {trial}: sum");
        assert_eq!(merged.min, whole.min, "trial {trial}: min");
        assert_eq!(merged.max, whole.max, "trial {trial}: max");
        for b in 0..NUM_HIST_BUCKETS {
            assert_eq!(merged.buckets[b], whole.buckets[b], "trial {trial}: bucket {b}");
        }
        assert_eq!(merged, whole, "trial {trial}: full state");
    }
}

#[test]
fn merging_empty_is_identity_both_ways() {
    let mut rng = SmallRng::seed_from_u64(7);
    let mut h = Log2Hist::new();
    for _ in 0..500 {
        h.record(skewed_value(&mut rng));
    }
    let before = h.clone();

    // nonempty ← empty
    h.merge(&Log2Hist::new());
    assert_eq!(h, before);

    // empty ← nonempty
    let mut e = Log2Hist::new();
    e.merge(&before);
    assert_eq!(e, before);

    // empty ← empty stays empty (min stays at the sentinel).
    let mut z = Log2Hist::new();
    z.merge(&Log2Hist::new());
    assert!(z.is_empty());
    assert_eq!(z.min, u64::MAX);
}

#[test]
fn saturating_bucket_merges_like_any_other() {
    let mut a = Log2Hist::new();
    let mut b = Log2Hist::new();
    let mut whole = Log2Hist::new();
    for v in [u64::MAX, 1u64 << 63, (1u64 << 63) + 12345] {
        a.record(v);
        whole.record(v);
    }
    for v in [u64::MAX - 1, u64::MAX] {
        b.record(v);
        whole.record(v);
    }
    assert_eq!(bucket_of(u64::MAX), NUM_HIST_BUCKETS - 1);
    a.merge(&b);
    assert_eq!(a, whole);
    assert_eq!(a.buckets[NUM_HIST_BUCKETS - 1], 5);
    // The exact sum survives even though every sample saturates the
    // top bucket.
    assert_eq!(
        a.sum,
        u128::from(u64::MAX)
            + u128::from(1u64 << 63)
            + u128::from((1u64 << 63) + 12345)
            + u128::from(u64::MAX - 1)
            + u128::from(u64::MAX)
    );
}
