//! Opt-in per-uop pipeline trace with a Konata-compatible dump.
//!
//! When `ATR_TELEMETRY=trace`, the pipeline pushes one [`TraceEvent`]
//! per stage transition (fetch, rename, issue, execute, precommit,
//! commit/flush, register release) into a bounded ring buffer. The
//! buffer holds the most recent events only — old entries fall off the
//! front — so the trace is cheap enough to leave on around an audit
//! failure and then dump the final window for visualization.
//!
//! [`PipeTrace::dump_konata`] renders the window in the `Kanata 0004`
//! text format understood by the Konata pipeline viewer: `I`/`L` lines
//! introduce a uop, `S` lines start stages, `R` lines retire or flush
//! it, and `C` lines advance the clock.

use std::collections::VecDeque;
use std::fmt::Write as _;

/// A pipeline stage transition, in program-flow order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum TraceStage {
    /// Entered the fetch queue.
    Fetch,
    /// Renamed and inserted into the ROB.
    Rename,
    /// Woke up and issued to a functional unit / memory.
    Issue,
    /// Execution completed (writeback).
    Exec,
    /// Passed the precommit stage (ATR atomic-region boundary).
    Precommit,
    /// Retired architecturally.
    Commit,
    /// Squashed on a flush (terminal, like `Commit`).
    Flush,
    /// A physical register previously mapped by this uop was released.
    Release,
}

impl TraceStage {
    /// Short mnemonic shown inside Konata lanes.
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        match self {
            TraceStage::Fetch => "F",
            TraceStage::Rename => "Rn",
            TraceStage::Issue => "Is",
            TraceStage::Exec => "Ex",
            TraceStage::Precommit => "Pc",
            TraceStage::Commit => "Cm",
            TraceStage::Flush => "Fl",
            TraceStage::Release => "Rl",
        }
    }
}

/// One stage transition of one uop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Monotonic uop sequence number (fetch order).
    pub uop: u64,
    /// Cycle the transition happened.
    pub cycle: u64,
    /// Which transition.
    pub stage: TraceStage,
    /// Short annotation (opcode text on `Fetch`, cause on `Flush`).
    pub label: String,
}

/// Bounded ring buffer of recent [`TraceEvent`]s.
#[derive(Debug, Clone, Default)]
pub struct PipeTrace {
    events: VecDeque<TraceEvent>,
    cap: usize,
    dropped: u64,
}

impl PipeTrace {
    /// A trace retaining at most `cap` events (0 disables recording).
    #[must_use]
    pub fn new(cap: usize) -> Self {
        PipeTrace { events: VecDeque::new(), cap, dropped: 0 }
    }

    /// True when recording is disabled (`cap == 0`).
    #[must_use]
    pub fn is_disabled(&self) -> bool {
        self.cap == 0
    }

    /// Number of buffered events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing is buffered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events evicted from the front so far.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Records one transition, evicting the oldest event when full.
    pub fn push(&mut self, uop: u64, cycle: u64, stage: TraceStage, label: impl Into<String>) {
        if self.cap == 0 {
            return;
        }
        if self.events.len() == self.cap {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(TraceEvent { uop, cycle, stage, label: label.into() });
    }

    /// Buffered events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Renders the buffered window as `Kanata 0004` text.
    ///
    /// Uops whose `Fetch` event fell off the ring are still emitted
    /// (introduced at their earliest surviving event) so partial
    /// windows stay loadable. Uops with no terminal event are closed
    /// with a flush-kind retire line, which Konata shows as squashed.
    #[must_use]
    pub fn dump_konata(&self) -> String {
        let mut out = String::new();
        out.push_str("Kanata\t0004\n");
        if self.events.is_empty() {
            return out;
        }

        // Events arrive in push order, which is cycle order per stage
        // but stages within a cycle can interleave across uops; sort
        // by (cycle, uop) for a stable replay.
        let mut evs: Vec<&TraceEvent> = self.events.iter().collect();
        evs.sort_by_key(|e| (e.cycle, e.uop, e.stage));

        let mut cur_cycle = evs[0].cycle;
        let _ = writeln!(out, "C=\t{cur_cycle}");

        // Konata wants dense instruction ids starting at 0 in
        // introduction order; map uop sequence numbers onto them.
        let mut ids: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
        let mut closed: std::collections::HashSet<u64> = std::collections::HashSet::new();
        let mut retired = 0u64;

        for e in &evs {
            if e.cycle > cur_cycle {
                let _ = writeln!(out, "C\t{}", e.cycle - cur_cycle);
                cur_cycle = e.cycle;
            }
            let next_id = ids.len() as u64;
            let id = *ids.entry(e.uop).or_insert_with(|| {
                let _ = writeln!(out, "I\t{next_id}\t{}\t0", e.uop);
                next_id
            });
            if e.stage == TraceStage::Fetch || !e.label.is_empty() {
                let _ = writeln!(out, "L\t{id}\t0\t{}", e.label);
            }
            match e.stage {
                TraceStage::Commit => {
                    let _ = writeln!(out, "S\t{id}\t0\t{}", e.stage.mnemonic());
                    let _ = writeln!(out, "R\t{id}\t{retired}\t0");
                    retired += 1;
                    closed.insert(id);
                }
                TraceStage::Flush => {
                    let _ = writeln!(out, "R\t{id}\t0\t1");
                    closed.insert(id);
                }
                _ => {
                    let _ = writeln!(out, "S\t{id}\t0\t{}", e.stage.mnemonic());
                }
            }
        }

        // Close every uop still in flight so viewers don't hang on
        // unterminated lanes.
        let mut open: Vec<u64> = ids.values().copied().filter(|id| !closed.contains(id)).collect();
        open.sort_unstable();
        for id in open {
            let _ = writeln!(out, "R\t{id}\t0\t1");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_evicts_oldest() {
        let mut t = PipeTrace::new(3);
        for i in 0..5u64 {
            t.push(i, i, TraceStage::Fetch, format!("op{i}"));
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.dropped(), 2);
        let uops: Vec<u64> = t.events().map(|e| e.uop).collect();
        assert_eq!(uops, vec![2, 3, 4]);
    }

    #[test]
    fn zero_cap_records_nothing() {
        let mut t = PipeTrace::new(0);
        assert!(t.is_disabled());
        t.push(1, 1, TraceStage::Fetch, "x");
        assert!(t.is_empty());
    }

    #[test]
    fn konata_dump_has_header_clock_and_terminators() {
        let mut t = PipeTrace::new(64);
        t.push(0, 10, TraceStage::Fetch, "addi");
        t.push(0, 11, TraceStage::Rename, "");
        t.push(1, 11, TraceStage::Fetch, "ld");
        t.push(0, 12, TraceStage::Issue, "");
        t.push(0, 14, TraceStage::Commit, "");
        // uop 1 never terminates -> must be closed as a flush.
        let dump = t.dump_konata();
        assert!(dump.starts_with("Kanata\t0004\n"));
        assert!(dump.contains("C=\t10"));
        assert!(dump.contains("C\t1"));
        assert!(dump.contains("I\t0\t0\t0"));
        assert!(dump.contains("L\t0\t0\taddi"));
        assert!(dump.contains("S\t0\t0\tIs"));
        assert!(dump.contains("R\t0\t0\t0"), "uop 0 retires: {dump}");
        assert!(dump.contains("R\t1\t0\t1"), "uop 1 closed as flush: {dump}");
    }

    #[test]
    fn empty_dump_is_just_header() {
        assert_eq!(PipeTrace::new(8).dump_konata(), "Kanata\t0004\n");
    }
}
