//! Streaming log2-bucketed histograms and fixed-interval time series.
//!
//! A [`Log2Hist`] keeps 65 buckets: bucket 0 counts the value 0, and
//! bucket `k` (1..=64) counts values in `[2^(k-1), 2^k - 1]`, so the
//! top bucket absorbs everything from `2^63` up (saturation). Alongside
//! the buckets it streams exact `count`/`sum`/`min`/`max`, so merging
//! two histograms is bucket-wise addition and is exactly equivalent to
//! histogramming the concatenated sample streams — the property the
//! run-matrix executor relies on when aggregating across SimPoints
//! (and which `tests/hist_merge.rs` property-checks).

use atr_json::Json;

/// Number of buckets: one for zero plus one per power-of-two range.
pub const NUM_HIST_BUCKETS: usize = 65;

/// A mergeable streaming histogram over `u64` samples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Log2Hist {
    /// `buckets[0]` counts zeros; `buckets[k]` counts `[2^(k-1), 2^k)`.
    pub buckets: [u64; NUM_HIST_BUCKETS],
    /// Total samples recorded.
    pub count: u64,
    /// Exact sum of all samples (saturating).
    pub sum: u128,
    /// Smallest sample seen (`u64::MAX` when empty).
    pub min: u64,
    /// Largest sample seen (0 when empty).
    pub max: u64,
}

impl Default for Log2Hist {
    fn default() -> Self {
        Self::new()
    }
}

/// The bucket index a value lands in.
#[must_use]
pub fn bucket_of(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

/// Inclusive `(lo, hi)` range of samples a bucket covers.
#[must_use]
pub fn bucket_range(index: usize) -> (u64, u64) {
    assert!(index < NUM_HIST_BUCKETS, "bucket index {index} out of range");
    if index == 0 {
        (0, 0)
    } else if index == 64 {
        (1u64 << 63, u64::MAX)
    } else {
        (1u64 << (index - 1), (1u64 << index) - 1)
    }
}

impl Log2Hist {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Log2Hist { buckets: [0; NUM_HIST_BUCKETS], count: 0, sum: 0, min: u64::MAX, max: 0 }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.buckets[bucket_of(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(u128::from(value));
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// True when no samples have been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean sample value (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// An upper bound on the `p`-th percentile (0.0..=1.0): the
    /// inclusive top of the first bucket whose cumulative count
    /// reaches `ceil(p × count)`. Exact to bucket resolution.
    #[must_use]
    pub fn percentile_bound(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let p = p.clamp(0.0, 1.0);
        let target = ((p * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return bucket_range(i).1.min(self.max);
            }
        }
        self.max
    }

    /// Merges another histogram into this one. Equivalent to having
    /// recorded both sample streams into a single histogram.
    pub fn merge(&mut self, other: &Log2Hist) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Compact JSON summary: count, sum, min/max, mean, p50/p90/p99
    /// bounds, and the non-empty buckets as `[index, count]` pairs.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let int = |v: u64| Json::Int(i64::try_from(v).unwrap_or(i64::MAX));
        let buckets: Vec<Json> = self
            .buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| Json::Arr(vec![Json::Int(i as i64), int(n)]))
            .collect();
        Json::Obj(vec![
            ("count".to_owned(), int(self.count)),
            ("sum".to_owned(), Json::Num(self.sum as f64)),
            ("min".to_owned(), int(if self.count == 0 { 0 } else { self.min })),
            ("max".to_owned(), int(self.max)),
            ("mean".to_owned(), Json::Num(self.mean())),
            ("p50".to_owned(), int(self.percentile_bound(0.50))),
            ("p90".to_owned(), int(self.percentile_bound(0.90))),
            ("p99".to_owned(), int(self.percentile_bound(0.99))),
            ("buckets".to_owned(), Json::Arr(buckets)),
        ])
    }
}

/// A fixed-interval scalar time series (e.g. PRF occupancy every N
/// cycles). Sampling is pull-based: the owner calls
/// [`TimeSeries::maybe_sample`] each cycle and the series keeps one
/// value per interval boundary.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TimeSeries {
    /// Cycles between samples; 0 disables sampling entirely.
    pub interval: u64,
    /// One sampled value per elapsed interval.
    pub values: Vec<u64>,
}

impl TimeSeries {
    /// A series sampling every `interval` cycles (0 = disabled).
    #[must_use]
    pub fn new(interval: u64) -> Self {
        TimeSeries { interval, values: Vec::new() }
    }

    /// Records `value` when `cycle` sits on an interval boundary.
    pub fn maybe_sample(&mut self, cycle: u64, value: u64) {
        if self.interval != 0 && cycle.is_multiple_of(self.interval) {
            self.values.push(value);
        }
    }

    /// JSON: interval plus the sampled values.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("interval".to_owned(), Json::Int(i64::try_from(self.interval).unwrap_or(i64::MAX))),
            (
                "values".to_owned(),
                Json::Arr(
                    self.values
                        .iter()
                        .map(|&v| Json::Int(i64::try_from(v).unwrap_or(i64::MAX)))
                        .collect(),
                ),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(bucket_of(1u64 << 63), 64);
        for i in 0..NUM_HIST_BUCKETS {
            let (lo, hi) = bucket_range(i);
            assert_eq!(bucket_of(lo), i);
            assert_eq!(bucket_of(hi), i);
        }
    }

    #[test]
    fn record_tracks_exact_stats() {
        let mut h = Log2Hist::new();
        for v in [0, 1, 1, 7, 1024] {
            h.record(v);
        }
        assert_eq!(h.count, 5);
        assert_eq!(h.sum, 1033);
        assert_eq!(h.min, 0);
        assert_eq!(h.max, 1024);
        assert_eq!(h.buckets[0], 1);
        assert_eq!(h.buckets[1], 2);
        assert_eq!(h.buckets[3], 1);
        assert_eq!(h.buckets[11], 1);
        assert!((h.mean() - 1033.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn percentile_bound_is_monotone_and_bucket_exact() {
        let mut h = Log2Hist::new();
        for v in 0..100u64 {
            h.record(v);
        }
        assert_eq!(h.percentile_bound(0.0), 0);
        // p50 over 0..99: the 50th sample is 49, bucket [32,63].
        assert_eq!(h.percentile_bound(0.5), 63);
        assert_eq!(h.percentile_bound(1.0), 99); // clamped to max
        assert!(h.percentile_bound(0.9) <= h.percentile_bound(0.99));
    }

    #[test]
    fn empty_hist_is_benign() {
        let h = Log2Hist::new();
        assert!(h.is_empty());
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.percentile_bound(0.99), 0);
        let j = h.to_json().pretty();
        assert!(j.contains("\"count\": 0"));
    }

    #[test]
    fn time_series_samples_on_boundaries_only() {
        let mut ts = TimeSeries::new(10);
        for cycle in 0..35u64 {
            ts.maybe_sample(cycle, cycle * 2);
        }
        assert_eq!(ts.values, vec![0, 20, 40, 60]);
        let mut off = TimeSeries::new(0);
        off.maybe_sample(0, 1);
        assert!(off.values.is_empty());
    }
}
