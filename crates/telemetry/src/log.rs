//! A tiny leveled logger for human diagnostics.
//!
//! Every human-facing diagnostic in the workspace goes through this
//! module and lands on **stderr**, so stdout stays machine-readable
//! (aligned tables and JSON lines only). The level is read once from
//! `ATR_LOG`:
//!
//! * `quiet` — suppress everything, including warnings;
//! * `info` (default) — warnings plus one-line progress/narrative;
//! * `debug` — everything, including per-point diagnostics.
//!
//! Use the [`crate::info!`], [`crate::debug!`], and [`crate::warn!`]
//! macros; they skip the formatting work entirely when the level is
//! disabled.

use std::sync::OnceLock;

/// Verbosity levels, ordered: `Quiet < Info < Debug`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LogLevel {
    /// Nothing at all (scripted runs that only want stdout).
    Quiet = 0,
    /// Warnings and one-line narrative (the default).
    Info = 1,
    /// Everything.
    Debug = 2,
}

impl LogLevel {
    /// Parses an `ATR_LOG` value.
    #[must_use]
    pub fn parse(raw: &str) -> Option<LogLevel> {
        match raw.trim().to_ascii_lowercase().as_str() {
            "quiet" | "0" => Some(LogLevel::Quiet),
            "info" | "1" => Some(LogLevel::Info),
            "debug" | "2" => Some(LogLevel::Debug),
            _ => None,
        }
    }
}

static LEVEL: OnceLock<LogLevel> = OnceLock::new();

/// The process-wide log level: `ATR_LOG` if set and valid, else `Info`.
/// Read once and cached; a malformed value falls back to `Info` with a
/// one-time warning (on stderr, like everything else here).
pub fn level() -> LogLevel {
    *LEVEL.get_or_init(|| match std::env::var("ATR_LOG") {
        Ok(raw) => LogLevel::parse(&raw).unwrap_or_else(|| {
            eprintln!(
                "warning: ignoring malformed ATR_LOG={raw:?} \
                 (expected quiet|info|debug); using info"
            );
            LogLevel::Info
        }),
        Err(_) => LogLevel::Info,
    })
}

/// Is `at` enabled under the process-wide level?
#[must_use]
pub fn enabled(at: LogLevel) -> bool {
    level() >= at
}

/// Writes one formatted line to stderr (macro plumbing — call through
/// the macros so disabled levels pay nothing).
pub fn emit(args: std::fmt::Arguments<'_>) {
    eprintln!("{args}");
}

/// One-line narrative/progress diagnostic (stderr, `info` level).
#[macro_export]
macro_rules! info {
    ($($arg:tt)*) => {
        if $crate::log::enabled($crate::log::LogLevel::Info) {
            $crate::log::emit(format_args!($($arg)*));
        }
    };
}

/// Verbose diagnostic (stderr, `debug` level).
#[macro_export]
macro_rules! debug {
    ($($arg:tt)*) => {
        if $crate::log::enabled($crate::log::LogLevel::Debug) {
            $crate::log::emit(format_args!($($arg)*));
        }
    };
}

/// Warning (stderr, suppressed only by `ATR_LOG=quiet`). Prefixes the
/// line with `warning:` so existing greps keep working.
#[macro_export]
macro_rules! warn {
    ($($arg:tt)*) => {
        if $crate::log::enabled($crate::log::LogLevel::Info) {
            $crate::log::emit(format_args!("warning: {}", format_args!($($arg)*)));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_names_and_digits() {
        assert_eq!(LogLevel::parse("quiet"), Some(LogLevel::Quiet));
        assert_eq!(LogLevel::parse(" INFO "), Some(LogLevel::Info));
        assert_eq!(LogLevel::parse("2"), Some(LogLevel::Debug));
        assert_eq!(LogLevel::parse("verbose"), None);
    }

    #[test]
    fn levels_are_ordered() {
        assert!(LogLevel::Quiet < LogLevel::Info);
        assert!(LogLevel::Info < LogLevel::Debug);
    }
}
