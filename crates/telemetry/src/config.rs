//! Runtime telemetry gating.
//!
//! Telemetry is an observer, never part of the simulated machine, so
//! its level is read from the environment at run construction and is
//! deliberately **excluded** from the SimPoint memoization key (same
//! policy as `ATR_AUDIT`): flipping `ATR_TELEMETRY` must never fork
//! the result cache, because results are identical either way.

/// How much the observer records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum TelemetryLevel {
    /// Nothing: the hot loop takes the same branches as before the
    /// telemetry layer existed (the <2% CI guard polices this).
    #[default]
    Off,
    /// CPI stack, histograms, optional time series, JSONL records.
    Stats,
    /// Everything in `Stats` plus the per-uop pipeline ring trace.
    Trace,
}

impl TelemetryLevel {
    /// Parses an `ATR_TELEMETRY` value.
    #[must_use]
    pub fn parse(raw: &str) -> Option<TelemetryLevel> {
        match raw.trim().to_ascii_lowercase().as_str() {
            "off" | "0" | "" => Some(TelemetryLevel::Off),
            "stats" | "1" | "on" => Some(TelemetryLevel::Stats),
            "trace" | "2" => Some(TelemetryLevel::Trace),
            _ => None,
        }
    }
}

/// Default ring capacity for the pipeline trace (events, not cycles).
pub const DEFAULT_TRACE_CAP: usize = 65_536;

/// Complete observer configuration, carried on `CoreConfig`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TelemetryConfig {
    /// What to record.
    pub level: TelemetryLevel,
    /// Pipeline-trace ring capacity (only meaningful at `Trace`).
    pub trace_cap: usize,
    /// Occupancy time-series sampling interval in cycles (0 = off).
    pub series_interval: u64,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            level: TelemetryLevel::Off,
            trace_cap: DEFAULT_TRACE_CAP,
            series_interval: 0,
        }
    }
}

impl TelemetryConfig {
    /// Reads `ATR_TELEMETRY` (off|stats|trace), `ATR_TRACE_CAP`, and
    /// `ATR_TELEMETRY_SERIES` (sampling interval in cycles). Malformed
    /// values warn once and fall back to the defaults above.
    #[must_use]
    pub fn from_env() -> TelemetryConfig {
        let mut cfg = TelemetryConfig::default();
        if let Ok(raw) = std::env::var("ATR_TELEMETRY") {
            match TelemetryLevel::parse(&raw) {
                Some(level) => cfg.level = level,
                None => {
                    crate::warn!(
                        "ignoring malformed ATR_TELEMETRY={raw:?} \
                         (expected off|stats|trace); telemetry stays off"
                    );
                }
            }
        }
        if let Ok(raw) = std::env::var("ATR_TRACE_CAP") {
            match raw.trim().parse::<usize>() {
                Ok(cap) => cfg.trace_cap = cap,
                Err(_) => {
                    crate::warn!(
                        "ignoring malformed ATR_TRACE_CAP={raw:?}; \
                         using {DEFAULT_TRACE_CAP}"
                    );
                }
            }
        }
        if let Ok(raw) = std::env::var("ATR_TELEMETRY_SERIES") {
            match raw.trim().parse::<u64>() {
                Ok(iv) => cfg.series_interval = iv,
                Err(_) => {
                    crate::warn!("ignoring malformed ATR_TELEMETRY_SERIES={raw:?}; series off");
                }
            }
        }
        cfg
    }

    /// True at `Stats` or `Trace`.
    #[must_use]
    pub fn stats_enabled(&self) -> bool {
        self.level >= TelemetryLevel::Stats
    }

    /// True only at `Trace`.
    #[must_use]
    pub fn trace_enabled(&self) -> bool {
        self.level >= TelemetryLevel::Trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_aliases() {
        assert_eq!(TelemetryLevel::parse("off"), Some(TelemetryLevel::Off));
        assert_eq!(TelemetryLevel::parse("0"), Some(TelemetryLevel::Off));
        assert_eq!(TelemetryLevel::parse(" STATS "), Some(TelemetryLevel::Stats));
        assert_eq!(TelemetryLevel::parse("on"), Some(TelemetryLevel::Stats));
        assert_eq!(TelemetryLevel::parse("trace"), Some(TelemetryLevel::Trace));
        assert_eq!(TelemetryLevel::parse("2"), Some(TelemetryLevel::Trace));
        assert_eq!(TelemetryLevel::parse("bogus"), None);
    }

    #[test]
    fn levels_are_ordered_and_gates_follow() {
        assert!(TelemetryLevel::Off < TelemetryLevel::Stats);
        assert!(TelemetryLevel::Stats < TelemetryLevel::Trace);
        let off = TelemetryConfig::default();
        assert!(!off.stats_enabled() && !off.trace_enabled());
        let stats = TelemetryConfig { level: TelemetryLevel::Stats, ..off };
        assert!(stats.stats_enabled() && !stats.trace_enabled());
        let trace = TelemetryConfig { level: TelemetryLevel::Trace, ..off };
        assert!(trace.stats_enabled() && trace.trace_enabled());
    }
}
