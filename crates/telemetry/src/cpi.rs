//! Top-down CPI-stack cycle accounting.
//!
//! Every cycle, each of the core's `width` retire slots is attributed
//! to exactly one bucket: the slots that retired an instruction go to
//! [`CpiBucket::Retiring`], and the remaining empty slots are charged
//! as a block to a single cause chosen by a fixed precedence (see
//! DESIGN.md "Observability" for the order and its rationale). The
//! defining invariant is
//!
//! ```text
//! Σ buckets == width × cycles
//! ```
//!
//! which [`CpiStack::check`] verifies and the pipeline asserts every
//! cycle under `ATR_AUDIT=1`. Stacks are mergeable (slot counts add),
//! so per-SimPoint stacks aggregate across a run matrix.

use atr_json::Json;

/// One top-down attribution bucket.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CpiBucket {
    /// A slot that retired an instruction (base/retiring).
    Retiring,
    /// ROB empty, fetch/decode starved the backend.
    FrontendLatency,
    /// Wrong-path work: redirect windows after a misprediction flush
    /// and the recovery walk, charged until corrected fetch returns.
    BadSpeculation,
    /// Rename stalled because a free list was at its watermark — the
    /// register-pressure signal the release schemes attack.
    FreelistStall,
    /// Rename stalled for ROB/RS/LQ/SQ space while the head was not
    /// itself waiting on memory.
    Backpressure,
    /// Head blocked on execution latency or an unissued dependence
    /// chain (non-memory core-bound).
    ExecLatency,
    /// Head is a memory operation serviced by the L1 (hits and
    /// store-forwarded loads).
    MemL1,
    /// Head waiting on an L2-serviced miss.
    MemL2,
    /// Head waiting on an LLC-serviced miss.
    MemLlc,
    /// Head waiting on DRAM.
    MemDram,
    /// Exception/interrupt serialization (handler penalty windows,
    /// drain waits, §4.1 region-boundary waits).
    Serialization,
}

/// Number of buckets (array dimension of [`CpiStack::slots`]).
pub const NUM_CPI_BUCKETS: usize = 11;

impl CpiBucket {
    /// Every bucket, in display order.
    pub const ALL: [CpiBucket; NUM_CPI_BUCKETS] = [
        CpiBucket::Retiring,
        CpiBucket::FrontendLatency,
        CpiBucket::BadSpeculation,
        CpiBucket::FreelistStall,
        CpiBucket::Backpressure,
        CpiBucket::ExecLatency,
        CpiBucket::MemL1,
        CpiBucket::MemL2,
        CpiBucket::MemLlc,
        CpiBucket::MemDram,
        CpiBucket::Serialization,
    ];

    /// Stable snake_case label (JSON keys and table headers).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            CpiBucket::Retiring => "retiring",
            CpiBucket::FrontendLatency => "frontend_latency",
            CpiBucket::BadSpeculation => "bad_speculation",
            CpiBucket::FreelistStall => "freelist_stall",
            CpiBucket::Backpressure => "backpressure",
            CpiBucket::ExecLatency => "exec_latency",
            CpiBucket::MemL1 => "mem_l1",
            CpiBucket::MemL2 => "mem_l2",
            CpiBucket::MemLlc => "mem_llc",
            CpiBucket::MemDram => "mem_dram",
            CpiBucket::Serialization => "serialization",
        }
    }

    fn index(self) -> usize {
        CpiBucket::ALL.iter().position(|b| *b == self).expect("bucket in ALL")
    }
}

/// A CPI stack: per-bucket retire-slot counts over a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CpiStack {
    /// Slot counts, indexed in [`CpiBucket::ALL`] order.
    pub slots: [u64; NUM_CPI_BUCKETS],
    /// Retire width the accounting ran at.
    pub width: u64,
    /// Cycles accounted.
    pub cycles: u64,
}

impl CpiStack {
    /// An empty stack for a `width`-wide retire stage.
    #[must_use]
    pub fn new(width: u64) -> Self {
        CpiStack { slots: [0; NUM_CPI_BUCKETS], width, cycles: 0 }
    }

    /// Accounts one cycle: `retired` slots to [`CpiBucket::Retiring`],
    /// the remaining `width - retired` slots to `cause`.
    ///
    /// # Panics
    ///
    /// Panics (debug) if `retired > width`.
    pub fn account_cycle(&mut self, retired: u64, cause: CpiBucket) {
        debug_assert!(retired <= self.width, "retired {} > width {}", retired, self.width);
        self.slots[CpiBucket::Retiring.index()] += retired;
        self.slots[cause.index()] += self.width - retired;
        self.cycles += 1;
    }

    /// The slot count of one bucket.
    #[must_use]
    pub fn get(&self, bucket: CpiBucket) -> u64 {
        self.slots[bucket.index()]
    }

    /// Total slots across every bucket.
    #[must_use]
    pub fn total_slots(&self) -> u64 {
        self.slots.iter().sum()
    }

    /// Verifies `Σ buckets == width × cycles`.
    ///
    /// # Errors
    ///
    /// Returns a description of the imbalance.
    pub fn check(&self) -> Result<(), String> {
        let expect = self.width * self.cycles;
        let got = self.total_slots();
        if got == expect {
            Ok(())
        } else {
            Err(format!(
                "CPI-stack invariant broken: Σ buckets = {got}, width × cycles = {} × {} = {expect}",
                self.width, self.cycles
            ))
        }
    }

    /// Fraction of all slots in `bucket` (0 when nothing accounted).
    #[must_use]
    pub fn fraction(&self, bucket: CpiBucket) -> f64 {
        let total = self.total_slots();
        if total == 0 {
            0.0
        } else {
            self.get(bucket) as f64 / total as f64
        }
    }

    /// Merges another stack (same width) into this one.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ — stacks from different retire
    /// widths are not comparable slot-for-slot.
    pub fn merge(&mut self, other: &CpiStack) {
        assert_eq!(self.width, other.width, "merging CPI stacks of different widths");
        for (a, b) in self.slots.iter_mut().zip(other.slots.iter()) {
            *a += b;
        }
        self.cycles += other.cycles;
    }

    /// JSON object: every bucket's slot count plus width/cycles.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut fields: Vec<(String, Json)> = vec![
            ("width".to_owned(), Json::Int(i64::try_from(self.width).unwrap_or(i64::MAX))),
            ("cycles".to_owned(), Json::Int(i64::try_from(self.cycles).unwrap_or(i64::MAX))),
        ];
        for b in CpiBucket::ALL {
            fields.push((
                b.label().to_owned(),
                Json::Int(i64::try_from(self.get(b)).unwrap_or(i64::MAX)),
            ));
        }
        Json::Obj(fields)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn invariant_holds_by_construction() {
        let mut s = CpiStack::new(8);
        s.account_cycle(8, CpiBucket::FrontendLatency); // full retire
        s.account_cycle(0, CpiBucket::MemDram);
        s.account_cycle(3, CpiBucket::FreelistStall);
        assert_eq!(s.cycles, 3);
        assert_eq!(s.total_slots(), 24);
        s.check().unwrap();
        assert_eq!(s.get(CpiBucket::Retiring), 11);
        assert_eq!(s.get(CpiBucket::MemDram), 8);
        assert_eq!(s.get(CpiBucket::FreelistStall), 5);
        assert!((s.fraction(CpiBucket::Retiring) - 11.0 / 24.0).abs() < 1e-12);
    }

    #[test]
    fn check_catches_tampering() {
        let mut s = CpiStack::new(4);
        s.account_cycle(2, CpiBucket::ExecLatency);
        s.slots[0] += 1;
        assert!(s.check().unwrap_err().contains("invariant broken"));
    }

    #[test]
    fn merge_adds_slotwise_and_preserves_invariant() {
        let mut a = CpiStack::new(8);
        a.account_cycle(4, CpiBucket::MemL2);
        let mut b = CpiStack::new(8);
        b.account_cycle(0, CpiBucket::BadSpeculation);
        b.account_cycle(8, CpiBucket::Retiring);
        a.merge(&b);
        assert_eq!(a.cycles, 3);
        a.check().unwrap();
        assert_eq!(a.get(CpiBucket::BadSpeculation), 8);
    }

    #[test]
    #[should_panic(expected = "different widths")]
    fn merge_rejects_width_mismatch() {
        let mut a = CpiStack::new(8);
        a.merge(&CpiStack::new(6));
    }

    #[test]
    fn labels_are_unique_and_json_covers_all() {
        let mut seen = std::collections::HashSet::new();
        for b in CpiBucket::ALL {
            assert!(seen.insert(b.label()), "duplicate label {}", b.label());
        }
        let s = CpiStack::new(8);
        let j = s.to_json().pretty();
        for b in CpiBucket::ALL {
            assert!(j.contains(b.label()), "missing {} in JSON", b.label());
        }
    }
}
