//! `atr-telemetry` — the workspace observability layer.
//!
//! Four pieces, all dependency-free and runtime-gated so the simulator
//! pays nothing when they are off:
//!
//! * [`cpi`] — top-down CPI-stack cycle accounting with the
//!   `Σ buckets == width × cycles` invariant;
//! * [`hist`] — mergeable log2-bucketed streaming histograms and
//!   fixed-interval time series;
//! * [`trace`] — an opt-in ring-buffered per-uop pipeline trace with a
//!   Konata-compatible dump;
//! * [`log`] — the tiny leveled stderr logger (`ATR_LOG`) behind the
//!   [`info!`]/[`debug!`]/[`warn!`] macros.
//!
//! [`RunTelemetry`] bundles what one simulation run produced so the
//! run-matrix executor can merge, summarize, and emit it as JSONL.
//! Gating lives in [`config::TelemetryConfig`] (`ATR_TELEMETRY`),
//! which — like `ATR_AUDIT` — is excluded from memoization keys.

pub mod config;
pub mod cpi;
pub mod hist;
pub mod log;
pub mod trace;

pub use config::{TelemetryConfig, TelemetryLevel, DEFAULT_TRACE_CAP};
pub use cpi::{CpiBucket, CpiStack, NUM_CPI_BUCKETS};
pub use hist::{bucket_of, bucket_range, Log2Hist, TimeSeries, NUM_HIST_BUCKETS};
pub use trace::{PipeTrace, TraceEvent, TraceStage};

use atr_json::Json;

/// Everything one simulation run observed: the CPI stack plus named
/// histograms and time series. `None`/empty when telemetry was off.
#[derive(Debug, Clone, Default)]
pub struct RunTelemetry {
    /// The run's CPI stack (present at `stats` level and above).
    pub cpi: Option<CpiStack>,
    /// Named histograms (register lifetime, claim duration, …).
    pub hists: Vec<(String, Log2Hist)>,
    /// Named fixed-interval time series (occupancy traces).
    pub series: Vec<(String, TimeSeries)>,
}

impl RunTelemetry {
    /// True when the run recorded nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cpi.is_none() && self.hists.is_empty() && self.series.is_empty()
    }

    /// The named histogram, if recorded.
    #[must_use]
    pub fn hist(&self, name: &str) -> Option<&Log2Hist> {
        self.hists.iter().find(|(n, _)| n == name).map(|(_, h)| h)
    }

    /// Records into (or creates) the named histogram.
    pub fn hist_mut(&mut self, name: &str) -> &mut Log2Hist {
        if let Some(i) = self.hists.iter().position(|(n, _)| n == name) {
            return &mut self.hists[i].1;
        }
        self.hists.push((name.to_owned(), Log2Hist::new()));
        &mut self.hists.last_mut().expect("just pushed").1
    }

    /// Merges another run's telemetry: CPI stacks add, histograms
    /// merge by name (names only one side has are kept), time series
    /// concatenate by name.
    pub fn merge(&mut self, other: &RunTelemetry) {
        match (&mut self.cpi, &other.cpi) {
            (Some(a), Some(b)) => a.merge(b),
            (None, Some(b)) => self.cpi = Some(b.clone()),
            _ => {}
        }
        for (name, h) in &other.hists {
            self.hist_mut(name).merge(h);
        }
        for (name, ts) in &other.series {
            if let Some(i) = self.series.iter().position(|(n, _)| n == name) {
                self.series[i].1.values.extend_from_slice(&ts.values);
            } else {
                self.series.push((name.clone(), ts.clone()));
            }
        }
    }

    /// JSON object with `cpi_stack`, `histograms`, and (when sampled)
    /// `series` sub-objects.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut fields: Vec<(String, Json)> = Vec::new();
        if let Some(cpi) = &self.cpi {
            fields.push(("cpi_stack".to_owned(), cpi.to_json()));
        }
        fields.push((
            "histograms".to_owned(),
            Json::Obj(self.hists.iter().map(|(n, h)| (n.clone(), h.to_json())).collect()),
        ));
        if !self.series.is_empty() {
            fields.push((
                "series".to_owned(),
                Json::Obj(self.series.iter().map(|(n, t)| (n.clone(), t.to_json())).collect()),
            ));
        }
        Json::Obj(fields)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_combines_cpi_hists_and_series() {
        let mut a = RunTelemetry::default();
        let mut cpi_a = CpiStack::new(8);
        cpi_a.account_cycle(4, CpiBucket::FreelistStall);
        a.cpi = Some(cpi_a);
        a.hist_mut("lifetime").record(10);
        a.series.push(("occ".to_owned(), TimeSeries { interval: 5, values: vec![1, 2] }));

        let mut b = RunTelemetry::default();
        let mut cpi_b = CpiStack::new(8);
        cpi_b.account_cycle(8, CpiBucket::Retiring);
        b.cpi = Some(cpi_b);
        b.hist_mut("lifetime").record(20);
        b.hist_mut("claim").record(3);
        b.series.push(("occ".to_owned(), TimeSeries { interval: 5, values: vec![3] }));

        a.merge(&b);
        let cpi = a.cpi.as_ref().unwrap();
        assert_eq!(cpi.cycles, 2);
        cpi.check().unwrap();
        assert_eq!(a.hist("lifetime").unwrap().count, 2);
        assert_eq!(a.hist("claim").unwrap().count, 1);
        assert_eq!(a.series[0].1.values, vec![1, 2, 3]);
    }

    #[test]
    fn merge_into_empty_adopts_other() {
        let mut a = RunTelemetry::default();
        assert!(a.is_empty());
        let mut b = RunTelemetry::default();
        let mut cpi = CpiStack::new(4);
        cpi.account_cycle(0, CpiBucket::MemDram);
        b.cpi = Some(cpi);
        a.merge(&b);
        assert_eq!(a.cpi.as_ref().unwrap().get(CpiBucket::MemDram), 4);
    }

    #[test]
    fn json_has_expected_sections() {
        let mut t = RunTelemetry { cpi: Some(CpiStack::new(8)), ..RunTelemetry::default() };
        t.hist_mut("lifetime").record(1);
        let j = t.to_json().pretty();
        assert!(j.contains("cpi_stack"));
        assert!(j.contains("histograms"));
        assert!(j.contains("lifetime"));
        assert!(!j.contains("series"));
    }
}
