//! Self-contained deterministic PRNG for the workload substrate and the
//! randomized tests.
//!
//! The build environment pins no external registry, so the `rand` crate
//! cannot be fetched; this crate provides the small slice of its API the
//! workspace actually uses ([`SmallRng`], [`SeedableRng`], [`RngExt`])
//! on top of xoshiro256++ seeded through splitmix64. Call sites keep the
//! exact `rand` method names (`seed_from_u64`, `random`, `random_bool`,
//! `random_range`) so swapping the backing crate is a one-line `use`
//! change.
//!
//! The generator is deliberately *not* bit-compatible with any `rand`
//! release: streams are stable across runs and platforms of this
//! workspace, which is all the deterministic-replay guarantees need.

use std::ops::{Range, RangeInclusive};

/// Splitmix64 step: the standard seeding sequence for xoshiro state.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A small, fast, deterministic generator (xoshiro256++).
///
/// Drop-in replacement for `rand::rngs::SmallRng` at the API level used
/// by this workspace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmallRng {
    s: [u64; 4],
}

/// Seeding constructors, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed;

    /// Constructs the generator from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs the generator from a 64-bit convenience seed.
    fn seed_from_u64(state: u64) -> Self;
}

impl SeedableRng for SmallRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, word) in s.iter_mut().enumerate() {
            let mut b = [0u8; 8];
            b.copy_from_slice(&seed[i * 8..i * 8 + 8]);
            *word = u64::from_le_bytes(b);
        }
        if s == [0; 4] {
            // xoshiro must not start from the all-zero state.
            s = [0x9e37_79b9_7f4a_7c15, 1, 2, 3];
        }
        SmallRng { s }
    }

    fn seed_from_u64(state: u64) -> Self {
        let mut sm = state;
        SmallRng {
            s: [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)],
        }
    }
}

impl SmallRng {
    /// The next raw 64-bit output (xoshiro256++ step).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// A uniform value in `[0, span)` (Lemire's unbiased method).
    #[inline]
    fn below(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0, "empty sampling range");
        let mut x = self.next_u64();
        let mut m = u128::from(x) * u128::from(span);
        let mut low = m as u64;
        if low < span {
            let threshold = span.wrapping_neg() % span;
            while low < threshold {
                x = self.next_u64();
                m = u128::from(x) * u128::from(span);
                low = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// A uniform f64 in `[0, 1)` with 53 random bits.
    #[inline]
    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Sampling helpers, mirroring the `rand::Rng` methods this workspace
/// calls.
pub trait RngExt {
    /// Samples a value of `T` from its standard distribution
    /// (`f64` in `[0,1)`, full-width integers, fair `bool`).
    fn random<T: Standard>(&mut self) -> T;

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool;

    /// A uniform sample from a (half-open or inclusive) range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T;
}

impl RngExt for SmallRng {
    #[inline]
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    #[inline]
    fn random_bool(&mut self, p: f64) -> bool {
        if p >= 1.0 {
            return true;
        }
        if p <= 0.0 {
            return false;
        }
        self.unit_f64() < p
    }

    #[inline]
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }
}

/// Types with a standard (full-range / unit-interval) distribution.
pub trait Standard: Sized {
    /// Draws one sample.
    fn sample(rng: &mut SmallRng) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample(rng: &mut SmallRng) -> Self {
        rng.unit_f64()
    }
}

impl Standard for u64 {
    #[inline]
    fn sample(rng: &mut SmallRng) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn sample(rng: &mut SmallRng) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    #[inline]
    fn sample(rng: &mut SmallRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges a uniform sample can be drawn from.
pub trait SampleRange<T> {
    /// Draws one sample from `self`.
    fn sample_from(self, rng: &mut SmallRng) -> T;
}

/// Types uniformly samplable from a half-open or inclusive range.
///
/// The blanket `SampleRange` impls below are generic over this trait so
/// integer-literal inference flows through `random_range(0..n)` exactly
/// as it does with `rand` (a concrete per-type impl set would default
/// ambiguous literals to `i32`).
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// A sample from `[lo, hi)`.
    fn sample_half_open(rng: &mut SmallRng, lo: Self, hi: Self) -> Self;
    /// A sample from `[lo, hi]`.
    fn sample_inclusive(rng: &mut SmallRng, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),+) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_half_open(rng: &mut SmallRng, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "empty range");
                let span = (hi as i128 - lo as i128) as u64;
                lo.wrapping_add(rng.below(span) as $t)
            }
            #[inline]
            fn sample_inclusive(rng: &mut SmallRng, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u128::from(u64::MAX) {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.below(span as u64) as $t)
            }
        }
    )+};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    #[inline]
    fn sample_half_open(rng: &mut SmallRng, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "empty range");
        lo + (hi - lo) * rng.unit_f64()
    }
    #[inline]
    fn sample_inclusive(rng: &mut SmallRng, lo: Self, hi: Self) -> Self {
        Self::sample_half_open(rng, lo, hi)
    }
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    #[inline]
    fn sample_from(self, rng: &mut SmallRng) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    #[inline]
    fn sample_from(self, rng: &mut SmallRng) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeding_is_deterministic() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut r = SmallRng::seed_from_u64(0);
        let vals: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        assert!(vals.iter().any(|&v| v != 0));
    }

    #[test]
    fn from_seed_rejects_all_zero_state() {
        let mut r = SmallRng::from_seed([0u8; 32]);
        assert_ne!(r.next_u64(), 0);
    }

    #[test]
    fn unit_f64_stays_in_range_and_covers_it() {
        let mut r = SmallRng::seed_from_u64(7);
        let mut lo = 1.0f64;
        let mut hi = 0.0f64;
        for _ in 0..10_000 {
            let x: f64 = r.random();
            assert!((0.0..1.0).contains(&x));
            lo = lo.min(x);
            hi = hi.max(x);
        }
        assert!(lo < 0.01 && hi > 0.99, "poor coverage: [{lo}, {hi}]");
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut r = SmallRng::seed_from_u64(11);
        let hits = (0..20_000).filter(|_| r.random_bool(0.3)).count();
        let frac = hits as f64 / 20_000.0;
        assert!((frac - 0.3).abs() < 0.02, "observed {frac}");
        assert!(r.random_bool(1.0));
        assert!(!r.random_bool(0.0));
    }

    #[test]
    fn range_sampling_is_uniform_and_bounded() {
        let mut r = SmallRng::seed_from_u64(5);
        let mut counts = [0usize; 4];
        for _ in 0..40_000 {
            counts[r.random_range(0..4usize)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "skewed bucket: {counts:?}");
        }
        for _ in 0..1_000 {
            let v: u32 = r.random_range(3..=9u32);
            assert!((3..=9).contains(&v));
            let f: f64 = r.random_range(0.35..0.65);
            assert!((0.35..0.65).contains(&f));
            let s: i64 = r.random_range(-5i64..5);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut r = SmallRng::seed_from_u64(0);
        let _: usize = r.random_range(3..3usize);
    }
}
