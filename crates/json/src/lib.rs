//! Minimal JSON serialization for the experiment result files.
//!
//! The build environment pins no external registry, so `serde` /
//! `serde_json` cannot be fetched. Experiment rows only ever serialize
//! flat structs of numbers and strings into `results/*.json`, so this
//! crate provides exactly that: a [`Json`] tree, a [`ToJson`] trait with
//! impls for the primitive types, and the [`json_record!`] macro that
//! derives `ToJson` for a named-field struct (the moral equivalent of
//! `#[derive(Serialize)]` for the row types).

use std::fmt::Write as _;

/// A JSON value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null` (also produced for non-finite floats).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any finite number.
    Num(f64),
    /// An integer kept exact (no float round-trip).
    Int(i64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Pretty-prints with two-space indentation (the `serde_json`
    /// `to_string_pretty` layout, so existing result files diff cleanly).
    #[must_use]
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String, depth: usize) {
        const INDENT: &str = "  ";
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Num(x) => {
                if x.is_finite() {
                    let _ = write!(out, "{x}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&INDENT.repeat(depth + 1));
                    item.write(out, depth + 1);
                }
                out.push('\n');
                out.push_str(&INDENT.repeat(depth));
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&INDENT.repeat(depth + 1));
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write(out, depth + 1);
                }
                out.push('\n');
                out.push_str(&INDENT.repeat(depth));
                out.push('}');
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Conversion into a [`Json`] tree (the `Serialize` stand-in).
pub trait ToJson {
    /// Builds the JSON representation.
    fn to_json(&self) -> Json;
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Num(*self)
    }
}

impl ToJson for f32 {
    fn to_json(&self) -> Json {
        Json::Num(f64::from(*self))
    }
}

macro_rules! impl_tojson_int {
    ($($t:ty),+) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::Int(*self as i64)
            }
        }
    )+};
}

impl_tojson_int!(i8, i16, i32, i64, u8, u16, u32, usize, isize);

impl ToJson for u64 {
    fn to_json(&self) -> Json {
        // u64 counters in this workspace stay far below i64::MAX; clamp
        // rather than wrap if one ever does not.
        Json::Int(i64::try_from(*self).unwrap_or(i64::MAX))
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl ToJson for &str {
    fn to_json(&self) -> Json {
        Json::Str((*self).to_owned())
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Json {
        (*self).to_json()
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

/// Derives [`ToJson`] for a named-field struct, serializing the listed
/// fields in order:
///
/// ```
/// struct Row { name: String, ipc: f64 }
/// atr_json::json_record!(Row { name, ipc });
/// # use atr_json::ToJson;
/// let j = Row { name: "x".into(), ipc: 1.5 }.to_json();
/// assert!(j.pretty().contains("\"ipc\": 1.5"));
/// ```
#[macro_export]
macro_rules! json_record {
    ($ty:ty { $($field:ident),+ $(,)? }) => {
        impl $crate::ToJson for $ty {
            fn to_json(&self) -> $crate::Json {
                $crate::Json::Obj(vec![
                    $((stringify!($field).to_owned(), $crate::ToJson::to_json(&self.$field)),)+
                ])
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Row {
        benchmark: String,
        rf_size: usize,
        speedup: f64,
    }
    json_record!(Row { benchmark, rf_size, speedup });

    #[test]
    fn records_serialize_in_field_order() {
        let rows = vec![
            Row { benchmark: "505.mcf_r".into(), rf_size: 64, speedup: 1.25 },
            Row { benchmark: "q\"x\"".into(), rf_size: 224, speedup: 1.0 },
        ];
        let s = rows.to_json().pretty();
        assert!(s.starts_with("[\n  {\n    \"benchmark\": \"505.mcf_r\",\n"));
        assert!(s.contains("\"rf_size\": 64"));
        assert!(s.contains("\"speedup\": 1.25"));
        assert!(s.contains("\\\"x\\\""));
        let bench_pos = s.find("benchmark").unwrap();
        let rf_pos = s.find("rf_size").unwrap();
        assert!(bench_pos < rf_pos, "field order must be declaration order");
    }

    #[test]
    fn scalars_and_edge_cases() {
        assert_eq!(1.5f64.to_json().pretty(), "1.5");
        assert_eq!(7usize.to_json().pretty(), "7");
        assert_eq!(true.to_json().pretty(), "true");
        assert_eq!(f64::NAN.to_json().pretty(), "null");
        assert_eq!(Option::<f64>::None.to_json().pretty(), "null");
        assert_eq!(Vec::<f64>::new().to_json().pretty(), "[]");
        assert_eq!("a\nb".to_json().pretty(), "\"a\\nb\"");
    }

    #[test]
    fn whole_floats_render_as_json_numbers() {
        // Rust's `{}` prints 1.0 as "1": still a valid JSON number.
        assert_eq!(1.0f64.to_json().pretty(), "1");
        assert_eq!(0.1f64.to_json().pretty(), "0.1");
    }

    #[test]
    fn nested_structure_pretty_prints() {
        let j = Json::Obj(vec![
            ("xs".into(), Json::Arr(vec![Json::Int(1), Json::Int(2)])),
            ("empty".into(), Json::Obj(vec![])),
        ]);
        let expected = "{\n  \"xs\": [\n    1,\n    2\n  ],\n  \"empty\": {}\n}";
        assert_eq!(j.pretty(), expected);
    }
}
