//! Minimal JSON serialization for the experiment result files.
//!
//! The build environment pins no external registry, so `serde` /
//! `serde_json` cannot be fetched. Experiment rows only ever serialize
//! flat structs of numbers and strings into `results/*.json`, so this
//! crate provides exactly that: a [`Json`] tree, a [`ToJson`] trait with
//! impls for the primitive types, and the [`json_record!`] macro that
//! derives `ToJson` for a named-field struct (the moral equivalent of
//! `#[derive(Serialize)]` for the row types).

use std::fmt::Write as _;

/// A JSON value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null` (also produced for non-finite floats).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any finite number.
    Num(f64),
    /// An integer kept exact (no float round-trip).
    Int(i64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Pretty-prints with two-space indentation (the `serde_json`
    /// `to_string_pretty` layout, so existing result files diff cleanly).
    #[must_use]
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    /// Single-line serialization (no whitespace) — the JSONL form the
    /// telemetry records use, one value per line.
    #[must_use]
    pub fn compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Num(x) => {
                if x.is_finite() {
                    let _ = write!(out, "{x}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, key);
                    out.push(':');
                    value.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    /// Object field lookup (`None` on non-objects and missing keys).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric view of `Num` and `Int` values.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            #[allow(clippy::cast_precision_loss)]
            Json::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// String view of `Str` values.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Parses one JSON value (the validation half of the JSONL round
    /// trip). Accepts exactly what [`Json::compact`]/[`Json::pretty`]
    /// emit plus insignificant whitespace; trailing garbage is an error.
    ///
    /// # Errors
    ///
    /// Returns a byte-offset-tagged description of the first syntax
    /// error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(value)
    }

    fn write(&self, out: &mut String, depth: usize) {
        const INDENT: &str = "  ";
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Num(x) => {
                if x.is_finite() {
                    let _ = write!(out, "{x}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&INDENT.repeat(depth + 1));
                    item.write(out, depth + 1);
                }
                out.push('\n');
                out.push_str(&INDENT.repeat(depth));
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&INDENT.repeat(depth + 1));
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write(out, depth + 1);
                }
                out.push('\n');
                out.push_str(&INDENT.repeat(depth));
                out.push('}');
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Recursive-descent parser over the input bytes. JSON's grammar is
/// ASCII at every structural position, so byte-level scanning is safe;
/// string contents are re-validated as UTF-8 on slicing.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b' ' | b'\t' | b'\n' | b'\r') = self.bytes.get(self.pos) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(format!("unexpected {:?} at byte {}", c as char, self.pos)),
            None => Err("unexpected end of input".to_owned()),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        let start = self.pos;
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_owned()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| format!("bad \\u escape at byte {start}"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape at byte {start}"))?;
                            self.pos += 4;
                            // Surrogates (emitted only for astral chars,
                            // which write_escaped passes through raw)
                            // are replaced rather than paired.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        c => return Err(format!("bad escape \\{} at byte {}", c as char, start)),
                    }
                }
                Some(c) if c < 0x20 => {
                    return Err(format!("raw control byte in string at {}", self.pos));
                }
                Some(c) if c < 0x80 => {
                    out.push(c as char);
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8: copy the whole sequence.
                    let tail = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(tail)
                        .map_err(|_| "invalid UTF-8 in string".to_owned())?;
                    let ch = s.chars().next().expect("non-empty by peek");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b'0'..=b'9') = self.peek() {
            self.pos += 1;
        }
        let mut float = false;
        if self.peek() == Some(b'.') {
            float = true;
            self.pos += 1;
            while let Some(b'0'..=b'9') = self.peek() {
                self.pos += 1;
            }
        }
        if let Some(b'e' | b'E') = self.peek() {
            float = true;
            self.pos += 1;
            if let Some(b'+' | b'-') = self.peek() {
                self.pos += 1;
            }
            while let Some(b'0'..=b'9') = self.peek() {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number chars are ASCII");
        if !float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Int(i));
            }
        }
        text.parse::<f64>().map(Json::Num).map_err(|_| format!("malformed number at byte {start}"))
    }
}

/// Conversion into a [`Json`] tree (the `Serialize` stand-in).
pub trait ToJson {
    /// Builds the JSON representation.
    fn to_json(&self) -> Json;
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Num(*self)
    }
}

impl ToJson for f32 {
    fn to_json(&self) -> Json {
        Json::Num(f64::from(*self))
    }
}

macro_rules! impl_tojson_int {
    ($($t:ty),+) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::Int(*self as i64)
            }
        }
    )+};
}

impl_tojson_int!(i8, i16, i32, i64, u8, u16, u32, usize, isize);

impl ToJson for u64 {
    fn to_json(&self) -> Json {
        // u64 counters in this workspace stay far below i64::MAX; clamp
        // rather than wrap if one ever does not.
        Json::Int(i64::try_from(*self).unwrap_or(i64::MAX))
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl ToJson for &str {
    fn to_json(&self) -> Json {
        Json::Str((*self).to_owned())
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Json {
        (*self).to_json()
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

/// Derives [`ToJson`] for a named-field struct, serializing the listed
/// fields in order:
///
/// ```
/// struct Row { name: String, ipc: f64 }
/// atr_json::json_record!(Row { name, ipc });
/// # use atr_json::ToJson;
/// let j = Row { name: "x".into(), ipc: 1.5 }.to_json();
/// assert!(j.pretty().contains("\"ipc\": 1.5"));
/// ```
#[macro_export]
macro_rules! json_record {
    ($ty:ty { $($field:ident),+ $(,)? }) => {
        impl $crate::ToJson for $ty {
            fn to_json(&self) -> $crate::Json {
                $crate::Json::Obj(vec![
                    $((stringify!($field).to_owned(), $crate::ToJson::to_json(&self.$field)),)+
                ])
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Row {
        benchmark: String,
        rf_size: usize,
        speedup: f64,
    }
    json_record!(Row { benchmark, rf_size, speedup });

    #[test]
    fn records_serialize_in_field_order() {
        let rows = vec![
            Row { benchmark: "505.mcf_r".into(), rf_size: 64, speedup: 1.25 },
            Row { benchmark: "q\"x\"".into(), rf_size: 224, speedup: 1.0 },
        ];
        let s = rows.to_json().pretty();
        assert!(s.starts_with("[\n  {\n    \"benchmark\": \"505.mcf_r\",\n"));
        assert!(s.contains("\"rf_size\": 64"));
        assert!(s.contains("\"speedup\": 1.25"));
        assert!(s.contains("\\\"x\\\""));
        let bench_pos = s.find("benchmark").unwrap();
        let rf_pos = s.find("rf_size").unwrap();
        assert!(bench_pos < rf_pos, "field order must be declaration order");
    }

    #[test]
    fn scalars_and_edge_cases() {
        assert_eq!(1.5f64.to_json().pretty(), "1.5");
        assert_eq!(7usize.to_json().pretty(), "7");
        assert_eq!(true.to_json().pretty(), "true");
        assert_eq!(f64::NAN.to_json().pretty(), "null");
        assert_eq!(Option::<f64>::None.to_json().pretty(), "null");
        assert_eq!(Vec::<f64>::new().to_json().pretty(), "[]");
        assert_eq!("a\nb".to_json().pretty(), "\"a\\nb\"");
    }

    #[test]
    fn whole_floats_render_as_json_numbers() {
        // Rust's `{}` prints 1.0 as "1": still a valid JSON number.
        assert_eq!(1.0f64.to_json().pretty(), "1");
        assert_eq!(0.1f64.to_json().pretty(), "0.1");
    }

    #[test]
    fn compact_is_single_line_and_reparses() {
        let j = Json::Obj(vec![
            ("bench".into(), Json::Str("505.mcf_r".into())),
            ("ipc".into(), Json::Num(1.25)),
            ("xs".into(), Json::Arr(vec![Json::Int(1), Json::Null, Json::Bool(true)])),
        ]);
        let line = j.compact();
        assert!(!line.contains('\n'));
        assert_eq!(line, r#"{"bench":"505.mcf_r","ipc":1.25,"xs":[1,null,true]}"#);
        assert_eq!(Json::parse(&line).unwrap(), j);
    }

    #[test]
    fn parse_round_trips_pretty_output() {
        let j = Json::Obj(vec![
            ("s".into(), Json::Str("q\"x\"\n\tésc \u{1}".into())),
            ("neg".into(), Json::Int(-42)),
            ("f".into(), Json::Num(6.25e-3)),
            ("empty_arr".into(), Json::Arr(vec![])),
            ("empty_obj".into(), Json::Obj(vec![])),
        ]);
        assert_eq!(Json::parse(&j.pretty()).unwrap(), j);
        assert_eq!(Json::parse(&j.compact()).unwrap(), j);
    }

    #[test]
    fn parse_rejects_malformed_input() {
        for bad in ["", "{", "[1,", "{\"a\" 1}", "nul", "1 2", "\"\\q\"", "{\"a\":1}x"] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn accessors_navigate_objects() {
        let j = Json::parse(r#"{"a":{"b":3},"c":"s","n":1.5}"#).unwrap();
        assert_eq!(j.get("a").and_then(|a| a.get("b")).and_then(Json::as_f64), Some(3.0));
        assert_eq!(j.get("c").and_then(Json::as_str), Some("s"));
        assert_eq!(j.get("n").and_then(Json::as_f64), Some(1.5));
        assert!(j.get("missing").is_none());
        assert!(j.get("c").unwrap().as_f64().is_none());
    }

    #[test]
    fn nested_structure_pretty_prints() {
        let j = Json::Obj(vec![
            ("xs".into(), Json::Arr(vec![Json::Int(1), Json::Int(2)])),
            ("empty".into(), Json::Obj(vec![])),
        ]);
        let expected = "{\n  \"xs\": [\n    1,\n    2\n  ],\n  \"empty\": {}\n}";
        assert_eq!(j.pretty(), expected);
    }
}
