//! Property-based tests of the memory hierarchy's timing model.

use atr_mem::{AccessKind, MemConfig, MemoryHierarchy, PrefetcherKind};
use proptest::prelude::*;

fn no_prefetch() -> MemConfig {
    let mut cfg = MemConfig::golden_cove();
    cfg.prefetch.kind = PrefetcherKind::None;
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn completion_never_precedes_the_request(
        addrs in prop::collection::vec(0u64..(1 << 28), 1..200),
    ) {
        let mut mem = MemoryHierarchy::new(&no_prefetch());
        let mut cycle = 0u64;
        for a in addrs {
            let done = mem.access(AccessKind::Load, a, cycle);
            prop_assert!(done > cycle, "data cannot arrive at/before the request");
            // Worst case: full path plus every other in-flight miss
            // queued ahead of it (DRAM channel bandwidth and MSHR
            // admission both serialize) — linear in the burst size,
            // never unbounded.
            prop_assert!(
                done <= cycle + 252 + 200 * 18,
                "latency {} exceeds the physical path plus queueing", done - cycle
            );
            cycle += 1;
        }
    }

    #[test]
    fn same_line_reaccess_is_never_slower_than_cold(
        addr in 0u64..(1 << 28),
        gap in 1u64..1000,
    ) {
        let mut mem = MemoryHierarchy::new(&no_prefetch());
        let cold = mem.access(AccessKind::Load, addr, 0);
        let warm_start = cold + gap;
        let warm = mem.access(AccessKind::Load, addr, warm_start);
        prop_assert!(warm - warm_start <= cold, "warm access slower than cold");
    }

    #[test]
    fn timing_is_deterministic(
        addrs in prop::collection::vec(0u64..(1 << 24), 1..100),
    ) {
        let run = |addrs: &[u64]| -> Vec<u64> {
            let mut mem = MemoryHierarchy::new(&no_prefetch());
            addrs
                .iter()
                .enumerate()
                .map(|(i, &a)| mem.access(AccessKind::Load, a, i as u64 * 2))
                .collect()
        };
        prop_assert_eq!(run(&addrs), run(&addrs));
    }

    #[test]
    fn stats_accumulate_conservation(
        addrs in prop::collection::vec(0u64..(1 << 26), 1..300),
    ) {
        let mut mem = MemoryHierarchy::new(&no_prefetch());
        for (i, &a) in addrs.iter().enumerate() {
            let _ = mem.access(AccessKind::Load, a, i as u64);
        }
        let (_, l1d, l2, _llc) = mem.stats();
        prop_assert_eq!(l1d.accesses(), addrs.len() as u64);
        // Every L2 demand access stems from an L1D miss.
        prop_assert!(l2.accesses() <= l1d.misses);
    }
}

#[test]
fn prefetcher_never_slows_a_pure_stream() {
    let mut with_pf = MemoryHierarchy::new(&MemConfig::golden_cove());
    let mut without = MemoryHierarchy::new(&no_prefetch());
    let run = |m: &mut MemoryHierarchy| {
        let mut t = 0u64;
        for i in 0..2000u64 {
            t = m.access(AccessKind::Load, 0x10_0000 + i * 64, t);
        }
        t
    };
    let a = run(&mut with_pf);
    let b = run(&mut without);
    assert!(a <= b, "prefetching a pure stream must not lose: {a} vs {b}");
}
