//! Property-based tests of the memory hierarchy's timing model.
//!
//! Randomness comes from the in-tree `atr-rng` (the container has no
//! registry access for proptest); each case is seeded deterministically
//! so a failing seed reproduces the exact address stream.

use atr_mem::{AccessKind, MemConfig, MemoryHierarchy, PrefetcherKind};
use atr_rng::{RngExt, SeedableRng, SmallRng};

const CASES: u64 = 64;

fn no_prefetch() -> MemConfig {
    let mut cfg = MemConfig::golden_cove();
    cfg.prefetch.kind = PrefetcherKind::None;
    cfg
}

fn random_addrs(rng: &mut SmallRng, max_len: usize, addr_bits: u32) -> Vec<u64> {
    let len = rng.random_range(1..max_len);
    (0..len).map(|_| rng.random_range(0..1u64 << addr_bits)).collect()
}

#[test]
fn completion_never_precedes_the_request() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x3E30_0000 + case);
        let addrs = random_addrs(&mut rng, 200, 28);
        let mut mem = MemoryHierarchy::new(&no_prefetch());
        for (cycle, a) in (0u64..).zip(addrs) {
            let done = mem.access(AccessKind::Load, a, cycle);
            assert!(done > cycle, "data cannot arrive at/before the request");
            // Worst case: full path plus every other in-flight miss
            // queued ahead of it (DRAM channel bandwidth and MSHR
            // admission both serialize) — linear in the burst size,
            // never unbounded.
            assert!(
                done <= cycle + 252 + 200 * 18,
                "latency {} exceeds the physical path plus queueing",
                done - cycle
            );
        }
    }
}

#[test]
fn same_line_reaccess_is_never_slower_than_cold() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x3E31_0000 + case);
        let addr = rng.random_range(0..1u64 << 28);
        let gap = rng.random_range(1..1000u64);
        let mut mem = MemoryHierarchy::new(&no_prefetch());
        let cold = mem.access(AccessKind::Load, addr, 0);
        let warm_start = cold + gap;
        let warm = mem.access(AccessKind::Load, addr, warm_start);
        assert!(warm - warm_start <= cold, "warm access slower than cold");
    }
}

#[test]
fn timing_is_deterministic() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x3E32_0000 + case);
        let addrs = random_addrs(&mut rng, 100, 24);
        let run = |addrs: &[u64]| -> Vec<u64> {
            let mut mem = MemoryHierarchy::new(&no_prefetch());
            addrs
                .iter()
                .enumerate()
                .map(|(i, &a)| mem.access(AccessKind::Load, a, i as u64 * 2))
                .collect()
        };
        assert_eq!(run(&addrs), run(&addrs));
    }
}

#[test]
fn stats_accumulate_conservation() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x3E33_0000 + case);
        let addrs = random_addrs(&mut rng, 300, 26);
        let mut mem = MemoryHierarchy::new(&no_prefetch());
        for (i, &a) in addrs.iter().enumerate() {
            let _ = mem.access(AccessKind::Load, a, i as u64);
        }
        let (_, l1d, l2, _llc) = mem.stats();
        assert_eq!(l1d.accesses(), addrs.len() as u64);
        // Every L2 demand access stems from an L1D miss.
        assert!(l2.accesses() <= l1d.misses);
    }
}

#[test]
fn prefetcher_never_slows_a_pure_stream() {
    let mut with_pf = MemoryHierarchy::new(&MemConfig::golden_cove());
    let mut without = MemoryHierarchy::new(&no_prefetch());
    let run = |m: &mut MemoryHierarchy| {
        let mut t = 0u64;
        for i in 0..2000u64 {
            t = m.access(AccessKind::Load, 0x10_0000 + i * 64, t);
        }
        t
    };
    let a = run(&mut with_pf);
    let b = run(&mut without);
    assert!(a <= b, "prefetching a pure stream must not lose: {a} vs {b}");
}
