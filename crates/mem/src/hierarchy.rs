//! The assembled memory hierarchy: L1I + L1D → L2 → LLC → DRAM.

use crate::cache::{Cache, CacheConfig, CacheStats, Probe, ReplacementPolicy};
use crate::dram::{Dram, DramConfig};
use crate::prefetch::{PrefetchConfig, Prefetcher};

/// What kind of access is being made.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// Instruction fetch (L1I path).
    InstFetch,
    /// Data load (L1D path).
    Load,
    /// Data store (L1D path, write-allocate).
    Store,
    /// Prefetch fill (charged bandwidth, never stalls the core).
    Prefetch,
}

/// The hierarchy level that ultimately serviced a demand access —
/// i.e. the deepest level the request had to travel to. Telemetry uses
/// this to classify memory-bound stall cycles by miss level; it has no
/// effect on timing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum ServiceLevel {
    /// L1 hit (or an MSHR merge into an in-flight L1 fill).
    #[default]
    L1,
    /// L1 miss serviced by the L2.
    L2,
    /// L2 miss serviced by the LLC.
    Llc,
    /// LLC miss serviced by DRAM.
    Dram,
}

impl ServiceLevel {
    /// Short label for telemetry output.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            ServiceLevel::L1 => "l1",
            ServiceLevel::L2 => "l2",
            ServiceLevel::Llc => "llc",
            ServiceLevel::Dram => "dram",
        }
    }
}

/// Full-hierarchy configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct MemConfig {
    /// L1 instruction cache.
    pub l1i: CacheConfig,
    /// L1 data cache.
    pub l1d: CacheConfig,
    /// Unified private L2.
    pub l2: CacheConfig,
    /// Shared LLC slice.
    pub llc: CacheConfig,
    /// DRAM model.
    pub dram: DramConfig,
    /// L1D prefetcher.
    pub prefetch: PrefetchConfig,
}

impl MemConfig {
    /// The Table 1 Golden-Cove-like hierarchy: 32 KiB/8-way L1I (3 cyc),
    /// 48 KiB/12-way L1D (3 cyc), 1.25 MiB/10-way L2 (14 cyc),
    /// 3 MiB/12-way LLC (40 cyc), DDR4-3200 × 2 channels.
    #[must_use]
    pub fn golden_cove() -> Self {
        let line = 64;
        MemConfig {
            l1i: CacheConfig {
                size_bytes: 32 << 10,
                ways: 8,
                line_bytes: line,
                latency: 3,
                mshrs: 8,
                policy: ReplacementPolicy::Lru,
            },
            l1d: CacheConfig {
                size_bytes: 48 << 10,
                ways: 12,
                line_bytes: line,
                latency: 3,
                mshrs: 16,
                policy: ReplacementPolicy::Lru,
            },
            l2: CacheConfig {
                size_bytes: 1280 << 10,
                ways: 10,
                line_bytes: line,
                latency: 14,
                mshrs: 32,
                policy: ReplacementPolicy::Lru,
            },
            llc: CacheConfig {
                size_bytes: 3 << 20,
                ways: 12,
                line_bytes: line,
                latency: 40,
                mshrs: 64,
                policy: ReplacementPolicy::Lru,
            },
            dram: DramConfig::default(),
            prefetch: PrefetchConfig::default(),
        }
    }
}

/// The memory hierarchy. One instance per simulated core.
#[derive(Debug)]
pub struct MemoryHierarchy {
    l1i: Cache,
    l1d: Cache,
    l2: Cache,
    llc: Cache,
    dram: Dram,
    prefetcher: Prefetcher,
    prefetches_completed: u64,
    last_service: ServiceLevel,
}

impl MemoryHierarchy {
    /// Builds the hierarchy from a configuration.
    #[must_use]
    pub fn new(cfg: &MemConfig) -> Self {
        MemoryHierarchy {
            l1i: Cache::new(cfg.l1i.clone()),
            l1d: Cache::new(cfg.l1d.clone()),
            l2: Cache::new(cfg.l2.clone()),
            llc: Cache::new(cfg.llc.clone()),
            dram: Dram::new(cfg.dram.clone()),
            prefetcher: Prefetcher::new(cfg.prefetch.clone(), cfg.l1d.line_bytes as u64),
            prefetches_completed: 0,
            last_service: ServiceLevel::L1,
        }
    }

    /// The level that serviced the most recent demand access (set by
    /// [`MemoryHierarchy::access`] for fetches, loads, and stores;
    /// unchanged by prefetch fills).
    #[must_use]
    pub fn last_service_level(&self) -> ServiceLevel {
        self.last_service
    }

    /// Performs an access starting at `cycle`; returns the cycle the data
    /// is available to the core. Demand loads train the prefetcher, whose
    /// candidate lines are filled into L2 (and charged DRAM bandwidth).
    pub fn access(&mut self, kind: AccessKind, addr: u64, cycle: u64) -> u64 {
        let done = match kind {
            AccessKind::InstFetch => self.access_l1(false, addr, cycle, false),
            AccessKind::Load => self.access_l1(true, addr, cycle, false),
            AccessKind::Store => self.access_l1(true, addr, cycle, true),
            AccessKind::Prefetch => {
                self.fill_prefetch(addr, cycle);
                cycle
            }
        };
        if matches!(kind, AccessKind::Load | AccessKind::Store) {
            // Prefetch fills walk the LLC path too; they must not
            // clobber the demand access's service level.
            let demand_level = self.last_service;
            for line in self.prefetcher.observe(addr) {
                self.fill_prefetch(line, cycle);
            }
            self.last_service = demand_level;
        }
        done
    }

    fn access_l1(&mut self, data: bool, addr: u64, cycle: u64, is_write: bool) -> u64 {
        let l1 = if data { &mut self.l1d } else { &mut self.l1i };
        let lat = l1.config().latency;
        match l1.probe(addr, cycle, is_write) {
            // An in-flight line forwards its data on arrival (MSHR
            // merge); a present line pays the access latency.
            Probe::Hit { ready_at } => {
                self.last_service = ServiceLevel::L1;
                if ready_at > cycle {
                    ready_at
                } else {
                    cycle + lat
                }
            }
            Probe::Miss => {
                let start = l1.mshr_admit(cycle) + lat;
                let fill_done = self.access_l2(addr, start);
                let l1 = if data { &mut self.l1d } else { &mut self.l1i };
                if let Some(wb) = l1.fill(addr, fill_done, false) {
                    self.writeback_to_l2(wb, fill_done);
                }
                let l1 = if data { &mut self.l1d } else { &mut self.l1i };
                if is_write {
                    l1.mark_dirty(addr);
                }
                l1.mshr_commit(fill_done);
                fill_done
            }
        }
    }

    fn access_l2(&mut self, addr: u64, cycle: u64) -> u64 {
        let lat = self.l2.config().latency;
        match self.l2.probe(addr, cycle, false) {
            Probe::Hit { ready_at } => {
                self.last_service = ServiceLevel::L2;
                if ready_at > cycle {
                    ready_at
                } else {
                    cycle + lat
                }
            }
            Probe::Miss => {
                let start = self.l2.mshr_admit(cycle) + lat;
                let fill_done = self.access_llc(addr, start);
                if let Some(wb) = self.l2.fill(addr, fill_done, false) {
                    self.writeback_to_llc(wb, fill_done);
                }
                self.l2.mshr_commit(fill_done);
                fill_done
            }
        }
    }

    fn access_llc(&mut self, addr: u64, cycle: u64) -> u64 {
        let lat = self.llc.config().latency;
        match self.llc.probe(addr, cycle, false) {
            Probe::Hit { ready_at } => {
                self.last_service = ServiceLevel::Llc;
                if ready_at > cycle {
                    ready_at
                } else {
                    cycle + lat
                }
            }
            Probe::Miss => {
                self.last_service = ServiceLevel::Dram;
                let start = self.llc.mshr_admit(cycle) + lat;
                let fill_done = self.dram.read(addr, start);
                if let Some(wb) = self.llc.fill(addr, fill_done, false) {
                    let _ = self.dram.write(wb, fill_done);
                }
                self.llc.mshr_commit(fill_done);
                fill_done
            }
        }
    }

    fn writeback_to_l2(&mut self, addr: u64, cycle: u64) {
        // Writeback allocates in L2 (dirty); evictions cascade.
        if let Some(wb) = self.l2.fill(addr, cycle, false) {
            self.writeback_to_llc(wb, cycle);
        }
        self.l2.mark_dirty(addr);
    }

    fn writeback_to_llc(&mut self, addr: u64, cycle: u64) {
        if let Some(wb) = self.llc.fill(addr, cycle, false) {
            let _ = self.dram.write(wb, cycle);
        }
        self.llc.mark_dirty(addr);
    }

    /// Installs a prefetch for `addr` into L2 (and LLC), charging real
    /// latency and bandwidth but never stalling the requester.
    fn fill_prefetch(&mut self, addr: u64, cycle: u64) {
        if self.l2.peek(addr) {
            return;
        }
        self.prefetches_completed += 1;
        let fill_done = self.access_llc(addr, cycle + self.l2.config().latency);
        if let Some(wb) = self.l2.fill(addr, fill_done, true) {
            self.writeback_to_llc(wb, fill_done);
        }
    }

    /// Statistics of each level: (l1i, l1d, l2, llc).
    #[must_use]
    pub fn stats(&self) -> (CacheStats, CacheStats, CacheStats, CacheStats) {
        (*self.l1i.stats(), *self.l1d.stats(), *self.l2.stats(), *self.llc.stats())
    }

    /// DRAM statistics: (reads, writes, row hits).
    #[must_use]
    pub fn dram_stats(&self) -> (u64, u64, u64) {
        self.dram.stats()
    }

    /// Prefetches installed into L2.
    #[must_use]
    pub fn prefetches(&self) -> u64 {
        self.prefetches_completed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem() -> MemoryHierarchy {
        MemoryHierarchy::new(&MemConfig::golden_cove())
    }

    fn no_prefetch() -> MemoryHierarchy {
        let mut cfg = MemConfig::golden_cove();
        cfg.prefetch.kind = crate::prefetch::PrefetcherKind::None;
        MemoryHierarchy::new(&cfg)
    }

    #[test]
    fn cold_miss_pays_full_path_and_warm_hit_is_l1() {
        let mut m = no_prefetch();
        let t0 = 100;
        let done = m.access(AccessKind::Load, 0x1000, t0);
        // l1(3) + l2(14) + llc(40) + dram(195) = 252.
        assert_eq!(done, t0 + 3 + 14 + 40 + 195);
        assert_eq!(m.last_service_level(), ServiceLevel::Dram);
        let hit = m.access(AccessKind::Load, 0x1000, done + 10);
        assert_eq!(hit, done + 10 + 3);
        assert_eq!(m.last_service_level(), ServiceLevel::L1);
    }

    #[test]
    fn service_level_tracks_the_deepest_level_touched() {
        let mut m = no_prefetch();
        // Fill enough lines to evict line 0 from L1D but keep it in L2
        // (mirrors `l2_hit_after_l1_eviction_pressure`).
        let base = 0x10_0000u64;
        let mut t = 0;
        for i in 0..2048u64 {
            t = m.access(AccessKind::Load, base + i * 64, t + 1);
        }
        let reaccess = m.access(AccessKind::Load, base, t + 1);
        assert_eq!(reaccess, t + 1 + 3 + 14, "expected an L2 hit");
        assert_eq!(m.last_service_level(), ServiceLevel::L2);
        assert!(ServiceLevel::L1 < ServiceLevel::L2);
        assert!(ServiceLevel::Llc < ServiceLevel::Dram);
    }

    #[test]
    fn l2_hit_after_l1_eviction_pressure() {
        let mut m = no_prefetch();
        // Fill far more lines than L1D holds but well within L2.
        let base = 0x10_0000u64;
        let mut t = 0;
        for i in 0..2048u64 {
            t = m.access(AccessKind::Load, base + i * 64, t + 1);
        }
        // Line 0 must have been evicted from L1D but still be in L2:
        let reaccess = m.access(AccessKind::Load, base, t + 1);
        assert_eq!(reaccess, t + 1 + 3 + 14, "expected an L2 hit");
    }

    #[test]
    fn inflight_miss_merges_instead_of_duplicating() {
        let mut m = no_prefetch();
        let a = m.access(AccessKind::Load, 0x2000, 0);
        // Second access to the same line while the fill is in flight:
        let b = m.access(AccessKind::Load, 0x2010, 1);
        assert_eq!(b, a.max(1), "merged access completes with the fill");
        assert_eq!(m.dram_stats().0, 1, "only one DRAM read");
    }

    #[test]
    fn stores_write_allocate_and_write_back() {
        let mut m = no_prefetch();
        let t = m.access(AccessKind::Store, 0x3000, 0);
        assert!(t >= 252);
        // Evict the dirty line by filling its L1D set (12 ways), then its
        // L2 set... simpler: verify the dirty bit exists by forcing a
        // long scan and counting writebacks at L1D.
        let mut cyc = t;
        for i in 1..4096u64 {
            cyc = m.access(AccessKind::Load, 0x3000 + i * 64 * 8, cyc + 1);
        }
        let (_, l1d, _, _) = m.stats();
        assert!(l1d.writebacks >= 1, "dirty line should have been written back");
    }

    #[test]
    fn prefetcher_hides_streaming_latency() {
        let mut with_pf = mem();
        let mut without_pf = no_prefetch();
        let run = |m: &mut MemoryHierarchy| -> u64 {
            let mut cycle = 0u64;
            for i in 0..4096u64 {
                let done = m.access(AccessKind::Load, 0x40_0000 + i * 64, cycle);
                cycle = done; // serialized pointer-style consumption
            }
            cycle
        };
        let t_pf = run(&mut with_pf);
        let t_nopf = run(&mut without_pf);
        assert!(
            (t_pf as f64) < 0.7 * t_nopf as f64,
            "prefetching should cut streaming time: {t_pf} vs {t_nopf}"
        );
    }

    #[test]
    fn inst_and_data_paths_are_split() {
        let mut m = no_prefetch();
        let _ = m.access(AccessKind::InstFetch, 0x5000, 0);
        let (l1i, l1d, _, _) = m.stats();
        assert_eq!(l1i.misses, 1);
        assert_eq!(l1d.accesses(), 0);
        // Data access to the same address misses L1D but hits L2.
        let t = m.access(AccessKind::Load, 0x5000, 300);
        assert_eq!(t, 300 + 3 + 14);
    }

    #[test]
    fn dram_bandwidth_backpressures_bursts() {
        let mut m = no_prefetch();
        // 64 independent cold misses issued the same cycle.
        let dones: Vec<u64> =
            (0..64u64).map(|i| m.access(AccessKind::Load, 0x100_0000 + i * 64 * 131, 0)).collect();
        let first = dones.iter().min().unwrap();
        let last = dones.iter().max().unwrap();
        assert!(last - first >= 64 / 2 * 8 / 2, "channel queueing should spread completions");
    }
}
