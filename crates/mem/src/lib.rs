//! Memory-hierarchy substrate for the ATR simulator.
//!
//! Models the Table 1 hierarchy: split L1I/L1D, a unified private L2, a
//! shared LLC slice, and DDR4-3200-style DRAM with two channels, plus
//! the stream/spatial data prefetchers the paper's Scarab configuration
//! enables.
//!
//! The timing model is a deterministic *timestamped cache*: every line
//! carries the cycle its data arrives (`ready_at`), misses propagate
//! down the hierarchy at request time, MSHRs bound the number of
//! outstanding line fills per level (merging requests to in-flight
//! lines), and DRAM charges per-channel bandwidth. This gives
//! event-queue-accurate latencies for the access patterns the workload
//! substrate produces without a global event calendar.
//!
//! # Examples
//!
//! ```
//! use atr_mem::{MemoryHierarchy, MemConfig, AccessKind};
//!
//! let mut mem = MemoryHierarchy::new(&MemConfig::golden_cove());
//! let t1 = mem.access(AccessKind::Load, 0x1000, 100);
//! assert!(t1 > 100);                     // cold miss goes to DRAM
//! let t2 = mem.access(AccessKind::Load, 0x1000, t1 + 1);
//! assert_eq!(t2, t1 + 1 + 3);            // now an L1 hit (3-cycle L1D)
//! ```

pub mod cache;
pub mod dram;
pub mod hierarchy;
pub mod prefetch;

pub use cache::{Cache, CacheConfig, CacheStats, ReplacementPolicy};
pub use dram::{Dram, DramConfig};
pub use hierarchy::{AccessKind, MemConfig, MemoryHierarchy, ServiceLevel};
pub use prefetch::{PrefetchConfig, Prefetcher, PrefetcherKind};
