//! Set-associative timestamped cache with MSHR accounting.

/// Replacement policy for a cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplacementPolicy {
    /// Least recently used.
    Lru,
    /// First in, first out (insertion order).
    Fifo,
    /// Pseudo-random (deterministic LFSR).
    Random,
}

/// Geometry and timing of one cache level.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Associativity.
    pub ways: usize,
    /// Line size in bytes (64 throughout the paper's config).
    pub line_bytes: usize,
    /// Access latency in cycles (added on a hit; misses additionally pay
    /// the lower levels).
    pub latency: u64,
    /// Outstanding line-fill limit (MSHRs).
    pub mshrs: usize,
    /// Replacement policy.
    pub policy: ReplacementPolicy,
}

impl CacheConfig {
    /// Number of sets.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (non-power-of-two sets or
    /// line size, zero ways).
    #[must_use]
    pub fn num_sets(&self) -> usize {
        assert!(self.ways > 0, "cache needs at least one way");
        assert!(self.line_bytes.is_power_of_two(), "line size must be a power of two");
        let lines = self.size_bytes / self.line_bytes;
        assert_eq!(lines % self.ways, 0, "lines must divide evenly into ways");
        let sets = lines / self.ways;
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        sets
    }
}

/// Hit/miss and traffic counters for one cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Demand hits (including hits on in-flight lines).
    pub hits: u64,
    /// Demand misses.
    pub misses: u64,
    /// Hits whose line was still in flight (MSHR merge).
    pub inflight_hits: u64,
    /// Lines filled by prefetches.
    pub prefetch_fills: u64,
    /// Prefetched lines that were later demanded (usefulness).
    pub prefetch_useful: u64,
    /// Dirty evictions (writebacks to the next level).
    pub writebacks: u64,
}

impl CacheStats {
    /// Demand accesses observed.
    #[must_use]
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Miss ratio over demand accesses (0 when idle).
    #[must_use]
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses() as f64
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    valid: bool,
    tag: u64,
    dirty: bool,
    prefetched: bool,
    /// Cycle the line's data arrives (hit-under-fill returns this).
    ready_at: u64,
    /// Replacement stamp (LRU tick or FIFO insertion order).
    stamp: u64,
}

/// Result of probing a cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Probe {
    /// Line present; data available at the given cycle.
    Hit {
        /// Cycle at which data is available (>= probe cycle for
        /// in-flight lines).
        ready_at: u64,
    },
    /// Line absent.
    Miss,
}

/// A set-associative cache with timestamped lines and MSHR bookkeeping.
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    sets: Vec<Vec<Line>>,
    stats: CacheStats,
    tick: u64,
    lfsr: u32,
    /// Completion times of outstanding fills (pruned lazily).
    inflight: Vec<u64>,
}

impl Cache {
    /// Creates a cache from its configuration.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (see
    /// [`CacheConfig::num_sets`]).
    #[must_use]
    pub fn new(cfg: CacheConfig) -> Self {
        let sets = vec![vec![Line::default(); cfg.ways]; cfg.num_sets()];
        Cache {
            sets,
            stats: CacheStats::default(),
            tick: 0,
            lfsr: 0xbeef,
            inflight: Vec::new(),
            cfg,
        }
    }

    /// The configuration this cache was built with.
    #[must_use]
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Access statistics.
    #[must_use]
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// The line-aligned address of `addr`.
    #[must_use]
    pub fn line_addr(&self, addr: u64) -> u64 {
        addr & !(self.cfg.line_bytes as u64 - 1)
    }

    fn set_index(&self, addr: u64) -> usize {
        ((addr / self.cfg.line_bytes as u64) & (self.sets.len() as u64 - 1)) as usize
    }

    fn tag_of(&self, addr: u64) -> u64 {
        addr / (self.cfg.line_bytes as u64 * self.sets.len() as u64)
    }

    /// Probes for `addr` at `cycle`, updating replacement state and
    /// demand statistics. Marks the line dirty when `is_write`.
    pub fn probe(&mut self, addr: u64, cycle: u64, is_write: bool) -> Probe {
        self.tick += 1;
        let tick = self.tick;
        let (set, tag) = (self.set_index(addr), self.tag_of(addr));
        let lru = self.cfg.policy == ReplacementPolicy::Lru;
        if let Some(line) = self.sets[set].iter_mut().find(|l| l.valid && l.tag == tag) {
            if lru {
                line.stamp = tick;
            }
            if is_write {
                line.dirty = true;
            }
            if line.prefetched {
                line.prefetched = false;
                self.stats.prefetch_useful += 1;
            }
            self.stats.hits += 1;
            if line.ready_at > cycle {
                self.stats.inflight_hits += 1;
            }
            Probe::Hit { ready_at: line.ready_at.max(cycle) }
        } else {
            self.stats.misses += 1;
            Probe::Miss
        }
    }

    /// Marks the line holding `addr` dirty without touching replacement
    /// state or statistics (write-allocate fill completion).
    pub fn mark_dirty(&mut self, addr: u64) {
        let (set, tag) = (self.set_index(addr), self.tag_of(addr));
        if let Some(line) = self.sets[set].iter_mut().find(|l| l.valid && l.tag == tag) {
            line.dirty = true;
        }
    }

    /// Probes without disturbing replacement or statistics (prefetcher
    /// filter / tests).
    #[must_use]
    pub fn peek(&self, addr: u64) -> bool {
        let (set, tag) = (self.set_index(addr), self.tag_of(addr));
        self.sets[set].iter().any(|l| l.valid && l.tag == tag)
    }

    /// Installs the line for `addr`, arriving at `ready_at`. Returns the
    /// address of a dirty victim, if one was evicted, so the caller can
    /// charge a writeback.
    pub fn fill(&mut self, addr: u64, ready_at: u64, is_prefetch: bool) -> Option<u64> {
        self.tick += 1;
        let tick = self.tick;
        let (set_idx, tag) = (self.set_index(addr), self.tag_of(addr));
        let line_bytes = self.cfg.line_bytes as u64;
        let nsets = self.sets.len() as u64;
        if is_prefetch {
            self.stats.prefetch_fills += 1;
        }
        // Refill of a present (possibly in-flight) line: refresh timestamp.
        if let Some(line) = self.sets[set_idx].iter_mut().find(|l| l.valid && l.tag == tag) {
            line.ready_at = line.ready_at.min(ready_at);
            return None;
        }
        let victim_idx = if let Some(i) = self.sets[set_idx].iter().position(|l| !l.valid) {
            i
        } else {
            match self.cfg.policy {
                ReplacementPolicy::Lru | ReplacementPolicy::Fifo => self.sets[set_idx]
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, l)| l.stamp)
                    .map(|(i, _)| i)
                    .expect("non-empty set"),
                ReplacementPolicy::Random => {
                    let bit =
                        (self.lfsr ^ (self.lfsr >> 2) ^ (self.lfsr >> 3) ^ (self.lfsr >> 5)) & 1;
                    self.lfsr = (self.lfsr >> 1) | (bit << 15);
                    (self.lfsr as usize) % self.cfg.ways
                }
            }
        };
        let victim = self.sets[set_idx][victim_idx];
        let wb = if victim.valid && victim.dirty {
            self.stats.writebacks += 1;
            Some((victim.tag * nsets + set_idx as u64) * line_bytes)
        } else {
            None
        };
        self.sets[set_idx][victim_idx] =
            Line { valid: true, tag, dirty: false, prefetched: is_prefetch, ready_at, stamp: tick };
        wb
    }

    /// MSHR admission for a new miss starting at `cycle`: returns the
    /// cycle the fill may begin (delayed when all MSHRs are busy) and
    /// records the eventual completion via [`Cache::mshr_commit`].
    pub fn mshr_admit(&mut self, cycle: u64) -> u64 {
        self.inflight.retain(|&done| done > cycle);
        if self.inflight.len() < self.cfg.mshrs {
            return cycle;
        }
        // All MSHRs busy: the fill starts when the earliest completes.
        let (idx, &earliest) = self
            .inflight
            .iter()
            .enumerate()
            .min_by_key(|(_, &d)| d)
            .expect("inflight non-empty when full");
        self.inflight.swap_remove(idx);
        earliest.max(cycle)
    }

    /// Records an admitted miss completing at `done`.
    pub fn mshr_commit(&mut self, done: u64) {
        self.inflight.push(done);
    }

    /// Outstanding fills at `cycle` (diagnostics).
    #[must_use]
    pub fn mshr_occupancy(&self, cycle: u64) -> usize {
        self.inflight.iter().filter(|&&d| d > cycle).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(policy: ReplacementPolicy) -> Cache {
        Cache::new(CacheConfig {
            size_bytes: 1024, // 4 sets x 4 ways x 64B
            ways: 4,
            line_bytes: 64,
            latency: 3,
            mshrs: 4,
            policy,
        })
    }

    #[test]
    fn miss_then_hit() {
        let mut c = small(ReplacementPolicy::Lru);
        assert_eq!(c.probe(0x1000, 10, false), Probe::Miss);
        c.fill(0x1000, 50, false);
        assert_eq!(c.probe(0x1000, 60, false), Probe::Hit { ready_at: 60 });
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn hit_under_fill_returns_ready_time() {
        let mut c = small(ReplacementPolicy::Lru);
        c.fill(0x1000, 200, false);
        // Probing before the data arrives: hit, but data at 200.
        assert_eq!(c.probe(0x1000, 100, false), Probe::Hit { ready_at: 200 });
        assert_eq!(c.stats().inflight_hits, 1);
    }

    #[test]
    fn same_line_offsets_share_a_line() {
        let mut c = small(ReplacementPolicy::Lru);
        c.fill(0x1000, 1, false);
        assert!(matches!(c.probe(0x103f, 10, false), Probe::Hit { .. }));
        assert!(matches!(c.probe(0x1040, 10, false), Probe::Miss));
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = small(ReplacementPolicy::Lru);
        // 4 ways in set 0: lines at stride 4*64 = 256 bytes.
        let lines: Vec<u64> = (0..5).map(|i| i * 256).collect();
        for &a in &lines[..4] {
            c.fill(a, 1, false);
        }
        let _ = c.probe(lines[0], 2, false); // warm line 0
        c.fill(lines[4], 3, false); // evicts line 1 (oldest unwarmed)
        assert!(c.peek(lines[0]));
        assert!(!c.peek(lines[1]));
        assert!(c.peek(lines[4]));
    }

    #[test]
    fn dirty_eviction_reports_writeback_address() {
        let mut c = small(ReplacementPolicy::Lru);
        let lines: Vec<u64> = (0..5).map(|i| i * 256).collect();
        c.fill(lines[0], 1, false);
        let _ = c.probe(lines[0], 2, true); // dirty it
        for &a in &lines[1..4] {
            c.fill(a, 1, false);
        }
        let wb = c.fill(lines[4], 5, false);
        assert_eq!(wb, Some(lines[0]));
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn fifo_ignores_recency() {
        let mut c = small(ReplacementPolicy::Fifo);
        let lines: Vec<u64> = (0..5).map(|i| i * 256).collect();
        for &a in &lines[..4] {
            c.fill(a, 1, false);
        }
        let _ = c.probe(lines[0], 2, false); // touch does not protect in FIFO
        c.fill(lines[4], 3, false);
        assert!(!c.peek(lines[0]), "FIFO must evict the first-inserted line");
    }

    #[test]
    fn mshr_merge_via_inflight_hit_and_admission_delay() {
        let mut c = Cache::new(CacheConfig {
            size_bytes: 1024,
            ways: 4,
            line_bytes: 64,
            latency: 3,
            mshrs: 2,
            policy: ReplacementPolicy::Lru,
        });
        // Two outstanding fills exhaust the MSHRs.
        assert_eq!(c.mshr_admit(10), 10);
        c.mshr_commit(100);
        assert_eq!(c.mshr_admit(10), 10);
        c.mshr_commit(200);
        assert_eq!(c.mshr_occupancy(50), 2);
        // Third miss at cycle 20 waits for the 100-cycle completion.
        assert_eq!(c.mshr_admit(20), 100);
    }

    #[test]
    fn prefetch_usefulness_is_tracked() {
        let mut c = small(ReplacementPolicy::Lru);
        c.fill(0x2000, 5, true);
        assert_eq!(c.stats().prefetch_fills, 1);
        let _ = c.probe(0x2000, 10, false);
        assert_eq!(c.stats().prefetch_useful, 1);
        // Second demand hit does not double count.
        let _ = c.probe(0x2000, 11, false);
        assert_eq!(c.stats().prefetch_useful, 1);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_geometry_panics() {
        let _ = Cache::new(CacheConfig {
            size_bytes: 3072,
            ways: 4,
            line_bytes: 64,
            latency: 1,
            mshrs: 1,
            policy: ReplacementPolicy::Lru,
        });
    }

    #[test]
    fn miss_ratio_computation() {
        let mut c = small(ReplacementPolicy::Lru);
        let _ = c.probe(0, 1, false);
        c.fill(0, 2, false);
        let _ = c.probe(0, 3, false);
        assert!((c.stats().miss_ratio() - 0.5).abs() < 1e-9);
    }
}
