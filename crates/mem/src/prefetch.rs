//! Hardware data prefetchers (Table 1: stream + spatial).

/// Which prefetchers a configuration enables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrefetcherKind {
    /// No prefetching.
    None,
    /// Next-line only.
    NextLine,
    /// Stream detector (direction-trained, multi-degree).
    Stream,
    /// Stream plus spatial-footprint (SMS-lite) — the paper's config.
    StreamSpatial,
}

/// Prefetcher tuning.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrefetchConfig {
    /// Which prefetchers run.
    pub kind: PrefetcherKind,
    /// Lines fetched ahead per trained stream trigger.
    pub degree: usize,
    /// Lines of lookahead distance.
    pub distance: u64,
    /// Stream table entries.
    pub streams: usize,
    /// Spatial region size in bytes.
    pub region_bytes: u64,
    /// Spatial pattern table entries.
    pub spatial_entries: usize,
}

impl Default for PrefetchConfig {
    fn default() -> Self {
        PrefetchConfig {
            kind: PrefetcherKind::StreamSpatial,
            degree: 4,
            distance: 4,
            streams: 16,
            region_bytes: 4096,
            spatial_entries: 64,
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct StreamEntry {
    valid: bool,
    region: u64,
    last_line: u64,
    direction: i64,
    confidence: u8,
    lru: u64,
}

#[derive(Debug, Clone, Default)]
struct SpatialEntry {
    valid: bool,
    region: u64,
    footprint: u64, // bit per line in region
    lru: u64,
}

/// The L1D/L2 prefetch engine: observes demand accesses and emits
/// candidate prefetch line addresses.
#[derive(Debug, Clone)]
pub struct Prefetcher {
    cfg: PrefetchConfig,
    line_bytes: u64,
    streams: Vec<StreamEntry>,
    spatial: Vec<SpatialEntry>,
    live_region: Vec<SpatialEntry>,
    tick: u64,
    issued: u64,
}

impl Prefetcher {
    /// Creates a prefetcher for a cache with `line_bytes` lines.
    ///
    /// # Panics
    ///
    /// Panics if `line_bytes` is not a power of two.
    #[must_use]
    pub fn new(cfg: PrefetchConfig, line_bytes: u64) -> Self {
        assert!(line_bytes.is_power_of_two(), "line size must be a power of two");
        Prefetcher {
            streams: vec![StreamEntry::default(); cfg.streams],
            spatial: vec![SpatialEntry::default(); cfg.spatial_entries],
            live_region: Vec::new(),
            tick: 0,
            issued: 0,
            line_bytes,
            cfg,
        }
    }

    /// Total prefetch candidates emitted.
    #[must_use]
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// Observes a demand access and returns the line addresses to
    /// prefetch.
    pub fn observe(&mut self, addr: u64) -> Vec<u64> {
        self.tick += 1;
        let mut out = Vec::new();
        match self.cfg.kind {
            PrefetcherKind::None => {}
            PrefetcherKind::NextLine => out.push((addr & !(self.line_bytes - 1)) + self.line_bytes),
            PrefetcherKind::Stream => self.observe_stream(addr, &mut out),
            PrefetcherKind::StreamSpatial => {
                self.observe_stream(addr, &mut out);
                self.observe_spatial(addr, &mut out);
            }
        }
        self.issued += out.len() as u64;
        out
    }

    fn observe_stream(&mut self, addr: u64, out: &mut Vec<u64>) {
        let line = addr / self.line_bytes;
        let region = addr / (self.cfg.region_bytes.max(self.line_bytes) * 4);
        let tick = self.tick;
        let idx = match self.streams.iter().position(|s| s.valid && s.region == region) {
            Some(i) => i,
            None => {
                let i = self
                    .streams
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, s)| if s.valid { s.lru } else { 0 })
                    .map(|(i, _)| i)
                    .expect("stream table non-empty");
                self.streams[i] = StreamEntry {
                    valid: true,
                    region,
                    last_line: line,
                    direction: 0,
                    confidence: 0,
                    lru: tick,
                };
                return;
            }
        };
        let s = &mut self.streams[idx];
        s.lru = tick;
        let delta = line as i64 - s.last_line as i64;
        if delta == 0 {
            return;
        }
        let dir = delta.signum();
        if s.direction == dir && delta.abs() <= 4 {
            s.confidence = (s.confidence + 1).min(3);
        } else {
            s.direction = dir;
            s.confidence = s.confidence.saturating_sub(1);
        }
        s.last_line = line;
        if s.confidence >= 2 {
            let (dir, degree, distance) = (s.direction, self.cfg.degree, self.cfg.distance);
            for d in 1..=degree as i64 {
                let target = line as i64 + dir * (distance as i64 + d - 1);
                if target > 0 {
                    out.push(target as u64 * self.line_bytes);
                }
            }
        }
    }

    fn observe_spatial(&mut self, addr: u64, out: &mut Vec<u64>) {
        let region_bytes = self.cfg.region_bytes.max(self.line_bytes);
        let region = addr / region_bytes;
        let line_in_region = (addr % region_bytes) / self.line_bytes;
        let tick = self.tick;

        // Update the live footprint for the region being touched.
        if let Some(e) = self.live_region.iter_mut().find(|e| e.region == region) {
            e.footprint |= 1 << (line_in_region & 63);
            e.lru = tick;
        } else {
            // Region transition: archive the coldest live region.
            if self.live_region.len() >= 4 {
                let idx = self
                    .live_region
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, e)| e.lru)
                    .map(|(i, _)| i)
                    .expect("live set non-empty");
                let done = self.live_region.swap_remove(idx);
                self.archive(done);
            }
            // On (re-)entering a region with a learned footprint,
            // prefetch it.
            if let Some(learned) = self.spatial.iter_mut().find(|e| e.valid && e.region == region) {
                learned.lru = tick;
                let fp = learned.footprint;
                for bit in 0..64u64 {
                    if fp & (1 << bit) != 0 && bit != (line_in_region & 63) {
                        out.push(region * region_bytes + bit * self.line_bytes);
                    }
                }
            }
            self.live_region.push(SpatialEntry {
                valid: true,
                region,
                footprint: 1 << (line_in_region & 63),
                lru: tick,
            });
        }
    }

    fn archive(&mut self, entry: SpatialEntry) {
        if entry.footprint.count_ones() < 2 {
            return; // single-line regions are not worth a pattern slot
        }
        if let Some(e) = self.spatial.iter_mut().find(|e| e.valid && e.region == entry.region) {
            e.footprint = entry.footprint;
            e.lru = self.tick;
            return;
        }
        let idx = self
            .spatial
            .iter()
            .enumerate()
            .min_by_key(|(_, e)| if e.valid { e.lru } else { 0 })
            .map(|(i, _)| i)
            .expect("spatial table non-empty");
        self.spatial[idx] = SpatialEntry { lru: self.tick, ..entry };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream_pf() -> Prefetcher {
        Prefetcher::new(
            PrefetchConfig { kind: PrefetcherKind::Stream, ..PrefetchConfig::default() },
            64,
        )
    }

    #[test]
    fn none_kind_is_silent() {
        let mut p = Prefetcher::new(
            PrefetchConfig { kind: PrefetcherKind::None, ..PrefetchConfig::default() },
            64,
        );
        for i in 0..100 {
            assert!(p.observe(i * 64).is_empty());
        }
    }

    #[test]
    fn next_line_prefetches_sequential_neighbor() {
        let mut p = Prefetcher::new(
            PrefetchConfig { kind: PrefetcherKind::NextLine, ..PrefetchConfig::default() },
            64,
        );
        assert_eq!(p.observe(0x1010), vec![0x1040]);
    }

    #[test]
    fn stream_trains_on_ascending_accesses() {
        let mut p = stream_pf();
        let mut fired = Vec::new();
        for i in 0..10u64 {
            fired = p.observe(0x10000 + i * 64);
        }
        assert!(!fired.is_empty(), "trained stream should prefetch");
        // All candidates must be ahead of the last access.
        assert!(fired.iter().all(|&a| a > 0x10000 + 9 * 64));
    }

    #[test]
    fn stream_trains_descending() {
        let mut p = stream_pf();
        let mut fired = Vec::new();
        for i in 0..10u64 {
            fired = p.observe(0x20000 - i * 64);
        }
        assert!(!fired.is_empty());
        assert!(fired.iter().all(|&a| a < 0x20000 - 9 * 64));
    }

    #[test]
    fn random_accesses_do_not_train_streams() {
        let mut p = stream_pf();
        let mut total = 0usize;
        let mut x = 123456789u64;
        for _ in 0..200 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            total += p.observe(x % (1 << 30)).len();
        }
        assert!(total < 20, "random stream should rarely fire, got {total}");
    }

    #[test]
    fn spatial_replays_region_footprint() {
        let mut p = Prefetcher::new(PrefetchConfig::default(), 64);
        // Touch a sparse footprint in region A (lines 0, 3, 9), then move
        // through several other regions, then return to A.
        let region_a = 0x40_0000u64;
        for off in [0u64, 3 * 64, 9 * 64] {
            let _ = p.observe(region_a + off);
        }
        for r in 1..6u64 {
            let _ = p.observe(region_a + r * 4096);
            let _ = p.observe(region_a + r * 4096 + 64);
        }
        let fired = p.observe(region_a);
        let expected: Vec<u64> = vec![region_a + 3 * 64, region_a + 9 * 64];
        for e in expected {
            assert!(fired.contains(&e), "footprint line {e:#x} not replayed: {fired:x?}");
        }
    }
}
