//! DDR4-style DRAM timing model.
//!
//! Latency plus per-channel bandwidth: each channel serializes line
//! transfers, and row-buffer locality gives consecutive accesses to the
//! same row a latency discount. This captures the two effects the
//! workload substrate exercises — queueing under bandwidth pressure and
//! the stream/random latency gap — without a full DRAM command model.

/// DRAM configuration (Table 1: DDR4-3200, 2 channels).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DramConfig {
    /// Number of channels (addresses interleave by line).
    pub channels: usize,
    /// Row-miss (closed-row) access latency in core cycles.
    pub latency: u64,
    /// Row-hit discount in core cycles.
    pub row_hit_discount: u64,
    /// Core cycles a 64B line transfer occupies its channel.
    pub cycles_per_line: u64,
    /// Row size in bytes (for row-hit detection).
    pub row_bytes: u64,
}

impl Default for DramConfig {
    fn default() -> Self {
        // 3 GHz core, DDR4-3200: ~65 ns idle latency ≈ 195 cycles; a 64B
        // line at 25.6 GB/s/channel ≈ 2.5 ns ≈ 8 core cycles.
        DramConfig {
            channels: 2,
            latency: 195,
            row_hit_discount: 60,
            cycles_per_line: 8,
            row_bytes: 8192,
        }
    }
}

/// The DRAM model. Reads and writes share channel bandwidth.
#[derive(Debug, Clone)]
pub struct Dram {
    cfg: DramConfig,
    next_free: Vec<u64>,
    open_row: Vec<Option<u64>>,
    reads: u64,
    writes: u64,
    row_hits: u64,
}

impl Dram {
    /// Creates a DRAM model.
    ///
    /// # Panics
    ///
    /// Panics if `channels` is zero.
    #[must_use]
    pub fn new(cfg: DramConfig) -> Self {
        assert!(cfg.channels > 0, "need at least one channel");
        Dram {
            next_free: vec![0; cfg.channels],
            open_row: vec![None; cfg.channels],
            reads: 0,
            writes: 0,
            row_hits: 0,
            cfg,
        }
    }

    fn channel_of(&self, addr: u64) -> usize {
        ((addr >> 6) as usize) % self.cfg.channels
    }

    /// Issues a read arriving at the controller at `cycle`; returns the
    /// cycle the line is delivered.
    pub fn read(&mut self, addr: u64, cycle: u64) -> u64 {
        self.reads += 1;
        self.service(addr, cycle)
    }

    /// Issues a writeback; returns the completion cycle (the caller
    /// normally ignores it, but the bandwidth is charged).
    pub fn write(&mut self, addr: u64, cycle: u64) -> u64 {
        self.writes += 1;
        self.service(addr, cycle)
    }

    fn service(&mut self, addr: u64, cycle: u64) -> u64 {
        let ch = self.channel_of(addr);
        let row = addr / self.cfg.row_bytes;
        let lat = if self.open_row[ch] == Some(row) {
            self.row_hits += 1;
            self.cfg.latency - self.cfg.row_hit_discount
        } else {
            self.open_row[ch] = Some(row);
            self.cfg.latency
        };
        // A channel delivers lines in order, one per transfer slot.
        let done = (cycle + lat).max(self.next_free[ch]);
        self.next_free[ch] = done + self.cfg.cycles_per_line;
        done
    }

    /// (reads, writes, row hits) so far.
    #[must_use]
    pub fn stats(&self) -> (u64, u64, u64) {
        (self.reads, self.writes, self.row_hits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_read_pays_full_latency() {
        let mut d = Dram::new(DramConfig::default());
        let done = d.read(0x10000, 1000);
        assert_eq!(done, 1000 + 195);
    }

    #[test]
    fn row_hit_is_faster() {
        let mut d = Dram::new(DramConfig::default());
        let a = d.read(0x10000, 0);
        let b = d.read(0x10040, a); // same 8K row, same channel? check channel
                                    // 0x10000>>6 = 0x400 (even ch 0); 0x10040>>6 = 0x401 (ch 1) — use
                                    // stride 128 to stay on channel 0.
        let c = d.read(0x10080, b);
        assert!(c - b < 195, "row hit should be discounted, got {}", c - b);
    }

    #[test]
    fn channel_bandwidth_serializes_bursts() {
        let cfg = DramConfig { channels: 1, ..DramConfig::default() };
        let mut d = Dram::new(cfg.clone());
        // 10 simultaneous requests: completions spread by cycles_per_line.
        let dones: Vec<u64> = (0..10).map(|i| d.read(i * 64, 0)).collect();
        for w in dones.windows(2) {
            assert!(w[1] >= w[0] + cfg.cycles_per_line, "bandwidth must serialize");
        }
    }

    #[test]
    fn channels_are_independent() {
        let mut d = Dram::new(DramConfig { channels: 2, ..DramConfig::default() });
        let a = d.read(0x0, 0); // channel 0
        let b = d.read(0x40, 0); // channel 1
                                 // Neither waits on the other.
        assert_eq!(a, 195);
        assert_eq!(b, 195);
    }

    #[test]
    fn writes_consume_bandwidth() {
        let mut d = Dram::new(DramConfig { channels: 1, ..DramConfig::default() });
        let _ = d.write(0x0, 0);
        let r = d.read(0x40, 0);
        assert!(r > 195, "read behind a write must queue");
        assert_eq!(d.stats().1, 1);
    }
}
