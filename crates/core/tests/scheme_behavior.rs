//! Behavioral tests for the release schemes, driving the renamer through
//! the same protocol the pipeline uses. Each named scenario corresponds
//! to a figure or subsection of the paper.

use atr_core::{CheckpointPolicy, FlushRecord, ReleaseScheme, RenameConfig, RenamedUop, Renamer};
use atr_isa::{ArchReg, OpClass, RegClass, StaticInst};

fn r(i: u8) -> ArchReg {
    ArchReg::int(i)
}

fn cfg(scheme: ReleaseScheme) -> RenameConfig {
    RenameConfig {
        scheme,
        int_prf_size: 64,
        fp_prf_size: 64,
        checkpoint_policy: CheckpointPolicy::EveryBranch,
        collect_events: true,
        ..RenameConfig::default()
    }
}

fn alu(pc: u64, dst: u8, srcs: &[u8]) -> StaticInst {
    let s: Vec<ArchReg> = srcs.iter().map(|&i| r(i)).collect();
    StaticInst::alu(pc, r(dst), &s)
}

fn branch(pc: u64) -> StaticInst {
    StaticInst::cond_branch(pc, pc + 0x100, &[r(0)])
}

fn load(pc: u64, dst: u8, base: u8) -> StaticInst {
    StaticInst::load(pc, r(dst), r(base))
}

/// Tracks a renamed instruction plus its issue state, like a ROB entry.
struct Entry {
    inst: StaticInst,
    uop: RenamedUop,
    issued: bool,
    cp_after: atr_core::SrtCheckpoint,
}

struct Driver {
    renamer: Renamer,
    rob: Vec<Entry>,
    cycle: u64,
    seq: u64,
}

impl Driver {
    fn new(scheme: ReleaseScheme) -> Self {
        Driver { renamer: Renamer::new(&cfg(scheme)), rob: Vec::new(), cycle: 10, seq: 0 }
    }

    fn rename(&mut self, inst: StaticInst) -> usize {
        self.cycle += 1;
        self.renamer.tick(self.cycle);
        let uop = self.renamer.rename(&inst, self.seq, self.cycle, false);
        self.seq += 1;
        let cp_after = self.renamer.take_checkpoint();
        self.rob.push(Entry { inst, uop, issued: false, cp_after });
        self.rob.len() - 1
    }

    fn issue(&mut self, idx: usize) {
        self.cycle += 1;
        self.renamer.tick(self.cycle);
        assert!(!self.rob[idx].issued, "double issue");
        self.rob[idx].issued = true;
        let psrcs = self.rob[idx].uop.psrcs;
        self.renamer.on_issue(&psrcs, self.cycle);
    }

    fn precommit(&mut self, idx: usize) {
        self.cycle += 1;
        let mut uop = self.rob[idx].uop;
        self.renamer.on_precommit(&mut uop, self.cycle);
        self.rob[idx].uop = uop;
    }

    fn commit(&mut self, idx: usize) {
        self.cycle += 1;
        self.renamer.tick(self.cycle);
        let uop = self.rob[idx].uop;
        self.renamer.on_commit(&uop, self.cycle);
    }

    /// Flushes all instructions with index > `flush_point` (youngest
    /// first) and restores the SRT to the state just after the flush
    /// point renamed.
    fn flush_after(&mut self, flush_point: usize) {
        self.cycle += 1;
        let squashed: Vec<Entry> = self.rob.split_off(flush_point + 1);
        let records: Vec<FlushRecord> =
            squashed.iter().rev().map(|e| e.uop.flush_record(&e.inst, e.issued)).collect();
        self.renamer.flush_walk(&records, self.cycle);
        let cp = self.rob[flush_point].cp_after.clone();
        self.renamer.restore_checkpoint(&cp);
    }

    /// Renames a leading branch so the reset-state architectural
    /// mappings are marked no-early-release; most scenarios want to
    /// reason about the regions they construct, not the reset state.
    fn prologue(&mut self) -> usize {
        self.rename(branch(0xff00))
    }

    fn free_int(&self) -> usize {
        self.renamer.free_count(RegClass::Int)
    }
}

#[test]
fn baseline_releases_only_at_redefiner_commit() {
    let mut d = Driver::new(ReleaseScheme::Baseline);
    let b = d.prologue();
    let free0 = d.free_int();
    let i1 = d.rename(alu(0x00, 5, &[1, 2])); // alloc p_a for r5
    let i2 = d.rename(alu(0x04, 6, &[5])); // consume r5
    let i3 = d.rename(alu(0x08, 5, &[3])); // redefine r5
    assert_eq!(d.free_int(), free0 - 3);
    d.issue(i1);
    d.issue(i2);
    d.issue(i3);
    assert_eq!(d.free_int(), free0 - 3, "baseline must not early release");
    d.commit(b);
    d.commit(i1); // frees the initial mapping of r5
    d.commit(i2); // frees the initial mapping of r6
    assert_eq!(d.free_int(), free0 - 1);
    d.commit(i3); // redefiner commits: frees i1's allocation
    assert_eq!(d.free_int(), free0);
    assert_eq!(d.renamer.prf_stats(RegClass::Int).released_commit, 3);
    assert_eq!(d.renamer.prf_stats(RegClass::Int).released_atomic, 0);
    d.renamer.check_invariants();
}

#[test]
fn atr_releases_inside_atomic_region_before_any_commit() {
    // Fig 8: branch I1; I2 renames r1; I3, I4 consume; I5 redefines.
    // ATR frees I2's register once I5 renames and I3/I4 issue — with I1
    // still unresolved and nothing committed.
    let mut d = Driver::new(ReleaseScheme::Atr { redefine_delay: 0 });
    let _b = d.rename(branch(0x00)); // older unresolved branch
    let free0 = d.free_int();
    let i2 = d.rename(alu(0x04, 1, &[2, 3]));
    let i3 = d.rename(alu(0x08, 2, &[1, 4]));
    let i4 = d.rename(alu(0x0c, 3, &[1, 5]));
    let _i5 = d.rename(alu(0x10, 1, &[4, 5]));
    let _ = i2;
    assert_eq!(d.free_int(), free0 - 4);
    d.issue(i3);
    assert_eq!(d.free_int(), free0 - 4, "one consumer still pending");
    d.issue(i4); // last consumer of I2's r1 issues -> ATR release
    assert_eq!(d.free_int(), free0 - 3, "ATR must release I2's register");
    assert_eq!(d.renamer.prf_stats(RegClass::Int).released_atomic, 1);
    d.renamer.check_invariants();
}

#[test]
fn atr_blocked_by_branch_between_rename_and_redefine() {
    // Fig 2: a conditional branch inside the region makes early release
    // unsafe; ATR must fall back to commit release.
    let mut d = Driver::new(ReleaseScheme::Atr { redefine_delay: 0 });
    let b0 = d.prologue();
    let free0 = d.free_int();
    let i1 = d.rename(alu(0x00, 1, &[2, 3]));
    let i2 = d.rename(alu(0x04, 2, &[1, 3])); // consume
    let i3 = d.rename(branch(0x08)); // the hazard
    let i5 = d.rename(alu(0x0c, 1, &[3, 4])); // redefine r1
    d.issue(i1);
    d.issue(i2);
    d.issue(i3);
    d.issue(i5);
    assert_eq!(d.free_int(), free0 - 3, "no early release across a branch");
    assert_eq!(d.renamer.prf_stats(RegClass::Int).released_atomic, 0);
    d.commit(b0);
    d.commit(i1); // frees r1's initial mapping
    d.commit(i2); // frees r2's initial mapping
    d.commit(i3);
    d.commit(i5); // frees i1's allocation
    assert_eq!(d.free_int(), free0, "everything transient reclaimed at commit");
    assert_eq!(d.renamer.prf_stats(RegClass::Int).released_commit, 3);
    d.renamer.check_invariants();
}

#[test]
fn atr_blocked_by_exception_capable_instructions() {
    for hazard in [load(0x04, 8, 0), StaticInst::store(0x04, r(0), r(9)), {
        StaticInst::new(0x04, OpClass::IntDiv, Some(r(8)), &[r(9), r(9)])
    }] {
        let mut d = Driver::new(ReleaseScheme::Atr { redefine_delay: 0 });
        let _b0 = d.prologue();
        let i1 = d.rename(alu(0x00, 1, &[2]));
        let _h = d.rename(hazard);
        let i5 = d.rename(alu(0x08, 1, &[3]));
        d.issue(i1);
        d.issue(i5);
        assert_eq!(
            d.renamer.prf_stats(RegClass::Int).released_atomic,
            0,
            "{hazard:?} must block atomic release"
        );
    }
}

#[test]
fn atr_region_starting_at_a_load_is_not_atomic() {
    // §3.2 regions are endpoint-inclusive: a load's own destination is
    // ineligible.
    let mut d = Driver::new(ReleaseScheme::Atr { redefine_delay: 0 });
    let i1 = d.rename(load(0x00, 1, 0)); // load defines r1
    let i2 = d.rename(alu(0x04, 1, &[2])); // redefine immediately
    d.issue(i1);
    d.issue(i2);
    assert_eq!(d.renamer.prf_stats(RegClass::Int).released_atomic, 0);
}

#[test]
fn atr_no_double_free_at_commit() {
    let mut d = Driver::new(ReleaseScheme::Atr { redefine_delay: 0 });
    let b0 = d.prologue();
    let free0 = d.free_int();
    let i1 = d.rename(alu(0x00, 1, &[2]));
    let i2 = d.rename(alu(0x04, 2, &[1]));
    let i3 = d.rename(alu(0x08, 1, &[3])); // redefines; ATR claims prev
    d.issue(i1);
    d.issue(i2); // -> atomic release of i1's pdst
    d.issue(i3);
    assert_eq!(d.free_int(), free0 - 2);
    assert_eq!(d.renamer.prf_stats(RegClass::Int).released_atomic, 1);
    // Committing everything must not release the same register again
    // (the FreeList would panic on a double free).
    d.commit(b0);
    d.commit(i1); // frees r1's initial mapping
    d.commit(i2); // frees r2's initial mapping
    d.commit(i3); // prev invalidated by ATR: nothing to free
    assert_eq!(d.free_int(), free0, "exactly one release per allocation");
    d.renamer.check_invariants();
}

#[test]
fn flush_walk_skips_registers_atr_already_released() {
    // §4.2.4 case (3): the whole atomic region sits behind an unresolved
    // branch, ATR releases inside it, then the branch mispredicts and
    // everything flushes. The walk must not double free.
    let mut d = Driver::new(ReleaseScheme::Atr { redefine_delay: 0 });
    let b = d.rename(branch(0x00));
    let free0 = d.free_int();
    let i1 = d.rename(alu(0x04, 1, &[2])); // alloc p1
    let i2 = d.rename(alu(0x08, 2, &[1])); // consumer
    let _i3 = d.rename(alu(0x0c, 1, &[3])); // redefiner (ATR claims p1)
    d.issue(i1);
    d.issue(i2); // atomic release of p1
    assert_eq!(d.free_int(), free0 - 2);
    d.flush_after(b); // squash i1..i3
                      // All three squashed allocations reclaimed exactly once each.
    assert_eq!(d.free_int(), free0);
    assert_eq!(d.renamer.prf_stats(RegClass::Int).flush_double_free_avoided, 1);
    d.renamer.check_invariants();
}

#[test]
fn flush_walk_frees_unreleased_atomic_region() {
    // Same region, but a consumer never issued: count > 0, so ATR never
    // released; the walk's consumed-bit clearing must free it.
    let mut d = Driver::new(ReleaseScheme::Atr { redefine_delay: 0 });
    let b = d.rename(branch(0x00));
    let free0 = d.free_int();
    let _i1 = d.rename(alu(0x04, 1, &[2]));
    let _i2 = d.rename(alu(0x08, 2, &[1])); // consumer, never issues
    let _i3 = d.rename(alu(0x0c, 1, &[3])); // redefiner claims prev
    assert_eq!(d.free_int(), free0 - 3);
    d.flush_after(b);
    assert_eq!(d.free_int(), free0, "walk must reclaim all three");
    assert_eq!(d.renamer.prf_stats(RegClass::Int).flush_double_free_avoided, 0);
    d.renamer.check_invariants();
}

#[test]
fn flush_walk_handles_multiple_generations() {
    // r1 redefined twice inside one squashed range; both generations
    // ATR-released; the walk must skip both and free the rest.
    let mut d = Driver::new(ReleaseScheme::Atr { redefine_delay: 0 });
    let b = d.rename(branch(0x00));
    let free0 = d.free_int();
    let i1 = d.rename(alu(0x04, 1, &[2]));
    let i2 = d.rename(alu(0x08, 1, &[1])); // redefine #1 (consumes too)
    let i3 = d.rename(alu(0x0c, 1, &[1])); // redefine #2
    d.issue(i1);
    d.issue(i2); // releases i1's pdst
    d.issue(i3); // releases i2's pdst
    assert_eq!(d.free_int(), free0 - 1);
    d.flush_after(b);
    assert_eq!(d.free_int(), free0);
    assert_eq!(d.renamer.prf_stats(RegClass::Int).flush_double_free_avoided, 2);
    d.renamer.check_invariants();
}

#[test]
fn counter_overflow_blocks_early_release() {
    // 3-bit counter: the 7th consumer saturates into no-early-release.
    let mut d = Driver::new(ReleaseScheme::Atr { redefine_delay: 0 });
    let _b0 = d.prologue();
    let i1 = d.rename(alu(0x00, 1, &[2]));
    let mut consumers = Vec::new();
    for k in 0..7u8 {
        // Distinct destinations so the consumers themselves do not form
        // atomic regions of interest.
        consumers.push(d.rename(alu(0x04 + u64::from(k) * 4, 2 + k, &[1])));
    }
    let i9 = d.rename(alu(0x40, 1, &[3])); // redefine
    d.issue(i1);
    for c in consumers {
        d.issue(c);
    }
    d.issue(i9);
    assert_eq!(
        d.renamer.prf_stats(RegClass::Int).released_atomic,
        0,
        "overflowed counter must fall back to commit release"
    );
}

#[test]
fn six_consumers_fit_a_three_bit_counter() {
    let mut d = Driver::new(ReleaseScheme::Atr { redefine_delay: 0 });
    let _b0 = d.prologue();
    let i1 = d.rename(alu(0x00, 1, &[2]));
    let mut consumers = Vec::new();
    for k in 0..6u8 {
        consumers.push(d.rename(alu(0x04 + u64::from(k) * 4, 2 + k, &[1])));
    }
    let i9 = d.rename(alu(0x40, 1, &[3]));
    d.issue(i1);
    for c in consumers {
        d.issue(c);
    }
    d.issue(i9);
    assert_eq!(d.renamer.prf_stats(RegClass::Int).released_atomic, 1);
}

#[test]
fn redefine_delay_postpones_atomic_release() {
    let mut d = Driver::new(ReleaseScheme::Atr { redefine_delay: 3 });
    let _b0 = d.prologue();
    let free0 = d.free_int();
    let i1 = d.rename(alu(0x00, 1, &[2]));
    d.issue(i1);
    let _i2 = d.rename(alu(0x04, 1, &[3])); // redefine at cycle T
    let t = d.cycle;
    assert_eq!(d.free_int(), free0 - 2, "release must wait for the delay pipe");
    d.renamer.tick(t + 2);
    assert_eq!(d.free_int(), free0 - 2);
    d.renamer.tick(t + 3);
    assert_eq!(d.free_int(), free0 - 1, "release fires when the delayed redefine lands");
}

#[test]
fn delayed_redefine_still_in_pipe_at_flush_releases_exactly_once() {
    // The redefine sits in the delay pipe when the region flushes, and
    // the register had no pending consumers: the walk's consumed bit
    // stays set, so the walk skips it; the pipe entry then releases it.
    let mut d = Driver::new(ReleaseScheme::Atr { redefine_delay: 8 });
    let b = d.rename(branch(0x00));
    let free0 = d.free_int();
    let i1 = d.rename(alu(0x04, 1, &[2]));
    d.issue(i1);
    let _i2 = d.rename(alu(0x08, 1, &[3])); // redefine enqueued, delay 8
    let t = d.cycle;
    d.flush_after(b);
    assert_eq!(d.free_int(), free0 - 1, "i1's register still waits in the pipe");
    d.renamer.tick(t + 20);
    assert_eq!(d.free_int(), free0, "pipe entry releases the squashed allocation");
    d.renamer.check_invariants();
}

#[test]
fn stale_delayed_redefine_is_dropped_after_walk_reclaim() {
    // Here the squashed region has an un-issued consumer, so the walk
    // itself reclaims the register; the delay-pipe entry then becomes
    // stale and must not fire (the generation changed / the register is
    // free).
    let mut d = Driver::new(ReleaseScheme::Atr { redefine_delay: 8 });
    let b = d.rename(branch(0x00));
    let free0 = d.free_int();
    let _i1 = d.rename(alu(0x04, 1, &[2]));
    let _c1 = d.rename(alu(0x08, 2, &[1])); // consumer, never issues
    let _i2 = d.rename(alu(0x0c, 1, &[3])); // redefine enqueued
    let t = d.cycle;
    d.flush_after(b); // walk reclaims all three (consumed bit cleared)
    assert_eq!(d.free_int(), free0);
    d.renamer.tick(t + 20); // stale entry: a double free would panic
    assert_eq!(d.free_int(), free0);
    d.renamer.check_invariants();
}

#[test]
fn nonspec_er_releases_at_precommit_when_consumed() {
    let mut d = Driver::new(ReleaseScheme::NonSpecEr);
    let free0 = d.free_int();
    let i1 = d.rename(alu(0x00, 1, &[2]));
    let i2 = d.rename(alu(0x04, 2, &[1]));
    let i3 = d.rename(alu(0x08, 1, &[3])); // redefiner
    d.issue(i1);
    d.issue(i2);
    d.issue(i3);
    assert_eq!(d.free_int(), free0 - 3);
    // Each precommit releases the fully-consumed previous mapping: the
    // initial mappings of r1 and r2, then i1's allocation.
    d.precommit(i1);
    d.precommit(i2);
    d.precommit(i3);
    assert_eq!(d.free_int(), free0);
    assert_eq!(d.renamer.prf_stats(RegClass::Int).released_precommit, 3);
    // Commit must not double free.
    d.commit(i1);
    d.commit(i2);
    d.commit(i3);
    assert_eq!(d.free_int(), free0);
    assert_eq!(d.renamer.prf_stats(RegClass::Int).released_commit, 0);
}

#[test]
fn nonspec_er_arms_when_consumers_pending() {
    let mut d = Driver::new(ReleaseScheme::NonSpecEr);
    let free0 = d.free_int();
    let i1 = d.rename(alu(0x00, 1, &[2]));
    let i2 = d.rename(alu(0x04, 2, &[1])); // consumer
    let i3 = d.rename(alu(0x08, 1, &[3])); // redefiner
    d.issue(i1);
    d.issue(i3);
    d.precommit(i1); // releases r1's initial mapping (no consumers left)
    d.precommit(i2); // releases r2's initial mapping (i1 issued)
    d.precommit(i3); // i1's allocation still has i2 pending: arm
    assert_eq!(d.free_int(), free0 - 1, "armed register must stay allocated");
    d.issue(i2); // last consumer issues -> armed release
    assert_eq!(d.free_int(), free0);
    assert_eq!(d.renamer.prf_stats(RegClass::Int).released_precommit, 3);
}

#[test]
fn combined_releases_atomic_and_precommit_paths() {
    let mut d = Driver::new(ReleaseScheme::Combined { redefine_delay: 0 });
    let b0 = d.prologue();
    // Atomic region -> ATR path.
    let i1 = d.rename(alu(0x00, 1, &[2]));
    let i2 = d.rename(alu(0x04, 1, &[1])); // redefine+consume
    d.issue(i1);
    d.issue(i2);
    assert_eq!(d.renamer.prf_stats(RegClass::Int).released_atomic, 1);
    // Region with a branch -> ER path at precommit.
    let j1 = d.rename(alu(0x10, 3, &[2]));
    let jb = d.rename(branch(0x14));
    let j2 = d.rename(alu(0x18, 3, &[4])); // redefine r3, non-atomic
    d.issue(j1);
    d.issue(j2);
    d.precommit(b0);
    d.precommit(i1); // frees r1's initial mapping
    d.precommit(i2); // prev claimed by ATR: nothing
    d.precommit(j1); // frees r3's initial mapping
    d.precommit(jb);
    d.precommit(j2); // frees j1's allocation: the ER path
    assert_eq!(d.renamer.prf_stats(RegClass::Int).released_precommit, 3);
    assert_eq!(d.renamer.prf_stats(RegClass::Int).released_atomic, 1);
}

#[test]
fn er_count_restore_after_flush_keeps_counts_exact() {
    let mut d = Driver::new(ReleaseScheme::NonSpecEr);
    let free0 = d.free_int();
    let i1 = d.rename(alu(0x00, 1, &[2])); // p for r1
    d.issue(i1);
    let b = d.rename(branch(0x04));
    let _wp = d.rename(alu(0x08, 2, &[1])); // wrong-path consumer, never issues
    d.flush_after(b); // walk restores the count of i1's register
                      // Correct path: consume and redefine; precommit should release.
    let c1 = d.rename(alu(0x08, 2, &[1]));
    let i3 = d.rename(alu(0x0c, 1, &[3]));
    d.issue(c1);
    d.issue(i3);
    d.precommit(i1); // frees r1's initial mapping
    d.precommit(b);
    d.precommit(c1); // frees r2's initial mapping
    d.precommit(i3); // frees i1's allocation iff the count was restored
    assert_eq!(
        d.renamer.prf_stats(RegClass::Int).released_precommit,
        3,
        "restored count must reach zero and release at precommit"
    );
    // Net zero: four allocations (i1, wp, c1, i3) against four releases
    // (wp by the walk, both initial mappings, i1's allocation).
    assert_eq!(d.free_int(), free0);
    d.renamer.check_invariants();
}

#[test]
fn checkpoint_restore_recovers_the_srt() {
    let mut d = Driver::new(ReleaseScheme::Atr { redefine_delay: 0 });
    let r1 = ArchReg::int(1);
    let before = d.renamer.current_mapping(r1);
    let cp = d.renamer.take_checkpoint();
    let b = d.rename(branch(0x00));
    let _w = d.rename(alu(0x04, 1, &[2])); // wrong path remaps r1
    assert_ne!(d.renamer.current_mapping(r1), before);
    d.flush_after(b);
    d.renamer.restore_checkpoint(&cp);
    assert_eq!(d.renamer.current_mapping(r1), before);
}

#[test]
fn walk_restore_rebuilds_from_committed_rat() {
    let mut d = Driver::new(ReleaseScheme::Baseline);
    // Commit one instruction so the committed RAT moves.
    let i1 = d.rename(alu(0x00, 1, &[2]));
    let p1 = d.rob[i1].uop.pdst.unwrap();
    d.issue(i1);
    d.commit(i1);
    // One surviving speculative instruction, then a squashed one.
    let i2 = d.rename(alu(0x04, 2, &[1]));
    let p2 = d.rob[i2].uop.pdst.unwrap();
    let _i3 = d.rename(alu(0x08, 1, &[3])); // will be squashed
    d.flush_after(i2);
    d.renamer.restore_from_committed([(ArchReg::int(2), p2)].into_iter());
    assert_eq!(d.renamer.current_mapping(ArchReg::int(1)), p1, "committed mapping");
    assert_eq!(d.renamer.current_mapping(ArchReg::int(2)), p2, "survivor mapping");
}

#[test]
fn lifetime_log_records_region_classification() {
    let mut d = Driver::new(ReleaseScheme::Baseline);
    let i1 = d.rename(alu(0x00, 1, &[2])); // atomic region candidate
    let _i2 = d.rename(alu(0x04, 1, &[3])); // redefine, clean region
    let j1 = d.rename(alu(0x08, 4, &[2]));
    let _jb = d.rename(load(0x0c, 5, 0));
    let _j2 = d.rename(alu(0x10, 4, &[3])); // redefine across a load
    let _ = (i1, j1);
    let log = d.renamer.log();
    let recs = log.records();
    // Record 0 = i1's allocation: atomic. Record for j1: non-branch but
    // not non-except.
    let rec_i1 = recs.iter().find(|r| r.alloc_seq == 0).unwrap();
    assert!(rec_i1.is_atomic());
    let rec_j1 = recs.iter().find(|r| r.alloc_seq == 2).unwrap();
    assert!(rec_j1.is_non_branch());
    assert!(!rec_j1.is_non_except());
    assert!(!rec_j1.is_atomic());
}

#[test]
fn wrong_path_allocations_are_tagged_in_the_log() {
    let mut d = Driver::new(ReleaseScheme::Baseline);
    d.cycle += 1;
    let cycle = d.cycle;
    let _ = d.renamer.rename(&alu(0x00, 1, &[2]), 99, cycle, true);
    assert!(d.renamer.log().records().iter().any(|r| r.wrong_path));
}

#[test]
fn quiescent_occupancy_returns_to_architectural_state() {
    // Rename/issue/precommit/commit a long stream; at the end only the
    // 32 architectural mappings may remain allocated.
    for scheme in ReleaseScheme::ALL {
        let mut d = Driver::new(scheme);
        let mut retired = 0usize;
        for k in 0..200u64 {
            let dst = 1 + (k % 10) as u8;
            let src = 1 + ((k + 3) % 10) as u8;
            assert!(d.renamer.can_rename(), "{scheme}: rename stalled at {k}");
            let idx = d.rename(alu(k * 4, dst, &[src]));
            d.issue(idx);
            // Retire with a sliding window so the free list never runs
            // dry, like a real ROB.
            while idx - retired >= 16 {
                d.precommit(retired);
                d.commit(retired);
                retired += 1;
            }
        }
        while retired < d.rob.len() {
            d.precommit(retired);
            d.commit(retired);
            retired += 1;
        }
        d.renamer.tick(d.cycle + 100);
        d.renamer.check_invariants();
        assert_eq!(
            d.renamer.total_occupancy(),
            atr_isa::NUM_ARCH_REGS,
            "{scheme}: all transient registers must be released"
        );
    }
}

#[test]
fn flush_walk_handles_self_consuming_redefiner() {
    // Minimized from property-based fuzzing: an instruction that both
    // reads and redefines the same register (Fig 5's `SHR RBX <- RBX`)
    // is squashed before issuing. Its pending read must prevent the
    // walk from treating the allocator's register as ATR-released.
    let mut d = Driver::new(ReleaseScheme::Atr { redefine_delay: 0 });
    let b = d.rename(branch(0x00));
    let free0 = d.free_int();
    let _i3 = d.rename(alu(0x04, 8, &[1])); // alloc pC for r8
    let _i4 = d.rename(alu(0x08, 8, &[8])); // self-consuming redefiner, claims pC
    d.flush_after(b);
    assert_eq!(d.free_int(), free0, "pC must be reclaimed by the walk, not leaked");
    d.renamer.check_invariants();
}

#[test]
fn move_elimination_aliases_instead_of_allocating() {
    let mut cfg = cfg(ReleaseScheme::Baseline);
    cfg.move_elimination = true;
    let mut rn = Renamer::new(&cfg);
    let free0 = rn.free_count(RegClass::Int);
    let mv = StaticInst::new(0x0, OpClass::Mov, Some(r(2)), &[r(4)]);
    let uop = rn.rename(&mv, 0, 1, false);
    assert_eq!(rn.free_count(RegClass::Int), free0, "no allocation for an eliminated move");
    assert_eq!(uop.pdst, None);
    assert_eq!(uop.alias, Some(rn.current_mapping(r(4))));
    assert_eq!(rn.current_mapping(r(2)), rn.current_mapping(r(4)), "destination aliases source");
    assert_eq!(rn.eliminated_moves(), 1);
    // Committing the move frees r2's previous mapping.
    rn.on_commit(&uop, 2);
    assert_eq!(rn.free_count(RegClass::Int), free0 + 1);
    rn.check_invariants();
}

#[test]
fn shared_register_frees_only_after_both_aliases_redefined() {
    let mut cfg = cfg(ReleaseScheme::Baseline);
    cfg.move_elimination = true;
    let mut rn = Renamer::new(&cfg);
    // i1 allocates p for r1; mov r2 <- r1 shares p; then both are
    // redefined and committed.
    let i1 = StaticInst::alu(0x0, r(1), &[]);
    let mv = StaticInst::new(0x4, OpClass::Mov, Some(r(2)), &[r(1)]);
    let j1 = StaticInst::alu(0x8, r(1), &[]);
    let j2 = StaticInst::alu(0xc, r(2), &[]);
    let u1 = rn.rename(&i1, 0, 1, false);
    let p = u1.pdst.unwrap();
    let um = rn.rename(&mv, 1, 2, false);
    let uj1 = rn.rename(&j1, 2, 3, false);
    let uj2 = rn.rename(&j2, 3, 4, false);
    let free_after_renames = rn.free_count(RegClass::Int);
    rn.on_commit(&u1, 5); // frees r1's initial mapping
    rn.on_commit(&um, 6); // frees r2's initial mapping
    rn.on_commit(&uj1, 7); // drops r1's reference to p (refs 2 -> 1)
    assert_eq!(rn.free_count(RegClass::Int), free_after_renames + 2);
    rn.on_commit(&uj2, 8); // drops r2's reference -> p freed
    assert_eq!(rn.free_count(RegClass::Int), free_after_renames + 3);
    let _ = p;
    rn.check_invariants();
}

#[test]
fn open_claims_counter_tracks_inflight_regions() {
    let mut d = Driver::new(ReleaseScheme::Atr { redefine_delay: 0 });
    let _b = d.prologue();
    assert_eq!(d.renamer.open_atr_claims(), 0);
    let _i1 = d.rename(alu(0x0, 1, &[2]));
    let i2 = d.rename(alu(0x4, 1, &[3])); // claims i1's register
    assert_eq!(d.renamer.open_atr_claims(), 1, "claim opened at the redefine");
    d.issue(i2);
    d.commit(i2); // out-of-order commit is fine for this bookkeeping test
    assert_eq!(d.renamer.open_atr_claims(), 0, "claim closes at the redefiner's commit");
}

#[test]
fn open_claims_counter_closes_on_flush() {
    let mut d = Driver::new(ReleaseScheme::Atr { redefine_delay: 0 });
    let b = d.rename(branch(0x0));
    let _i1 = d.rename(alu(0x4, 1, &[2]));
    let _i2 = d.rename(alu(0x8, 1, &[3]));
    assert_eq!(d.renamer.open_atr_claims(), 1);
    d.flush_after(b);
    assert_eq!(d.renamer.open_atr_claims(), 0, "squashed redefiner closes its claim");
}
