//! Property-based fuzzing of the release schemes.
//!
//! Drives the renamer through randomized but *pipeline-legal* action
//! sequences (rename / issue / precommit / commit / branch-anchored
//! flush) under every scheme and checks the global invariants:
//!
//! * allocated + free == file size at every step (no leak, no double
//!   free — the free list panics on double frees);
//! * after draining, only the architectural mappings stay allocated;
//! * ATR never releases a register whose region saw a branch or
//!   exception-capable instruction.
//!
//! Randomness comes from the in-tree `atr-rng` (the container has no
//! registry access for proptest): every case is seeded deterministically,
//! so a failure message's seed reproduces the exact action sequence.

use atr_core::{
    CheckpointPolicy, FlushRecord, ReleaseScheme, RenameConfig, RenamedUop, Renamer, SrtCheckpoint,
};
use atr_isa::{ArchReg, OpClass, StaticInst};
use atr_rng::{RngExt, SeedableRng, SmallRng};

#[derive(Debug, Clone)]
enum Action {
    /// Rename an instruction of the given shape.
    Rename { kind: u8, dst: u8, src: u8 },
    /// Issue the oldest un-issued instruction.
    IssueOldest,
    /// Issue a random un-issued instruction (out of order).
    IssueAt(u8),
    /// Advance the precommit+commit window by one if legal.
    Retire,
    /// Flush at the youngest unresolved branch, if any.
    FlushAtBranch,
    /// Let cycles pass (drains the redefine-delay pipe).
    Tick(u8),
}

/// Weighted random action, mirroring the original proptest strategy
/// (weights 5/3/2/3/1/1).
fn random_action(rng: &mut SmallRng) -> Action {
    match rng.random_range(0..15u32) {
        0..=4 => Action::Rename {
            kind: rng.random_range(0..7u8),
            dst: rng.random_range(1..16u8),
            src: rng.random_range(1..16u8),
        },
        5..=7 => Action::IssueOldest,
        8..=9 => Action::IssueAt(rng.random_range(0..=255u8)),
        10..=12 => Action::Retire,
        13 => Action::FlushAtBranch,
        _ => Action::Tick(rng.random_range(1..8u8)),
    }
}

/// Runs `check` against `cases` random action sequences of 1..150
/// actions, reporting the failing seed for reproduction.
fn fuzz(name: &str, cases: u64, check: impl Fn(&[Action])) {
    for case in 0..cases {
        let seed = 0xA7B0_0000 + case;
        let mut rng = SmallRng::seed_from_u64(seed);
        let len = rng.random_range(1..150usize);
        let actions: Vec<Action> = (0..len).map(|_| random_action(&mut rng)).collect();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| check(&actions)));
        assert!(result.is_ok(), "{name}: case with seed {seed:#x} failed; actions: {actions:?}");
    }
}

struct Slot {
    inst: StaticInst,
    uop: RenamedUop,
    issued: bool,
    precommitted: bool,
    cp_after: SrtCheckpoint,
}

struct Model {
    renamer: Renamer,
    rob: Vec<Slot>,
    cycle: u64,
    seq: u64,
}

impl Model {
    fn with_move_elim(scheme: ReleaseScheme, counter_width: u32, move_elimination: bool) -> Self {
        let cfg = RenameConfig {
            scheme,
            int_prf_size: 48,
            fp_prf_size: 48,
            counter_width,
            checkpoint_policy: CheckpointPolicy::EveryBranch,
            stall_threshold: 4,
            collect_events: true,
            move_elimination,
            // Run the randomized protocol fuzz with the release-path
            // audit asserts armed: every release the model drives must
            // also be legal by the auditor's book.
            audit: true,
        };
        Model { renamer: Renamer::new(&cfg), rob: Vec::new(), cycle: 1, seq: 0 }
    }

    fn build_inst(&self, kind: u8, dst: u8, src: u8) -> StaticInst {
        let pc = self.seq * 4;
        let d = ArchReg::int(dst % 16);
        let s = ArchReg::int(src % 16);
        match kind {
            0 | 1 => StaticInst::alu(pc, d, &[s]),
            2 => StaticInst::alu(pc, d, &[s, ArchReg::int((src.wrapping_add(3)) % 16)]),
            3 => StaticInst::load(pc, d, s),
            4 => StaticInst::cond_branch(pc, pc + 64, &[s]),
            5 => StaticInst::new(pc, OpClass::Mov, Some(d), &[s]),
            _ => StaticInst::new(pc, OpClass::IntDiv, Some(d), &[s, s]),
        }
    }

    fn apply(&mut self, action: &Action) {
        self.cycle += 1;
        self.renamer.tick(self.cycle);
        match action {
            Action::Rename { kind, dst, src } => {
                if !self.renamer.can_rename() || self.rob.len() > 24 {
                    return;
                }
                let inst = self.build_inst(*kind, *dst, *src);
                let uop = self.renamer.rename(&inst, self.seq, self.cycle, false);
                self.seq += 1;
                let cp_after = self.renamer.take_checkpoint();
                self.rob.push(Slot { inst, uop, issued: false, precommitted: false, cp_after });
            }
            Action::IssueOldest => {
                if let Some(slot) = self.rob.iter_mut().find(|s| !s.issued) {
                    slot.issued = true;
                    let psrcs = slot.uop.psrcs;
                    self.renamer.on_issue(&psrcs, self.cycle);
                }
            }
            Action::IssueAt(i) => {
                let unissued: Vec<usize> = self
                    .rob
                    .iter()
                    .enumerate()
                    .filter(|(_, s)| !s.issued)
                    .map(|(i, _)| i)
                    .collect();
                if unissued.is_empty() {
                    return;
                }
                let idx = unissued[*i as usize % unissued.len()];
                self.rob[idx].issued = true;
                let psrcs = self.rob[idx].uop.psrcs;
                self.renamer.on_issue(&psrcs, self.cycle);
            }
            Action::Retire => self.retire_one(),
            Action::FlushAtBranch => {
                // Flush from the youngest un-precommitted branch: squash
                // everything younger than it (it resolves).
                let Some(bidx) =
                    self.rob.iter().rposition(|s| s.inst.class.is_conditional() && !s.precommitted)
                else {
                    return;
                };
                if bidx + 1 >= self.rob.len() {
                    return;
                }
                let squashed: Vec<Slot> = self.rob.split_off(bidx + 1);
                let records: Vec<FlushRecord> =
                    squashed.iter().rev().map(|s| s.uop.flush_record(&s.inst, s.issued)).collect();
                self.renamer.flush_walk(&records, self.cycle);
                let cp = self.rob[bidx].cp_after.clone();
                self.renamer.restore_checkpoint(&cp);
            }
            Action::Tick(n) => {
                self.cycle += u64::from(*n);
                self.renamer.tick(self.cycle);
            }
        }
        self.renamer.check_invariants();
    }

    /// Precommit+commit the oldest instruction if it (and hence all
    /// older) has issued — the in-order retirement constraint.
    fn retire_one(&mut self) {
        if self.rob.is_empty() || !self.rob[0].issued {
            return;
        }
        let mut slot = self.rob.remove(0);
        self.renamer.on_precommit(&mut slot.uop, self.cycle);
        self.renamer.on_commit(&slot.uop, self.cycle);
    }

    fn drain(&mut self) {
        // Issue everything, then retire in order.
        let pending: Vec<usize> = (0..self.rob.len()).filter(|&i| !self.rob[i].issued).collect();
        for i in pending {
            self.cycle += 1;
            self.rob[i].issued = true;
            let psrcs = self.rob[i].uop.psrcs;
            self.renamer.on_issue(&psrcs, self.cycle);
        }
        while !self.rob.is_empty() {
            self.cycle += 1;
            self.retire_one();
        }
        self.cycle += 64;
        self.renamer.tick(self.cycle);
    }
}

fn run_model(scheme: ReleaseScheme, counter_width: u32, actions: &[Action]) {
    run_model_full(scheme, counter_width, false, actions)
}

fn run_model_full(scheme: ReleaseScheme, counter_width: u32, move_elim: bool, actions: &[Action]) {
    let mut m = Model::with_move_elim(scheme, counter_width, move_elim);
    for a in actions {
        m.apply(a);
    }
    m.drain();
    m.renamer.check_invariants();
    // After draining, exactly the distinct live SRT mappings remain
    // allocated (move elimination lets several architectural registers
    // share one physical register, so this can be < NUM_ARCH_REGS).
    let distinct_live: std::collections::HashSet<_> =
        ArchReg::all().map(|a| m.renamer.current_mapping(a)).collect();
    assert_eq!(
        m.renamer.total_occupancy(),
        distinct_live.len(),
        "{scheme}: leaked registers after drain"
    );
    // ATR must never have released across a region hazard: every
    // atomically-released allocation's log record must be atomic.
    for r in m.renamer.log().records() {
        if r.release_kind == Some(atr_core::ReleaseKind::Atomic) {
            assert!(
                !r.saw_branch && !r.saw_exception && !r.overflowed,
                "atomic release of a non-atomic region: {r:?}"
            );
        }
    }
}

const CASES: u64 = 96;

#[test]
fn baseline_protocol_invariants() {
    fuzz("baseline", CASES, |a| run_model(ReleaseScheme::Baseline, 3, a));
}

#[test]
fn nonspec_er_protocol_invariants() {
    fuzz("nonspec-er", CASES, |a| run_model(ReleaseScheme::NonSpecEr, 8, a));
}

#[test]
fn atr_protocol_invariants() {
    fuzz("atr", CASES, |a| run_model(ReleaseScheme::Atr { redefine_delay: 0 }, 3, a));
}

#[test]
fn atr_delayed_protocol_invariants() {
    fuzz("atr-delayed", CASES, |a| run_model(ReleaseScheme::Atr { redefine_delay: 2 }, 3, a));
}

#[test]
fn combined_protocol_invariants() {
    fuzz("combined", CASES, |a| run_model(ReleaseScheme::Combined { redefine_delay: 1 }, 8, a));
}

#[test]
fn narrow_counter_protocol_invariants() {
    // 2-bit counter: overflow is common; must still be leak-free.
    fuzz("narrow-counter", CASES, |a| run_model(ReleaseScheme::Atr { redefine_delay: 0 }, 2, a));
}

#[test]
fn move_elimination_protocol_invariants() {
    // §6 extension: reference-counted registers with ATR claims.
    fuzz("move-elim", CASES, |a| {
        run_model_full(ReleaseScheme::Atr { redefine_delay: 0 }, 3, true, a);
    });
}

#[test]
fn move_elimination_combined_invariants() {
    fuzz("move-elim-combined", CASES, |a| {
        run_model_full(ReleaseScheme::Combined { redefine_delay: 1 }, 8, true, a);
    });
}
