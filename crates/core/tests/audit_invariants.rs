//! The cycle-level auditor against the renamer driven by hand: a clean
//! rename→issue→precommit→commit stream reports nothing, and an
//! injected too-early release — the bug class the whole module exists
//! for — is reported on the very next check.

use atr_core::{ReleaseScheme, RenameAuditor, RenameConfig, RenamedUop, Renamer};
use atr_isa::{ArchReg, StaticInst};

fn config(scheme: ReleaseScheme) -> RenameConfig {
    RenameConfig {
        scheme,
        audit: true,
        int_prf_size: 48,
        fp_prf_size: 48,
        ..RenameConfig::default()
    }
}

/// Drives `n` dependent ALU instructions through a full lifetime each,
/// auditing after every pipeline step.
fn drive_clean(scheme: ReleaseScheme, n: usize) -> RenameAuditor {
    let mut renamer = Renamer::new(&config(scheme));
    let mut auditor = RenameAuditor::new();
    let mut cycle = 1u64;
    // A small in-flight window so commit trails rename by a few
    // instructions, keeping claims and previous-ptags live across
    // checks.
    let mut window: Vec<(RenamedUop, bool)> = Vec::new();
    for i in 0..n {
        renamer.tick(cycle);
        let dst = ArchReg::int((i % 7) as u8);
        let src = ArchReg::int(((i + 3) % 7) as u8);
        let inst = StaticInst::alu(0x1000 + 4 * i as u64, dst, &[src]);
        let uop = renamer.rename(&inst, i as u64, cycle, false);
        window.push((uop, false));
        let violations = auditor.check_cycle(&renamer, window.iter().map(|(u, s)| (u, *s)), cycle);
        assert!(violations.is_empty(), "after rename {i}: {violations:?}");
        cycle += 1;

        renamer.tick(cycle);
        // Issue the oldest un-issued instruction.
        if let Some((uop, issued)) = window.iter_mut().find(|(_, s)| !*s) {
            renamer.on_issue(&uop.psrcs, cycle);
            *issued = true;
        }
        // Precommit + commit the head once the window is deep enough.
        if window.len() > 3 {
            let (mut head, issued) = window.remove(0);
            assert!(issued, "window head issued before commit");
            renamer.on_precommit(&mut head, cycle);
            renamer.on_commit(&head, cycle);
        }
        let violations = auditor.check_cycle(&renamer, window.iter().map(|(u, s)| (u, *s)), cycle);
        assert!(violations.is_empty(), "after issue/commit {i}: {violations:?}");
        cycle += 1;
    }
    // Drain the window.
    while !window.is_empty() {
        let (mut head, issued) = window.remove(0);
        renamer.tick(cycle);
        if !issued {
            renamer.on_issue(&head.psrcs, cycle);
        }
        renamer.on_precommit(&mut head, cycle);
        renamer.on_commit(&head, cycle);
        let violations = auditor.check_cycle(&renamer, window.iter().map(|(u, s)| (u, *s)), cycle);
        assert!(violations.is_empty(), "during drain: {violations:?}");
        cycle += 1;
    }
    auditor
}

#[test]
fn clean_streams_have_no_violations_under_every_scheme() {
    for scheme in ReleaseScheme::ALL {
        let auditor = drive_clean(scheme, 200);
        assert!(auditor.cycles_checked() >= 400, "{scheme:?}: auditor barely ran");
        assert_eq!(auditor.violations_found(), 0, "{scheme:?}");
    }
}

#[test]
fn injected_early_release_is_caught_on_the_next_check() {
    let mut renamer = Renamer::new(&config(ReleaseScheme::Atr { redefine_delay: 0 }));
    let mut auditor = RenameAuditor::new();
    let i0 = StaticInst::alu(0x1000, ArchReg::int(1), &[ArchReg::int(2)]);
    let i1 = StaticInst::alu(0x1004, ArchReg::int(3), &[ArchReg::int(1)]);
    let u0 = renamer.rename(&i0, 0, 1, false);
    let u1 = renamer.rename(&i1, 1, 1, false);
    let window = [(u0, false), (u1, false)];
    let clean = auditor.check_cycle(&renamer, window.iter().map(|(u, s)| (u, *s)), 1);
    assert!(clean.is_empty(), "pre-injection state must be clean: {clean:?}");

    // The bug under test: i0's destination freed while i1 (un-issued)
    // still sources it and the SRT still maps r1 to it.
    let victim = u0.pdst.expect("ALU op allocates");
    renamer.inject_early_release(victim);

    let violations = auditor.check_cycle(&renamer, window.iter().map(|(u, s)| (u, *s)), 2);
    assert!(!violations.is_empty(), "auditor missed the injected early release");
    let all = violations.iter().map(ToString::to_string).collect::<Vec<_>>().join("\n");
    assert!(all.contains(&victim.to_string()), "violations must name {victim}: {all}");
    // Both the SRT-liveness and the consumer-mapping invariants see it.
    assert!(all.contains("SRT maps"), "expected an SRT liveness violation: {all}");
    assert!(all.contains("un-issued"), "expected a consumer-mapping violation: {all}");
    assert_eq!(auditor.violations_found(), violations.len() as u64);
}

#[test]
fn flush_restore_divergence_is_reported() {
    let mut renamer = Renamer::new(&config(ReleaseScheme::Baseline));
    let mut auditor = RenameAuditor::new();
    let inst = StaticInst::alu(0x1000, ArchReg::int(5), &[ArchReg::int(6)]);
    let uop = renamer.rename(&inst, 0, 1, false);
    // Claim the instruction was squashed without restoring the SRT: the
    // restored table should equal the committed RAT (no survivors), but
    // still holds the squashed mapping.
    let diverged = auditor.check_flush_restore(&renamer, std::iter::empty(), 2);
    assert_eq!(diverged.len(), 1, "exactly the squashed mapping diverges: {diverged:?}");
    assert!(diverged[0].message.contains("r5"), "{}", diverged[0].message);

    // After an honest restore the same check passes.
    renamer.restore_from_committed(std::iter::empty());
    let clean = auditor.check_flush_restore(&renamer, std::iter::empty(), 3);
    assert!(clean.is_empty(), "{clean:?}");
    assert_eq!(auditor.flushes_checked(), 2);
    let _ = uop;
}
