//! The register-release scheme selector.

use std::fmt;

/// Which register-release scheme the renamer runs (§5.2 evaluates all
/// four).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReleaseScheme {
    /// Conventional release: the previous ptag is freed when the
    /// redefining instruction commits (§2.1).
    Baseline,
    /// Non-speculative early release: freed when the redefining
    /// instruction precommits and the consumer count is zero (§2.3).
    NonSpecEr,
    /// ATR: out-of-order release inside atomic commit regions (§4).
    Atr {
        /// Cycles the redefine signal is delayed to model the pipelined
        /// bulk no-early-release logic (§4.2.2, Fig 13). 0 = combinational.
        redefine_delay: u32,
    },
    /// ATR plus non-speculative early release (§4.3).
    Combined {
        /// See [`ReleaseScheme::Atr::redefine_delay`].
        redefine_delay: u32,
    },
}

impl ReleaseScheme {
    /// Does this scheme maintain per-ptag consumer counts?
    #[must_use]
    pub fn tracks_consumers(self) -> bool {
        !matches!(self, ReleaseScheme::Baseline)
    }

    /// Does this scheme release via atomic commit regions?
    #[must_use]
    pub fn atr_enabled(self) -> bool {
        matches!(self, ReleaseScheme::Atr { .. } | ReleaseScheme::Combined { .. })
    }

    /// Does this scheme release at precommit of the redefiner?
    #[must_use]
    pub fn precommit_enabled(self) -> bool {
        matches!(self, ReleaseScheme::NonSpecEr | ReleaseScheme::Combined { .. })
    }

    /// The configured redefine-signal delay (0 for non-ATR schemes).
    #[must_use]
    pub fn redefine_delay(self) -> u32 {
        match self {
            ReleaseScheme::Atr { redefine_delay } | ReleaseScheme::Combined { redefine_delay } => {
                redefine_delay
            }
            _ => 0,
        }
    }

    /// Must consumer counts be restored during a flush walk?
    ///
    /// ATR-only runs do not restore counts (§4.2.3: consumers of atomic
    /// registers flush together with their producer, and blocked ptags
    /// never early-release). Schemes using precommit release need exact
    /// counts for non-atomic regions, so the walk decrements counts of
    /// squashed, un-issued consumers — the walk-based equivalent of the
    /// snapshot FIFOs in Moudgill et al.
    #[must_use]
    pub fn restores_counts_on_flush(self) -> bool {
        self.precommit_enabled()
    }

    /// All four schemes in evaluation order.
    pub const ALL: [ReleaseScheme; 4] = [
        ReleaseScheme::Baseline,
        ReleaseScheme::NonSpecEr,
        ReleaseScheme::Atr { redefine_delay: 0 },
        ReleaseScheme::Combined { redefine_delay: 0 },
    ];

    /// Short label used in experiment output ("baseline", "nonspec-ER",
    /// "atomic", "combined" — the paper's legend names).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            ReleaseScheme::Baseline => "baseline",
            ReleaseScheme::NonSpecEr => "nonspec-ER",
            ReleaseScheme::Atr { .. } => "atomic",
            ReleaseScheme::Combined { .. } => "combined",
        }
    }
}

impl fmt::Display for ReleaseScheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capability_matrix_matches_paper() {
        use ReleaseScheme::*;
        assert!(!Baseline.tracks_consumers());
        assert!(NonSpecEr.tracks_consumers());
        assert!(Atr { redefine_delay: 0 }.atr_enabled());
        assert!(!NonSpecEr.atr_enabled());
        assert!(Combined { redefine_delay: 0 }.atr_enabled());
        assert!(Combined { redefine_delay: 0 }.precommit_enabled());
        assert!(!Atr { redefine_delay: 0 }.precommit_enabled());
    }

    #[test]
    fn count_restore_policy() {
        use ReleaseScheme::*;
        assert!(!Baseline.restores_counts_on_flush());
        assert!(!Atr { redefine_delay: 2 }.restores_counts_on_flush());
        assert!(NonSpecEr.restores_counts_on_flush());
        assert!(Combined { redefine_delay: 1 }.restores_counts_on_flush());
    }

    #[test]
    fn labels_are_unique() {
        let mut labels: Vec<&str> = ReleaseScheme::ALL.iter().map(|s| s.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), 4);
    }
}
