//! Register renaming with out-of-order release — the paper's contribution.
//!
//! This crate implements the baseline rename machinery of §4.2.1 (SRT,
//! physical register file, free list, checkpoint- and walk-based
//! recovery) and the four register-release schemes the paper evaluates:
//!
//! * **Baseline** — a physical register is freed when the instruction
//!   that *redefines* its architectural register commits.
//! * **Non-speculative early release** (`NonSpecEr`, §2.3) — freed when
//!   the redefining instruction *precommits* (all older branches
//!   resolved, all older exception-capable instructions known safe) and
//!   its consumer count reaches zero.
//! * **ATR** (`Atr`, §4) — freed as soon as the register is redefined
//!   and fully consumed, *even speculatively*, provided it is in an
//!   atomic commit region: no conditional branch, indirect jump, load,
//!   store, or division was renamed while the register was live. Atomic
//!   regions guarantee the producer, consumers, and redefiner commit or
//!   flush together, so early release is safe without shadow storage.
//! * **Combined** (§4.3) — ATR for atomic regions plus non-speculative
//!   early release for everything else.
//!
//! The ATR mechanics follow §4.2 exactly: a per-physical-register
//! consumer counter with a reserved *no-early-release* value, bulk
//! marking of all live ptags whenever a branch or exception-capable
//! instruction is renamed, an optional N-cycle delay on the redefine
//! signal (modeling the pipelined marking logic of §4.2.2/Fig 13),
//! `previous-ptag` invalidation for double-free avoidance at commit
//! (§4.2.4), and the two-bit `redefined`/`consumed` walk algorithm for
//! double-free avoidance on flushes.
//!
//! # Examples
//!
//! ```
//! use atr_core::{Renamer, RenameConfig, ReleaseScheme};
//! use atr_isa::{ArchReg, StaticInst};
//!
//! let cfg = RenameConfig { scheme: ReleaseScheme::Atr { redefine_delay: 0 }, ..RenameConfig::default() };
//! let mut renamer = Renamer::new(&cfg);
//! let add = StaticInst::alu(0x40, ArchReg::int(5), &[ArchReg::int(6)]);
//! let uop = renamer.rename(&add, 0, 100, false);
//! assert!(uop.pdst.is_some());
//! ```

pub mod audit;
pub mod events;
pub mod freelist;
pub mod prf;
pub mod ptag;
pub mod renamer;
pub mod scheme;
pub mod srt;

pub use audit::{AuditViolation, RenameAuditor};
pub use events::{LifetimeLog, RegLifetime, ReleaseKind};
pub use freelist::FreeList;
pub use prf::{PhysRegFile, PrfStats};
pub use ptag::{PTag, PerClass};
pub use renamer::{
    CheckpointPolicy, FlushRecord, RenameConfig, RenamedUop, Renamer, SrtCheckpoint,
};
pub use scheme::ReleaseScheme;
pub use srt::RenameTable;
