//! Physical register tags and per-class container.

use atr_isa::RegClass;
use std::fmt;

/// A physical register tag: an index into the physical register file of
/// one register class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PTag {
    class: RegClass,
    index: u32,
}

impl PTag {
    /// Creates a tag for physical register `index` of `class`.
    #[must_use]
    pub fn new(class: RegClass, index: u32) -> Self {
        PTag { class, index }
    }

    /// The register class this tag belongs to.
    #[must_use]
    pub fn class(self) -> RegClass {
        self.class
    }

    /// The index within the class's physical register file.
    #[must_use]
    pub fn index(self) -> usize {
        self.index as usize
    }
}

impl fmt::Display for PTag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.class {
            RegClass::Int => write!(f, "p{}", self.index),
            RegClass::Fp => write!(f, "q{}", self.index),
        }
    }
}

/// A pair of values indexed by [`RegClass`] (split scalar/vector files,
/// §4.2.1).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PerClass<T> {
    /// The scalar-integer instance.
    pub int: T,
    /// The vector/FP instance.
    pub fp: T,
}

impl<T> PerClass<T> {
    /// Builds both instances from a constructor taking the class.
    pub fn from_fn(mut f: impl FnMut(RegClass) -> T) -> Self {
        PerClass { int: f(RegClass::Int), fp: f(RegClass::Fp) }
    }

    /// Shared access by class.
    pub fn get(&self, class: RegClass) -> &T {
        match class {
            RegClass::Int => &self.int,
            RegClass::Fp => &self.fp,
        }
    }

    /// Mutable access by class.
    pub fn get_mut(&mut self, class: RegClass) -> &mut T {
        match class {
            RegClass::Int => &mut self.int,
            RegClass::Fp => &mut self.fp,
        }
    }

    /// Iterates over `(class, &value)`.
    pub fn iter(&self) -> impl Iterator<Item = (RegClass, &T)> {
        [(RegClass::Int, &self.int), (RegClass::Fp, &self.fp)].into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ptag_accessors() {
        let p = PTag::new(RegClass::Fp, 17);
        assert_eq!(p.class(), RegClass::Fp);
        assert_eq!(p.index(), 17);
        assert_eq!(p.to_string(), "q17");
        assert_eq!(PTag::new(RegClass::Int, 3).to_string(), "p3");
    }

    #[test]
    fn per_class_indexing() {
        let mut pc = PerClass::from_fn(|c| if c == RegClass::Int { 1 } else { 2 });
        assert_eq!(*pc.get(RegClass::Int), 1);
        assert_eq!(*pc.get(RegClass::Fp), 2);
        *pc.get_mut(RegClass::Fp) = 9;
        assert_eq!(pc.fp, 9);
        assert_eq!(pc.iter().count(), 2);
    }
}
