//! The physical register file and its per-register release state.

use crate::events::EventHandle;
use crate::ptag::PTag;
use atr_isa::RegClass;

/// Per-physical-register state. The paper's hardware stores a 3-bit
/// consumer counter next to each register value (§4.2.2); the software
/// model additionally keeps the bookkeeping bits the release decision
/// depends on explicit.
#[derive(Debug, Clone, Copy, Default)]
pub struct PhysReg {
    /// Allocated (not on the free list).
    pub allocated: bool,
    /// Value produced (wakeup scoreboard bit).
    pub ready: bool,
    /// Live consumer count: incremented when a consumer renames,
    /// decremented when it issues (§4.2.3).
    pub count: u32,
    /// Marked no-early-release because a conditional branch or indirect
    /// jump was renamed while live.
    pub marked_branch: bool,
    /// Marked no-early-release because an exception-capable instruction
    /// was renamed while live.
    pub marked_exception: bool,
    /// The counter hit its width limit (reserved sentinel value, §4.2.2):
    /// no early release of any kind for this allocation.
    pub overflowed: bool,
    /// ATR claimed this register's release at the redefiner's rename
    /// (the redefiner's previous-ptag field was invalidated).
    pub atr_claimed: bool,
    /// The redefine signal has traversed the (pipelined) marking logic.
    pub redefined_effective: bool,
    /// Non-speculative ER: redefiner precommitted, waiting for count 0.
    pub armed_precommit: bool,
    /// Allocation generation, incremented on every allocation; used to
    /// drop stale redefine-delay queue entries after a flush reclaimed
    /// and re-allocated the register.
    pub generation: u64,
    /// Architectural references sharing this register (move
    /// elimination, §6): 1 at allocation, +1 per eliminated move
    /// aliasing it. The register returns to the free list only when the
    /// count reaches zero.
    pub refs: u32,
    /// Lifetime-log handle for this allocation.
    pub event: Option<EventHandle>,
}

impl PhysReg {
    /// Is ATR early release blocked for this allocation (the sentinel
    /// `no-early-release` state of §4.2.2)?
    #[must_use]
    pub fn atr_blocked(&self) -> bool {
        self.marked_branch || self.marked_exception || self.overflowed
    }

    /// Is non-speculative ER blocked (count untrustworthy)?
    #[must_use]
    pub fn er_blocked(&self) -> bool {
        self.overflowed
    }
}

/// Allocation/occupancy statistics for one physical register file.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PrfStats {
    /// Total allocations performed.
    pub allocations: u64,
    /// Releases by the conventional commit path.
    pub released_commit: u64,
    /// Releases by non-speculative early release.
    pub released_precommit: u64,
    /// Releases by ATR (atomic commit regions).
    pub released_atomic: u64,
    /// Releases by the flush walk.
    pub released_flush: u64,
    /// Flush-walk entries skipped because ATR already released them
    /// (§4.2.4 double-free avoidance firing).
    pub flush_double_free_avoided: u64,
    /// Releases counted by the register file itself, independently of
    /// the renamer's per-kind classification above. The consistency
    /// audit checks `total_released() == releases`; a mismatch means a
    /// release path forgot (or double-counted) its kind counter.
    pub releases: u64,
}

impl PrfStats {
    /// Total releases of every kind, as classified by the renamer.
    #[must_use]
    pub fn total_released(&self) -> u64 {
        self.released_commit + self.released_precommit + self.released_atomic + self.released_flush
    }
}

/// The physical register file of one class.
#[derive(Debug, Clone)]
pub struct PhysRegFile {
    class: RegClass,
    regs: Vec<PhysReg>,
    /// Maximum trackable consumers before overflow (2^w − 2 with the
    /// ATR sentinel reserved).
    max_count: u32,
    stats: PrfStats,
}

impl PhysRegFile {
    /// Creates a file of `size` registers; the first `premapped` are the
    /// initial architectural mappings (allocated and ready).
    ///
    /// # Panics
    ///
    /// Panics if `premapped > size`.
    #[must_use]
    pub fn new(class: RegClass, size: usize, premapped: usize, max_count: u32) -> Self {
        assert!(premapped <= size, "initial mappings exceed file size");
        let mut regs = vec![PhysReg::default(); size];
        for r in regs.iter_mut().take(premapped) {
            r.allocated = true;
            r.ready = true;
            r.refs = 1;
        }
        PhysRegFile { class, regs, max_count, stats: PrfStats::default() }
    }

    /// The register class of this file.
    #[must_use]
    pub fn class(&self) -> RegClass {
        self.class
    }

    /// Total physical registers.
    #[must_use]
    pub fn size(&self) -> usize {
        self.regs.len()
    }

    /// Currently allocated registers.
    #[must_use]
    pub fn occupancy(&self) -> usize {
        self.regs.iter().filter(|r| r.allocated).count()
    }

    /// Release statistics.
    #[must_use]
    pub fn stats(&self) -> &PrfStats {
        &self.stats
    }

    /// Mutable statistics (renamer bookkeeping).
    pub(crate) fn stats_mut(&mut self) -> &mut PrfStats {
        &mut self.stats
    }

    /// Shared access to a register's state.
    ///
    /// # Panics
    ///
    /// Panics if `tag` belongs to another class.
    #[must_use]
    pub fn get(&self, tag: PTag) -> &PhysReg {
        assert_eq!(tag.class(), self.class, "ptag of wrong class");
        &self.regs[tag.index()]
    }

    /// Mutable access to a register's state.
    pub fn get_mut(&mut self, tag: PTag) -> &mut PhysReg {
        assert_eq!(tag.class(), self.class, "ptag of wrong class");
        &mut self.regs[tag.index()]
    }

    /// Resets the state of a freshly allocated register.
    pub fn on_alloc(&mut self, tag: PTag, event: Option<EventHandle>) {
        self.stats.allocations += 1;
        let r = self.get_mut(tag);
        debug_assert!(!r.allocated, "allocating an already-allocated register");
        let generation = r.generation + 1;
        *r = PhysReg { allocated: true, event, generation, refs: 1, ..PhysReg::default() };
    }

    /// Marks a register released (free-list return is the caller's job).
    pub fn on_release(&mut self, tag: PTag) {
        self.stats.releases += 1;
        let r = self.get_mut(tag);
        debug_assert!(r.allocated, "releasing a non-allocated register");
        r.allocated = false;
        r.armed_precommit = false;
        r.redefined_effective = false;
    }

    /// Registers one consumer; returns `true` if the counter overflowed
    /// into the no-early-release sentinel.
    pub fn add_consumer(&mut self, tag: PTag) -> bool {
        let max = self.max_count;
        let r = self.get_mut(tag);
        if r.count >= max {
            r.overflowed = true;
        } else {
            r.count += 1;
        }
        r.overflowed
    }

    /// One consumer issued; returns the new count.
    pub fn consume(&mut self, tag: PTag) -> u32 {
        let r = self.get_mut(tag);
        if r.overflowed {
            // Real count unknown once the sentinel is reached; the
            // register is permanently ineligible for early release.
            return u32::MAX;
        }
        debug_assert!(r.count > 0, "consumer underflow on {tag}");
        r.count = r.count.saturating_sub(1);
        r.count
    }

    /// Every register's state, tagged — the auditor's full-file view.
    pub fn iter(&self) -> impl Iterator<Item = (PTag, &PhysReg)> {
        let class = self.class;
        self.regs.iter().enumerate().map(move |(i, r)| (PTag::new(class, i as u32), r))
    }

    /// Bulk no-early-release marking (§4.2.2) of one live register.
    pub fn mark_no_early_release(&mut self, tag: PTag, is_branch: bool) {
        let r = self.get_mut(tag);
        if is_branch {
            r.marked_branch = true;
        } else {
            r.marked_exception = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file() -> PhysRegFile {
        PhysRegFile::new(RegClass::Int, 64, 16, 6)
    }

    fn tag(i: u32) -> PTag {
        PTag::new(RegClass::Int, i)
    }

    #[test]
    fn premapped_registers_are_ready() {
        let f = file();
        assert!(f.get(tag(0)).allocated);
        assert!(f.get(tag(0)).ready);
        assert!(!f.get(tag(16)).allocated);
        assert_eq!(f.occupancy(), 16);
    }

    #[test]
    fn alloc_resets_state() {
        let mut f = file();
        let t = tag(20);
        f.on_alloc(t, Some(3));
        {
            let r = f.get_mut(t);
            r.count = 5;
            r.marked_branch = true;
        }
        f.on_release(t);
        f.on_alloc(t, None);
        let r = f.get(t);
        assert!(r.allocated);
        assert!(!r.ready);
        assert_eq!(r.count, 0);
        assert!(!r.marked_branch);
        assert_eq!(r.event, None);
    }

    #[test]
    fn counter_overflows_into_sentinel() {
        let mut f = file();
        let t = tag(20);
        f.on_alloc(t, None);
        for i in 0..6 {
            assert!(!f.add_consumer(t), "consumer {i} should fit");
        }
        assert_eq!(f.get(t).count, 6);
        assert!(f.add_consumer(t), "7th consumer overflows a 3-bit counter");
        assert!(f.get(t).atr_blocked());
        assert!(f.get(t).er_blocked());
        // Decrements on a sentinel register are ignored (§4.2.3).
        assert_eq!(f.consume(t), u32::MAX);
        assert_eq!(f.get(t).count, 6);
    }

    #[test]
    fn marking_blocks_atr_but_not_er() {
        let mut f = file();
        let t = tag(21);
        f.on_alloc(t, None);
        f.mark_no_early_release(t, true);
        assert!(f.get(t).atr_blocked());
        assert!(!f.get(t).er_blocked());
        f.mark_no_early_release(t, false);
        assert!(f.get(t).marked_exception);
    }

    #[test]
    fn consume_decrements() {
        let mut f = file();
        let t = tag(22);
        f.on_alloc(t, None);
        f.add_consumer(t);
        f.add_consumer(t);
        assert_eq!(f.consume(t), 1);
        assert_eq!(f.consume(t), 0);
    }

    #[test]
    #[should_panic(expected = "wrong class")]
    fn wrong_class_access_panics() {
        let f = file();
        let _ = f.get(PTag::new(RegClass::Fp, 0));
    }
}
