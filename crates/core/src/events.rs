//! Register lifetime event log.
//!
//! One [`RegLifetime`] record per physical-register allocation captures
//! every timestamp of the §3.1 life-of-a-register analysis (renamed,
//! last-consumed, redefined, redefiner-precommitted, redefiner-committed,
//! released) plus the region classification bits that drive Fig 4, Fig 6,
//! Fig 12, and Fig 14.

use atr_isa::RegClass;

/// Which mechanism released a physical register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReleaseKind {
    /// Conventional release at commit of the redefining instruction.
    RedefinerCommit,
    /// Non-speculative early release at/after precommit of the redefiner.
    Precommit,
    /// ATR out-of-order release inside an atomic commit region.
    Atomic,
    /// Reclaimed by the flush walk (squashed allocator).
    FlushWalk,
}

/// The lifetime of one physical-register allocation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RegLifetime {
    /// Register class (scalar vs vector file).
    pub class: RegClass,
    /// Cycle the allocating instruction renamed.
    pub alloc_cycle: u64,
    /// Sequence number of the allocating instruction.
    pub alloc_seq: u64,
    /// Allocating instruction was on the wrong path.
    pub wrong_path: bool,
    /// Total consumers renamed against this allocation.
    pub consumers: u32,
    /// Cycle the last consumer issued, if any consumer issued.
    pub last_consume_cycle: Option<u64>,
    /// Cycle the redefining instruction renamed.
    pub redefine_cycle: Option<u64>,
    /// Cycle the redefining instruction precommitted.
    pub redefiner_precommit_cycle: Option<u64>,
    /// Cycle the redefining instruction committed.
    pub redefiner_commit_cycle: Option<u64>,
    /// Cycle the register was returned to the free list.
    pub release_cycle: Option<u64>,
    /// The mechanism that released it.
    pub release_kind: Option<ReleaseKind>,
    /// A conditional branch or indirect jump was renamed while live
    /// (breaks the *non-branch* region property of Fig 6).
    pub saw_branch: bool,
    /// An exception-capable instruction (load/store/div) was renamed
    /// while live (breaks the *non-except* region property of Fig 6).
    pub saw_exception: bool,
    /// The consumer counter overflowed its width (§5.4).
    pub overflowed: bool,
}

impl RegLifetime {
    fn new(class: RegClass, alloc_cycle: u64, alloc_seq: u64, wrong_path: bool) -> Self {
        RegLifetime {
            class,
            alloc_cycle,
            alloc_seq,
            wrong_path,
            consumers: 0,
            last_consume_cycle: None,
            redefine_cycle: None,
            redefiner_precommit_cycle: None,
            redefiner_commit_cycle: None,
            release_cycle: None,
            release_kind: None,
            saw_branch: false,
            saw_exception: false,
            overflowed: false,
        }
    }

    /// Was this allocation inside an *atomic commit region* (Fig 6):
    /// redefined with no branch and no exception-capable instruction
    /// renamed in between?
    #[must_use]
    pub fn is_atomic(&self) -> bool {
        self.redefine_cycle.is_some() && !self.saw_branch && !self.saw_exception
    }

    /// Fig 6's *non-branch* region property.
    #[must_use]
    pub fn is_non_branch(&self) -> bool {
        self.redefine_cycle.is_some() && !self.saw_branch
    }

    /// Fig 6's *non-except* region property.
    #[must_use]
    pub fn is_non_except(&self) -> bool {
        self.redefine_cycle.is_some() && !self.saw_exception
    }
}

/// Handle into the [`LifetimeLog`] for updating a live allocation.
pub type EventHandle = usize;

/// Append-only log of register lifetimes.
///
/// Disabled logs ([`LifetimeLog::disabled`]) make every operation a
/// no-op so performance runs pay nothing.
#[derive(Debug, Clone, Default)]
pub struct LifetimeLog {
    enabled: bool,
    records: Vec<RegLifetime>,
}

impl LifetimeLog {
    /// Creates an enabled log.
    #[must_use]
    pub fn enabled() -> Self {
        LifetimeLog { enabled: true, records: Vec::new() }
    }

    /// Creates a disabled (no-op) log.
    #[must_use]
    pub fn disabled() -> Self {
        LifetimeLog::default()
    }

    /// Is the log collecting?
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records an allocation; returns a handle for later updates
    /// (`None` when disabled).
    pub fn on_alloc(
        &mut self,
        class: RegClass,
        cycle: u64,
        seq: u64,
        wrong_path: bool,
    ) -> Option<EventHandle> {
        if !self.enabled {
            return None;
        }
        self.records.push(RegLifetime::new(class, cycle, seq, wrong_path));
        Some(self.records.len() - 1)
    }

    /// Applies `f` to the record behind `handle` (no-op when disabled).
    pub fn update(&mut self, handle: Option<EventHandle>, f: impl FnOnce(&mut RegLifetime)) {
        if let Some(h) = handle {
            if let Some(r) = self.records.get_mut(h) {
                f(r);
            }
        }
    }

    /// All completed and in-flight records.
    #[must_use]
    pub fn records(&self) -> &[RegLifetime] {
        &self.records
    }

    /// Number of records collected.
    #[must_use]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when nothing was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_log_is_noop() {
        let mut log = LifetimeLog::disabled();
        assert_eq!(log.on_alloc(RegClass::Int, 1, 2, false), None);
        log.update(None, |_| panic!("must not run"));
        assert!(log.is_empty());
    }

    #[test]
    fn enabled_log_tracks_updates() {
        let mut log = LifetimeLog::enabled();
        let h = log.on_alloc(RegClass::Int, 10, 7, false);
        assert_eq!(h, Some(0));
        log.update(h, |r| {
            r.consumers = 2;
            r.redefine_cycle = Some(20);
        });
        let r = &log.records()[0];
        assert_eq!(r.consumers, 2);
        assert_eq!(r.redefine_cycle, Some(20));
    }

    #[test]
    fn region_classification() {
        let mut r = RegLifetime::new(RegClass::Int, 0, 0, false);
        assert!(!r.is_atomic(), "unredefined allocation is not a region");
        r.redefine_cycle = Some(5);
        assert!(r.is_atomic());
        r.saw_exception = true;
        assert!(!r.is_atomic());
        assert!(r.is_non_branch());
        assert!(!r.is_non_except());
        r.saw_branch = true;
        assert!(!r.is_non_branch());
    }
}
