//! The register renamer with pluggable out-of-order release schemes.
//!
//! The pipeline drives the renamer through a narrow protocol:
//!
//! 1. [`Renamer::rename`] per fetched instruction, in program order
//!    (including down wrong paths);
//! 2. [`Renamer::on_issue`] when an instruction issues (its source
//!    consumer counts decrement, §4.2.3);
//! 3. [`Renamer::on_precommit`] when the precommit pointer passes an
//!    instruction (non-speculative ER release point, §2.3);
//! 4. [`Renamer::on_commit`] at retirement (conventional release and
//!    committed-RAT update);
//! 5. [`Renamer::flush_walk`] plus one of the SRT restore methods on a
//!    misprediction or exception flush;
//! 6. [`Renamer::tick`] once per cycle (drains the pipelined
//!    redefine-delay queue, §4.2.2).
//!
//! The ATR mechanics (bulk no-early-release marking, previous-ptag
//! invalidation, the two-bit flush-walk algorithm) live here; see the
//! crate docs for the paper mapping.

use crate::events::{EventHandle, LifetimeLog, ReleaseKind};
use crate::freelist::FreeList;
use crate::prf::{PhysRegFile, PrfStats};
use crate::ptag::{PTag, PerClass};
use crate::scheme::ReleaseScheme;
use crate::srt::RenameTable;
use atr_isa::{ArchReg, RegClass, StaticInst, MAX_SRCS, NUM_ARCH_REGS};
use std::collections::VecDeque;

/// How the SRT is recovered on a flush.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckpointPolicy {
    /// Checkpoint the SRT at every conditional/indirect branch; restore
    /// directly.
    EveryBranch,
    /// No checkpoints: rebuild from the committed RAT plus the surviving
    /// ROB mappings (the §4.2.1 walk).
    WalkOnly,
}

/// Renamer configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RenameConfig {
    /// Release scheme under evaluation.
    pub scheme: ReleaseScheme,
    /// Scalar-integer physical register file size.
    pub int_prf_size: usize,
    /// Vector/FP physical register file size.
    pub fp_prf_size: usize,
    /// Consumer counter width in bits (3 in the paper; one value is
    /// reserved as the no-early-release sentinel, §4.2.2).
    pub counter_width: u32,
    /// SRT recovery policy.
    pub checkpoint_policy: CheckpointPolicy,
    /// Rename stalls when a free list drops below this watermark
    /// (`MAX_DEST × WIDTH_STAGE` in §4.2.1).
    pub stall_threshold: usize,
    /// Collect per-allocation lifetime events (analysis runs).
    pub collect_events: bool,
    /// Enable move elimination (§6): register-to-register moves rename
    /// the destination to the source's physical register instead of
    /// allocating, with per-register reference counts. ATR composes by
    /// decrementing instead of releasing.
    pub move_elimination: bool,
    /// Enable release-time legality checking ([`crate::audit`]): every
    /// `release` validates the mechanism-specific preconditions (claim
    /// present, counts at zero, region not blocked) and panics on the
    /// first violation. The pipeline additionally runs the cycle-level
    /// [`crate::audit::RenameAuditor`] when this is set.
    pub audit: bool,
}

impl Default for RenameConfig {
    fn default() -> Self {
        RenameConfig {
            scheme: ReleaseScheme::Baseline,
            int_prf_size: 224,
            fp_prf_size: 224,
            counter_width: 3,
            checkpoint_policy: CheckpointPolicy::EveryBranch,
            stall_threshold: 8,
            collect_events: false,
            move_elimination: false,
            audit: false,
        }
    }
}

/// A full-SRT checkpoint (both classes).
pub type SrtCheckpoint = RenameTable;

/// The rename-stage output for one instruction: what the pipeline keeps
/// in the ROB entry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RenamedUop {
    /// Physical sources, slot-aligned with the static instruction's
    /// `srcs`.
    pub psrcs: [Option<PTag>; MAX_SRCS],
    /// Newly allocated destination.
    pub pdst: Option<PTag>,
    /// Destination architectural register.
    pub dst_arch: Option<ArchReg>,
    /// The previous mapping of the destination, if still valid: the
    /// register freed at commit (or precommit). `None` when there is no
    /// destination — or when ATR invalidated it at rename (§4.2.4).
    pub prev_ptag: Option<PTag>,
    /// True when ATR claimed the previous mapping at rename (its release
    /// happens out of order; the flush walk must skip it).
    pub atr_freed_prev: bool,
    /// Lifetime-log handle of the *previous* allocation (for recording
    /// the redefiner's precommit/commit timestamps).
    pub prev_event: Option<EventHandle>,
    /// Lifetime-log handle of the new allocation.
    pub dst_event: Option<EventHandle>,
    /// Move elimination (§6): the uop allocated no register; its
    /// destination aliases this (source) physical register, whose
    /// reference count was incremented at rename.
    pub alias: Option<PTag>,
}

impl RenamedUop {
    /// The physical register holding this uop's result: the allocated
    /// destination, or the aliased source for an eliminated move.
    #[must_use]
    pub fn result_ptag(&self) -> Option<PTag> {
        self.pdst.or(self.alias)
    }

    /// Builds the flush-walk record for this uop. `inst` must be the
    /// static instruction it renamed; `issued` whether it issued before
    /// the flush.
    #[must_use]
    pub fn flush_record(&self, inst: &StaticInst, issued: bool) -> FlushRecord {
        let mut srcs = [None; MAX_SRCS];
        for (slot, (sa, sp)) in srcs.iter_mut().zip(inst.srcs.iter().zip(self.psrcs.iter())) {
            if let (Some(a), Some(p)) = (sa, sp) {
                *slot = Some((*a, *p));
            }
        }
        FlushRecord {
            dst_arch: self.dst_arch,
            pdst: self.pdst,
            atr_freed_prev: self.atr_freed_prev,
            alias: self.alias,
            srcs,
            issued,
        }
    }
}

/// One squashed instruction as seen by the flush walk, youngest first.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlushRecord {
    /// Architectural destination.
    pub dst_arch: Option<ArchReg>,
    /// Allocated physical destination (returned to the free list by the
    /// walk unless ATR already released it).
    pub pdst: Option<PTag>,
    /// The uop's previous ptag was invalidated by ATR at rename.
    pub atr_freed_prev: bool,
    /// Eliminated move: the reference this squashed uop added must be
    /// dropped by the walk (§6's modified flush walk).
    pub alias: Option<PTag>,
    /// `(arch, ptag)` source pairs.
    pub srcs: [Option<(ArchReg, PTag)>; MAX_SRCS],
    /// Had the instruction issued before the flush?
    pub issued: bool,
}

/// The register renamer. See the [module docs](self) for the driving
/// protocol.
#[derive(Debug, Clone)]
pub struct Renamer {
    scheme: ReleaseScheme,
    stall_threshold: usize,
    checkpoint_policy: CheckpointPolicy,
    srt: RenameTable,
    committed: RenameTable,
    prf: PerClass<PhysRegFile>,
    free: PerClass<FreeList>,
    /// Redefine-delay pipeline: (effective cycle, ptag, generation).
    pending_redefines: VecDeque<(u64, PTag, u64)>,
    redefine_delay: u32,
    log: LifetimeLog,
    /// Bulk no-early-release marking events (diagnostics, §4.2.2).
    markings: u64,
    /// ATR claims whose redefining instruction has neither committed nor
    /// been squashed — the §4.1 interrupt-flush counter: flushing the
    /// ROB is only safe when this is zero.
    open_claims: u64,
    move_elimination: bool,
    /// Moves eliminated (no allocation performed).
    eliminated_moves: u64,
    /// Release-time legality checking enabled (see [`RenameConfig::audit`]).
    audit: bool,
}

impl Renamer {
    /// Creates a renamer in the architectural reset state.
    ///
    /// # Panics
    ///
    /// Panics if a physical register file is smaller than its
    /// architectural register count plus the stall threshold (the core
    /// could never rename).
    #[must_use]
    pub fn new(cfg: &RenameConfig) -> Self {
        let max_count = (1u32 << cfg.counter_width) - 2;
        let sizes = PerClass { int: cfg.int_prf_size, fp: cfg.fp_prf_size };
        for (class, &size) in sizes.iter() {
            assert!(
                size > class.arch_reg_count() + cfg.stall_threshold,
                "{class} PRF of {size} cannot cover {} architectural registers plus the {} stall watermark",
                class.arch_reg_count(),
                cfg.stall_threshold
            );
        }
        Renamer {
            scheme: cfg.scheme,
            stall_threshold: cfg.stall_threshold,
            checkpoint_policy: cfg.checkpoint_policy,
            srt: RenameTable::identity(),
            committed: RenameTable::identity(),
            prf: PerClass::from_fn(|class| {
                PhysRegFile::new(class, *sizes.get(class), class.arch_reg_count(), max_count)
            }),
            free: PerClass::from_fn(|class| {
                FreeList::new(class, class.arch_reg_count(), *sizes.get(class))
            }),
            pending_redefines: VecDeque::new(),
            redefine_delay: cfg.scheme.redefine_delay(),
            log: if cfg.collect_events { LifetimeLog::enabled() } else { LifetimeLog::disabled() },
            markings: 0,
            open_claims: 0,
            move_elimination: cfg.move_elimination,
            eliminated_moves: 0,
            audit: cfg.audit,
        }
    }

    /// The configured scheme.
    #[must_use]
    pub fn scheme(&self) -> ReleaseScheme {
        self.scheme
    }

    /// The configured checkpoint policy.
    #[must_use]
    pub fn checkpoint_policy(&self) -> CheckpointPolicy {
        self.checkpoint_policy
    }

    /// Can the rename stage accept instructions this cycle (free lists
    /// above the watermark)?
    #[must_use]
    pub fn can_rename(&self) -> bool {
        self.free.int.len() > self.stall_threshold && self.free.fp.len() > self.stall_threshold
    }

    /// Free registers of `class`.
    #[must_use]
    pub fn free_count(&self, class: RegClass) -> usize {
        self.free.get(class).len()
    }

    /// Allocated registers of `class`.
    #[must_use]
    pub fn occupancy(&self, class: RegClass) -> usize {
        self.prf.get(class).occupancy()
    }

    /// Release statistics of `class`.
    #[must_use]
    pub fn prf_stats(&self, class: RegClass) -> &PrfStats {
        self.prf.get(class).stats()
    }

    /// Bulk no-early-release marking operations performed.
    #[must_use]
    pub fn markings(&self) -> u64 {
        self.markings
    }

    /// ATR claims whose redefiner is still in flight (§4.1): the ROB may
    /// be flushed for an interrupt only when this is zero, because a
    /// flushed redefiner's already-released register cannot be restored.
    #[must_use]
    pub fn open_atr_claims(&self) -> u64 {
        self.open_claims
    }

    /// The lifetime event log.
    #[must_use]
    pub fn log(&self) -> &LifetimeLog {
        &self.log
    }

    /// Is the value behind `tag` produced (wakeup scoreboard)?
    #[must_use]
    pub fn is_ready(&self, tag: PTag) -> bool {
        self.prf.get(tag.class()).get(tag).ready
    }

    /// Marks `tag` produced (writeback).
    pub fn set_ready(&mut self, tag: PTag) {
        self.prf.get_mut(tag.class()).get_mut(tag).ready = true;
    }

    /// Takes a full SRT checkpoint (stored by the pipeline in the branch's
    /// ROB entry under [`CheckpointPolicy::EveryBranch`]).
    #[must_use]
    pub fn take_checkpoint(&self) -> SrtCheckpoint {
        self.srt.clone()
    }

    /// Current speculative mapping of `reg` (diagnostics and tests).
    #[must_use]
    pub fn current_mapping(&self, reg: ArchReg) -> PTag {
        self.srt.get(reg)
    }

    /// Is release-time legality checking on ([`RenameConfig::audit`])?
    #[must_use]
    pub fn audit_enabled(&self) -> bool {
        self.audit
    }

    /// The speculative rename table (auditor view).
    #[must_use]
    pub fn srt(&self) -> &RenameTable {
        &self.srt
    }

    /// The committed (retirement) rename table (auditor view).
    #[must_use]
    pub fn committed_table(&self) -> &RenameTable {
        &self.committed
    }

    /// The free list of `class` (auditor view).
    #[must_use]
    pub fn free_list(&self, class: RegClass) -> &FreeList {
        self.free.get(class)
    }

    /// The physical register file of `class` (auditor view).
    #[must_use]
    pub fn prf_file(&self, class: RegClass) -> &PhysRegFile {
        self.prf.get(class)
    }

    /// Claimed registers still waiting in the redefine-delay pipeline
    /// whose allocation generation is still current — the only way an
    /// allocated register may transiently be unreachable from any
    /// rename table or in-flight uop (a squashed redefiner's claim that
    /// survives the flush, §4.2.4).
    pub fn pending_claim_tags(&self) -> impl Iterator<Item = PTag> + '_ {
        self.pending_redefines.iter().filter_map(move |&(_, p, generation)| {
            let state = self.prf.get(p.class()).get(p);
            (state.allocated && state.generation == generation).then_some(p)
        })
    }

    /// Test-only fault injection: frees `p` unconditionally, bypassing
    /// every eligibility check and the lifetime log — the "released one
    /// cycle too early" bug class [`crate::audit`] exists to catch.
    /// Never call this outside auditor tests.
    #[doc(hidden)]
    pub fn inject_early_release(&mut self, p: PTag) {
        self.prf.get_mut(p.class()).on_release(p);
        self.free.get_mut(p.class()).release(p);
    }

    /// Renames one instruction in program order. `wrong_path` tags the
    /// allocation for analysis only — the renamer itself cannot know
    /// (and hardware does not know) whether fetch is on the wrong path.
    ///
    /// # Panics
    ///
    /// Panics if a destination is needed and the free list is empty; the
    /// pipeline must check [`Renamer::can_rename`] first.
    pub fn rename(
        &mut self,
        inst: &StaticInst,
        seq: u64,
        cycle: u64,
        wrong_path: bool,
    ) -> RenamedUop {
        let tracks = self.scheme.tracks_consumers();

        // Move elimination (§6): a register-to-register move renames its
        // destination onto the source's physical register and bumps the
        // reference count — no allocation, no execution. The move does
        // not *read* the value, so it registers no consumer.
        if self.move_elimination && inst.class == atr_isa::OpClass::Mov {
            if let (Some(dst), Some(src)) = (inst.dst, inst.srcs[0]) {
                if dst.class() == src.class() {
                    return self.rename_eliminated_move(dst, src, cycle);
                }
            }
        }

        // 1. Source lookup + consumer registration (§4.2.2).
        let mut psrcs = [None; MAX_SRCS];
        for (slot, src) in psrcs.iter_mut().zip(inst.srcs.iter()) {
            if let Some(a) = src {
                let p = self.srt.get(*a);
                *slot = Some(p);
                let mut overflowed = false;
                if tracks {
                    overflowed = self.prf.get_mut(a.class()).add_consumer(p);
                }
                let ev = self.prf.get(a.class()).get(p).event;
                self.log.update(ev, |r| {
                    r.consumers += 1;
                    r.overflowed |= overflowed;
                });
            }
        }

        // 2. Bulk no-early-release marking: a branch or exception-capable
        //    instruction makes every currently live ptag ineligible
        //    (§4.2.2). Runs before the destination is renamed so the
        //    previous mapping of this instruction's own destination is
        //    covered.
        let breaks = inst.class.breaks_atomic_region();
        let excepts = inst.class.may_raise_exception();
        if (breaks || excepts) && (self.scheme.atr_enabled() || self.log.is_enabled()) {
            self.mark_all_live(breaks);
        }

        // 3. Destination allocation and redefine processing.
        let mut uop = RenamedUop {
            psrcs,
            pdst: None,
            dst_arch: inst.dst,
            prev_ptag: None,
            atr_freed_prev: false,
            prev_event: None,
            dst_event: None,
            alias: None,
        };
        if let Some(a) = inst.dst {
            let class = a.class();
            let pdst = self
                .free
                .get_mut(class)
                .allocate()
                .expect("rename with empty free list: pipeline must check can_rename()");
            let dst_event = self.log.on_alloc(class, cycle, seq, wrong_path);
            self.prf.get_mut(class).on_alloc(pdst, dst_event);
            let prev = self.srt.set(a, pdst);
            let prev_state = *self.prf.get(class).get(prev);
            self.log.update(prev_state.event, |r| r.redefine_cycle = Some(cycle));
            uop.pdst = Some(pdst);
            uop.dst_event = dst_event;
            uop.prev_event = prev_state.event;

            if self.scheme.atr_enabled() && !prev_state.atr_blocked() && prev_state.refs == 1 {
                // The redefined register lived in an atomic commit
                // region: ATR claims its release; the previous-ptag
                // field is invalidated so commit cannot double free
                // (§4.2.4). With move elimination, only sole-reference
                // registers are claimable: a shared register stays in
                // the SRT through its other aliases, where later
                // marking or wrong-path consumers could strand the
                // claim (see DESIGN.md) — shared previous mappings
                // fall back to the commit/precommit paths, which
                // decrement the reference count (§6).
                uop.atr_freed_prev = true;
                self.open_claims += 1;
                self.prf.get_mut(class).get_mut(prev).atr_claimed = true;
                if self.redefine_delay == 0 {
                    self.apply_effective_redefine(prev, cycle);
                } else {
                    let generation = self.prf.get(class).get(prev).generation;
                    self.pending_redefines.push_back((
                        cycle + u64::from(self.redefine_delay),
                        prev,
                        generation,
                    ));
                }
            } else {
                uop.prev_ptag = Some(prev);
            }

            // A branch or exception-capable instruction also makes its
            // *own* destination ineligible: the region starting at this
            // instruction contains it (§3.2 regions are
            // endpoint-inclusive).
            if (breaks || excepts) && (self.scheme.atr_enabled() || self.log.is_enabled()) {
                self.prf.get_mut(class).mark_no_early_release(pdst, breaks);
                self.log.update(dst_event, |r| {
                    if breaks {
                        r.saw_branch = true;
                    } else {
                        r.saw_exception = true;
                    }
                });
            }
        }
        uop
    }

    fn rename_eliminated_move(&mut self, dst: ArchReg, src: ArchReg, cycle: u64) -> RenamedUop {
        self.eliminated_moves += 1;
        let class = dst.class();
        let p = self.srt.get(src);
        self.prf.get_mut(class).get_mut(p).refs += 1;
        let prev = self.srt.set(dst, p);
        let prev_state = *self.prf.get(class).get(prev);
        self.log.update(prev_state.event, |r| r.redefine_cycle = Some(cycle));
        let mut uop = RenamedUop {
            psrcs: [None; MAX_SRCS],
            pdst: None,
            dst_arch: Some(dst),
            prev_ptag: None,
            atr_freed_prev: false,
            prev_event: prev_state.event,
            dst_event: None,
            alias: Some(p),
        };
        // The redefinition of `dst` releases the previous mapping
        // through the usual paths; ATR may claim it (decrementing
        // instead of freeing happens inside `release`). Self-moves
        // (prev == p) must not be claimed: the "previous" value is the
        // register itself.
        if prev == p {
            uop.prev_ptag = Some(prev);
        } else if self.scheme.atr_enabled() && !prev_state.atr_blocked() && prev_state.refs == 1 {
            uop.atr_freed_prev = true;
            self.open_claims += 1;
            self.prf.get_mut(class).get_mut(prev).atr_claimed = true;
            if self.redefine_delay == 0 {
                self.apply_effective_redefine(prev, cycle);
            } else {
                let generation = self.prf.get(class).get(prev).generation;
                self.pending_redefines.push_back((
                    cycle + u64::from(self.redefine_delay),
                    prev,
                    generation,
                ));
            }
        } else {
            uop.prev_ptag = Some(prev);
        }
        uop
    }

    /// Moves eliminated so far (§6 extension).
    #[must_use]
    pub fn eliminated_moves(&self) -> u64 {
        self.eliminated_moves
    }

    fn mark_all_live(&mut self, is_branch: bool) {
        self.markings += 1;
        for (a, p) in self.srt.live().collect::<Vec<_>>() {
            let prf = self.prf.get_mut(a.class());
            prf.mark_no_early_release(p, is_branch);
            let ev = prf.get(p).event;
            self.log.update(ev, |r| {
                if is_branch {
                    r.saw_branch = true;
                } else {
                    r.saw_exception = true;
                }
            });
        }
    }

    /// Drains redefine-delay pipeline entries that become effective at
    /// `cycle` (§4.2.2's N-stage pipelined marking).
    pub fn tick(&mut self, cycle: u64) {
        while let Some(&(effective, p, generation)) = self.pending_redefines.front() {
            if effective > cycle {
                break;
            }
            self.pending_redefines.pop_front();
            let state = self.prf.get(p.class()).get(p);
            if state.allocated && state.generation == generation {
                self.apply_effective_redefine(p, cycle);
            }
        }
    }

    fn apply_effective_redefine(&mut self, p: PTag, cycle: u64) {
        let prf = self.prf.get_mut(p.class());
        prf.get_mut(p).redefined_effective = true;
        let state = *prf.get(p);
        if state.count == 0 && !state.atr_blocked() {
            self.release(p, ReleaseKind::Atomic, cycle);
        }
    }

    /// An instruction issued: decrement the consumer counts of its
    /// sources and fire any release that now qualifies (§4.2.3).
    pub fn on_issue(&mut self, psrcs: &[Option<PTag>; MAX_SRCS], cycle: u64) {
        let tracks = self.scheme.tracks_consumers();
        for p in psrcs.iter().flatten().copied() {
            let prf = self.prf.get_mut(p.class());
            debug_assert!(prf.get(p).allocated, "issued consumer of a freed register {p}");
            let ev = prf.get(p).event;
            self.log.update(ev, |r| {
                r.last_consume_cycle = Some(r.last_consume_cycle.unwrap_or(0).max(cycle));
            });
            if !tracks {
                continue;
            }
            let new_count = self.prf.get_mut(p.class()).consume(p);
            if new_count == 0 {
                self.maybe_release_on_zero(p, cycle);
            }
        }
    }

    fn maybe_release_on_zero(&mut self, p: PTag, cycle: u64) {
        let state = *self.prf.get(p.class()).get(p);
        if !state.allocated || state.count != 0 {
            return;
        }
        if state.redefined_effective && !state.atr_blocked() {
            self.release(p, ReleaseKind::Atomic, cycle);
        } else if state.armed_precommit && !state.er_blocked() {
            self.release(p, ReleaseKind::Precommit, cycle);
        }
    }

    /// The precommit pointer passed this uop (§2.3): record the
    /// timestamp and, for precommit-enabled schemes, release or arm the
    /// previous ptag.
    pub fn on_precommit(&mut self, uop: &mut RenamedUop, cycle: u64) {
        self.log.update(uop.prev_event, |r| {
            r.redefiner_precommit_cycle =
                Some(r.redefiner_precommit_cycle.unwrap_or(cycle).min(cycle));
        });
        if !self.scheme.precommit_enabled() {
            return;
        }
        let Some(prev) = uop.prev_ptag else { return };
        let state = *self.prf.get(prev.class()).get(prev);
        if state.er_blocked() || (state.count > 0 && state.armed_precommit) {
            // Leave the release for the commit path: an overflowed
            // count is untrustworthy, and a register some *other*
            // precommitted redefiner already armed (two aliases of one
            // register redefined in flight, §6) has a single armed bit
            // that can fire only one reference drop — booking a second
            // deferred drop on it would leak the register.
            return;
        }
        uop.prev_ptag = None;
        if state.count == 0 {
            self.release(prev, ReleaseKind::Precommit, cycle);
        } else {
            self.prf.get_mut(prev.class()).get_mut(prev).armed_precommit = true;
        }
    }

    /// The uop committed: free the previous ptag if still valid and
    /// update the committed RAT.
    pub fn on_commit(&mut self, uop: &RenamedUop, cycle: u64) {
        if uop.atr_freed_prev {
            debug_assert!(self.open_claims > 0, "claim imbalance at commit");
            self.open_claims -= 1;
        }
        self.log.update(uop.prev_event, |r| r.redefiner_commit_cycle = Some(cycle));
        if let Some(prev) = uop.prev_ptag {
            self.release(prev, ReleaseKind::RedefinerCommit, cycle);
        }
        if let (Some(a), Some(p)) = (uop.dst_arch, uop.result_ptag()) {
            self.committed.set(a, p);
        }
    }

    /// Release-time legality: each mechanism may only fire with its
    /// paper-mandated preconditions met. These are the point checks the
    /// cycle-level [`crate::audit::RenameAuditor`] cannot see (it only
    /// observes end-of-cycle state), so they live on the release path
    /// itself, behind the same flag.
    fn audit_release(&self, p: PTag, kind: ReleaseKind) {
        let state = self.prf.get(p.class()).get(p);
        assert!(state.allocated, "audit: {kind:?} release of non-allocated register {p}");
        match kind {
            ReleaseKind::Atomic => {
                assert!(state.atr_claimed, "audit: atomic release of {p}, which ATR never claimed");
                assert!(
                    state.redefined_effective,
                    "audit: atomic release of {p} before its redefine signal became effective"
                );
                assert!(
                    !state.atr_blocked(),
                    "audit: atomic release of {p} in a non-atomic region \
                     (branch={}, exception={}, overflowed={})",
                    state.marked_branch,
                    state.marked_exception,
                    state.overflowed
                );
                assert_eq!(
                    state.count, 0,
                    "audit: atomic release of {p} with mapped consumers outstanding"
                );
            }
            ReleaseKind::Precommit => {
                assert!(
                    !state.er_blocked(),
                    "audit: precommit release of {p} with an untrustworthy (overflowed) count"
                );
                assert_eq!(
                    state.count, 0,
                    "audit: precommit release of {p} with mapped consumers outstanding"
                );
            }
            // RedefinerCommit needs no count (the baseline scheme does
            // not track consumers); FlushWalk reclaims squashed state
            // whose counts are legitimately stale under ATR-only runs.
            ReleaseKind::RedefinerCommit | ReleaseKind::FlushWalk => {}
        }
    }

    fn release(&mut self, p: PTag, kind: ReleaseKind, cycle: u64) {
        if self.audit {
            self.audit_release(p, kind);
        }
        let prf = self.prf.get_mut(p.class());
        // Move elimination: drop one architectural reference; the
        // register stays allocated while other aliases live (§6:
        // "decrement instead of release").
        let r = prf.get_mut(p);
        debug_assert!(r.refs > 0, "release with zero references on {p}");
        r.refs -= 1;
        if r.refs > 0 {
            // Each early-release trigger (armed precommit, effective
            // redefine) is consumed by the one reference drop it fires,
            // and only that drop may clear it. A drop arriving through
            // another channel — a different alias's committing
            // redefiner, or the flush walk reclaiming a squashed
            // eliminated move — must leave a pending trigger armed: the
            // precommitted redefiner it belongs to already relinquished
            // its previous-ptag, so clearing the trigger loses that
            // deferred drop and leaks the register (caught by the
            // reachability check of [`crate::audit`]).
            match kind {
                ReleaseKind::Precommit => r.armed_precommit = false,
                ReleaseKind::Atomic => r.redefined_effective = false,
                ReleaseKind::RedefinerCommit | ReleaseKind::FlushWalk => {}
            }
            return;
        }
        let ev = prf.get(p).event;
        prf.on_release(p);
        match kind {
            ReleaseKind::RedefinerCommit => prf.stats_mut().released_commit += 1,
            ReleaseKind::Precommit => prf.stats_mut().released_precommit += 1,
            ReleaseKind::Atomic => prf.stats_mut().released_atomic += 1,
            ReleaseKind::FlushWalk => prf.stats_mut().released_flush += 1,
        }
        self.free.get_mut(p.class()).release(p);
        self.log.update(ev, |r| {
            r.release_cycle = Some(cycle);
            r.release_kind = Some(kind);
        });
    }

    /// Reclaims the physical destinations of squashed instructions.
    ///
    /// `records` must be ordered youngest → oldest (ROB tail to the
    /// flush point), matching the baseline walk of §4.2.1. Implements
    /// the §4.2.4 `redefined`/`consumed` two-bit algorithm so registers
    /// ATR already released are not double freed, and (for
    /// precommit-enabled schemes) restores consumer counts of squashed,
    /// un-issued consumers.
    pub fn flush_walk(&mut self, records: &[FlushRecord], cycle: u64) {
        let mut redefined = [false; NUM_ARCH_REGS];
        let mut consumed = [false; NUM_ARCH_REGS];
        let restore_counts = self.scheme.restores_counts_on_flush();

        for rec in records {
            if rec.atr_freed_prev {
                debug_assert!(self.open_claims > 0, "claim imbalance at flush");
                self.open_claims -= 1;
            }
            // (1) Decide whether this instruction's pdst was already
            //     ATR-released, then clear the flags.
            let mut skip_pdst = false;
            if let Some(d) = rec.dst_arch {
                let di = d.flat_index();
                if redefined[di] && consumed[di] {
                    skip_pdst = true;
                }
                redefined[di] = false;
                consumed[di] = false;
            }

            // (2) This instruction redefined a register ATR claimed:
            //     announce it to older walk entries. This must happen
            //     before the consumed-bit clearing of step (3) so a
            //     *self-consuming redefiner* (e.g. Fig 5's
            //     `SHR RBX <- RBX, ZPS`) clears the bit it just set when
            //     its own read never issued — the paper states the
            //     opposite order, which loses exactly that case (see
            //     DESIGN.md, paper-fidelity notes).
            if rec.atr_freed_prev {
                let d = rec.dst_arch.expect("ATR-freed prev implies a destination");
                redefined[d.flat_index()] = true;
                consumed[d.flat_index()] = true;
            }

            // (3) A squashed consumer that never issued means the
            //     producer's count never hit zero: clear the consumed
            //     bit; for ER schemes also repair the live count.
            for (a, p) in rec.srcs.iter().flatten().copied() {
                if !rec.issued {
                    if redefined[a.flat_index()] {
                        consumed[a.flat_index()] = false;
                    }
                    if restore_counts {
                        let prf = self.prf.get_mut(p.class());
                        if prf.get(p).allocated {
                            let new_count = prf.consume(p);
                            // Only the armed-precommit release may fire
                            // here: a zero reached through squashed
                            // consumers of an ATR-claimed register is
                            // handled by the two-bit algorithm (the
                            // squashed allocator's own record frees it).
                            if new_count == 0 {
                                let state = *self.prf.get(p.class()).get(p);
                                if state.armed_precommit && !state.er_blocked() {
                                    self.release(p, ReleaseKind::Precommit, cycle);
                                }
                            }
                        }
                    }
                }
            }

            // §6's modified walk: a squashed eliminated move drops the
            // reference it added — unless ATR already dropped it (a
            // younger squashed redefiner claimed this alias), which the
            // same redefined/consumed skip detects.
            if let Some(alias) = rec.alias {
                if skip_pdst {
                    self.prf.get_mut(alias.class()).stats_mut().flush_double_free_avoided += 1;
                } else {
                    self.release(alias, ReleaseKind::FlushWalk, cycle);
                }
            }

            // Reclaim the squashed allocation.
            if let Some(pdst) = rec.pdst {
                if skip_pdst {
                    self.prf.get_mut(pdst.class()).stats_mut().flush_double_free_avoided += 1;
                    // The skipped register is either already free or
                    // still waiting in the redefine-delay pipe, which
                    // will release it (its claim survives the flush
                    // because the whole atomic region flushed together).
                    debug_assert!(
                        !self.prf.get(pdst.class()).get(pdst).allocated
                            || self.prf.get(pdst.class()).get(pdst).atr_claimed,
                        "flush walk skipped a register ATR never claimed"
                    );
                } else {
                    self.release(pdst, ReleaseKind::FlushWalk, cycle);
                }
            }
        }
        debug_assert!(
            !redefined.iter().any(|&b| b),
            "dangling redefined bits: an ATR-released register's allocator was not squashed"
        );
    }

    /// Restores the SRT from a checkpoint taken at the flush point.
    pub fn restore_checkpoint(&mut self, cp: &SrtCheckpoint) {
        self.srt = cp.clone();
    }

    /// Pure reconstruction of the SRT from the committed RAT plus the
    /// surviving (uncommitted, unsquashed) destination mappings in age
    /// order, oldest first — what [`Renamer::restore_from_committed`]
    /// installs. Exposed so the auditor can cross-validate a checkpoint
    /// restore against the walk-based reconstruction: the two recovery
    /// policies must always agree on the post-flush table.
    #[must_use]
    pub fn rebuild_from_committed(
        &self,
        survivors: impl Iterator<Item = (ArchReg, PTag)>,
    ) -> RenameTable {
        let mut srt = self.committed.clone();
        for (a, p) in survivors {
            srt.set(a, p);
        }
        srt
    }

    /// Rebuilds the SRT from the committed RAT plus the surviving
    /// (uncommitted, unsquashed) destination mappings in age order,
    /// oldest first — the §4.2.1 ROB walk.
    pub fn restore_from_committed(&mut self, survivors: impl Iterator<Item = (ArchReg, PTag)>) {
        self.srt = self.rebuild_from_committed(survivors);
    }

    /// Sum of allocated registers across both files (diagnostics).
    #[must_use]
    pub fn total_occupancy(&self) -> usize {
        self.occupancy(RegClass::Int) + self.occupancy(RegClass::Fp)
    }

    /// Invariant check used by tests and debug builds: every physical
    /// register is either allocated or on the free list, never both.
    pub fn check_invariants(&self) {
        for (class, prf) in self.prf.iter() {
            let free = self.free.get(class);
            assert_eq!(
                prf.occupancy() + free.len(),
                prf.size(),
                "{class}: allocated + free != total"
            );
        }
    }
}
