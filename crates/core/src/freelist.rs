//! The physical-register free list.

use crate::ptag::PTag;
use atr_isa::RegClass;
use std::collections::VecDeque;

/// FIFO free list of physical register tags for one register class.
///
/// Rename stalls when the free list drops below the low-watermark
/// `MAX_DEST × WIDTH_STAGE` (§4.2.1); the watermark lives in the rename
/// configuration — the free list just reports its occupancy.
#[derive(Debug, Clone)]
pub struct FreeList {
    class: RegClass,
    free: VecDeque<PTag>,
    /// Debug shadow: is tag i currently free? Catches double frees —
    /// the failure ATR's §4.2.4 machinery exists to prevent.
    is_free: Vec<bool>,
    total: usize,
}

impl FreeList {
    /// Creates a free list holding tags `first..total` of `class`
    /// (tags below `first` are the initial architectural mappings).
    ///
    /// # Panics
    ///
    /// Panics if `first > total`.
    #[must_use]
    pub fn new(class: RegClass, first: usize, total: usize) -> Self {
        assert!(first <= total, "initial mappings exceed file size");
        let mut is_free = vec![false; total];
        let mut free = VecDeque::with_capacity(total);
        for (i, slot) in is_free.iter_mut().enumerate().skip(first) {
            free.push_back(PTag::new(class, i as u32));
            *slot = true;
        }
        FreeList { class, free, is_free, total }
    }

    /// Number of free tags.
    #[must_use]
    pub fn len(&self) -> usize {
        self.free.len()
    }

    /// True when no tags are free.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.free.is_empty()
    }

    /// Total physical registers (free + allocated).
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.total
    }

    /// Allocates the oldest free tag, or `None` when empty.
    pub fn allocate(&mut self) -> Option<PTag> {
        let tag = self.free.pop_front()?;
        debug_assert!(self.is_free[tag.index()]);
        self.is_free[tag.index()] = false;
        Some(tag)
    }

    /// Returns `tag` to the free list.
    ///
    /// # Panics
    ///
    /// Panics on a double free, a tag of the wrong class, or a tag
    /// beyond the file size — the correctness properties the release
    /// schemes must maintain. Each failure mode has its own message so
    /// a scheme bug is identified at the faulting release, not at some
    /// later allocation.
    pub fn release(&mut self, tag: PTag) {
        assert_eq!(tag.class(), self.class, "freed tag of wrong class");
        assert!(
            tag.index() < self.total,
            "freed tag {tag} out of range for a {}-register file",
            self.total
        );
        assert!(!self.is_free[tag.index()], "double free of physical register {tag}");
        self.is_free[tag.index()] = true;
        self.free.push_back(tag);
    }

    /// Is `tag` currently free? (diagnostics)
    #[must_use]
    pub fn contains(&self, tag: PTag) -> bool {
        self.is_free[tag.index()]
    }

    /// Every currently free tag, in allocation (FIFO) order — the
    /// auditor's view of the free set.
    pub fn iter(&self) -> impl Iterator<Item = PTag> + '_ {
        self.free.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_release_round_trip() {
        let mut fl = FreeList::new(RegClass::Int, 16, 64);
        assert_eq!(fl.len(), 48);
        let t = fl.allocate().unwrap();
        assert_eq!(t.index(), 16);
        assert_eq!(fl.len(), 47);
        fl.release(t);
        assert_eq!(fl.len(), 48);
    }

    #[test]
    fn allocation_is_fifo() {
        let mut fl = FreeList::new(RegClass::Int, 0, 4);
        let a = fl.allocate().unwrap();
        fl.release(a);
        // a went to the back; next allocations are 1, 2, 3, then a again.
        assert_eq!(fl.allocate().unwrap().index(), 1);
        assert_eq!(fl.allocate().unwrap().index(), 2);
        assert_eq!(fl.allocate().unwrap().index(), 3);
        assert_eq!(fl.allocate().unwrap().index(), 0);
    }

    #[test]
    fn exhaustion_returns_none() {
        let mut fl = FreeList::new(RegClass::Fp, 0, 2);
        assert!(fl.allocate().is_some());
        assert!(fl.allocate().is_some());
        assert!(fl.allocate().is_none());
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut fl = FreeList::new(RegClass::Int, 0, 4);
        let t = fl.allocate().unwrap();
        fl.release(t);
        fl.release(t);
    }

    #[test]
    #[should_panic(expected = "wrong class")]
    fn wrong_class_release_panics() {
        let mut fl = FreeList::new(RegClass::Int, 0, 4);
        fl.release(PTag::new(RegClass::Fp, 0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_release_panics() {
        let mut fl = FreeList::new(RegClass::Int, 0, 4);
        let t = fl.allocate().unwrap();
        let _ = t;
        fl.release(PTag::new(RegClass::Int, 4));
    }

    #[test]
    fn iter_matches_free_set() {
        let mut fl = FreeList::new(RegClass::Int, 2, 6);
        let a = fl.allocate().unwrap();
        let freed: Vec<usize> = fl.iter().map(|t| t.index()).collect();
        assert_eq!(freed, vec![3, 4, 5]);
        fl.release(a);
        assert_eq!(fl.iter().count(), fl.len());
        assert!(fl.iter().all(|t| fl.contains(t)));
    }

    #[test]
    fn initial_mappings_are_not_free() {
        let fl = FreeList::new(RegClass::Int, 16, 64);
        assert!(!fl.contains(PTag::new(RegClass::Int, 0)));
        assert!(fl.contains(PTag::new(RegClass::Int, 16)));
    }
}
