//! Cycle-level invariant auditing of the rename/release machinery.
//!
//! The paper's contribution lives entirely in release *timing*: a
//! physical register freed one cycle too early under ATR or Combined
//! silently corrupts every downstream figure while still producing
//! plausible IPC numbers. The [`RenameAuditor`] is the end-to-end
//! oracle over that machinery — attached to the pipeline behind
//! [`crate::RenameConfig::audit`], it re-derives the global release
//! invariants from scratch every cycle and reports any state the
//! schemes could only have reached through an illegal release:
//!
//! 1. **Partition** — the free set and the allocated set partition each
//!    physical register file: no overlap (a freed register still marked
//!    allocated) and no gap (`occupancy + free == size`).
//! 2. **Liveness** — every speculative-RAT mapping points at an
//!    allocated register; under the baseline scheme the committed RAT
//!    does too (early-release schemes legitimately free registers the
//!    committed RAT still names — that is the point of the paper).
//! 3. **Pending releases** — every in-flight `prev_ptag` (a release the
//!    redefiner will perform at precommit/commit) targets an allocated
//!    register; releasing it early would double-free at commit.
//! 4. **Consumer mapping** — no un-issued in-flight instruction has a
//!    source on the free list (the "released while a mapped consumer
//!    count is nonzero" failure).
//! 5. **Claim accounting** — the renamer's §4.1 interrupt counter
//!    equals the number of in-flight uops holding an ATR claim.
//! 6. **Reachability (no leak)** — every allocated register is
//!    referenced by the SRT, the committed RAT, an in-flight uop
//!    (destination, alias, or pending previous-ptag), or a surviving
//!    redefine-delay claim; an unreachable allocated register can never
//!    be freed again.
//! 7. **Reference balance** — a register's speculative-RAT slot count
//!    never exceeds its move-elimination reference count.
//!
//! Release-*time* legality (an atomic release must carry a claim, an
//! effective redefine, a zero count, and an unblocked region; a
//! precommit release a trustworthy zero count) is checked on the
//! release path itself by the renamer under the same flag, because
//! end-of-cycle state cannot reconstruct the order of intra-cycle
//! events. Flush recovery is cross-validated by
//! [`RenameAuditor::check_flush_restore`]: after every flush the
//! restored SRT must equal the walk-based reconstruction from the
//! committed RAT — checkpoint restores and ROB walks must agree.
//!
//! The auditor only reads renamer state; it never perturbs timing, so
//! audited runs retire the bit-identical instruction stream of
//! unaudited ones (pinned by `atr-sim`'s differential tests).

use crate::ptag::PTag;
use crate::renamer::{RenamedUop, Renamer};
use crate::scheme::ReleaseScheme;
use atr_isa::{ArchReg, RegClass};
use std::collections::{HashMap, HashSet};
use std::fmt;

/// One invariant violation: the cycle it was observed and a
/// human-readable description naming the register and the broken rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditViolation {
    /// Cycle the violating state was observed (at most one cycle after
    /// the illegal release that caused it).
    pub cycle: u64,
    /// What was wrong.
    pub message: String,
}

impl fmt::Display for AuditViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[cycle {}] {}", self.cycle, self.message)
    }
}

/// An in-flight instruction as the auditor sees it: its rename-stage
/// output plus whether it has issued (sources of un-issued instructions
/// must still be allocated).
pub type InflightUop<'a> = (&'a RenamedUop, bool);

/// The cycle-attached rename/release auditor. See the [module
/// docs](self) for the invariant catalogue.
///
/// Construct one per core, call [`RenameAuditor::check_cycle`] (or the
/// panicking [`RenameAuditor::enforce_cycle`]) once per simulated cycle
/// with the current ROB contents, and
/// [`RenameAuditor::check_flush_restore`] after every SRT recovery.
#[derive(Debug, Clone, Default)]
pub struct RenameAuditor {
    cycles_checked: u64,
    flushes_checked: u64,
    violations_found: u64,
}

impl RenameAuditor {
    /// A fresh auditor with zeroed counters.
    #[must_use]
    pub fn new() -> Self {
        RenameAuditor::default()
    }

    /// Cycles audited so far.
    #[must_use]
    pub fn cycles_checked(&self) -> u64 {
        self.cycles_checked
    }

    /// Flush restores audited so far.
    #[must_use]
    pub fn flushes_checked(&self) -> u64 {
        self.flushes_checked
    }

    /// Total violations reported so far.
    #[must_use]
    pub fn violations_found(&self) -> u64 {
        self.violations_found
    }

    /// Audits one end-of-cycle state. `inflight` is every un-squashed,
    /// un-committed instruction currently in the ROB (any order).
    /// Returns all violations found this cycle; an empty vector means
    /// every invariant held.
    pub fn check_cycle<'a>(
        &mut self,
        renamer: &Renamer,
        inflight: impl IntoIterator<Item = InflightUop<'a>>,
        cycle: u64,
    ) -> Vec<AuditViolation> {
        let uops: Vec<InflightUop<'a>> = inflight.into_iter().collect();
        let mut violations: Vec<AuditViolation> = Vec::new();
        let mut report = |message: String| violations.push(AuditViolation { cycle, message });

        // (1) Partition: free ⊎ allocated covers each file exactly.
        for class in RegClass::ALL {
            let prf = renamer.prf_file(class);
            let free = renamer.free_list(class);
            if prf.occupancy() + free.len() != prf.size() {
                report(format!(
                    "{class}: allocated ({}) + free ({}) != file size ({}) — a register \
                     leaked or was double-freed",
                    prf.occupancy(),
                    free.len(),
                    prf.size()
                ));
            }
            for tag in free.iter() {
                if prf.get(tag).allocated {
                    report(format!(
                        "{class}: register {tag} is on the free list but still marked allocated"
                    ));
                }
            }
        }

        // (2) Liveness: SRT mappings (and, for the baseline scheme,
        //     committed-RAT mappings) point at allocated registers.
        let mut srt_slots: HashMap<PTag, u32> = HashMap::new();
        for (a, p) in renamer.srt().live() {
            *srt_slots.entry(p).or_insert(0) += 1;
            if !renamer.prf_file(p.class()).get(p).allocated {
                report(format!(
                    "SRT maps {a} to {p}, but {p} is on the free list — an early release \
                     freed a live architectural mapping"
                ));
            }
        }
        if renamer.scheme() == ReleaseScheme::Baseline {
            for (a, p) in renamer.committed_table().live() {
                if !renamer.prf_file(p.class()).get(p).allocated {
                    report(format!(
                        "baseline: committed RAT maps {a} to {p}, but {p} is free — \
                         conventional release may only free at the redefiner's commit"
                    ));
                }
            }
        }

        // (7) Reference balance: a register cannot be named by more SRT
        //     slots than it has references (move elimination gives it
        //     one per alias; otherwise exactly one).
        for (&p, &slots) in &srt_slots {
            let state = renamer.prf_file(p.class()).get(p);
            if state.allocated && slots > state.refs {
                report(format!(
                    "{p} is named by {slots} SRT slots but holds only {} reference(s) — \
                     a future release will double-free it",
                    state.refs
                ));
            }
        }

        // (3)–(5) In-flight state: pending previous-ptag releases,
        //     un-issued consumer sources, and claim accounting.
        let mut open_claims = 0u64;
        for &(uop, issued) in &uops {
            if uop.atr_freed_prev {
                open_claims += 1;
            }
            if let Some(prev) = uop.prev_ptag {
                if !renamer.prf_file(prev.class()).get(prev).allocated {
                    report(format!(
                        "in-flight uop holds pending release of {prev}, but {prev} is already \
                         free — its commit would double-free"
                    ));
                }
            }
            if !issued {
                for p in uop.psrcs.iter().flatten() {
                    if !renamer.prf_file(p.class()).get(*p).allocated {
                        report(format!(
                            "un-issued in-flight uop sources {p}, but {p} is on the free \
                             list — released while its mapped consumer count was nonzero"
                        ));
                    }
                }
            }
        }
        if renamer.open_atr_claims() != open_claims {
            report(format!(
                "claim accounting diverged: renamer counts {} open ATR claims, the ROB \
                 holds {open_claims}",
                renamer.open_atr_claims()
            ));
        }

        // (6) Reachability: every allocated register is named somewhere
        //     that can eventually release it.
        let mut referenced: HashSet<PTag> = HashSet::new();
        referenced.extend(renamer.srt().live().map(|(_, p)| p));
        referenced.extend(renamer.committed_table().live().map(|(_, p)| p));
        for &(uop, _) in &uops {
            referenced.extend(uop.pdst);
            referenced.extend(uop.alias);
            referenced.extend(uop.prev_ptag);
        }
        referenced.extend(renamer.pending_claim_tags());
        for class in RegClass::ALL {
            for (tag, state) in renamer.prf_file(class).iter() {
                if state.allocated && !referenced.contains(&tag) {
                    report(format!(
                        "{tag} is allocated but unreachable from the SRT, the committed RAT, \
                         any in-flight uop, or the redefine-delay pipe — leaked \
                         (refs={}, count={}, armed={}, claimed={}, effective={}, overflowed={})",
                        state.refs,
                        state.count,
                        state.armed_precommit,
                        state.atr_claimed,
                        state.redefined_effective,
                        state.overflowed
                    ));
                }
            }
        }

        self.cycles_checked += 1;
        self.violations_found += violations.len() as u64;
        violations
    }

    /// [`RenameAuditor::check_cycle`], panicking on the first violating
    /// cycle with the full violation list — the mode the pipeline runs
    /// under `ATR_AUDIT=1`.
    ///
    /// # Panics
    ///
    /// Panics if any invariant is violated.
    pub fn enforce_cycle<'a>(
        &mut self,
        renamer: &Renamer,
        inflight: impl IntoIterator<Item = InflightUop<'a>>,
        cycle: u64,
    ) {
        let violations = self.check_cycle(renamer, inflight, cycle);
        assert!(violations.is_empty(), "rename audit failed:\n{}", render(&violations));
    }

    /// Cross-validates a completed flush recovery: the restored SRT
    /// must equal the walk reconstruction (committed RAT + surviving
    /// ROB mappings, oldest first) regardless of which recovery policy
    /// produced it. Catches checkpoint/walk divergence — a checkpoint
    /// restored at the wrong branch, a survivor map missing an
    /// eliminated move's alias, a walk that freed a surviving mapping.
    pub fn check_flush_restore(
        &mut self,
        renamer: &Renamer,
        survivors: impl Iterator<Item = (ArchReg, PTag)>,
        cycle: u64,
    ) -> Vec<AuditViolation> {
        let expected = renamer.rebuild_from_committed(survivors);
        let mut violations = Vec::new();
        for ((a, restored), (_, walked)) in renamer.srt().live().zip(expected.live()) {
            if restored != walked {
                violations.push(AuditViolation {
                    cycle,
                    message: format!(
                        "flush restore diverged at {a}: restored SRT maps it to {restored}, \
                         the committed-RAT walk rebuilds {walked}"
                    ),
                });
            }
        }
        self.flushes_checked += 1;
        self.violations_found += violations.len() as u64;
        violations
    }

    /// [`RenameAuditor::check_flush_restore`], panicking on divergence.
    ///
    /// # Panics
    ///
    /// Panics if the restored SRT differs from the walk reconstruction.
    pub fn enforce_flush_restore(
        &mut self,
        renamer: &Renamer,
        survivors: impl Iterator<Item = (ArchReg, PTag)>,
        cycle: u64,
    ) {
        let violations = self.check_flush_restore(renamer, survivors, cycle);
        assert!(violations.is_empty(), "flush-restore audit failed:\n{}", render(&violations));
    }
}

fn render(violations: &[AuditViolation]) -> String {
    violations.iter().map(|v| format!("  {v}\n")).collect()
}
