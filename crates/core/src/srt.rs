//! The speculative rename table (SRT / RAT).

use crate::ptag::{PTag, PerClass};
use atr_isa::{ArchReg, RegClass};

/// The speculative renaming table: the current architectural →
/// physical mapping for both register classes (§4.2.1).
///
/// The table is checkpointed on branches (policy-dependent) and restored
/// on flushes; walk-based recovery instead rebuilds it from the
/// committed RAT plus the surviving ROB mappings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RenameTable {
    map: PerClass<Vec<PTag>>,
}

impl RenameTable {
    /// Creates the reset-state table: architectural register `i` of each
    /// class maps to physical register `i` of that class.
    #[must_use]
    pub fn identity() -> Self {
        RenameTable {
            map: PerClass::from_fn(|class| {
                (0..class.arch_reg_count() as u32).map(|i| PTag::new(class, i)).collect()
            }),
        }
    }

    /// Current mapping of `reg`.
    #[must_use]
    pub fn get(&self, reg: ArchReg) -> PTag {
        self.map.get(reg.class())[reg.index() as usize]
    }

    /// Remaps `reg` to `tag`, returning the previous mapping.
    pub fn set(&mut self, reg: ArchReg, tag: PTag) -> PTag {
        debug_assert_eq!(reg.class(), tag.class(), "cross-class rename");
        let slot = &mut self.map.get_mut(reg.class())[reg.index() as usize];
        std::mem::replace(slot, tag)
    }

    /// Every live mapping, both classes: `(arch, ptag)` pairs. This is
    /// the set ATR's bulk no-early-release logic marks (§4.2.2).
    pub fn live(&self) -> impl Iterator<Item = (ArchReg, PTag)> + '_ {
        RegClass::ALL.into_iter().flat_map(move |class| {
            self.map
                .get(class)
                .iter()
                .enumerate()
                .map(move |(i, &t)| (ArchReg::new(class, i as u8), t))
        })
    }

    /// The live mappings of one class only.
    pub fn live_class(&self, class: RegClass) -> impl Iterator<Item = PTag> + '_ {
        self.map.get(class).iter().copied()
    }
}

impl Default for RenameTable {
    fn default() -> Self {
        RenameTable::identity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atr_isa::{NUM_ARCH_REGS, NUM_INT_ARCH_REGS};

    #[test]
    fn identity_maps_arch_to_same_index() {
        let t = RenameTable::identity();
        let r5 = ArchReg::int(5);
        assert_eq!(t.get(r5), PTag::new(RegClass::Int, 5));
        let v3 = ArchReg::fp(3);
        assert_eq!(t.get(v3), PTag::new(RegClass::Fp, 3));
    }

    #[test]
    fn set_returns_previous_mapping() {
        let mut t = RenameTable::identity();
        let r1 = ArchReg::int(1);
        let new = PTag::new(RegClass::Int, 40);
        let prev = t.set(r1, new);
        assert_eq!(prev, PTag::new(RegClass::Int, 1));
        assert_eq!(t.get(r1), new);
    }

    #[test]
    fn live_covers_all_arch_regs() {
        let t = RenameTable::identity();
        assert_eq!(t.live().count(), NUM_ARCH_REGS);
        assert_eq!(t.live_class(RegClass::Int).count(), NUM_INT_ARCH_REGS);
    }

    #[test]
    fn snapshot_restore_via_clone() {
        let mut t = RenameTable::identity();
        let snap = t.clone();
        t.set(ArchReg::int(2), PTag::new(RegClass::Int, 50));
        assert_ne!(t, snap);
        t = snap;
        assert_eq!(t.get(ArchReg::int(2)), PTag::new(RegClass::Int, 2));
    }
}
