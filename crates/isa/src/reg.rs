//! Architectural registers.
//!
//! The simulated machine has a split register space, mirroring the paper's
//! baseline (§4.2.1): a scalar integer file and a vector/floating-point
//! file, each with its own rename table and physical register file. An
//! [`ArchReg`] is a (class, index) pair; the flat
//! [`ArchReg::flat_index`] is used by structures that keep one entry per
//! architectural register ID (e.g. ATR's per-arch-reg `redefined`/`consumed`
//! bits during the flush walk).

use std::fmt;

/// Number of scalar integer architectural registers (x86-64 GPR count).
pub const NUM_INT_ARCH_REGS: usize = 16;
/// Number of vector/floating-point architectural registers.
pub const NUM_FP_ARCH_REGS: usize = 16;
/// Total architectural register IDs ("32 total for x86", §4.2.4).
pub const NUM_ARCH_REGS: usize = NUM_INT_ARCH_REGS + NUM_FP_ARCH_REGS;

/// The class of a register: which physical register file it renames into.
///
/// The paper assumes split scalar and vector register files with separate
/// rename tables; ATR applies identically to both (§4.2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RegClass {
    /// Scalar integer registers (64-bit values in the paper's overhead math).
    Int,
    /// Vector / floating-point registers (256-bit values).
    Fp,
}

impl RegClass {
    /// Both register classes, in a fixed order.
    pub const ALL: [RegClass; 2] = [RegClass::Int, RegClass::Fp];

    /// Number of architectural registers in this class.
    #[must_use]
    pub fn arch_reg_count(self) -> usize {
        match self {
            RegClass::Int => NUM_INT_ARCH_REGS,
            RegClass::Fp => NUM_FP_ARCH_REGS,
        }
    }

    /// Width in bits of one physical register of this class, used by the
    /// analytical power/area model and the overhead math of §4.4.
    #[must_use]
    pub fn bit_width(self) -> u32 {
        match self {
            RegClass::Int => 64,
            RegClass::Fp => 256,
        }
    }
}

impl fmt::Display for RegClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegClass::Int => f.write_str("int"),
            RegClass::Fp => f.write_str("fp"),
        }
    }
}

/// An architectural register: a class plus an index within that class.
///
/// # Examples
///
/// ```
/// use atr_isa::{ArchReg, RegClass};
///
/// let rax = ArchReg::int(0);
/// assert_eq!(rax.class(), RegClass::Int);
/// assert_eq!(rax.index(), 0);
/// assert_eq!(ArchReg::fp(3).flat_index(), 16 + 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ArchReg {
    class: RegClass,
    index: u8,
}

impl ArchReg {
    /// Creates a scalar integer register.
    ///
    /// # Panics
    ///
    /// Panics if `index >= NUM_INT_ARCH_REGS`.
    #[must_use]
    pub fn int(index: u8) -> Self {
        assert!((index as usize) < NUM_INT_ARCH_REGS, "int register index {index} out of range");
        ArchReg { class: RegClass::Int, index }
    }

    /// Creates a vector/FP register.
    ///
    /// # Panics
    ///
    /// Panics if `index >= NUM_FP_ARCH_REGS`.
    #[must_use]
    pub fn fp(index: u8) -> Self {
        assert!((index as usize) < NUM_FP_ARCH_REGS, "fp register index {index} out of range");
        ArchReg { class: RegClass::Fp, index }
    }

    /// Creates a register of the given class.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range for `class`.
    #[must_use]
    pub fn new(class: RegClass, index: u8) -> Self {
        match class {
            RegClass::Int => ArchReg::int(index),
            RegClass::Fp => ArchReg::fp(index),
        }
    }

    /// The register class (which physical file this renames into).
    #[must_use]
    pub fn class(self) -> RegClass {
        self.class
    }

    /// The index within the class.
    #[must_use]
    pub fn index(self) -> u8 {
        self.index
    }

    /// Flat index in `0..NUM_ARCH_REGS`, unique across both classes.
    ///
    /// Used for per-architectural-register-ID state such as ATR's
    /// `redefined` / `consumed` flush-walk bits (§4.2.4).
    #[must_use]
    pub fn flat_index(self) -> usize {
        match self.class {
            RegClass::Int => self.index as usize,
            RegClass::Fp => NUM_INT_ARCH_REGS + self.index as usize,
        }
    }

    /// Inverse of [`ArchReg::flat_index`].
    ///
    /// # Panics
    ///
    /// Panics if `flat >= NUM_ARCH_REGS`.
    #[must_use]
    pub fn from_flat_index(flat: usize) -> Self {
        assert!(flat < NUM_ARCH_REGS, "flat register index {flat} out of range");
        if flat < NUM_INT_ARCH_REGS {
            ArchReg::int(flat as u8)
        } else {
            ArchReg::fp((flat - NUM_INT_ARCH_REGS) as u8)
        }
    }

    /// Iterator over every architectural register of both classes.
    pub fn all() -> impl Iterator<Item = ArchReg> {
        (0..NUM_ARCH_REGS).map(ArchReg::from_flat_index)
    }
}

impl fmt::Display for ArchReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.class {
            RegClass::Int => write!(f, "r{}", self.index),
            RegClass::Fp => write!(f, "v{}", self.index),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_index_roundtrips() {
        for flat in 0..NUM_ARCH_REGS {
            let reg = ArchReg::from_flat_index(flat);
            assert_eq!(reg.flat_index(), flat);
        }
    }

    #[test]
    fn int_and_fp_flat_ranges_are_disjoint() {
        let int_max = ArchReg::int((NUM_INT_ARCH_REGS - 1) as u8).flat_index();
        let fp_min = ArchReg::fp(0).flat_index();
        assert!(int_max < fp_min);
    }

    #[test]
    fn all_enumerates_every_register_once() {
        let regs: Vec<ArchReg> = ArchReg::all().collect();
        assert_eq!(regs.len(), NUM_ARCH_REGS);
        let mut seen = [false; NUM_ARCH_REGS];
        for r in regs {
            assert!(!seen[r.flat_index()]);
            seen[r.flat_index()] = true;
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn int_index_out_of_range_panics() {
        let _ = ArchReg::int(NUM_INT_ARCH_REGS as u8);
    }

    #[test]
    fn display_names_distinguish_classes() {
        assert_eq!(ArchReg::int(3).to_string(), "r3");
        assert_eq!(ArchReg::fp(3).to_string(), "v3");
    }

    #[test]
    fn class_metadata() {
        assert_eq!(RegClass::Int.bit_width(), 64);
        assert_eq!(RegClass::Fp.bit_width(), 256);
        assert_eq!(RegClass::Int.arch_reg_count() + RegClass::Fp.arch_reg_count(), NUM_ARCH_REGS);
    }
}
