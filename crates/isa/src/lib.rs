//! Micro-op ISA model for the ATR out-of-order simulator.
//!
//! This crate defines the architectural vocabulary shared by every other
//! crate in the workspace: architectural registers ([`ArchReg`]), micro-op
//! classes ([`OpClass`]), static program instructions ([`StaticInst`]) and
//! dynamic instruction instances ([`DynInst`]) flowing through the pipeline.
//!
//! The model follows the paper's x86-like setup: a split scalar-integer /
//! vector-FP architectural register space (16 + 16 registers, matching the
//! "32 total for x86" architectural-ID count used by ATR's flush-walk
//! bookkeeping in §4.2.4), and micro-op classes that distinguish the three
//! properties ATR cares about at rename time:
//!
//! * **conditional / indirect control flow** ([`OpClass::breaks_atomic_region`]),
//! * **potential exceptions** ([`OpClass::may_raise_exception`]: loads,
//!   stores, and divisions, per §3.2),
//! * everything else, which can live inside an *atomic commit region*.
//!
//! # Examples
//!
//! ```
//! use atr_isa::{ArchReg, OpClass, StaticInst};
//!
//! let add = StaticInst::alu(0x1000, ArchReg::int(1), &[ArchReg::int(2), ArchReg::int(3)]);
//! assert_eq!(add.class, OpClass::IntAlu);
//! assert!(!add.class.breaks_atomic_region());
//!
//! let load = StaticInst::load(0x1004, ArchReg::int(1), ArchReg::int(2));
//! assert!(load.class.may_raise_exception());
//! ```

pub mod inst;
pub mod op;
pub mod reg;

pub use inst::{DynInst, DynOutcome, Exception, InstSeq, StaticInst, MAX_SRCS};
pub use op::{FuKind, OpClass};
pub use reg::{ArchReg, RegClass, NUM_ARCH_REGS, NUM_FP_ARCH_REGS, NUM_INT_ARCH_REGS};
