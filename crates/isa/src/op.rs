//! Micro-op classes and their pipeline-relevant properties.

use std::fmt;

/// The functional-unit kind an operation executes on.
///
/// Matches the Table 1 execution-port split (5 ALU, 3 load, 2 store).
/// Multiplies, divides, branches, and FP operations issue on ALU ports
/// (with their own latencies); divides additionally occupy their unit
/// non-pipelined.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FuKind {
    /// General execution ports (ALU, MUL, DIV, branch, FP/vector).
    Alu,
    /// Load pipelines (address generation + data-cache access).
    Load,
    /// Store pipelines (address generation; data written at commit).
    Store,
}

impl FuKind {
    /// All functional-unit kinds.
    pub const ALL: [FuKind; 3] = [FuKind::Alu, FuKind::Load, FuKind::Store];
}

/// Micro-operation class.
///
/// The classification captures exactly the properties the register-release
/// schemes depend on:
///
/// * [`OpClass::breaks_atomic_region`] — conditional branches and indirect
///   jumps, which can change control flow after rename and therefore
///   terminate atomic commit regions (§3.2);
/// * [`OpClass::may_raise_exception`] — loads, stores, and divisions,
///   which can raise precise exceptions and likewise terminate atomic
///   regions (§3.2);
/// * [`OpClass::blocks_precommit`] — the union of the two: instructions
///   the precommit pointer must wait on (§2.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// Single-cycle integer ALU operation (add, sub, logic, shifts, LEA).
    IntAlu,
    /// Pipelined integer multiply.
    IntMul,
    /// Non-pipelined integer divide. Exception-causing (divide by zero).
    IntDiv,
    /// Register-to-register move (candidate for move elimination).
    Mov,
    /// Memory load. Exception-causing (page fault).
    Load,
    /// Memory store. Exception-causing (page fault, protection).
    Store,
    /// Conditional direct branch (includes macro-fused cmp+jcc).
    CondBranch,
    /// Unconditional direct jump (resolved in the frontend; never
    /// mispredicts direction, target known from decode).
    DirectJump,
    /// Indirect jump or indirect call (target predicted; atomicity
    /// breaking per §3.2's region definition).
    IndirectJump,
    /// Direct call (pushes return address; target known from decode).
    Call,
    /// Return (target predicted via the return address stack).
    Return,
    /// Pipelined FP/vector add/sub/compare.
    FpAdd,
    /// Pipelined FP/vector multiply (and FMA).
    FpMul,
    /// Non-pipelined FP/vector divide / sqrt. Exception-causing.
    FpDiv,
    /// Single-cycle vector integer ALU operation.
    VecAlu,
    /// No-operation (still consumes a ROB slot).
    Nop,
}

impl OpClass {
    /// Every op class, for exhaustive tests and workload mixes.
    pub const ALL: [OpClass; 16] = [
        OpClass::IntAlu,
        OpClass::IntMul,
        OpClass::IntDiv,
        OpClass::Mov,
        OpClass::Load,
        OpClass::Store,
        OpClass::CondBranch,
        OpClass::DirectJump,
        OpClass::IndirectJump,
        OpClass::Call,
        OpClass::Return,
        OpClass::FpAdd,
        OpClass::FpMul,
        OpClass::FpDiv,
        OpClass::VecAlu,
        OpClass::Nop,
    ];

    /// Is this any control-flow instruction (changes or may change the PC)?
    #[must_use]
    pub fn is_control_flow(self) -> bool {
        matches!(
            self,
            OpClass::CondBranch
                | OpClass::DirectJump
                | OpClass::IndirectJump
                | OpClass::Call
                | OpClass::Return
        )
    }

    /// Can this instruction's *direction* be mispredicted?
    #[must_use]
    pub fn is_conditional(self) -> bool {
        matches!(self, OpClass::CondBranch)
    }

    /// Can this instruction's *target* be mispredicted?
    #[must_use]
    pub fn has_predicted_target(self) -> bool {
        matches!(self, OpClass::IndirectJump | OpClass::Return)
    }

    /// Does renaming this instruction terminate atomic commit regions
    /// because of control flow? Per §3.2 this is conditional branches and
    /// indirect jumps (returns are indirect). Unconditional direct jumps
    /// and direct calls cannot change control flow after decode, so they
    /// do not break regions.
    #[must_use]
    pub fn breaks_atomic_region(self) -> bool {
        matches!(self, OpClass::CondBranch | OpClass::IndirectJump | OpClass::Return)
    }

    /// Can this instruction raise a precise exception (page fault,
    /// divide-by-zero)? Per §3.2: memory instructions and divisions.
    #[must_use]
    pub fn may_raise_exception(self) -> bool {
        matches!(self, OpClass::Load | OpClass::Store | OpClass::IntDiv | OpClass::FpDiv)
    }

    /// Does the precommit pointer have to wait for this instruction to be
    /// resolved before passing it (§2.3's conditions (1)–(3))?
    #[must_use]
    pub fn blocks_precommit(self) -> bool {
        self.breaks_atomic_region() || self.may_raise_exception()
    }

    /// Is this a memory operation?
    #[must_use]
    pub fn is_memory(self) -> bool {
        matches!(self, OpClass::Load | OpClass::Store)
    }

    /// Is this a load?
    #[must_use]
    pub fn is_load(self) -> bool {
        matches!(self, OpClass::Load)
    }

    /// Is this a store?
    #[must_use]
    pub fn is_store(self) -> bool {
        matches!(self, OpClass::Store)
    }

    /// Which functional-unit kind executes this class.
    #[must_use]
    pub fn fu_kind(self) -> FuKind {
        match self {
            OpClass::Load => FuKind::Load,
            OpClass::Store => FuKind::Store,
            _ => FuKind::Alu,
        }
    }

    /// Execution latency in cycles, excluding memory-hierarchy time for
    /// loads (which is added by the data cache model) and excluding issue
    /// and writeback overhead.
    #[must_use]
    pub fn exec_latency(self) -> u32 {
        match self {
            OpClass::IntAlu | OpClass::Mov | OpClass::VecAlu | OpClass::Nop => 1,
            OpClass::CondBranch
            | OpClass::DirectJump
            | OpClass::IndirectJump
            | OpClass::Call
            | OpClass::Return => 1,
            OpClass::IntMul => 3,
            OpClass::IntDiv => 18,
            OpClass::Load | OpClass::Store => 1, // address generation
            OpClass::FpAdd => 3,
            OpClass::FpMul => 4,
            OpClass::FpDiv => 14,
        }
    }

    /// Is the functional unit occupied for the whole latency (divides) as
    /// opposed to fully pipelined?
    #[must_use]
    pub fn is_unpipelined(self) -> bool {
        matches!(self, OpClass::IntDiv | OpClass::FpDiv)
    }

    /// Short mnemonic used in disassembly-style debug output.
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        match self {
            OpClass::IntAlu => "alu",
            OpClass::IntMul => "mul",
            OpClass::IntDiv => "div",
            OpClass::Mov => "mov",
            OpClass::Load => "ld",
            OpClass::Store => "st",
            OpClass::CondBranch => "jcc",
            OpClass::DirectJump => "jmp",
            OpClass::IndirectJump => "jmp*",
            OpClass::Call => "call",
            OpClass::Return => "ret",
            OpClass::FpAdd => "fadd",
            OpClass::FpMul => "fmul",
            OpClass::FpDiv => "fdiv",
            OpClass::VecAlu => "valu",
            OpClass::Nop => "nop",
        }
    }
}

impl fmt::Display for OpClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atomicity_breaking_matches_paper_definition() {
        // §3.2: atomic regions exclude conditional branches and indirect
        // jumps...
        assert!(OpClass::CondBranch.breaks_atomic_region());
        assert!(OpClass::IndirectJump.breaks_atomic_region());
        assert!(OpClass::Return.breaks_atomic_region());
        // ...but direct jumps/calls cannot change control flow post-decode.
        assert!(!OpClass::DirectJump.breaks_atomic_region());
        assert!(!OpClass::Call.breaks_atomic_region());
        assert!(!OpClass::IntAlu.breaks_atomic_region());
    }

    #[test]
    fn exception_causing_matches_paper_definition() {
        // §3.2: loads, stores, and division.
        for c in [OpClass::Load, OpClass::Store, OpClass::IntDiv, OpClass::FpDiv] {
            assert!(c.may_raise_exception(), "{c} should be exception-causing");
        }
        for c in [OpClass::IntAlu, OpClass::Mov, OpClass::FpMul, OpClass::CondBranch] {
            assert!(!c.may_raise_exception(), "{c} should not be exception-causing");
        }
    }

    #[test]
    fn precommit_blockers_are_union_of_branches_and_exceptions() {
        for c in OpClass::ALL {
            assert_eq!(c.blocks_precommit(), c.breaks_atomic_region() || c.may_raise_exception());
        }
    }

    #[test]
    fn fu_kinds_route_memory_ops_to_memory_ports() {
        assert_eq!(OpClass::Load.fu_kind(), FuKind::Load);
        assert_eq!(OpClass::Store.fu_kind(), FuKind::Store);
        for c in OpClass::ALL {
            if !c.is_memory() {
                assert_eq!(c.fu_kind(), FuKind::Alu);
            }
        }
    }

    #[test]
    fn latencies_are_nonzero_and_divides_are_unpipelined() {
        for c in OpClass::ALL {
            assert!(c.exec_latency() >= 1);
        }
        assert!(OpClass::IntDiv.is_unpipelined());
        assert!(OpClass::FpDiv.is_unpipelined());
        assert!(!OpClass::IntMul.is_unpipelined());
    }

    #[test]
    fn conditional_and_indirect_predicates() {
        assert!(OpClass::CondBranch.is_conditional());
        assert!(!OpClass::Return.is_conditional());
        assert!(OpClass::Return.has_predicted_target());
        assert!(OpClass::IndirectJump.has_predicted_target());
        assert!(!OpClass::DirectJump.has_predicted_target());
    }

    #[test]
    fn mnemonics_are_unique() {
        let mut names: Vec<&str> = OpClass::ALL.iter().map(|c| c.mnemonic()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), OpClass::ALL.len());
    }
}
