//! Static and dynamic instruction representations.

use crate::op::OpClass;
use crate::reg::ArchReg;
use std::fmt;

/// Maximum number of register sources per micro-op.
pub const MAX_SRCS: usize = 3;

/// Monotonically increasing dynamic instruction sequence number; defines
/// the age order used by the ROB, LSQ, and flush logic.
pub type InstSeq = u64;

/// A precise exception a dynamic instruction may raise at execute and
/// deliver at commit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Exception {
    /// Page fault on a load or store.
    PageFault,
    /// Integer or FP divide by zero.
    DivideByZero,
}

impl fmt::Display for Exception {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Exception::PageFault => f.write_str("page fault"),
            Exception::DivideByZero => f.write_str("divide by zero"),
        }
    }
}

/// One instruction of the *static* program (the analogue of a decoded
/// binary). Fetch walks static instructions by PC — including down
/// mispredicted paths, which is what makes wrong-path register allocation
/// and ATR's double-free avoidance observable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StaticInst {
    /// Program counter of this instruction.
    pub pc: u64,
    /// Encoded size in bytes (used for fetch-block accounting).
    pub size: u8,
    /// Micro-op class.
    pub class: OpClass,
    /// Register sources (packed, `None`-padded).
    pub srcs: [Option<ArchReg>; MAX_SRCS],
    /// Register destination, if any.
    pub dst: Option<ArchReg>,
    /// PC of the next sequential instruction.
    pub fallthrough: u64,
    /// Taken target for direct control flow (`CondBranch`, `DirectJump`,
    /// `Call`). `None` for non-control-flow and indirect control flow.
    pub taken_target: Option<u64>,
}

impl StaticInst {
    /// Default encoded instruction size in bytes.
    pub const DEFAULT_SIZE: u8 = 4;

    /// Creates an instruction with explicit fields; `fallthrough` is
    /// derived from `pc` and the default size.
    #[must_use]
    pub fn new(pc: u64, class: OpClass, dst: Option<ArchReg>, srcs: &[ArchReg]) -> Self {
        assert!(srcs.len() <= MAX_SRCS, "too many sources");
        let mut s = [None; MAX_SRCS];
        for (slot, reg) in s.iter_mut().zip(srcs.iter()) {
            *slot = Some(*reg);
        }
        StaticInst {
            pc,
            size: Self::DEFAULT_SIZE,
            class,
            srcs: s,
            dst,
            fallthrough: pc + u64::from(Self::DEFAULT_SIZE),
            taken_target: None,
        }
    }

    /// Convenience constructor for a single-cycle ALU op.
    #[must_use]
    pub fn alu(pc: u64, dst: ArchReg, srcs: &[ArchReg]) -> Self {
        StaticInst::new(pc, OpClass::IntAlu, Some(dst), srcs)
    }

    /// Convenience constructor for a load `dst <- [base]`.
    #[must_use]
    pub fn load(pc: u64, dst: ArchReg, base: ArchReg) -> Self {
        StaticInst::new(pc, OpClass::Load, Some(dst), &[base])
    }

    /// Convenience constructor for a store `[base] <- data`.
    #[must_use]
    pub fn store(pc: u64, base: ArchReg, data: ArchReg) -> Self {
        StaticInst::new(pc, OpClass::Store, None, &[base, data])
    }

    /// Convenience constructor for a conditional branch reading `srcs`
    /// with taken target `target`.
    #[must_use]
    pub fn cond_branch(pc: u64, target: u64, srcs: &[ArchReg]) -> Self {
        let mut i = StaticInst::new(pc, OpClass::CondBranch, None, srcs);
        i.taken_target = Some(target);
        i
    }

    /// Convenience constructor for an unconditional direct jump.
    #[must_use]
    pub fn jump(pc: u64, target: u64) -> Self {
        let mut i = StaticInst::new(pc, OpClass::DirectJump, None, &[]);
        i.taken_target = Some(target);
        i
    }

    /// Iterator over the populated source registers.
    pub fn sources(&self) -> impl Iterator<Item = ArchReg> + '_ {
        self.srcs.iter().filter_map(|s| *s)
    }

    /// Number of populated source registers.
    #[must_use]
    pub fn source_count(&self) -> usize {
        self.srcs.iter().filter(|s| s.is_some()).count()
    }
}

impl fmt::Display for StaticInst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}: {}", self.pc, self.class.mnemonic())?;
        if let Some(d) = self.dst {
            write!(f, " {d} <-")?;
        }
        for s in self.sources() {
            write!(f, " {s}")?;
        }
        if let Some(t) = self.taken_target {
            write!(f, " -> {t:#x}")?;
        }
        Ok(())
    }
}

/// The architecturally correct (or, on the wrong path, synthesized)
/// outcome of one dynamic instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DynOutcome {
    /// For control flow: was the branch taken? Always `true` for
    /// unconditional control flow, `false` for non-control-flow.
    pub taken: bool,
    /// The next PC actually executed after this instruction.
    pub next_pc: u64,
    /// Effective address for loads and stores.
    pub mem_addr: Option<u64>,
    /// Exception this instruction raises when it reaches the head of the
    /// ROB (fault injection; `None` in normal runs).
    pub exception: Option<Exception>,
}

impl DynOutcome {
    /// Outcome for a non-control-flow, non-memory instruction.
    #[must_use]
    pub fn fallthrough(inst: &StaticInst) -> Self {
        DynOutcome { taken: false, next_pc: inst.fallthrough, mem_addr: None, exception: None }
    }
}

/// One dynamic instance of a static instruction, as produced by fetch.
///
/// Pipeline bookkeeping (rename results, timestamps, completion state)
/// lives in the pipeline's ROB entry, keeping this type a pure
/// trace-record that both the oracle stream and the wrong-path
/// synthesizer can produce.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DynInst {
    /// Global fetch-order sequence number (age).
    pub seq: InstSeq,
    /// The static instruction this instance executes.
    pub sinst: StaticInst,
    /// Architectural outcome (correct path) or synthesized outcome
    /// (wrong path).
    pub outcome: DynOutcome,
    /// True if fetched past an unresolved misprediction, i.e. this
    /// instance will certainly be squashed.
    pub on_wrong_path: bool,
    /// Index into the oracle stream for on-path instructions (used to
    /// resume fetch after a flush); meaningless on the wrong path.
    pub oracle_idx: u64,
}

impl DynInst {
    /// The dynamic taken/not-taken direction of this instance.
    #[must_use]
    pub fn taken(&self) -> bool {
        self.outcome.taken
    }

    /// The dynamic next PC of this instance.
    #[must_use]
    pub fn next_pc(&self) -> u64 {
        self.outcome.next_pc
    }
}

impl fmt::Display for DynInst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}{}] {}", self.seq, if self.on_wrong_path { " WP" } else { "" }, self.sinst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(i: u8) -> ArchReg {
        ArchReg::int(i)
    }

    #[test]
    fn constructors_populate_sources_in_order() {
        let i = StaticInst::alu(0x40, r(1), &[r(2), r(3)]);
        assert_eq!(i.srcs[0], Some(r(2)));
        assert_eq!(i.srcs[1], Some(r(3)));
        assert_eq!(i.srcs[2], None);
        assert_eq!(i.source_count(), 2);
        assert_eq!(i.dst, Some(r(1)));
    }

    #[test]
    fn fallthrough_is_pc_plus_size() {
        let i = StaticInst::alu(0x40, r(1), &[]);
        assert_eq!(i.fallthrough, 0x44);
    }

    #[test]
    fn branch_carries_target() {
        let b = StaticInst::cond_branch(0x10, 0x80, &[r(0)]);
        assert_eq!(b.taken_target, Some(0x80));
        assert!(b.class.is_conditional());
    }

    #[test]
    fn store_has_no_destination() {
        let s = StaticInst::store(0x20, r(4), r(5));
        assert_eq!(s.dst, None);
        assert_eq!(s.source_count(), 2);
    }

    #[test]
    #[should_panic(expected = "too many sources")]
    fn too_many_sources_panics() {
        let _ = StaticInst::new(0, OpClass::IntAlu, None, &[r(0), r(1), r(2), r(3)]);
    }

    #[test]
    fn display_is_nonempty_and_mentions_pc() {
        let i = StaticInst::load(0xdead0, r(1), r(2));
        let s = i.to_string();
        assert!(s.contains("0xdead0"));
        assert!(s.contains("ld"));
    }

    #[test]
    fn dyn_outcome_fallthrough_matches_static() {
        let i = StaticInst::alu(0x100, r(0), &[r(1)]);
        let o = DynOutcome::fallthrough(&i);
        assert!(!o.taken);
        assert_eq!(o.next_pc, i.fallthrough);
        assert_eq!(o.mem_addr, None);
    }
}
