//! End-to-end behavioral tests of the assembled core: wrong-path
//! execution, scheme orderings, precise exceptions, interrupts, and
//! determinism.

use atr_core::ReleaseScheme;
use atr_isa::RegClass;
use atr_pipeline::{CoreConfig, InterruptMode, OooCore};
use atr_workload::{spec, Oracle, ProfileParams};

fn quick_cfg() -> CoreConfig {
    CoreConfig::default()
}

fn run_ipc(cfg: &CoreConfig, seed: u64, insts: u64) -> f64 {
    let program = ProfileParams { seed, ..ProfileParams::default() }.build();
    let mut core = OooCore::new(cfg.clone(), Oracle::new(program));
    core.run(insts).ipc()
}

#[test]
fn ipc_is_in_a_plausible_band() {
    let ipc = run_ipc(&quick_cfg(), 3, 30_000);
    assert!(ipc > 0.05 && ipc < 6.0, "ipc {ipc}");
}

#[test]
fn runs_are_bit_deterministic() {
    let cfg = quick_cfg().with_rf_size(96);
    let program = ProfileParams { seed: 9, ..ProfileParams::default() }.build();
    let a = OooCore::new(cfg.clone(), Oracle::new(program.clone())).run(20_000);
    let b = OooCore::new(cfg, Oracle::new(program)).run(20_000);
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.flushes, b.flushes);
    assert_eq!(a.int_prf, b.int_prf);
    assert_eq!(a.fetched, b.fetched);
}

#[test]
fn wrong_path_execution_happens_and_is_squashed() {
    let program = spec::find_profile("deepsjeng").unwrap().build();
    let mut core = OooCore::new(quick_cfg(), Oracle::new(program));
    let stats = core.run(30_000);
    assert!(stats.flushes > 10, "branchy profile must flush: {}", stats.flushes);
    assert!(stats.wrong_path_fetched > 100);
    assert!(stats.wrong_path_renamed > 0, "wrong-path instructions must allocate registers");
    assert!(stats.retired >= 30_000);
}

#[test]
fn atr_scheme_survives_heavy_misprediction_with_double_free_checks() {
    // The FreeList panics on any double free, so simply running a
    // branchy workload under ATR exercises §4.2.4 end to end.
    let cfg = quick_cfg().with_rf_size(64).with_scheme(ReleaseScheme::Atr { redefine_delay: 0 });
    let program = spec::find_profile("leela").unwrap().build();
    let mut core = OooCore::new(cfg, Oracle::new(program));
    let stats = core.run(40_000);
    assert!(stats.int_prf.released_atomic > 100, "ATR must actually release");
    core.renamer().check_invariants();
}

#[test]
fn flush_walk_double_free_avoidance_fires_in_real_runs() {
    // Squashed regions that were already ATR-released must appear.
    let cfg = quick_cfg().with_rf_size(96).with_scheme(ReleaseScheme::Atr { redefine_delay: 0 });
    let program = spec::find_profile("deepsjeng").unwrap().build();
    let mut core = OooCore::new(cfg, Oracle::new(program));
    let stats = core.run(60_000);
    assert!(
        stats.int_prf.flush_double_free_avoided > 0,
        "no §4.2.4 skip fired in a branchy ATR run"
    );
}

#[test]
fn schemes_rank_as_the_paper_reports_at_small_rf() {
    let program = spec::find_profile("exchange2").unwrap().build();
    let ipc_of = |scheme: ReleaseScheme| {
        let cfg = quick_cfg().with_rf_size(64).with_scheme(scheme);
        OooCore::new(cfg, Oracle::new(program.clone())).run(60_000).ipc()
    };
    let baseline = ipc_of(ReleaseScheme::Baseline);
    let atomic = ipc_of(ReleaseScheme::Atr { redefine_delay: 0 });
    let er = ipc_of(ReleaseScheme::NonSpecEr);
    let combined = ipc_of(ReleaseScheme::Combined { redefine_delay: 0 });
    assert!(atomic > baseline * 1.005, "atomic {atomic} vs baseline {baseline}");
    assert!(er > baseline * 1.005, "nonspec-ER {er} vs baseline {baseline}");
    assert!(combined >= er * 0.99, "combined {combined} must not lose to ER {er}");
    assert!(combined > baseline * 1.01);
}

#[test]
fn schemes_converge_at_large_rf() {
    let program = spec::find_profile("x264").unwrap().build();
    let ipc_of = |scheme: ReleaseScheme| {
        let cfg = quick_cfg().with_rf_size(512).with_scheme(scheme);
        OooCore::new(cfg, Oracle::new(program.clone())).run(40_000).ipc()
    };
    let baseline = ipc_of(ReleaseScheme::Baseline);
    let combined = ipc_of(ReleaseScheme::Combined { redefine_delay: 0 });
    let rel = combined / baseline;
    assert!((0.97..1.06).contains(&rel), "no pressure -> no effect, got {rel}");
}

#[test]
fn atr_lowers_average_register_occupancy() {
    let program = spec::find_profile("exchange2").unwrap().build();
    let occupancy_of = |scheme: ReleaseScheme| {
        let cfg = quick_cfg().with_rf_size(280).with_scheme(scheme);
        let stats = OooCore::new(cfg, Oracle::new(program.clone())).run(40_000);
        stats.avg_int_prf_occupancy()
    };
    let baseline = occupancy_of(ReleaseScheme::Baseline);
    let atomic = occupancy_of(ReleaseScheme::Atr { redefine_delay: 0 });
    assert!(
        atomic < baseline * 0.97,
        "ATR must hold registers shorter: {atomic:.1} vs {baseline:.1}"
    );
}

#[test]
fn precise_exceptions_are_serviced_and_reexecuted() {
    for scheme in ReleaseScheme::ALL {
        let cfg = quick_cfg().with_rf_size(96).with_scheme(scheme);
        let program = ProfileParams { seed: 21, ..ProfileParams::default() }.build();
        let oracle = Oracle::with_exception_rate(program, 0.001);
        let mut core = OooCore::new(cfg, oracle);
        let stats = core.run(40_000);
        assert!(stats.exceptions > 0, "{scheme}: no exception was injected");
        assert!(stats.retired >= 40_000, "{scheme}: must retire past the faults");
        core.renamer().check_invariants();
    }
}

#[test]
fn exceptions_are_deterministic_across_schemes_count() {
    // The injected fault pattern is oracle-side, so every scheme sees
    // the same faulting instructions.
    let program = ProfileParams { seed: 21, ..ProfileParams::default() }.build();
    let count = |scheme: ReleaseScheme| {
        let cfg = quick_cfg().with_rf_size(512).with_scheme(scheme);
        OooCore::new(cfg, Oracle::with_exception_rate(program.clone(), 0.001))
            .run(30_000)
            .exceptions
    };
    let base = count(ReleaseScheme::Baseline);
    assert_eq!(base, count(ReleaseScheme::Atr { redefine_delay: 0 }));
    assert_eq!(base, count(ReleaseScheme::Combined { redefine_delay: 1 }));
}

#[test]
fn drain_interrupt_services_after_rob_empties() {
    let cfg = quick_cfg().with_scheme(ReleaseScheme::Atr { redefine_delay: 0 });
    let program = ProfileParams { seed: 5, ..ProfileParams::default() }.build();
    let mut core = OooCore::new(cfg, Oracle::new(program));
    let _ = core.run(5_000);
    core.request_interrupt(InterruptMode::Drain);
    let stats = core.run(10_000);
    assert_eq!(stats.interrupts, 1, "drain interrupt must be serviced");
    assert!(!core.interrupt_pending());
    assert!(stats.retired >= 15_000, "execution must continue after the handler");
    core.renamer().check_invariants();
}

#[test]
fn flush_interrupt_waits_for_open_atomic_claims() {
    let cfg = quick_cfg().with_rf_size(64).with_scheme(ReleaseScheme::Atr { redefine_delay: 0 });
    let program = spec::find_profile("exchange2").unwrap().build();
    let mut core = OooCore::new(cfg, Oracle::new(program));
    let _ = core.run(5_000);
    core.request_interrupt(InterruptMode::FlushAtRegionBoundary);
    let stats = core.run(10_000);
    assert_eq!(stats.interrupts, 1, "flush interrupt must be serviced");
    assert!(stats.retired >= 15_000);
    core.renamer().check_invariants();
}

#[test]
fn interrupt_modes_do_not_corrupt_register_state() {
    // Fire interrupts repeatedly under ATR; the free-list double-free
    // panics and invariant checks validate the §4.1 claim.
    let cfg =
        quick_cfg().with_rf_size(72).with_scheme(ReleaseScheme::Combined { redefine_delay: 1 });
    let program = spec::find_profile("leela").unwrap().build();
    let mut core = OooCore::new(cfg, Oracle::new(program));
    for i in 0..6 {
        let _ = core.run(3_000);
        let mode =
            if i % 2 == 0 { InterruptMode::FlushAtRegionBoundary } else { InterruptMode::Drain };
        core.request_interrupt(mode);
    }
    let stats = core.run(5_000);
    assert!(stats.interrupts >= 5);
    core.renamer().check_invariants();
}

#[test]
fn walk_only_checkpoint_policy_matches_checkpointing_results() {
    // SRT recovery via committed-RAT walk must produce an
    // architecturally identical run (same retired count trajectory).
    let program = spec::find_profile("deepsjeng").unwrap().build();
    let mut cfg_a = quick_cfg().with_rf_size(96);
    cfg_a.rename.checkpoint_policy = atr_core::CheckpointPolicy::EveryBranch;
    let mut cfg_b = quick_cfg().with_rf_size(96);
    cfg_b.rename.checkpoint_policy = atr_core::CheckpointPolicy::WalkOnly;
    let a = OooCore::new(cfg_a, Oracle::new(program.clone())).run(30_000);
    let b = OooCore::new(cfg_b, Oracle::new(program)).run(30_000);
    // Timing is identical in this model (restore latency is not charged
    // differently); at minimum the architectural stream must match.
    assert_eq!(a.retired, b.retired);
    assert_eq!(a.flushes, b.flushes);
    assert_eq!(a.cycles, b.cycles);
}

#[test]
fn fp_pressure_is_exercised_by_fp_profiles() {
    let program = spec::find_profile("namd").unwrap().build();
    let cfg = quick_cfg().with_rf_size(64);
    let stats = OooCore::new(cfg, Oracle::new(program)).run(20_000);
    assert!(
        stats.avg_fp_prf_occupancy() > 32.0,
        "fp profile must pressure the vector file: {:.1}",
        stats.avg_fp_prf_occupancy()
    );
    assert!(stats.fp_prf.allocations > 1_000);
}

#[test]
fn register_class_split_is_respected() {
    // Int profile barely touches the FP file.
    let program = spec::find_profile("mcf").unwrap().build();
    let stats = OooCore::new(quick_cfg(), Oracle::new(program)).run(20_000);
    assert!(stats.int_prf.allocations > 10 * stats.fp_prf.allocations.max(1));
    let _ = RegClass::Fp;
}

#[test]
fn move_elimination_reduces_allocations_and_keeps_correctness() {
    let program = spec::find_profile("perlbench").unwrap().build();
    let run_with = |elim: bool| {
        let mut cfg =
            quick_cfg().with_rf_size(64).with_scheme(ReleaseScheme::Atr { redefine_delay: 0 });
        cfg.rename.move_elimination = elim;
        let mut core = OooCore::new(cfg, Oracle::new(program.clone()));
        let stats = core.run(40_000);
        core.renamer().check_invariants();
        (stats, core.renamer().eliminated_moves())
    };
    let (base, elim0) = run_with(false);
    let (with, elim1) = run_with(true);
    assert_eq!(elim0, 0);
    assert!(elim1 > 100, "the mix contains moves to eliminate: {elim1}");
    assert!(
        with.int_prf.allocations < base.int_prf.allocations,
        "move elimination must cut allocations: {} vs {}",
        with.int_prf.allocations,
        base.int_prf.allocations
    );
    assert!(
        with.ipc() > base.ipc() * 0.98,
        "move elimination must not slow the core: {} vs {}",
        with.ipc(),
        base.ipc()
    );
}

#[test]
fn move_elimination_survives_flush_storms_under_all_schemes() {
    // Heavy mispredictions + aliased registers: the §6-modified flush
    // walk must keep reference counts exact (free-list panics otherwise).
    let program = spec::find_profile("deepsjeng").unwrap().build();
    for scheme in ReleaseScheme::ALL {
        let mut cfg = quick_cfg().with_rf_size(72).with_scheme(scheme);
        cfg.rename.move_elimination = true;
        let mut core = OooCore::new(cfg, Oracle::new(program.clone()));
        let stats = core.run(40_000);
        assert!(stats.retired >= 40_000, "{scheme}");
        core.renamer().check_invariants();
    }
}
