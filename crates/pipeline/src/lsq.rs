//! Split load/store queues with forwarding and disambiguation.

use atr_isa::InstSeq;

/// One store-queue entry.
#[derive(Debug, Clone, Copy)]
pub struct StoreEntry {
    /// Age of the store.
    pub seq: InstSeq,
    /// Effective address, known once the store's AGU ran.
    pub addr: Option<u64>,
    /// Cycle the address (and data) became available.
    pub ready_at: u64,
}

/// What a load's store-queue scan concluded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadCheck {
    /// No older store conflicts: access the cache.
    GoToMemory,
    /// An older store to the same word can forward its data (available
    /// at the given cycle).
    Forward {
        /// Cycle the forwarded data is available at the store.
        data_ready: u64,
    },
    /// An older store's address is still unknown: wait (conservative
    /// disambiguation).
    Wait,
}

/// The split load/store queues (Table 1: 96-entry load buffer, 64-entry
/// store buffer).
#[derive(Debug, Default)]
pub struct Lsq {
    loads: Vec<InstSeq>,
    stores: Vec<StoreEntry>,
    load_capacity: usize,
    store_capacity: usize,
}

impl Lsq {
    /// Creates the queues.
    ///
    /// # Panics
    ///
    /// Panics if either capacity is zero.
    #[must_use]
    pub fn new(load_capacity: usize, store_capacity: usize) -> Self {
        assert!(load_capacity > 0 && store_capacity > 0, "LSQ capacities must be non-zero");
        Lsq { loads: Vec::new(), stores: Vec::new(), load_capacity, store_capacity }
    }

    /// Can a load be dispatched?
    #[must_use]
    pub fn has_load_space(&self) -> bool {
        self.loads.len() < self.load_capacity
    }

    /// Can a store be dispatched?
    #[must_use]
    pub fn has_store_space(&self) -> bool {
        self.stores.len() < self.store_capacity
    }

    /// Dispatches a load.
    ///
    /// # Panics
    ///
    /// Panics when full.
    pub fn push_load(&mut self, seq: InstSeq) {
        assert!(self.has_load_space(), "load buffer overflow");
        self.loads.push(seq);
    }

    /// Dispatches a store (address unknown until it issues).
    ///
    /// # Panics
    ///
    /// Panics when full.
    pub fn push_store(&mut self, seq: InstSeq) {
        assert!(self.has_store_space(), "store buffer overflow");
        self.stores.push(StoreEntry { seq, addr: None, ready_at: 0 });
    }

    /// Records a store's computed address.
    pub fn store_address_ready(&mut self, seq: InstSeq, addr: u64, cycle: u64) {
        if let Some(e) = self.stores.iter_mut().find(|e| e.seq == seq) {
            e.addr = Some(addr);
            e.ready_at = cycle;
        }
    }

    /// Scans older stores for a load at `addr` (word granularity).
    /// `conservative` makes unknown older-store addresses block the load.
    #[must_use]
    pub fn check_load(&self, seq: InstSeq, addr: u64, conservative: bool) -> LoadCheck {
        let word = addr & !7;
        let mut best: Option<&StoreEntry> = None;
        for st in self.stores.iter().filter(|s| s.seq < seq) {
            match st.addr {
                None => {
                    if conservative {
                        return LoadCheck::Wait;
                    }
                }
                Some(a) => {
                    if a & !7 == word && best.is_none_or(|b| st.seq > b.seq) {
                        best = Some(st);
                    }
                }
            }
        }
        match best {
            Some(st) => LoadCheck::Forward { data_ready: st.ready_at },
            None => LoadCheck::GoToMemory,
        }
    }

    /// Retires a load (commit).
    pub fn retire_load(&mut self, seq: InstSeq) {
        self.loads.retain(|&s| s != seq);
    }

    /// Retires a store (commit; the data drains to the cache afterward).
    pub fn retire_store(&mut self, seq: InstSeq) {
        self.stores.retain(|s| s.seq != seq);
    }

    /// Drops all entries younger than `seq` (flush).
    pub fn squash_younger(&mut self, seq: InstSeq) {
        self.loads.retain(|&s| s <= seq);
        self.stores.retain(|s| s.seq <= seq);
    }

    /// Drops everything (exception flush).
    pub fn clear(&mut self) {
        self.loads.clear();
        self.stores.clear();
    }

    /// (loads, stores) currently queued.
    #[must_use]
    pub fn occupancy(&self) -> (usize, usize) {
        (self.loads.len(), self.stores.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forwarding_picks_youngest_older_matching_store() {
        let mut lsq = Lsq::new(8, 8);
        lsq.push_store(1);
        lsq.push_store(3);
        lsq.store_address_ready(1, 0x1000, 10);
        lsq.store_address_ready(3, 0x1000, 20);
        match lsq.check_load(5, 0x1004, true) {
            LoadCheck::Forward { data_ready } => assert_eq!(data_ready, 20),
            other => panic!("expected forward, got {other:?}"),
        }
    }

    #[test]
    fn younger_stores_do_not_forward() {
        let mut lsq = Lsq::new(8, 8);
        lsq.push_store(9);
        lsq.store_address_ready(9, 0x1000, 10);
        assert_eq!(lsq.check_load(5, 0x1000, true), LoadCheck::GoToMemory);
    }

    #[test]
    fn unknown_older_address_blocks_conservative_loads() {
        let mut lsq = Lsq::new(8, 8);
        lsq.push_store(1);
        assert_eq!(lsq.check_load(5, 0x2000, true), LoadCheck::Wait);
        assert_eq!(
            lsq.check_load(5, 0x2000, false),
            LoadCheck::GoToMemory,
            "perfect disambiguation bypasses unknown stores"
        );
    }

    #[test]
    fn different_words_do_not_forward() {
        let mut lsq = Lsq::new(8, 8);
        lsq.push_store(1);
        lsq.store_address_ready(1, 0x1000, 10);
        assert_eq!(lsq.check_load(5, 0x1008, true), LoadCheck::GoToMemory);
    }

    #[test]
    fn squash_and_retire_maintain_occupancy() {
        let mut lsq = Lsq::new(4, 4);
        lsq.push_load(1);
        lsq.push_load(4);
        lsq.push_store(2);
        lsq.push_store(6);
        lsq.squash_younger(4);
        assert_eq!(lsq.occupancy(), (2, 1));
        lsq.retire_load(1);
        lsq.retire_store(2);
        assert_eq!(lsq.occupancy(), (1, 0));
    }

    #[test]
    #[should_panic(expected = "store buffer overflow")]
    fn store_overflow_panics() {
        let mut lsq = Lsq::new(1, 1);
        lsq.push_store(1);
        lsq.push_store(2);
    }
}
