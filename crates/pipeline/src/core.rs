//! The assembled out-of-order core and its cycle loop.
//!
//! Stage order within a [`OooCore::tick`] is reverse-pipeline (commit →
//! precommit → writeback → issue → dispatch → fetch) so state written by
//! a younger stage is consumed by an older stage in the *next* cycle.

use crate::config::CoreConfig;
use crate::iq::IssueQueue;
use crate::lsq::{LoadCheck, Lsq};
use crate::rob::{Rob, RobEntry, RobState};
use crate::stats::CoreStats;
use crate::telemetry::{CoreTelemetry, CycleView};
use atr_core::{CheckpointPolicy, PTag, RegLifetime, RenameAuditor, Renamer};
use atr_frontend::{Bpu, Prediction};
use atr_isa::{ArchReg, DynInst, FuKind, InstSeq, OpClass, RegClass};
use atr_mem::{AccessKind, MemoryHierarchy, ServiceLevel};
use atr_telemetry::TraceStage;
use atr_workload::{synthesize_outcome, Oracle, Program, TraceSource};
use std::collections::VecDeque;
use std::sync::Arc;

/// How the core services an interrupt (§4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InterruptMode {
    /// Option (a): stop fetching and drain the ROB, then service. Needs
    /// no ATR modifications.
    Drain,
    /// Option (b): flush the ROB and re-execute after the handler —
    /// lower latency, but ATR must first commit past every open atomic
    /// claim (the §4.1 region counter), since a flushed redefiner's
    /// already-released register cannot be restored.
    FlushAtRegionBoundary,
}

/// One retired instruction of the architectural stream: the unit the
/// cross-scheme differential tests compare. Two runs of the same
/// program retire identical streams exactly when their release schemes
/// are architecturally equivalent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetiredInst {
    /// Index into the oracle's architectural stream.
    pub oracle_idx: u64,
    /// The instruction's PC.
    pub pc: u64,
    /// Architectural successor PC.
    pub next_pc: u64,
    /// Control flow taken?
    pub taken: bool,
    /// Memory address touched, for loads and stores.
    pub mem_addr: Option<u64>,
}

/// A fetched instruction waiting in the frontend pipe for rename.
#[derive(Debug, Clone)]
struct Fetched {
    inst: DynInst,
    prediction: Option<Prediction>,
    mispredicted: bool,
    ready_at: u64,
}

/// The cycle-level out-of-order core.
///
/// Construct with a [`CoreConfig`] and an [`Oracle`], then call
/// [`OooCore::run`]. See the [crate docs](crate) for the model overview.
pub struct OooCore {
    cfg: CoreConfig,
    cycle: u64,
    oracle: Box<dyn TraceSource>,
    program: Arc<Program>,
    bpu: Bpu,
    mem: MemoryHierarchy,
    renamer: Renamer,
    rob: Rob,
    iq: IssueQueue,
    lsq: Lsq,
    frontend: VecDeque<Fetched>,
    // Fetch state.
    fetch_pc: u64,
    next_oracle_idx: u64,
    on_wrong_path: bool,
    /// Wrong-path fetch ran off the program text; wait for the flush.
    wrong_path_dead: bool,
    wp_salt: u64,
    fetch_stall_until: u64,
    seq: InstSeq,
    // Execution state.
    div_busy_until: u64,
    stats: CoreStats,
    last_commit_cycle: u64,
    pending_interrupt: Option<InterruptMode>,
    /// Cycle-level invariant checker ([`atr_core::audit`]), attached
    /// when the rename config sets `audit`.
    auditor: Option<RenameAuditor>,
    /// Retired-stream capture for differential validation; off unless
    /// [`OooCore::enable_retire_log`] was called.
    retire_log: Option<Vec<RetiredInst>>,
    /// The observer ([`crate::telemetry`]); `None` when
    /// `ATR_TELEMETRY=off`, so the hot loop pays one branch per hook.
    telemetry: Option<Box<CoreTelemetry>>,
    /// End of the current exception/interrupt serialization window
    /// (telemetry attribution only — timing uses `fetch_stall_until`).
    serialize_until: u64,
    /// End of the current misprediction redirect window (telemetry
    /// attribution only).
    badspec_until: u64,
}

impl std::fmt::Debug for OooCore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OooCore")
            .field("cycle", &self.cycle)
            .field("retired", &self.stats.retired)
            .finish_non_exhaustive()
    }
}

impl OooCore {
    /// Builds a core over `oracle`'s program.
    #[must_use]
    pub fn new(cfg: CoreConfig, oracle: Oracle) -> Self {
        OooCore::with_source(cfg, Box::new(oracle))
    }

    /// Builds a core over any [`TraceSource`] — a live [`Oracle`] or a
    /// captured trace replay. Fetch starts at the source's
    /// [`start_index`](TraceSource::start_index), so a replay
    /// fast-forwarded to a checkpoint frame begins detailed simulation
    /// mid-stream (the warmup fast-forward path).
    #[must_use]
    pub fn with_source(cfg: CoreConfig, mut oracle: Box<dyn TraceSource>) -> Self {
        let program = oracle.program().clone();
        let start_idx = oracle.start_index();
        let fetch_pc =
            if start_idx == 0 { program.entry() } else { oracle.get(start_idx).sinst.pc };
        OooCore {
            bpu: Bpu::new(&cfg.bpu),
            mem: MemoryHierarchy::new(&cfg.mem),
            renamer: Renamer::new(&cfg.rename),
            rob: Rob::new(cfg.rob_size),
            iq: IssueQueue::new(cfg.rs_size),
            lsq: Lsq::new(cfg.load_buffer, cfg.store_buffer),
            frontend: VecDeque::new(),
            fetch_pc,
            next_oracle_idx: start_idx,
            on_wrong_path: false,
            wrong_path_dead: false,
            wp_salt: program.seed(),
            fetch_stall_until: 0,
            seq: 0,
            div_busy_until: 0,
            stats: CoreStats::default(),
            last_commit_cycle: 0,
            pending_interrupt: None,
            auditor: cfg.rename.audit.then(RenameAuditor::new),
            retire_log: None,
            telemetry: cfg
                .telemetry
                .stats_enabled()
                .then(|| Box::new(CoreTelemetry::new(cfg.telemetry, cfg.retire_width as u64))),
            serialize_until: 0,
            badspec_until: 0,
            cycle: 1,
            oracle,
            program,
            cfg,
        }
    }

    /// Runs until `max_insts` instructions retire (or the configured
    /// cycle cap). Returns the accumulated statistics.
    ///
    /// # Panics
    ///
    /// Panics if the pipeline makes no forward progress for 200k cycles
    /// (a model deadlock — always a bug).
    pub fn run(&mut self, max_insts: u64) -> CoreStats {
        let target = self.stats.retired + max_insts;
        while self.stats.retired < target && self.cycle < self.cfg.max_cycles {
            self.tick();
            assert!(
                self.cycle - self.last_commit_cycle < 200_000,
                "pipeline deadlock at cycle {}: head={:?}",
                self.cycle,
                self.rob.head().map(|e| (e.inst.seq, e.inst.sinst.class, e.state))
            );
        }
        let stats = self.snapshot_stats();
        if self.auditor.is_some() {
            if let Err(e) = stats.check_consistency() {
                panic!("CoreStats consistency audit failed: {e}");
            }
        }
        stats
    }

    /// Statistics snapshot including substrate counters.
    #[must_use]
    pub fn snapshot_stats(&self) -> CoreStats {
        let mut s = self.stats.clone();
        s.cycles = self.cycle;
        s.int_prf = *self.renamer.prf_stats(RegClass::Int);
        s.fp_prf = *self.renamer.prf_stats(RegClass::Fp);
        s.caches = self.mem.stats();
        s.dram = self.mem.dram_stats();
        s.markings = self.renamer.markings();
        s
    }

    /// The register lifetime log (when the rename config enables it).
    #[must_use]
    pub fn lifetime_log(&self) -> &[RegLifetime] {
        self.renamer.log().records()
    }

    /// Simulated cycles so far.
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.cycle
    }

    /// Current renamer (occupancy inspection in tests and examples).
    #[must_use]
    pub fn renamer(&self) -> &Renamer {
        &self.renamer
    }

    /// The attached invariant auditor, when the rename config enables
    /// auditing.
    #[must_use]
    pub fn auditor(&self) -> Option<&RenameAuditor> {
        self.auditor.as_ref()
    }

    /// The attached observer, when telemetry is at `stats` or above.
    #[must_use]
    pub fn telemetry(&self) -> Option<&CoreTelemetry> {
        self.telemetry.as_deref()
    }

    /// Detaches and returns the observer (runner aggregation after a
    /// finished run).
    pub fn take_telemetry(&mut self) -> Option<Box<CoreTelemetry>> {
        self.telemetry.take()
    }

    /// The current pipeline-trace window in Konata text format, when
    /// tracing (`ATR_TELEMETRY=trace`) is on.
    #[must_use]
    pub fn dump_konata(&self) -> Option<String> {
        self.telemetry.as_ref().filter(|t| t.tracing()).map(|t| t.trace.dump_konata())
    }

    /// Starts capturing every retired instruction for differential
    /// comparison. Call before [`OooCore::run`].
    pub fn enable_retire_log(&mut self) {
        self.retire_log = Some(Vec::new());
    }

    /// The captured retired stream (empty unless
    /// [`OooCore::enable_retire_log`] was called).
    #[must_use]
    pub fn retire_log(&self) -> &[RetiredInst] {
        self.retire_log.as_deref().unwrap_or(&[])
    }

    /// Requests an interrupt to be serviced with the given mode (§4.1).
    /// At most one can be pending; a second request is ignored.
    pub fn request_interrupt(&mut self, mode: InterruptMode) {
        if self.pending_interrupt.is_none() {
            self.pending_interrupt = Some(mode);
        }
    }

    /// Is an interrupt still waiting to be serviced?
    #[must_use]
    pub fn interrupt_pending(&self) -> bool {
        self.pending_interrupt.is_some()
    }

    /// Advances the model by one cycle.
    pub fn tick(&mut self) {
        if let Some(t) = self.telemetry.as_mut() {
            t.begin_cycle(
                self.stats.retired,
                self.stats.rename_freelist_stalls,
                self.stats.rename_backpressure_stalls,
            );
        }
        self.renamer.tick(self.cycle);
        self.commit();
        self.service_interrupt();
        self.advance_precommit();
        self.writeback();
        self.issue();
        self.dispatch();
        self.fetch();
        self.enforce_audit_cycle();
        self.stats.int_prf_occupancy_sum += self.renamer.occupancy(RegClass::Int) as u128;
        self.stats.fp_prf_occupancy_sum += self.renamer.occupancy(RegClass::Fp) as u128;
        if self.telemetry.is_some() {
            self.telemetry_end_cycle();
        }
        self.stats.cycles = self.cycle;
        self.cycle += 1;
    }

    /// Runs the renamer invariant audit; on failure, dumps the pipeline
    /// trace window (when tracing) before propagating the panic, so the
    /// cycles leading up to the violation can be inspected in Konata.
    fn enforce_audit_cycle(&mut self) {
        let Some(auditor) = self.auditor.as_mut() else { return };
        let (renamer, rob, cycle) = (&self.renamer, &self.rob, self.cycle);
        let dump_on_failure = self.telemetry.as_ref().is_some_and(|t| t.tracing());
        if !dump_on_failure {
            auditor.enforce_cycle(renamer, rob.iter().map(|e| (&e.uop, e.issued())), cycle);
            return;
        }
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            auditor.enforce_cycle(renamer, rob.iter().map(|e| (&e.uop, e.issued())), cycle);
        }));
        if let Err(payload) = outcome {
            if let Some(t) = self.telemetry.as_ref() {
                let path = std::env::var("ATR_TRACE_DUMP")
                    .unwrap_or_else(|_| format!("atr-audit-trace-cycle{cycle}.kanata"));
                match std::fs::write(&path, t.trace.dump_konata()) {
                    Ok(()) => atr_telemetry::info!(
                        "audit failure at cycle {cycle}: wrote {} trace events to {path}",
                        t.trace.len()
                    ),
                    Err(e) => atr_telemetry::warn!("could not write audit trace to {path}: {e}"),
                }
            }
            std::panic::resume_unwind(payload);
        }
    }

    /// End-of-cycle telemetry: CPI slot attribution and occupancy
    /// sampling. Only called when the observer is attached.
    fn telemetry_end_cycle(&mut self) {
        let head_mem_level = self.rob.head().and_then(|h| {
            (h.inst.sinst.class.is_load() && h.state == RobState::Issued)
                .then_some(h.mem_level)
                .flatten()
        });
        let rob_nonempty = !self.rob.is_empty();
        let serializing = self.pending_interrupt.is_some() || self.cycle < self.serialize_until;
        let redirecting = self.cycle < self.badspec_until;
        let (rob_len, int_occ, fp_occ) = (
            self.rob.len() as u64,
            self.renamer.occupancy(RegClass::Int) as u64,
            self.renamer.occupancy(RegClass::Fp) as u64,
        );
        let cycle = self.cycle;
        let audit = self.auditor.is_some();
        let t = self.telemetry.as_mut().expect("caller checked");
        let (retired, freelist_stalled, backpressure_stalled) = t.delta(
            self.stats.retired,
            self.stats.rename_freelist_stalls,
            self.stats.rename_backpressure_stalls,
        );
        t.end_cycle(&CycleView {
            retired,
            freelist_stalled,
            backpressure_stalled,
            rob_nonempty,
            head_mem_level,
            serializing,
            redirecting,
        });
        t.sample_occupancy(cycle, rob_len, int_occ, fp_occ);
        if audit {
            if let Err(e) = t.cpi.check() {
                panic!("cycle {cycle}: {e}");
            }
        }
    }

    /// Is the per-uop pipeline trace recording?
    #[inline]
    fn tracing(&self) -> bool {
        self.telemetry.as_ref().is_some_and(|t| t.tracing())
    }

    /// Pushes a pipeline-trace event when tracing is on.
    #[inline]
    fn trace_event(&mut self, seq: InstSeq, stage: TraceStage, label: &str) {
        if let Some(t) = self.telemetry.as_mut() {
            if t.tracing() {
                t.trace.push(seq, self.cycle, stage, label);
            }
        }
    }

    /// Records one flush's squash set: histogram plus trace events.
    fn observe_flush(&mut self, squashed: &[RobEntry], cause: &str) {
        let Some(t) = self.telemetry.as_mut() else { return };
        t.flush_walk_len.record(squashed.len() as u64);
        if t.tracing() {
            for e in squashed {
                t.trace.push(e.inst.seq, self.cycle, TraceStage::Flush, cause);
            }
        }
    }

    // ----------------------------------------------------------- fetch

    fn fetch(&mut self) {
        if self.cycle < self.fetch_stall_until || self.wrong_path_dead {
            return;
        }
        // Drain-mode interrupts stop fetching new instructions (§4.1a).
        if self.pending_interrupt == Some(InterruptMode::Drain) {
            return;
        }
        let cap = self.cfg.fetch_width * (self.cfg.frontend_depth as usize + 2);
        let mut taken_targets = 0usize;
        let mut cur_block = u64::MAX;
        let mut block_ready = self.cycle;

        for _ in 0..self.cfg.fetch_width {
            if self.frontend.len() >= cap {
                break;
            }
            // One I-cache access per touched 64 B block.
            let this_block = self.fetch_pc & !(self.cfg.fetch_block_bytes - 1);
            if this_block != cur_block {
                cur_block = this_block;
                block_ready = self.mem.access(AccessKind::InstFetch, this_block, self.cycle);
                if block_ready > self.cycle + self.cfg.mem.l1i.latency {
                    // I-cache miss: resume when the line arrives.
                    self.fetch_stall_until = block_ready;
                    break;
                }
            }

            // Build the dynamic instance and its prediction.
            let fetched = if self.on_wrong_path {
                let Some(sinst) = self.program.at(self.fetch_pc).copied() else {
                    // Fell off the program text down the wrong path.
                    self.wrong_path_dead = true;
                    break;
                };
                let prediction = if sinst.class.is_control_flow() {
                    Some(self.bpu.predict(&sinst))
                } else {
                    None
                };
                self.wp_salt = self.wp_salt.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let (ptaken, ptarget) =
                    prediction.as_ref().map_or((false, 0), |p| (p.taken, p.next_pc));
                let outcome = synthesize_outcome(&sinst, ptaken, ptarget, self.wp_salt);
                Fetched {
                    inst: DynInst {
                        seq: self.seq,
                        sinst,
                        outcome,
                        on_wrong_path: true,
                        oracle_idx: self.next_oracle_idx,
                    },
                    prediction,
                    mispredicted: false,
                    ready_at: 0,
                }
            } else {
                let d = *self.oracle.get(self.next_oracle_idx);
                debug_assert_eq!(
                    d.sinst.pc, self.fetch_pc,
                    "on-path fetch diverged from the oracle"
                );
                let (prediction, mispredicted) = if d.sinst.class.is_control_flow() {
                    let p = self.bpu.predict(&d.sinst);
                    let mis = p.next_pc != d.outcome.next_pc;
                    (Some(p), mis)
                } else {
                    (None, false)
                };
                self.next_oracle_idx += 1;
                Fetched {
                    inst: DynInst { seq: self.seq, ..d },
                    prediction,
                    mispredicted,
                    ready_at: 0,
                }
            };
            self.seq += 1;
            self.stats.fetched += 1;
            if fetched.inst.on_wrong_path {
                self.stats.wrong_path_fetched += 1;
            }
            if self.tracing() {
                let label = format!("{:?} {:#x}", fetched.inst.sinst.class, fetched.inst.sinst.pc);
                self.trace_event(fetched.inst.seq, TraceStage::Fetch, &label);
            }

            // Fetch follows the prediction; a misprediction sends the
            // stream down the wrong path until the branch resolves.
            let next_pc = match &fetched.prediction {
                Some(p) => p.next_pc,
                None => fetched.inst.sinst.fallthrough,
            };
            let predicted_taken = next_pc != fetched.inst.sinst.fallthrough;
            let btb_hit = fetched.prediction.as_ref().is_none_or(|p| p.btb_hit);
            if fetched.mispredicted {
                self.on_wrong_path = true;
            }
            self.fetch_pc = next_pc;

            let ready_at = block_ready.max(self.cycle) + u64::from(self.cfg.frontend_depth);
            self.frontend.push_back(Fetched { ready_at, ..fetched });

            if predicted_taken {
                if !btb_hit {
                    // Taken branch the BTB did not know: fetch bubble.
                    self.fetch_stall_until = self.cycle + u64::from(self.cfg.btb_miss_bubble);
                    break;
                }
                taken_targets += 1;
                if taken_targets >= self.cfg.fetch_targets_per_cycle {
                    break;
                }
                cur_block = u64::MAX; // force an access at the target block
            }
        }
    }

    // -------------------------------------------------------- dispatch

    fn dispatch(&mut self) {
        for _ in 0..self.cfg.rename_width {
            let Some(front) = self.frontend.front() else { break };
            if front.ready_at > self.cycle {
                break;
            }
            let class = front.inst.sinst.class;
            if self.rob.free() == 0
                || !self.iq.has_space()
                || (class.is_load() && !self.lsq.has_load_space())
                || (class.is_store() && !self.lsq.has_store_space())
            {
                self.stats.rename_backpressure_stalls += 1;
                break;
            }
            if !self.renamer.can_rename() {
                self.stats.rename_freelist_stalls += 1;
                break;
            }
            let f = self.frontend.pop_front().expect("checked front");
            let seq = f.inst.seq;
            let uop = self.renamer.rename(&f.inst.sinst, seq, self.cycle, f.inst.on_wrong_path);
            if f.inst.on_wrong_path {
                self.stats.wrong_path_renamed += 1;
            }
            let checkpoint = if self.renamer.checkpoint_policy() == CheckpointPolicy::EveryBranch
                && (class.is_conditional() || class.has_predicted_target())
            {
                Some(self.renamer.take_checkpoint())
            } else {
                None
            };
            if class.is_load() {
                self.lsq.push_load(seq);
            } else if class.is_store() {
                self.lsq.push_store(seq);
            }
            // An eliminated move (§6) allocates nothing and executes
            // nowhere: it completes at dispatch and skips the issue
            // queue; its result register is the (already tracked)
            // source.
            let eliminated = uop.pdst.is_none() && uop.alias.is_some();
            if !eliminated {
                self.iq.insert(seq);
            }
            self.rob.push(RobEntry {
                inst: f.inst,
                uop,
                state: if eliminated { RobState::Completed } else { RobState::Dispatched },
                complete_at: if eliminated { self.cycle } else { 0 },
                prediction: f.prediction,
                mispredicted: f.mispredicted,
                checkpoint,
                precommitted: false,
                renamed_at: self.cycle,
                mem_level: None,
            });
            self.trace_event(seq, TraceStage::Rename, "");
        }
    }

    // ----------------------------------------------------------- issue

    fn issue(&mut self) {
        let mut alu = self.cfg.num_alu;
        let mut loads = self.cfg.num_load;
        let mut stores = self.cfg.num_store;
        let mut issued: Vec<InstSeq> = Vec::new();

        let candidates: Vec<InstSeq> = self.iq.iter_oldest_first().collect();
        for seq in candidates {
            if alu == 0 && loads == 0 && stores == 0 {
                break;
            }
            let Some(entry) = self.rob.get(seq) else { continue };
            let class = entry.inst.sinst.class;
            let psrcs = entry.uop.psrcs;
            let mem_addr = entry.inst.outcome.mem_addr;
            match class.fu_kind() {
                FuKind::Alu if alu == 0 => continue,
                FuKind::Load if loads == 0 => continue,
                FuKind::Store if stores == 0 => continue,
                _ => {}
            }
            if class.is_unpipelined() && self.div_busy_until > self.cycle {
                continue;
            }
            if !psrcs.iter().flatten().all(|p| self.renamer.is_ready(*p)) {
                continue;
            }

            let mut mem_level: Option<ServiceLevel> = None;
            let complete_at = match class {
                OpClass::Load => {
                    let addr = mem_addr.expect("load without an address");
                    match self.lsq.check_load(seq, addr, !self.cfg.perfect_disambiguation) {
                        LoadCheck::Wait => continue,
                        LoadCheck::Forward { data_ready } => {
                            loads -= 1;
                            mem_level = Some(ServiceLevel::L1);
                            (self.cycle + 1).max(data_ready) + u64::from(self.cfg.forward_latency)
                        }
                        LoadCheck::GoToMemory => {
                            loads -= 1;
                            let done = self.mem.access(AccessKind::Load, addr, self.cycle + 1);
                            mem_level = Some(self.mem.last_service_level());
                            done
                        }
                    }
                }
                OpClass::Store => {
                    let addr = mem_addr.expect("store without an address");
                    stores -= 1;
                    self.lsq.store_address_ready(seq, addr, self.cycle + 1);
                    self.cycle + 1
                }
                _ => {
                    alu -= 1;
                    let done = self.cycle + u64::from(class.exec_latency());
                    if class.is_unpipelined() {
                        self.div_busy_until = done;
                    }
                    done
                }
            };

            let entry = self.rob.get_mut(seq).expect("entry exists");
            entry.state = RobState::Issued;
            entry.complete_at = complete_at;
            entry.mem_level = mem_level;
            self.renamer.on_issue(&psrcs, self.cycle);
            self.trace_event(seq, TraceStage::Issue, "");
            issued.push(seq);
        }
        self.iq.remove(&issued);
    }

    // ------------------------------------------------------- writeback

    fn writeback(&mut self) {
        let completing: Vec<InstSeq> = self
            .rob
            .iter()
            .filter(|e| e.state == RobState::Issued && e.complete_at <= self.cycle)
            .map(|e| e.inst.seq)
            .collect();

        let mut resolved_mispredict: Option<InstSeq> = None;
        for seq in completing {
            let (pdst, is_cf, on_wp, mispredicted, renamed_at) = {
                let e = self.rob.get_mut(seq).expect("completing entry");
                e.state = RobState::Completed;
                (
                    e.uop.pdst,
                    e.inst.sinst.class.is_control_flow(),
                    e.inst.on_wrong_path,
                    e.mispredicted,
                    e.renamed_at,
                )
            };
            if let Some(p) = pdst {
                self.renamer.set_ready(p);
            }
            self.trace_event(seq, TraceStage::Exec, "");
            if is_cf && !on_wp {
                if let Some(t) = self.telemetry.as_mut() {
                    t.branch_resolution.record(self.cycle.saturating_sub(renamed_at));
                }
                // Train at resolve with the architectural outcome.
                let e = self.rob.get(seq).expect("entry");
                let (sinst, taken, target) = (e.inst.sinst, e.inst.taken(), e.inst.next_pc());
                if let Some(pred) = e.prediction.clone() {
                    self.bpu.train(&sinst, &pred.snapshot, taken, target);
                }
                if mispredicted {
                    debug_assert!(resolved_mispredict.is_none(), "two live on-path mispredicts");
                    resolved_mispredict = Some(seq);
                }
            }
        }
        if let Some(seq) = resolved_mispredict {
            self.handle_mispredict(seq);
        }
    }

    /// The architectural mappings still live after a squash: every
    /// surviving ROB entry's destination, oldest first. Eliminated
    /// moves map their destination to the *alias* (they allocated
    /// nothing), hence `result_ptag`, not `pdst`.
    fn surviving_mappings(&self) -> Vec<(ArchReg, PTag)> {
        self.rob.iter().filter_map(|e| Some((e.uop.dst_arch?, e.uop.result_ptag()?))).collect()
    }

    /// Cross-validates a finished SRT recovery against the walk
    /// reconstruction when the auditor is attached.
    fn audit_flush_restore(&mut self, survivors: &[(ArchReg, PTag)]) {
        if let Some(auditor) = self.auditor.as_mut() {
            auditor.enforce_flush_restore(&self.renamer, survivors.iter().copied(), self.cycle);
        }
    }

    fn handle_mispredict(&mut self, seq: InstSeq) {
        self.stats.flushes += 1;
        let (sinst, prediction, checkpoint, taken, target, oracle_idx) = {
            let e = self.rob.get_mut(seq).expect("mispredicted entry");
            e.mispredicted = false;
            (
                e.inst.sinst,
                e.prediction.clone().expect("control flow has a prediction"),
                e.checkpoint.clone(),
                e.inst.taken(),
                e.inst.next_pc(),
                e.inst.oracle_idx,
            )
        };
        if sinst.class.is_conditional() {
            self.stats.cond_mispredicts += 1;
        } else {
            self.stats.target_mispredicts += 1;
        }

        // Frontend recovery: restore speculative state, re-apply the
        // corrected outcome.
        self.bpu.recover(&sinst, &prediction.snapshot, taken, target);

        // Backend recovery: squash, walk, restore the SRT.
        let squashed = self.rob.squash_younger(seq);
        self.observe_flush(&squashed, "mispredict");
        let records: Vec<atr_core::FlushRecord> =
            squashed.iter().map(|e| e.uop.flush_record(&e.inst.sinst, e.issued())).collect();
        self.renamer.flush_walk(&records, self.cycle);
        let survivors = self.surviving_mappings();
        match checkpoint {
            Some(cp) => self.renamer.restore_checkpoint(&cp),
            None => self.renamer.restore_from_committed(survivors.iter().copied()),
        }
        self.audit_flush_restore(&survivors);
        self.iq.squash_younger(seq);
        self.lsq.squash_younger(seq);
        self.frontend.clear();

        // Redirect fetch to the architectural path.
        self.on_wrong_path = false;
        self.wrong_path_dead = false;
        self.next_oracle_idx = oracle_idx + 1;
        self.fetch_pc = target;
        self.fetch_stall_until = self.cycle + u64::from(self.cfg.redirect_penalty);
        // Telemetry: the bad-speculation window covers the redirect
        // penalty plus the frontend refill before corrected-path
        // instructions can reach rename again.
        self.badspec_until = self.fetch_stall_until + u64::from(self.cfg.frontend_depth);
    }

    // ------------------------------------------------------- precommit

    /// Advances the precommit pointer (§2.3): an instruction precommits
    /// once every older branch is resolved and every older
    /// exception-capable instruction is known safe.
    fn advance_precommit(&mut self) {
        let mut passed: Vec<InstSeq> = Vec::new();
        let head_seq = match self.rob.head() {
            Some(h) => h.inst.seq,
            None => return,
        };
        for e in self.rob.iter() {
            if e.precommitted {
                continue;
            }
            // Bounded confirmation-tracking hardware: the pointer can
            // only run `precommit_lead` instructions past the head.
            if e.inst.seq.saturating_sub(head_seq) > self.cfg.precommit_lead as u64 {
                break;
            }
            let safe = match e.inst.sinst.class {
                OpClass::CondBranch | OpClass::IndirectJump | OpClass::Return => {
                    e.completed() && !e.mispredicted
                }
                // §3.1: loads/stores must be "guaranteed not to cause
                // an exception" — i.e. their address is generated and
                // translated. The paper's own Fig 5 shows the load I1
                // precommitting at its execute time (675), not at data
                // return (839), so issue/AGU is the gate.
                OpClass::Load | OpClass::Store => e.issued() && e.inst.outcome.exception.is_none(),
                OpClass::IntDiv | OpClass::FpDiv => {
                    e.completed() && e.inst.outcome.exception.is_none()
                }
                _ => true,
            };
            if !safe {
                break;
            }
            debug_assert!(
                !e.inst.on_wrong_path,
                "wrong-path instruction precommitting: seq {} class {:?}",
                e.inst.seq, e.inst.sinst.class
            );
            passed.push(e.inst.seq);
        }
        for seq in passed {
            let e = self.rob.get_mut(seq).expect("passed entry");
            e.precommitted = true;
            let mut uop = e.uop;
            self.renamer.on_precommit(&mut uop, self.cycle);
            self.rob.get_mut(seq).expect("passed entry").uop = uop;
            self.trace_event(seq, TraceStage::Precommit, "");
        }
    }

    // ---------------------------------------------------------- commit

    fn commit(&mut self) {
        for _ in 0..self.cfg.retire_width {
            let Some(head) = self.rob.head() else { break };
            if head.inst.outcome.exception.is_some() {
                if head.completed() {
                    self.handle_exception();
                }
                break;
            }
            if !head.completed() || !head.precommitted {
                break;
            }
            assert!(
                !head.inst.on_wrong_path,
                "committing a wrong-path instruction: seq {} pc {:#x} class {:?} oracle_idx {} precommitted {}",
                head.inst.seq, head.inst.sinst.pc, head.inst.sinst.class, head.inst.oracle_idx, head.precommitted
            );

            let head = self.rob.pop_head().expect("head exists");
            let seq = head.inst.seq;
            match head.inst.sinst.class {
                OpClass::Load => self.lsq.retire_load(seq),
                OpClass::Store => {
                    // Stores write the cache after commit (drain from the
                    // store buffer); bandwidth is charged, commit is not
                    // stalled.
                    let addr = head.inst.outcome.mem_addr.expect("store address");
                    let _ = self.mem.access(AccessKind::Store, addr, self.cycle);
                    self.lsq.retire_store(seq);
                }
                OpClass::CondBranch => self.stats.cond_branches += 1,
                _ => {}
            }
            self.renamer.on_commit(&head.uop, self.cycle);
            if self.tracing() {
                self.trace_event(seq, TraceStage::Commit, "");
                // The conventional commit-path release of the previous
                // mapping (ATR-claimed previous mappings were released
                // back at the redefine, inside the renamer).
                if head.uop.prev_ptag.is_some() && !head.uop.atr_freed_prev {
                    self.trace_event(seq, TraceStage::Release, "");
                }
            }
            if let Some(log) = self.retire_log.as_mut() {
                log.push(RetiredInst {
                    oracle_idx: head.inst.oracle_idx,
                    pc: head.inst.sinst.pc,
                    next_pc: head.inst.next_pc(),
                    taken: head.inst.taken(),
                    mem_addr: head.inst.outcome.mem_addr,
                });
            }
            self.stats.retired += 1;
            self.last_commit_cycle = self.cycle;
            if self.stats.retired.is_multiple_of(4096) {
                self.oracle.release_before(head.inst.oracle_idx);
            }
        }
    }

    /// Services a pending interrupt when its mode's condition is met.
    fn service_interrupt(&mut self) {
        let Some(mode) = self.pending_interrupt else { return };
        match mode {
            InterruptMode::Drain => {
                // Fetch is stopped; wait for the ROB and frontend pipe
                // to drain, then run the handler.
                if self.rob.is_empty() && self.frontend.is_empty() {
                    self.pending_interrupt = None;
                    self.stats.interrupts += 1;
                    self.fetch_stall_until = self.cycle + u64::from(self.cfg.exception_penalty);
                    self.serialize_until =
                        self.fetch_stall_until + u64::from(self.cfg.frontend_depth);
                    self.last_commit_cycle = self.cycle;
                }
            }
            InterruptMode::FlushAtRegionBoundary => {
                // §4.1b: wait until no atomic claim spans the flush
                // point, then flush the *unprecommitted* tail of the ROB
                // and re-execute it after the handler. Precommitted
                // instructions are past the point of no return — their
                // previous registers may already be ER-released — so
                // the flush point is the precommit pointer, and in the
                // unlikely worst case the interrupt fully drains the
                // ROB first.
                if self.renamer.open_atr_claims() > 0 {
                    self.stats.interrupt_wait_cycles += 1;
                    return;
                }
                let newest_precommitted =
                    self.rob.iter().take_while(|e| e.precommitted).last().map(|e| e.inst.seq);
                let squashed = match newest_precommitted {
                    Some(seq) => self.rob.squash_younger(seq),
                    None => self.rob.squash_all(),
                };
                if squashed.is_empty() && !self.rob.is_empty() {
                    // Everything in flight is precommitted: let commit
                    // drain it and retry.
                    self.stats.interrupt_wait_cycles += 1;
                    return;
                }
                // Resume at the oldest discarded architectural
                // instruction — it may sit in the squashed ROB suffix
                // or still in the frontend pipe (e.g. an unresolved
                // mispredicted branch that never renamed); with nothing
                // architectural discarded anywhere, the fetch cursor's
                // oracle index is the continuation.
                let resume_idx = squashed
                    .iter()
                    .rev()
                    .find(|e| !e.inst.on_wrong_path)
                    .map(|e| e.inst.oracle_idx)
                    .or_else(|| {
                        self.frontend
                            .iter()
                            .find(|f| !f.inst.on_wrong_path)
                            .map(|f| f.inst.oracle_idx)
                    })
                    .unwrap_or(self.next_oracle_idx);
                self.pending_interrupt = None;
                self.stats.interrupts += 1;
                self.observe_flush(&squashed, "interrupt");

                let records: Vec<atr_core::FlushRecord> = squashed
                    .iter()
                    .map(|e| e.uop.flush_record(&e.inst.sinst, e.issued()))
                    .collect();
                self.renamer.flush_walk(&records, self.cycle);
                let survivors = self.surviving_mappings();
                self.renamer.restore_from_committed(survivors.iter().copied());
                self.audit_flush_restore(&survivors);
                if let Some(p) = squashed.iter().rev().find_map(|e| e.prediction.as_ref()) {
                    self.bpu.restore(&p.snapshot);
                }
                match newest_precommitted {
                    Some(seq) => {
                        self.iq.squash_younger(seq);
                        self.lsq.squash_younger(seq);
                    }
                    None => {
                        self.iq.clear();
                        self.lsq.clear();
                    }
                }
                self.frontend.clear();
                self.on_wrong_path = false;
                self.wrong_path_dead = false;
                self.next_oracle_idx = resume_idx;
                self.fetch_pc = self.oracle.get(resume_idx).sinst.pc;
                self.fetch_stall_until = self.cycle + u64::from(self.cfg.exception_penalty);
                self.serialize_until = self.fetch_stall_until + u64::from(self.cfg.frontend_depth);
                self.last_commit_cycle = self.cycle;
            }
        }
    }

    fn handle_exception(&mut self) {
        self.stats.exceptions += 1;
        let squashed = self.rob.squash_all();
        self.observe_flush(&squashed, "exception");
        let oldest = squashed.last().expect("exception implies a head entry");
        let (resume_idx, resume_pc) = (oldest.inst.oracle_idx, oldest.inst.sinst.pc);

        let records: Vec<atr_core::FlushRecord> =
            squashed.iter().map(|e| e.uop.flush_record(&e.inst.sinst, e.issued())).collect();
        self.renamer.flush_walk(&records, self.cycle);
        self.renamer.restore_from_committed(std::iter::empty());
        self.audit_flush_restore(&[]);

        // Rewind the frontend's speculative state to before the oldest
        // squashed prediction; if none was made, the histories contain
        // only committed outcomes and are already consistent.
        if let Some(e) = squashed.iter().rev().find_map(|e| e.prediction.as_ref()) {
            self.bpu.restore(&e.snapshot);
        }
        self.iq.clear();
        self.lsq.clear();
        self.frontend.clear();

        // Service the fault, then re-execute from the faulting
        // instruction (its injected exception is now resolved).
        self.oracle.clear_exception(resume_idx);
        self.on_wrong_path = false;
        self.wrong_path_dead = false;
        self.next_oracle_idx = resume_idx;
        self.fetch_pc = resume_pc;
        self.fetch_stall_until = self.cycle + u64::from(self.cfg.exception_penalty);
        self.serialize_until = self.fetch_stall_until + u64::from(self.cfg.frontend_depth);
        self.last_commit_cycle = self.cycle;
    }
}

/// A program is driven through a fresh core; convenience for tests,
/// examples, and the experiment harness.
///
/// # Examples
///
/// ```
/// use atr_pipeline::{run_program, CoreConfig};
/// use atr_workload::ProfileParams;
///
/// let program = ProfileParams { seed: 7, ..ProfileParams::default() }.build();
/// let stats = run_program(&CoreConfig::default(), program, 10_000);
/// assert!(stats.retired >= 10_000);
/// ```
#[must_use]
pub fn run_program(cfg: &CoreConfig, program: Arc<Program>, max_insts: u64) -> CoreStats {
    let mut core = OooCore::new(cfg.clone(), Oracle::new(program));
    core.run(max_insts)
}
