//! The core-side telemetry observer.
//!
//! [`CoreTelemetry`] bundles everything the observability layer records
//! about one core: the CPI stack, the pipeline-level histograms, the
//! optional occupancy time series, and (at `trace` level) the per-uop
//! ring trace. It is a pure observer — nothing in here feeds back into
//! timing — and the whole struct is skipped when `ATR_TELEMETRY=off`,
//! so the hot loop takes its pre-telemetry branches.
//!
//! Cycle attribution works on *deltas*: [`CoreTelemetry::begin_cycle`]
//! snapshots the stall counters [`crate::CoreStats`] already maintains,
//! the stages run, and [`OooCore::tick`](crate::OooCore::tick) ends the
//! cycle by classifying the empty retire slots from the deltas plus the
//! machine state (ROB head, redirect/serialization windows). The
//! precedence order is documented in DESIGN.md §Observability.

use atr_mem::ServiceLevel;
use atr_telemetry::{CpiBucket, CpiStack, Log2Hist, PipeTrace, TelemetryConfig, TimeSeries};

/// Histogram names, shared with the sim layer's JSONL records.
pub mod hist_names {
    /// ROB occupancy sampled every cycle.
    pub const ROB_OCCUPANCY: &str = "rob_occupancy";
    /// Allocated integer physical registers, sampled every cycle.
    pub const INT_PRF_OCCUPANCY: &str = "int_prf_occupancy";
    /// Allocated FP physical registers, sampled every cycle.
    pub const FP_PRF_OCCUPANCY: &str = "fp_prf_occupancy";
    /// Squashed instructions per flush walk.
    pub const FLUSH_WALK_LEN: &str = "flush_walk_len";
    /// Rename-to-resolve latency of on-path control flow.
    pub const BRANCH_RESOLUTION: &str = "branch_resolution_latency";
    /// Allocation-to-release lifetime of physical registers (cycles).
    pub const REG_LIFETIME: &str = "reg_lifetime";
    /// Redefine-to-release duration of ATR atomic claims (cycles).
    pub const CLAIM_DURATION: &str = "claim_duration";
}

/// Scratch snapshot of the stall counters at the top of a cycle.
#[derive(Debug, Clone, Copy, Default)]
pub struct CycleScratch {
    retired: u64,
    freelist_stalls: u64,
    backpressure_stalls: u64,
}

/// What the rest of the machine reports into end-of-cycle attribution.
#[derive(Debug, Clone, Copy)]
pub struct CycleView {
    /// Instructions retired this cycle.
    pub retired: u64,
    /// Rename took a freelist-watermark stall this cycle.
    pub freelist_stalled: bool,
    /// Rename took a ROB/RS/LSQ backpressure stall this cycle.
    pub backpressure_stalled: bool,
    /// The ROB holds at least one instruction.
    pub rob_nonempty: bool,
    /// The ROB head is an issued, still-incomplete load, and this is
    /// the level that serviced (is servicing) its access.
    pub head_mem_level: Option<ServiceLevel>,
    /// An exception/interrupt serialization window is open.
    pub serializing: bool,
    /// A misprediction redirect window is open (recovery + refill).
    pub redirecting: bool,
}

/// Per-core observer state. Construct with [`CoreTelemetry::new`]; a
/// `None` observer (telemetry off) costs the pipeline one branch per
/// hook site.
#[derive(Debug)]
pub struct CoreTelemetry {
    cfg: TelemetryConfig,
    /// The CPI stack under construction.
    pub cpi: CpiStack,
    /// ROB occupancy histogram.
    pub rob_occupancy: Log2Hist,
    /// Integer PRF occupancy histogram.
    pub int_prf_occupancy: Log2Hist,
    /// FP PRF occupancy histogram.
    pub fp_prf_occupancy: Log2Hist,
    /// Flush-walk length histogram.
    pub flush_walk_len: Log2Hist,
    /// Branch resolution latency histogram.
    pub branch_resolution: Log2Hist,
    /// Integer PRF occupancy time series (when sampling is on).
    pub int_occ_series: TimeSeries,
    /// The per-uop ring trace (empty below `trace` level).
    pub trace: PipeTrace,
    scratch: CycleScratch,
}

impl CoreTelemetry {
    /// Builds the observer for a `retire_width`-wide core.
    #[must_use]
    pub fn new(cfg: TelemetryConfig, retire_width: u64) -> Self {
        CoreTelemetry {
            cpi: CpiStack::new(retire_width),
            rob_occupancy: Log2Hist::new(),
            int_prf_occupancy: Log2Hist::new(),
            fp_prf_occupancy: Log2Hist::new(),
            flush_walk_len: Log2Hist::new(),
            branch_resolution: Log2Hist::new(),
            int_occ_series: TimeSeries::new(cfg.series_interval),
            trace: PipeTrace::new(if cfg.trace_enabled() { cfg.trace_cap } else { 0 }),
            scratch: CycleScratch::default(),
            cfg,
        }
    }

    /// The configuration the observer was built with.
    #[must_use]
    pub fn config(&self) -> &TelemetryConfig {
        &self.cfg
    }

    /// Is the per-uop trace recording?
    #[must_use]
    pub fn tracing(&self) -> bool {
        !self.trace.is_disabled()
    }

    /// Snapshots the stall counters before the stages run.
    pub fn begin_cycle(&mut self, retired: u64, freelist_stalls: u64, backpressure_stalls: u64) {
        self.scratch = CycleScratch { retired, freelist_stalls, backpressure_stalls };
    }

    /// Builds the end-of-cycle view from the post-stage counters.
    #[must_use]
    pub fn delta(
        &self,
        retired: u64,
        freelist_stalls: u64,
        backpressure_stalls: u64,
    ) -> (u64, bool, bool) {
        (
            retired - self.scratch.retired,
            freelist_stalls > self.scratch.freelist_stalls,
            backpressure_stalls > self.scratch.backpressure_stalls,
        )
    }

    /// Attributes one cycle's empty retire slots. The precedence here
    /// is the contract documented in DESIGN.md §Observability: every
    /// empty slot gets exactly one cause, chosen by the first test
    /// that fires.
    pub fn end_cycle(&mut self, view: &CycleView) {
        let width = self.cpi.width;
        debug_assert!(view.retired <= width);
        if view.retired == width {
            self.cpi.account_cycle(view.retired, CpiBucket::Retiring);
            return;
        }
        let cause = if view.serializing {
            CpiBucket::Serialization
        } else if view.redirecting {
            CpiBucket::BadSpeculation
        } else if view.freelist_stalled {
            CpiBucket::FreelistStall
        } else if view.rob_nonempty {
            match view.head_mem_level {
                Some(ServiceLevel::L1) => CpiBucket::MemL1,
                Some(ServiceLevel::L2) => CpiBucket::MemL2,
                Some(ServiceLevel::Llc) => CpiBucket::MemLlc,
                Some(ServiceLevel::Dram) => CpiBucket::MemDram,
                None if view.backpressure_stalled => CpiBucket::Backpressure,
                None => CpiBucket::ExecLatency,
            }
        } else {
            CpiBucket::FrontendLatency
        };
        self.cpi.account_cycle(view.retired, cause);
    }

    /// Samples the occupancy histograms (and the optional series) for
    /// one cycle.
    pub fn sample_occupancy(&mut self, cycle: u64, rob: u64, int_prf: u64, fp_prf: u64) {
        self.rob_occupancy.record(rob);
        self.int_prf_occupancy.record(int_prf);
        self.fp_prf_occupancy.record(fp_prf);
        self.int_occ_series.maybe_sample(cycle, int_prf);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atr_telemetry::TelemetryLevel;

    fn view() -> CycleView {
        CycleView {
            retired: 0,
            freelist_stalled: false,
            backpressure_stalled: false,
            rob_nonempty: false,
            head_mem_level: None,
            serializing: false,
            redirecting: false,
        }
    }

    fn telem() -> CoreTelemetry {
        let cfg = TelemetryConfig { level: TelemetryLevel::Stats, ..TelemetryConfig::default() };
        CoreTelemetry::new(cfg, 8)
    }

    #[test]
    fn precedence_serialization_beats_everything() {
        let mut t = telem();
        t.end_cycle(&CycleView {
            serializing: true,
            redirecting: true,
            freelist_stalled: true,
            rob_nonempty: true,
            head_mem_level: Some(ServiceLevel::Dram),
            ..view()
        });
        assert_eq!(t.cpi.get(CpiBucket::Serialization), 8);
    }

    #[test]
    fn precedence_freelist_beats_memory() {
        let mut t = telem();
        t.end_cycle(&CycleView {
            freelist_stalled: true,
            rob_nonempty: true,
            head_mem_level: Some(ServiceLevel::Dram),
            ..view()
        });
        assert_eq!(t.cpi.get(CpiBucket::FreelistStall), 8);
    }

    #[test]
    fn memory_bound_classified_by_service_level() {
        let mut t = telem();
        t.end_cycle(&CycleView {
            retired: 2,
            rob_nonempty: true,
            backpressure_stalled: true, // mem-bound head outranks backpressure
            head_mem_level: Some(ServiceLevel::Llc),
            ..view()
        });
        assert_eq!(t.cpi.get(CpiBucket::Retiring), 2);
        assert_eq!(t.cpi.get(CpiBucket::MemLlc), 6);
        t.cpi.check().unwrap();
    }

    #[test]
    fn empty_rob_without_stalls_is_frontend() {
        let mut t = telem();
        t.end_cycle(&view());
        assert_eq!(t.cpi.get(CpiBucket::FrontendLatency), 8);
    }

    #[test]
    fn full_retire_skips_cause_analysis() {
        let mut t = telem();
        t.end_cycle(&CycleView { retired: 8, serializing: true, ..view() });
        assert_eq!(t.cpi.get(CpiBucket::Retiring), 8);
        assert_eq!(t.cpi.get(CpiBucket::Serialization), 0);
    }

    #[test]
    fn delta_capture_roundtrip() {
        let mut t = telem();
        t.begin_cycle(100, 5, 7);
        let (retired, fl, bp) = t.delta(104, 5, 8);
        assert_eq!(retired, 4);
        assert!(!fl);
        assert!(bp);
    }

    #[test]
    fn trace_ring_only_at_trace_level() {
        let stats_only = telem();
        assert!(!stats_only.tracing());
        let cfg = TelemetryConfig {
            level: TelemetryLevel::Trace,
            trace_cap: 128,
            ..TelemetryConfig::default()
        };
        let tracing = CoreTelemetry::new(cfg, 8);
        assert!(tracing.tracing());
    }
}
