//! The reorder buffer.

use atr_core::{RenamedUop, SrtCheckpoint};
use atr_frontend::Prediction;
use atr_isa::{DynInst, InstSeq};
use atr_mem::ServiceLevel;
use std::collections::VecDeque;

/// Execution state of a ROB entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RobState {
    /// Renamed, waiting in the reservation station.
    Dispatched,
    /// Issued to a functional unit; result pending.
    Issued,
    /// Result produced (branches: resolved).
    Completed,
}

/// One in-flight instruction.
#[derive(Debug, Clone)]
pub struct RobEntry {
    /// The dynamic instruction instance.
    pub inst: DynInst,
    /// Rename-stage output.
    pub uop: RenamedUop,
    /// Execution state.
    pub state: RobState,
    /// Cycle the result becomes available (valid once issued).
    pub complete_at: u64,
    /// Frontend prediction for control-flow instructions.
    pub prediction: Option<Prediction>,
    /// Direction/target misprediction, known to the simulator at fetch,
    /// enacted at resolve.
    pub mispredicted: bool,
    /// SRT checkpoint (branches under `CheckpointPolicy::EveryBranch`).
    pub checkpoint: Option<SrtCheckpoint>,
    /// Passed by the precommit pointer (§2.3).
    pub precommitted: bool,
    /// Cycle this entry was renamed (analysis).
    pub renamed_at: u64,
    /// For loads that went to memory: the hierarchy level servicing
    /// the access (telemetry's memory-bound classification).
    pub mem_level: Option<ServiceLevel>,
}

impl RobEntry {
    /// Has the instruction issued (or completed)?
    #[must_use]
    pub fn issued(&self) -> bool {
        !matches!(self.state, RobState::Dispatched)
    }

    /// Has the result been produced?
    #[must_use]
    pub fn completed(&self) -> bool {
        matches!(self.state, RobState::Completed)
    }
}

/// The reorder buffer: a bounded age-ordered queue indexed by sequence
/// number.
#[derive(Debug, Default)]
pub struct Rob {
    entries: VecDeque<RobEntry>,
    capacity: usize,
}

impl Rob {
    /// Creates a ROB with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ROB capacity must be non-zero");
        Rob { entries: VecDeque::with_capacity(capacity), capacity }
    }

    /// Occupied entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Free entries.
    #[must_use]
    pub fn free(&self) -> usize {
        self.capacity - self.entries.len()
    }

    /// Appends a renamed instruction.
    ///
    /// # Panics
    ///
    /// Panics when full or when `entry` is older than the tail.
    pub fn push(&mut self, entry: RobEntry) {
        assert!(self.entries.len() < self.capacity, "ROB overflow");
        if let Some(tail) = self.entries.back() {
            assert!(entry.inst.seq > tail.inst.seq, "ROB entries must be age-ordered");
        }
        self.entries.push_back(entry);
    }

    /// The oldest entry.
    #[must_use]
    pub fn head(&self) -> Option<&RobEntry> {
        self.entries.front()
    }

    /// Pops the oldest entry (commit).
    pub fn pop_head(&mut self) -> Option<RobEntry> {
        self.entries.pop_front()
    }

    /// Entry by sequence number. Sequence numbers are age-ordered but
    /// not contiguous (flushes leave gaps), so this is a binary search.
    #[must_use]
    pub fn get(&self, seq: InstSeq) -> Option<&RobEntry> {
        let idx = self.entries.partition_point(|e| e.inst.seq < seq);
        self.entries.get(idx).filter(|e| e.inst.seq == seq)
    }

    /// Mutable entry by sequence number.
    pub fn get_mut(&mut self, seq: InstSeq) -> Option<&mut RobEntry> {
        let idx = self.entries.partition_point(|e| e.inst.seq < seq);
        self.entries.get_mut(idx).filter(|e| e.inst.seq == seq)
    }

    /// Iterates oldest → youngest.
    pub fn iter(&self) -> impl Iterator<Item = &RobEntry> {
        self.entries.iter()
    }

    /// Mutable iteration oldest → youngest.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut RobEntry> {
        self.entries.iter_mut()
    }

    /// Removes and returns every entry younger than `seq`, youngest
    /// first (the flush squash set).
    pub fn squash_younger(&mut self, seq: InstSeq) -> Vec<RobEntry> {
        let keep = self.entries.iter().take_while(|e| e.inst.seq <= seq).count();
        let mut squashed: Vec<RobEntry> = self.entries.split_off(keep).into();
        squashed.reverse();
        squashed
    }

    /// Removes and returns every entry, youngest first (exception
    /// flush).
    pub fn squash_all(&mut self) -> Vec<RobEntry> {
        let mut all: Vec<RobEntry> = std::mem::take(&mut self.entries).into();
        all.reverse();
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atr_core::RenamedUop;
    use atr_isa::{ArchReg, DynOutcome, StaticInst, MAX_SRCS};

    fn entry(seq: u64) -> RobEntry {
        let sinst = StaticInst::alu(seq * 4, ArchReg::int(1), &[]);
        RobEntry {
            inst: DynInst {
                seq,
                sinst,
                outcome: DynOutcome::fallthrough(&sinst),
                on_wrong_path: false,
                oracle_idx: seq,
            },
            uop: RenamedUop {
                psrcs: [None; MAX_SRCS],
                pdst: None,
                dst_arch: None,
                prev_ptag: None,
                atr_freed_prev: false,
                prev_event: None,
                dst_event: None,
                alias: None,
            },
            state: RobState::Dispatched,
            complete_at: 0,
            prediction: None,
            mispredicted: false,
            checkpoint: None,
            precommitted: false,
            renamed_at: 0,
            mem_level: None,
        }
    }

    #[test]
    fn push_pop_in_order() {
        let mut rob = Rob::new(4);
        rob.push(entry(0));
        rob.push(entry(1));
        assert_eq!(rob.len(), 2);
        assert_eq!(rob.pop_head().unwrap().inst.seq, 0);
        assert_eq!(rob.head().unwrap().inst.seq, 1);
    }

    #[test]
    fn get_by_seq_after_commits() {
        let mut rob = Rob::new(8);
        for s in 0..5 {
            rob.push(entry(s));
        }
        rob.pop_head();
        rob.pop_head();
        assert_eq!(rob.get(3).unwrap().inst.seq, 3);
        assert!(rob.get(1).is_none());
        assert!(rob.get(99).is_none());
    }

    #[test]
    fn squash_younger_returns_youngest_first() {
        let mut rob = Rob::new(8);
        for s in 0..6 {
            rob.push(entry(s));
        }
        let squashed = rob.squash_younger(2);
        let seqs: Vec<u64> = squashed.iter().map(|e| e.inst.seq).collect();
        assert_eq!(seqs, vec![5, 4, 3]);
        assert_eq!(rob.len(), 3);
    }

    #[test]
    #[should_panic(expected = "ROB overflow")]
    fn overflow_panics() {
        let mut rob = Rob::new(1);
        rob.push(entry(0));
        rob.push(entry(1));
    }

    #[test]
    #[should_panic(expected = "age-ordered")]
    fn out_of_order_push_panics() {
        let mut rob = Rob::new(4);
        rob.push(entry(5));
        rob.push(entry(3));
    }
}
