//! Aggregate pipeline statistics.

use atr_core::PrfStats;
use atr_mem::CacheStats;

/// Counters collected over one simulation run.
#[derive(Debug, Clone, Default)]
pub struct CoreStats {
    /// Simulated cycles.
    pub cycles: u64,
    /// Committed (retired) instructions.
    pub retired: u64,
    /// Instructions fetched, including wrong-path.
    pub fetched: u64,
    /// Wrong-path instructions fetched.
    pub wrong_path_fetched: u64,
    /// Wrong-path instructions renamed (these allocate registers).
    pub wrong_path_renamed: u64,
    /// Conditional branches retired.
    pub cond_branches: u64,
    /// Conditional direction mispredictions (resolved, on-path).
    pub cond_mispredicts: u64,
    /// Indirect/return target mispredictions.
    pub target_mispredicts: u64,
    /// Pipeline flushes from branch mispredictions.
    pub flushes: u64,
    /// Precise exceptions serviced.
    pub exceptions: u64,
    /// Interrupts serviced (§4.1 extension).
    pub interrupts: u64,
    /// Cycles a flush-mode interrupt waited for open atomic claims.
    pub interrupt_wait_cycles: u64,
    /// Cycles rename stalled because a free list was at its watermark.
    pub rename_freelist_stalls: u64,
    /// Cycles rename stalled for ROB/RS/LQ/SQ space.
    pub rename_backpressure_stalls: u64,
    /// Σ over cycles of allocated integer physical registers.
    pub int_prf_occupancy_sum: u128,
    /// Σ over cycles of allocated FP physical registers.
    pub fp_prf_occupancy_sum: u128,
    /// Integer PRF release breakdown.
    pub int_prf: PrfStats,
    /// FP PRF release breakdown.
    pub fp_prf: PrfStats,
    /// L1I / L1D / L2 / LLC statistics.
    pub caches: (CacheStats, CacheStats, CacheStats, CacheStats),
    /// DRAM (reads, writes, row hits).
    pub dram: (u64, u64, u64),
    /// Bulk no-early-release marking operations (ATR, §4.2.2).
    pub markings: u64,
}

impl CoreStats {
    /// Retired instructions per cycle.
    #[must_use]
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.retired as f64 / self.cycles as f64
        }
    }

    /// Conditional branch misprediction rate (per retired branch).
    #[must_use]
    pub fn mispredict_rate(&self) -> f64 {
        if self.cond_branches == 0 {
            0.0
        } else {
            self.cond_mispredicts as f64 / self.cond_branches as f64
        }
    }

    /// Mispredictions per kilo-instruction.
    #[must_use]
    pub fn mpki(&self) -> f64 {
        if self.retired == 0 {
            0.0
        } else {
            (self.cond_mispredicts + self.target_mispredicts) as f64 * 1000.0 / self.retired as f64
        }
    }

    /// Mean allocated integer physical registers per cycle.
    #[must_use]
    pub fn avg_int_prf_occupancy(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.int_prf_occupancy_sum as f64 / self.cycles as f64
        }
    }

    /// Mean allocated FP physical registers per cycle.
    #[must_use]
    pub fn avg_fp_prf_occupancy(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.fp_prf_occupancy_sum as f64 / self.cycles as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_rates() {
        let s = CoreStats {
            cycles: 100,
            retired: 250,
            cond_branches: 50,
            cond_mispredicts: 5,
            target_mispredicts: 5,
            int_prf_occupancy_sum: 3200,
            ..CoreStats::default()
        };
        assert!((s.ipc() - 2.5).abs() < 1e-12);
        assert!((s.mispredict_rate() - 0.1).abs() < 1e-12);
        assert!((s.mpki() - 40.0).abs() < 1e-12);
        assert!((s.avg_int_prf_occupancy() - 32.0).abs() < 1e-12);
    }

    #[test]
    fn zero_cycles_is_not_a_division_error() {
        let s = CoreStats::default();
        assert_eq!(s.ipc(), 0.0);
        assert_eq!(s.mispredict_rate(), 0.0);
    }
}
