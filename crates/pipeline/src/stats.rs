//! Aggregate pipeline statistics.

use atr_core::PrfStats;
use atr_mem::CacheStats;

/// Counters collected over one simulation run.
#[derive(Debug, Clone, Default)]
pub struct CoreStats {
    /// Simulated cycles.
    pub cycles: u64,
    /// Committed (retired) instructions.
    pub retired: u64,
    /// Instructions fetched, including wrong-path.
    pub fetched: u64,
    /// Wrong-path instructions fetched.
    pub wrong_path_fetched: u64,
    /// Wrong-path instructions renamed (these allocate registers).
    pub wrong_path_renamed: u64,
    /// Conditional branches retired.
    pub cond_branches: u64,
    /// Conditional direction mispredictions (resolved, on-path).
    pub cond_mispredicts: u64,
    /// Indirect/return target mispredictions.
    pub target_mispredicts: u64,
    /// Pipeline flushes from branch mispredictions.
    pub flushes: u64,
    /// Precise exceptions serviced.
    pub exceptions: u64,
    /// Interrupts serviced (§4.1 extension).
    pub interrupts: u64,
    /// Cycles a flush-mode interrupt waited for open atomic claims.
    pub interrupt_wait_cycles: u64,
    /// Cycles rename stalled because a free list was at its watermark.
    pub rename_freelist_stalls: u64,
    /// Cycles rename stalled for ROB/RS/LQ/SQ space.
    pub rename_backpressure_stalls: u64,
    /// Σ over cycles of allocated integer physical registers.
    pub int_prf_occupancy_sum: u128,
    /// Σ over cycles of allocated FP physical registers.
    pub fp_prf_occupancy_sum: u128,
    /// Integer PRF release breakdown.
    pub int_prf: PrfStats,
    /// FP PRF release breakdown.
    pub fp_prf: PrfStats,
    /// L1I / L1D / L2 / LLC statistics.
    pub caches: (CacheStats, CacheStats, CacheStats, CacheStats),
    /// DRAM (reads, writes, row hits).
    pub dram: (u64, u64, u64),
    /// Bulk no-early-release marking operations (ATR, §4.2.2).
    pub markings: u64,
}

impl CoreStats {
    /// Retired instructions per cycle.
    #[must_use]
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.retired as f64 / self.cycles as f64
        }
    }

    /// Conditional branch misprediction rate (per retired branch).
    #[must_use]
    pub fn mispredict_rate(&self) -> f64 {
        if self.cond_branches == 0 {
            0.0
        } else {
            self.cond_mispredicts as f64 / self.cond_branches as f64
        }
    }

    /// Mispredictions per kilo-instruction.
    #[must_use]
    pub fn mpki(&self) -> f64 {
        if self.retired == 0 {
            0.0
        } else {
            (self.cond_mispredicts + self.target_mispredicts) as f64 * 1000.0 / self.retired as f64
        }
    }

    /// Mean allocated integer physical registers per cycle.
    #[must_use]
    pub fn avg_int_prf_occupancy(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.int_prf_occupancy_sum as f64 / self.cycles as f64
        }
    }

    /// Mean allocated FP physical registers per cycle.
    #[must_use]
    pub fn avg_fp_prf_occupancy(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.fp_prf_occupancy_sum as f64 / self.cycles as f64
        }
    }

    /// Cross-checks counters that must agree by construction:
    ///
    /// * `fetched >= wrong_path_fetched` — wrong-path fetches are a
    ///   subset of all fetches;
    /// * `cond_mispredicts <= cond_branches` — a resolved on-path
    ///   conditional mispredict implies that branch retires;
    /// * `cond_mispredicts + target_mispredicts == flushes` — every
    ///   mispredict flush is classified exactly once;
    /// * per-file release-kind breakdowns sum to the register file's
    ///   own independent release count.
    ///
    /// Enforced at end of run under `ATR_AUDIT=1`.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated relation.
    pub fn check_consistency(&self) -> Result<(), String> {
        if self.fetched < self.wrong_path_fetched {
            return Err(format!(
                "fetched ({}) < wrong_path_fetched ({})",
                self.fetched, self.wrong_path_fetched
            ));
        }
        if self.cond_mispredicts > self.cond_branches {
            return Err(format!(
                "cond_mispredicts ({}) > cond_branches ({})",
                self.cond_mispredicts, self.cond_branches
            ));
        }
        if self.cond_mispredicts + self.target_mispredicts != self.flushes {
            return Err(format!(
                "mispredict kinds ({} cond + {} target) != flushes ({})",
                self.cond_mispredicts, self.target_mispredicts, self.flushes
            ));
        }
        for (name, prf) in [("int_prf", &self.int_prf), ("fp_prf", &self.fp_prf)] {
            if prf.total_released() != prf.releases {
                return Err(format!(
                    "{name} release kinds sum to {} but the register file \
                     counted {} releases",
                    prf.total_released(),
                    prf.releases
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_rates() {
        let s = CoreStats {
            cycles: 100,
            retired: 250,
            cond_branches: 50,
            cond_mispredicts: 5,
            target_mispredicts: 5,
            int_prf_occupancy_sum: 3200,
            ..CoreStats::default()
        };
        assert!((s.ipc() - 2.5).abs() < 1e-12);
        assert!((s.mispredict_rate() - 0.1).abs() < 1e-12);
        assert!((s.mpki() - 40.0).abs() < 1e-12);
        assert!((s.avg_int_prf_occupancy() - 32.0).abs() < 1e-12);
    }

    #[test]
    fn zero_cycles_is_not_a_division_error() {
        let s = CoreStats::default();
        assert_eq!(s.ipc(), 0.0);
        assert_eq!(s.mispredict_rate(), 0.0);
    }

    #[test]
    fn consistency_accepts_coherent_counters() {
        let mut s = CoreStats {
            fetched: 1000,
            wrong_path_fetched: 100,
            cond_branches: 200,
            cond_mispredicts: 10,
            target_mispredicts: 2,
            flushes: 12,
            ..CoreStats::default()
        };
        s.int_prf.released_commit = 40;
        s.int_prf.released_atomic = 10;
        s.int_prf.releases = 50;
        s.fp_prf.released_flush = 3;
        s.fp_prf.releases = 3;
        s.check_consistency().unwrap();
    }

    #[test]
    fn consistency_rejects_each_violation() {
        let base = CoreStats { fetched: 100, cond_branches: 10, ..CoreStats::default() };
        base.check_consistency().unwrap();

        let wp = CoreStats { wrong_path_fetched: 101, ..base.clone() };
        assert!(wp.check_consistency().unwrap_err().contains("wrong_path_fetched"));

        let mis = CoreStats { cond_mispredicts: 11, flushes: 11, ..base.clone() };
        assert!(mis.check_consistency().unwrap_err().contains("cond_branches"));

        let fl = CoreStats { cond_mispredicts: 2, flushes: 3, ..base.clone() };
        assert!(fl.check_consistency().unwrap_err().contains("flushes"));

        let mut rel = base.clone();
        rel.int_prf.released_commit = 5;
        rel.int_prf.releases = 4;
        assert!(rel.check_consistency().unwrap_err().contains("int_prf"));

        let mut fp = base;
        fp.fp_prf.released_precommit = 1;
        fp.fp_prf.releases = 2;
        assert!(fp.check_consistency().unwrap_err().contains("fp_prf"));
    }
}
