//! The reservation station (issue queue).

use atr_isa::InstSeq;

/// A bounded, age-ordered reservation station holding the sequence
/// numbers of dispatched-but-unissued instructions. Readiness is
/// evaluated by the core (it owns the scoreboard); the IQ provides
/// capacity and oldest-first selection.
#[derive(Debug, Default)]
pub struct IssueQueue {
    seqs: Vec<InstSeq>,
    capacity: usize,
}

impl IssueQueue {
    /// Creates an issue queue with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "issue queue capacity must be non-zero");
        IssueQueue { seqs: Vec::with_capacity(capacity), capacity }
    }

    /// Occupied entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.seqs.len()
    }

    /// True when empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.seqs.is_empty()
    }

    /// Is there room for another entry?
    #[must_use]
    pub fn has_space(&self) -> bool {
        self.seqs.len() < self.capacity
    }

    /// Inserts a dispatched instruction (must be youngest).
    ///
    /// # Panics
    ///
    /// Panics when full or out of age order.
    pub fn insert(&mut self, seq: InstSeq) {
        assert!(self.has_space(), "issue queue overflow");
        if let Some(&last) = self.seqs.last() {
            assert!(seq > last, "issue queue entries must be age-ordered");
        }
        self.seqs.push(seq);
    }

    /// Iterates entries oldest → youngest (selection order).
    pub fn iter_oldest_first(&self) -> impl Iterator<Item = InstSeq> + '_ {
        self.seqs.iter().copied()
    }

    /// Removes the given entries (after issue). `issued` need not be
    /// sorted.
    pub fn remove(&mut self, issued: &[InstSeq]) {
        self.seqs.retain(|s| !issued.contains(s));
    }

    /// Removes every entry younger than `seq` (flush).
    pub fn squash_younger(&mut self, seq: InstSeq) {
        self.seqs.retain(|&s| s <= seq);
    }

    /// Removes all entries (exception flush).
    pub fn clear(&mut self) {
        self.seqs.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oldest_first_iteration() {
        let mut iq = IssueQueue::new(4);
        iq.insert(3);
        iq.insert(7);
        iq.insert(9);
        let order: Vec<u64> = iq.iter_oldest_first().collect();
        assert_eq!(order, vec![3, 7, 9]);
    }

    #[test]
    fn remove_and_capacity() {
        let mut iq = IssueQueue::new(2);
        iq.insert(1);
        iq.insert(2);
        assert!(!iq.has_space());
        iq.remove(&[1]);
        assert!(iq.has_space());
        assert_eq!(iq.len(), 1);
    }

    #[test]
    fn squash_younger_drops_tail() {
        let mut iq = IssueQueue::new(8);
        for s in [1, 2, 5, 8, 9] {
            iq.insert(s);
        }
        iq.squash_younger(5);
        let left: Vec<u64> = iq.iter_oldest_first().collect();
        assert_eq!(left, vec![1, 2, 5]);
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn overflow_panics() {
        let mut iq = IssueQueue::new(1);
        iq.insert(1);
        iq.insert(2);
    }
}
