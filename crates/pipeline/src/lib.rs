//! The out-of-order superscalar pipeline model.
//!
//! This crate assembles the substrates — [`atr_workload`] programs and
//! oracle streams, the [`atr_frontend`] branch prediction unit, the
//! [`atr_mem`] hierarchy, and the [`atr_core`] renamer — into a
//! cycle-level Golden-Cove-like core ([`OooCore`]):
//!
//! * decoupled fetch following *predictions* through the static program
//!   (real wrong-path execution after mispredictions, like Scarab's
//!   trace frontend);
//! * rename with the configured register-release scheme;
//! * a reorder buffer, reservation station, and split load/store queues
//!   with store-to-load forwarding and conservative memory
//!   disambiguation;
//! * diversified functional units (Table 1: 5 ALU, 3 load, 2 store
//!   ports, an unpipelined divider);
//! * a precommit pointer (§2.3), walk- or checkpoint-based recovery,
//!   and precise-exception handling with re-execution.
//!
//! # Examples
//!
//! ```
//! use atr_pipeline::{CoreConfig, OooCore};
//! use atr_workload::{spec, Oracle};
//!
//! let program = spec::spec2017_int()[8].build(); // 548.exchange2_r
//! let mut core = OooCore::new(CoreConfig::default(), Oracle::new(program));
//! let stats = core.run(20_000);
//! assert!(stats.ipc() > 0.1);
//! ```

pub mod config;
pub mod core;
pub mod iq;
pub mod lsq;
pub mod rob;
pub mod stats;
pub mod telemetry;

pub use crate::core::{run_program, InterruptMode, OooCore, RetiredInst};
pub use config::CoreConfig;
pub use rob::{RobEntry, RobState};
pub use stats::CoreStats;
pub use telemetry::CoreTelemetry;
