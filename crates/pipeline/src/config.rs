//! Core (pipeline) configuration.

use atr_core::RenameConfig;
use atr_frontend::BpuConfig;
use atr_mem::MemConfig;
use atr_telemetry::TelemetryConfig;

/// Pipeline geometry and timing. Defaults reproduce Table 1's
/// Golden-Cove-like core.
#[derive(Debug, Clone, PartialEq)]
pub struct CoreConfig {
    /// Instructions fetched/decoded per cycle (Table 1: 6-wide).
    pub fetch_width: usize,
    /// Fetch targets (taken-branch redirections) followed per cycle
    /// (Table 1: 2).
    pub fetch_targets_per_cycle: usize,
    /// Fetch-target block size in bytes (Table 1: 64 B).
    pub fetch_block_bytes: u64,
    /// Cycles from fetch to rename (frontend depth).
    pub frontend_depth: u32,
    /// Instructions renamed per cycle.
    pub rename_width: usize,
    /// Instructions retired per cycle (Table 1: 8-wide).
    pub retire_width: usize,
    /// Reorder buffer entries (Table 1: 512).
    pub rob_size: usize,
    /// Reservation station entries (Table 1: 160).
    pub rs_size: usize,
    /// Load buffer entries (Table 1: 96).
    pub load_buffer: usize,
    /// Store buffer entries (Table 1: 64).
    pub store_buffer: usize,
    /// ALU/branch/FP execution ports (Table 1: 5).
    pub num_alu: usize,
    /// Load pipelines (Table 1: 3).
    pub num_load: usize,
    /// Store pipelines (Table 1: 2).
    pub num_store: usize,
    /// Extra cycles from branch resolution to the first corrected fetch.
    pub redirect_penalty: u32,
    /// Fetch bubble after a predicted-taken branch that missed the BTB.
    pub btb_miss_bubble: u32,
    /// Cycles an exception handler occupies the frontend.
    pub exception_penalty: u32,
    /// Store-to-load forwarding latency in cycles.
    pub forward_latency: u32,
    /// Maximum instructions the precommit pointer may lead the ROB
    /// head. Models the bounded branch-confirmation queues of
    /// non-speculative early-release hardware (Monreal et al., cited in
    /// §6): tracking which registers become releasable at precommit
    /// requires per-branch metadata whose capacity bounds the lead.
    pub precommit_lead: usize,
    /// Loads wait for all older store addresses (conservative
    /// disambiguation) when `false`; `true` lets loads bypass unknown
    /// store addresses (the workload model has no value mismatches, so
    /// this is a pure-performance knob).
    pub perfect_disambiguation: bool,
    /// Rename (register scheme) configuration.
    pub rename: RenameConfig,
    /// Branch prediction configuration.
    pub bpu: BpuConfig,
    /// Memory hierarchy configuration.
    pub mem: MemConfig,
    /// Observer configuration (CPI stack, histograms, pipeline trace).
    /// Pure observation — never affects timing — and, like `audit`,
    /// excluded from result-memoization keys.
    pub telemetry: TelemetryConfig,
    /// Hard cap on simulated cycles (deadlock guard in tests).
    pub max_cycles: u64,
}

impl Default for CoreConfig {
    fn default() -> Self {
        CoreConfig {
            fetch_width: 6,
            fetch_targets_per_cycle: 2,
            fetch_block_bytes: 64,
            frontend_depth: 6,
            rename_width: 6,
            retire_width: 8,
            rob_size: 512,
            rs_size: 160,
            load_buffer: 96,
            store_buffer: 64,
            num_alu: 5,
            num_load: 3,
            num_store: 2,
            redirect_penalty: 4,
            btb_miss_bubble: 2,
            exception_penalty: 200,
            forward_latency: 6,
            precommit_lead: 48,
            perfect_disambiguation: false,
            rename: RenameConfig::default(),
            bpu: BpuConfig::default(),
            mem: MemConfig::golden_cove(),
            telemetry: TelemetryConfig::default(),
            max_cycles: u64::MAX,
        }
    }
}

impl CoreConfig {
    /// Sets both physical register file sizes (the paper's RF-size
    /// sweeps use equal scalar/vector sizes).
    #[must_use]
    pub fn with_rf_size(mut self, size: usize) -> Self {
        self.rename.int_prf_size = size;
        self.rename.fp_prf_size = size;
        self
    }

    /// Sets the release scheme.
    #[must_use]
    pub fn with_scheme(mut self, scheme: atr_core::ReleaseScheme) -> Self {
        self.rename.scheme = scheme;
        self
    }

    /// Enables cycle-level invariant auditing ([`atr_core::audit`]).
    #[must_use]
    pub fn with_audit(mut self, audit: bool) -> Self {
        self.rename.audit = audit;
        self
    }

    /// Sets the telemetry (observer) configuration.
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: TelemetryConfig) -> Self {
        self.telemetry = telemetry;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_table1() {
        let c = CoreConfig::default();
        assert_eq!(c.fetch_width, 6);
        assert_eq!(c.retire_width, 8);
        assert_eq!(c.rob_size, 512);
        assert_eq!(c.rs_size, 160);
        assert_eq!(c.load_buffer, 96);
        assert_eq!(c.store_buffer, 64);
        assert_eq!((c.num_alu, c.num_load, c.num_store), (5, 3, 2));
    }

    #[test]
    fn builders_adjust_rename_config() {
        let c = CoreConfig::default()
            .with_rf_size(64)
            .with_scheme(atr_core::ReleaseScheme::Atr { redefine_delay: 1 });
        assert_eq!(c.rename.int_prf_size, 64);
        assert_eq!(c.rename.scheme.redefine_delay(), 1);
    }
}
