//! Capture→replay round-trip identity across every SPEC profile, plus
//! the truncated/corrupted-file error paths.

use atr_trace::format::program_digest;
use atr_trace::{capture, capture_oracle, TraceError, TraceReader, TraceReplay};
use atr_workload::spec::all_profiles;
use atr_workload::{Oracle, TraceSource};
use std::path::PathBuf;

/// Fresh per-test scratch dir (tests run in parallel; no shared state).
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("atr_trace_test_{}_{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

const RECORDS: u64 = 3000;
const INTERVAL: u64 = 128;

#[test]
fn replay_is_bit_identical_to_the_live_oracle_for_every_profile() {
    let dir = scratch("roundtrip");
    for profile in all_profiles() {
        let program = profile.build();
        let path = dir.join(format!("{}.atrt", profile.name.replace('/', "_")));
        let written = capture(&program, profile.name, RECORDS, INTERVAL, &path).unwrap();
        assert_eq!(written, RECORDS, "{}", profile.name);

        // The full verification pass recomputes every digest.
        let report =
            TraceReader::open_validated(&path, &program).unwrap().verify(&program).unwrap();
        assert_eq!(report.records, RECORDS, "{}", profile.name);
        assert_eq!(report.segments, RECORDS.div_ceil(INTERVAL), "{}", profile.name);

        // Element-wise identity against a fresh live oracle.
        let mut replay = TraceReplay::open(&path, program.clone()).unwrap();
        let mut oracle = Oracle::new(program.clone());
        for idx in 0..RECORDS {
            assert_eq!(
                *TraceSource::get(&mut replay, idx),
                *oracle.get(idx),
                "{} diverges at index {idx}",
                profile.name
            );
            if idx % 512 == 0 {
                TraceSource::release_before(&mut replay, idx.saturating_sub(64));
                oracle.release_before(idx.saturating_sub(64));
            }
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fast_forward_lands_on_a_frame_and_streams_identically() {
    let dir = scratch("ff");
    let profile = &all_profiles()[0];
    let program = profile.build();
    let path = dir.join("ff.atrt");
    capture(&program, profile.name, RECORDS, INTERVAL, &path).unwrap();

    for target in [0, 1, INTERVAL - 1, INTERVAL, 777, RECORDS - 1] {
        let mut replay = TraceReplay::open(&path, program.clone()).unwrap();
        let start = replay.fast_forward_to(target).unwrap();
        assert_eq!(start, (target / INTERVAL) * INTERVAL, "target {target}");
        assert_eq!(replay.start_index(), start);
        let mut oracle = Oracle::new(program.clone());
        let _ = oracle.get(start); // generate forward to the frame
        for idx in start..RECORDS {
            assert_eq!(
                *TraceSource::get(&mut replay, idx),
                *oracle.get(idx),
                "target {target} diverges at index {idx}"
            );
        }
    }

    // A target at or past the end is too short, not a panic.
    let mut replay = TraceReplay::open(&path, program.clone()).unwrap();
    assert!(matches!(
        replay.fast_forward_to(RECORDS),
        Err(TraceError::TooShort { have: RECORDS, need })
            if need == RECORDS + 1
    ));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn exception_streams_roundtrip_and_clear() {
    let dir = scratch("exc");
    let program = all_profiles()[1].build();
    let path = dir.join("exc.atrt");
    let mut capture_src = Oracle::with_exception_rate(program.clone(), 0.01);
    capture_oracle(&mut capture_src, "exc", RECORDS, INTERVAL, &path).unwrap();

    let mut replay = TraceReplay::open(&path, program.clone()).unwrap();
    let mut oracle = Oracle::with_exception_rate(program.clone(), 0.01);
    let mut faults = 0u64;
    for idx in 0..RECORDS {
        let live = *oracle.get(idx);
        assert_eq!(*TraceSource::get(&mut replay, idx), live, "diverges at {idx}");
        if live.outcome.exception.is_some() {
            faults += 1;
            TraceSource::clear_exception(&mut replay, idx);
            oracle.clear_exception(idx);
            assert_eq!(*TraceSource::get(&mut replay, idx), *oracle.get(idx));
        }
    }
    assert!(faults > 0, "exception rate of 1% produced no faults in {RECORDS} records");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn truncated_files_error_at_every_cut_point() {
    let dir = scratch("trunc");
    let program = all_profiles()[2].build();
    let path = dir.join("full.atrt");
    capture(&program, "trunc", 600, 64, &path).unwrap();
    let full = std::fs::read(&path).unwrap();

    // Cut the file at a spread of byte lengths: every prefix must fail
    // verification with a structured error (never a wrong success).
    for cut in [0, 3, 4, 5, 12, 40, full.len() / 4, full.len() / 2, full.len() - 1] {
        let cut_path = dir.join(format!("cut_{cut}.atrt"));
        std::fs::write(&cut_path, &full[..cut]).unwrap();
        let result = TraceReader::open(&cut_path).and_then(|r| r.verify(&program));
        assert!(result.is_err(), "truncation at {cut}/{} verified clean", full.len());
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupted_payload_bytes_are_caught_by_verify() {
    let dir = scratch("corrupt");
    let program = all_profiles()[3].build();
    let path = dir.join("full.atrt");
    capture(&program, "corrupt", 600, 64, &path).unwrap();
    let full = std::fs::read(&path).unwrap();

    // Flip one byte at a spread of offsets past the header. Verification
    // must reject every flip — via tag, codec, program, digest, or
    // trailer checks — and must never report a clean pass.
    let start = 64; // past magic/version/count; name field ends well before
    let step = (full.len() - start) / 23;
    for i in 0..23 {
        let offset = start + i * step;
        let mut bad = full.clone();
        bad[offset] ^= 0x41;
        let bad_path = dir.join(format!("bad_{offset}.atrt"));
        std::fs::write(&bad_path, &bad).unwrap();
        let result = TraceReader::open(&bad_path).and_then(|r| r.verify(&program));
        assert!(result.is_err(), "byte flip at {offset}/{} verified clean", full.len());
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn unfinalized_and_foreign_captures_are_rejected() {
    let dir = scratch("reject");
    let program = all_profiles()[4].build();
    let path = dir.join("t.atrt");
    capture(&program, "t", 300, 64, &path).unwrap();

    // Zero the patched record count: reads as a crashed capture.
    let mut bytes = std::fs::read(&path).unwrap();
    bytes[5..13].fill(0);
    let crashed = dir.join("crashed.atrt");
    std::fs::write(&crashed, &bytes).unwrap();
    assert!(matches!(TraceReader::open_validated(&crashed, &program), Err(TraceError::Corrupt(_))));

    // A different program must be refused by identity, not by luck.
    let other = all_profiles()[5].build();
    assert_ne!(program_digest(&program), program_digest(&other));
    assert!(matches!(
        TraceReader::open_validated(&path, &other),
        Err(TraceError::ProgramMismatch(_))
    ));
    let _ = std::fs::remove_dir_all(&dir);
}
