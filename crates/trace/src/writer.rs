//! Streaming `ATRT1` capture.

use crate::format::{
    branch_digest_step, encode_trailer, mem_digest_step, rat_digest, stream_digest_step,
    BlockCodecState, CheckpointFrame, TraceHeader, TraceRecord, RECORD_COUNT_OFFSET,
};
use crate::varint::write_u64;
use crate::TraceError;
use atr_isa::{DynInst, OpClass, NUM_ARCH_REGS};
use atr_workload::{Oracle, Program, TraceSource};
use std::fs::File;
use std::io::{BufWriter, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::Arc;

/// Default records per segment (one checkpoint frame each). 256 keeps
/// the frame overhead a few percent while letting warmup fast-forward
/// land within 256 instructions of any target — close enough that the
/// residual detailed warmup is negligible even at tiny budgets.
pub const DEFAULT_CHECKPOINT_INTERVAL: u64 = 256;

/// Incremental writer of one `ATRT1` file.
///
/// Append records in stream order with [`TraceWriter::append`] /
/// [`TraceWriter::append_dyn`], then [`TraceWriter::finalize`] — which
/// seals the trailer and patches the header record count. A file that
/// was never finalized carries a zero count and is rejected by the
/// cache and the replay opener as incomplete.
#[derive(Debug)]
pub struct TraceWriter {
    out: BufWriter<File>,
    program: Arc<Program>,
    interval: u64,
    // Current block.
    block_buf: Vec<u8>,
    block_records: u64,
    pending_frame: Option<CheckpointFrame>,
    codec: BlockCodecState,
    // Whole-stream running state.
    n_records: u64,
    stream_digest: u64,
    branch_digest: u64,
    mem_digest: u64,
    call_depth: u64,
    last_writer: [u64; NUM_ARCH_REGS],
    finalized: bool,
}

impl TraceWriter {
    /// Creates `path` (truncating) and writes the header for a capture
    /// of `program`.
    ///
    /// # Errors
    ///
    /// Any I/O error creating or writing the file.
    pub fn create(
        path: &Path,
        program: Arc<Program>,
        name: &str,
        checkpoint_interval: u64,
    ) -> Result<Self, TraceError> {
        assert!(checkpoint_interval > 0, "checkpoint interval must be positive");
        let mut header_buf = Vec::new();
        TraceHeader::for_program(&program, name, checkpoint_interval).encode(&mut header_buf);
        let mut out = BufWriter::new(File::create(path)?);
        out.write_all(&header_buf)?;
        Ok(TraceWriter {
            out,
            program,
            interval: checkpoint_interval,
            block_buf: Vec::new(),
            block_records: 0,
            pending_frame: None,
            codec: BlockCodecState { expected_pc: 0, prev_mem: 0 },
            n_records: 0,
            stream_digest: 0,
            branch_digest: 0,
            mem_digest: 0,
            call_depth: 0,
            last_writer: [u64::MAX; NUM_ARCH_REGS],
            finalized: false,
        })
    }

    /// Records appended so far.
    #[must_use]
    pub fn records(&self) -> u64 {
        self.n_records
    }

    /// Appends the next stream record.
    ///
    /// # Errors
    ///
    /// [`TraceError::ProgramMismatch`] if the record does not decode
    /// against the writer's program (wrong PC or class — the capture
    /// source and the program disagree), or an I/O error flushing a
    /// completed block.
    ///
    /// # Panics
    ///
    /// Panics if called after [`TraceWriter::finalize`].
    pub fn append(&mut self, r: &TraceRecord) -> Result<(), TraceError> {
        assert!(!self.finalized, "append after finalize");
        let sinst = self.program.at(r.pc).ok_or_else(|| {
            TraceError::ProgramMismatch(format!("captured pc {:#x} not in program", r.pc))
        })?;
        if sinst.class != r.class {
            return Err(TraceError::ProgramMismatch(format!(
                "captured class {:?} at {:#x} but program decodes {:?}",
                r.class, r.pc, sinst.class
            )));
        }
        let (fallthrough, dst) = (sinst.fallthrough, sinst.dst);
        if self.block_records == 0 {
            let frame = CheckpointFrame {
                index: self.n_records,
                next_pc: r.pc,
                call_depth: self.call_depth,
                rat_digest: rat_digest(&self.last_writer),
                branch_digest: self.branch_digest,
                mem_digest: self.mem_digest,
            };
            self.codec = BlockCodecState::at_frame(&frame);
            self.pending_frame = Some(frame);
        }
        crate::format::encode_record(&mut self.block_buf, &mut self.codec, r, fallthrough);
        self.block_records += 1;
        self.n_records += 1;

        // Running architectural state for the *next* frame.
        self.stream_digest = stream_digest_step(self.stream_digest, r);
        self.branch_digest = branch_digest_step(self.branch_digest, r);
        self.mem_digest = mem_digest_step(self.mem_digest, r);
        if let Some(dst) = dst {
            self.last_writer[dst.flat_index()] = self.n_records - 1;
        }
        match r.class {
            OpClass::Call => self.call_depth = (self.call_depth + 1).min(256),
            OpClass::Return => self.call_depth = self.call_depth.saturating_sub(1),
            _ => {}
        }

        if self.block_records == self.interval {
            self.flush_segment()?;
        }
        Ok(())
    }

    /// [`TraceWriter::append`] for a dynamic instruction.
    ///
    /// # Errors
    ///
    /// See [`TraceWriter::append`].
    pub fn append_dyn(&mut self, d: &DynInst) -> Result<(), TraceError> {
        self.append(&TraceRecord::from_dyn(d))
    }

    fn flush_segment(&mut self) -> Result<(), TraceError> {
        let frame = self.pending_frame.take().expect("non-empty block has a frame");
        let mut head = Vec::with_capacity(32);
        frame.encode(&mut head);
        head.push(crate::format::TAG_BLOCK);
        write_u64(&mut head, self.block_records);
        write_u64(&mut head, self.block_buf.len() as u64);
        self.out.write_all(&head)?;
        self.out.write_all(&self.block_buf)?;
        self.block_buf.clear();
        self.block_records = 0;
        Ok(())
    }

    /// Seals the file: flushes the partial segment, writes the digest
    /// trailer, and patches the header record count. Returns the total
    /// record count.
    ///
    /// # Errors
    ///
    /// Any I/O error writing or patching.
    pub fn finalize(mut self) -> Result<u64, TraceError> {
        assert!(!self.finalized, "double finalize");
        if self.block_records > 0 {
            self.flush_segment()?;
        }
        let mut trailer = Vec::new();
        encode_trailer(&mut trailer, self.n_records, self.stream_digest);
        self.out.write_all(&trailer)?;
        self.out.flush()?;
        let file = self.out.get_mut();
        file.seek(SeekFrom::Start(RECORD_COUNT_OFFSET))?;
        file.write_all(&self.n_records.to_le_bytes())?;
        file.flush()?;
        self.finalized = true;
        Ok(self.n_records)
    }
}

/// Captures the first `records` entries of `oracle`'s stream to `path`.
/// The oracle must be freshly positioned (nothing fetched yet); its
/// window is garbage-collected as the capture advances, so memory stays
/// O(interval) regardless of trace length.
///
/// # Errors
///
/// See [`TraceWriter::append`] and [`TraceWriter::finalize`].
pub fn capture_oracle(
    oracle: &mut Oracle,
    name: &str,
    records: u64,
    interval: u64,
    path: &Path,
) -> Result<u64, TraceError> {
    let program = TraceSource::program(oracle).clone();
    let mut writer = TraceWriter::create(path, program, name, interval)?;
    for idx in 0..records {
        let d = *oracle.get(idx);
        writer.append_dyn(&d)?;
        if idx % 4096 == 0 {
            oracle.release_before(idx);
        }
    }
    writer.finalize()
}

/// Captures `records` entries of `program`'s correct-path stream (a
/// fresh, exception-free Oracle run) to `path`.
///
/// # Errors
///
/// See [`capture_oracle`].
pub fn capture(
    program: &Arc<Program>,
    name: &str,
    records: u64,
    interval: u64,
    path: &Path,
) -> Result<u64, TraceError> {
    capture_oracle(&mut Oracle::new(program.clone()), name, records, interval, path)
}
