//! On-disk cache of captured traces, keyed by program identity.
//!
//! The run matrix deduplicates `(profile, seed)` programs and then
//! simulates each one under every scheme × tweak point; the cache lets
//! the executor capture each program's functional stream once and
//! replay it for every point. Keys combine the program digest with the
//! checkpoint interval, so a format-parameter change can never alias a
//! stale file. Writes go to a temp file and `rename` into place, so a
//! concurrent or crashed capture never publishes a partial trace.

use crate::format::program_digest;
use crate::reader::TraceReader;
use crate::writer::capture;
use crate::TraceError;
use atr_workload::behavior::mix64;
use atr_workload::Program;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// A directory of `*.atrt` files addressed by program identity.
#[derive(Debug, Clone)]
pub struct TraceCache {
    dir: PathBuf,
}

impl TraceCache {
    /// Opens (creating if needed) the cache at `dir`.
    ///
    /// # Errors
    ///
    /// Any I/O error creating the directory.
    pub fn new(dir: &Path) -> Result<Self, TraceError> {
        std::fs::create_dir_all(dir)?;
        Ok(TraceCache { dir: dir.to_owned() })
    }

    /// The cache directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The canonical file path for a capture of `program` at
    /// `interval`. The name prefix is cosmetic (sanitized profile
    /// name); the hex key is what addresses the entry.
    #[must_use]
    pub fn path_for(&self, program: &Program, name: &str, interval: u64) -> PathBuf {
        let key = mix64(program_digest(program) ^ mix64(interval));
        self.dir.join(format!("{}-{key:016x}.atrt", sanitize(name)))
    }

    /// Returns the cached trace for `program` if present, finalized,
    /// program-matched, and holding at least `needed` records. Any
    /// unusable file — crashed capture, foreign program, too short —
    /// reads as a miss (and will be overwritten by
    /// [`TraceCache::ensure`]).
    #[must_use]
    pub fn lookup(
        &self,
        program: &Program,
        name: &str,
        interval: u64,
        needed: u64,
    ) -> Option<PathBuf> {
        let path = self.path_for(program, name, interval);
        let reader = TraceReader::open_validated(&path, program).ok()?;
        if reader.header().record_count < needed {
            return None;
        }
        if reader.header().checkpoint_interval != interval {
            return None;
        }
        Some(path)
    }

    /// Returns a trace of `program` with at least `needed` records,
    /// capturing it if absent (or present but unusable). The boolean is
    /// `true` on a cache hit. Capture writes a pid-suffixed temp file
    /// and renames it into place, so concurrent processes racing on the
    /// same entry each publish a complete file and the last rename
    /// wins.
    ///
    /// # Errors
    ///
    /// Capture or I/O errors; never fails on an unusable existing file.
    pub fn ensure(
        &self,
        program: &Arc<Program>,
        name: &str,
        interval: u64,
        needed: u64,
    ) -> Result<(PathBuf, bool), TraceError> {
        if let Some(path) = self.lookup(program, name, interval, needed) {
            return Ok((path, true));
        }
        let path = self.path_for(program, name, interval);
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        let result = capture(program, name, needed, interval, &tmp);
        if result.is_err() {
            let _ = std::fs::remove_file(&tmp);
        }
        result?;
        std::fs::rename(&tmp, &path)?;
        Ok((path, false))
    }
}

/// Keeps `[A-Za-z0-9._-]`, maps the rest to `_`, and bounds the length
/// — profile names become readable, filesystem-safe prefixes.
fn sanitize(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() || ".-_".contains(c) { c } else { '_' })
        .collect();
    out.truncate(48);
    if out.is_empty() {
        out.push('t');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sanitize_keeps_safe_chars_and_bounds_length() {
        assert_eq!(sanitize("505.mcf_r"), "505.mcf_r");
        assert_eq!(sanitize("a b/c"), "a_b_c");
        assert_eq!(sanitize(""), "t");
        assert_eq!(sanitize(&"x".repeat(100)).len(), 48);
    }
}
