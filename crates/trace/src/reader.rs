//! `ATRT1` consumption: header inspection, full-file verification, and
//! the streaming [`TraceReplay`] source.

use crate::format::{
    branch_digest_step, decode_record, materialize, mem_digest_step, rat_digest,
    stream_digest_step, BlockCodecState, CheckpointFrame, TraceHeader, TAG_BLOCK, TAG_FRAME,
    TAG_TRAILER,
};
use crate::varint::{read_fixed_u64, read_u64};
use crate::TraceError;
use atr_isa::{DynInst, OpClass, NUM_ARCH_REGS};
use atr_workload::{Program, TraceSource};
use std::collections::VecDeque;
use std::fs::File;
use std::io::{BufReader, Read};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Largest plausible block payload (interval × worst-case record size,
/// with enormous slack); anything bigger is a corrupt length field, and
/// honouring it would let one flipped bit allocate gigabytes.
const MAX_PAYLOAD: u64 = 1 << 28;

/// Summary of a successful [`TraceReader::verify`] pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VerifyReport {
    /// Records decoded.
    pub records: u64,
    /// Segments (checkpoint frames) visited.
    pub segments: u64,
    /// Whole-stream digest, equal to the trailer's.
    pub stream_digest: u64,
}

/// Read-side handle on one `ATRT1` file. Opening decodes only the
/// header; [`TraceReader::verify`] scans the whole file.
#[derive(Debug)]
pub struct TraceReader {
    input: BufReader<File>,
    header: TraceHeader,
    path: PathBuf,
}

impl TraceReader {
    /// Opens `path` and decodes its header.
    ///
    /// # Errors
    ///
    /// I/O errors, or any header decode error ([`TraceError::BadMagic`],
    /// [`TraceError::BadVersion`], …).
    pub fn open(path: &Path) -> Result<Self, TraceError> {
        let mut input = BufReader::new(File::open(path)?);
        let header = TraceHeader::decode(&mut input)?;
        Ok(TraceReader { input, header, path: path.to_owned() })
    }

    /// Opens `path`, requires a finalized capture, and pins it to
    /// `program`.
    ///
    /// # Errors
    ///
    /// [`TraceError::Corrupt`] for an unfinalized (crashed) capture and
    /// [`TraceError::ProgramMismatch`] for a foreign one, plus
    /// [`TraceReader::open`]'s errors.
    pub fn open_validated(path: &Path, program: &Program) -> Result<Self, TraceError> {
        let reader = TraceReader::open(path)?;
        if reader.header.record_count == 0 {
            return Err(TraceError::Corrupt(
                "record count is zero: capture was never finalized".into(),
            ));
        }
        reader.header.check_program(program)?;
        Ok(reader)
    }

    /// The decoded header.
    #[must_use]
    pub fn header(&self) -> &TraceHeader {
        &self.header
    }

    /// Scans the whole file, recomputing every digest: each checkpoint
    /// frame's RAT / branch / memory digests and call depth, frame index
    /// continuity, block payload sizes, the trailer's record count and
    /// stream digest, and the patched header count.
    ///
    /// # Errors
    ///
    /// The first structural or digest mismatch found, as
    /// [`TraceError::Corrupt`] / [`TraceError::Truncated`] /
    /// [`TraceError::ProgramMismatch`].
    pub fn verify(mut self, program: &Program) -> Result<VerifyReport, TraceError> {
        let mut records = 0u64;
        let mut segments = 0u64;
        let mut stream_digest = 0u64;
        let mut branch_digest = 0u64;
        let mut mem_digest = 0u64;
        let mut call_depth = 0u64;
        let mut last_writer = [u64::MAX; NUM_ARCH_REGS];
        loop {
            let mut tag = [0u8; 1];
            self.input.read_exact(&mut tag).map_err(|_| TraceError::Truncated("segment tag"))?;
            match tag[0] {
                TAG_FRAME => {
                    let frame = CheckpointFrame::decode(&mut self.input)?;
                    let expect = CheckpointFrame {
                        index: records,
                        next_pc: frame.next_pc,
                        call_depth,
                        rat_digest: rat_digest(&last_writer),
                        branch_digest,
                        mem_digest,
                    };
                    if frame != expect {
                        return Err(TraceError::Corrupt(format!(
                            "checkpoint frame at record {records} disagrees with the \
                             recomputed prefix state: file has {frame:?}, expected {expect:?}"
                        )));
                    }
                    segments += 1;
                    let (n_records, payload) = read_block(&mut self.input)?;
                    let mut codec = BlockCodecState::at_frame(&frame);
                    let mut cursor = payload.as_slice();
                    for i in 0..n_records {
                        let r = decode_record(&mut cursor, &mut codec, program)?;
                        if i == 0 && r.pc != frame.next_pc {
                            return Err(TraceError::Corrupt(format!(
                                "block at record {records} starts at pc {:#x} but its \
                                 frame promises {:#x}",
                                r.pc, frame.next_pc
                            )));
                        }
                        stream_digest = stream_digest_step(stream_digest, &r);
                        branch_digest = branch_digest_step(branch_digest, &r);
                        mem_digest = mem_digest_step(mem_digest, &r);
                        if let Some(dst) = program.at(r.pc).expect("decode validated the pc").dst {
                            last_writer[dst.flat_index()] = records;
                        }
                        match r.class {
                            OpClass::Call => call_depth = (call_depth + 1).min(256),
                            OpClass::Return => call_depth = call_depth.saturating_sub(1),
                            _ => {}
                        }
                        records += 1;
                    }
                    if !cursor.is_empty() {
                        return Err(TraceError::Corrupt(format!(
                            "block ending at record {records} has {} undecoded payload bytes",
                            cursor.len()
                        )));
                    }
                }
                TAG_TRAILER => {
                    let total = read_u64(&mut self.input)?;
                    let digest = read_fixed_u64(&mut self.input)?;
                    if total != records {
                        return Err(TraceError::Corrupt(format!(
                            "trailer claims {total} records but the file holds {records}"
                        )));
                    }
                    if digest != stream_digest {
                        return Err(TraceError::Corrupt(format!(
                            "trailer stream digest {digest:#x} != recomputed {stream_digest:#x}"
                        )));
                    }
                    if self.header.record_count != records {
                        return Err(TraceError::Corrupt(format!(
                            "header claims {} records but the file holds {records}",
                            self.header.record_count
                        )));
                    }
                    let mut extra = [0u8; 1];
                    if self.input.read(&mut extra).map_err(TraceError::Io)? != 0 {
                        return Err(TraceError::Corrupt("bytes after the trailer".into()));
                    }
                    return Ok(VerifyReport { records, segments, stream_digest });
                }
                other => {
                    return Err(TraceError::Corrupt(format!(
                        "unknown segment tag {other:#04x} at record {records} of {}",
                        self.path.display()
                    )));
                }
            }
        }
    }
}

/// Reads a block header + payload (the `TAG_BLOCK` byte is next in the
/// stream).
fn read_block(input: &mut BufReader<File>) -> Result<(u64, Vec<u8>), TraceError> {
    let mut tag = [0u8; 1];
    input.read_exact(&mut tag).map_err(|_| TraceError::Truncated("block tag"))?;
    if tag[0] != TAG_BLOCK {
        return Err(TraceError::Corrupt(format!(
            "expected a record block after the frame, found tag {:#04x}",
            tag[0]
        )));
    }
    let n_records = read_u64(input)?;
    if n_records == 0 {
        return Err(TraceError::Corrupt("empty record block".into()));
    }
    let payload_len = read_u64(input)?;
    if payload_len > MAX_PAYLOAD {
        return Err(TraceError::Corrupt(format!("implausible block payload of {payload_len} B")));
    }
    let mut payload = vec![0u8; payload_len as usize];
    input.read_exact(&mut payload).map_err(|_| TraceError::Truncated("block payload"))?;
    Ok((n_records, payload))
}

/// A [`TraceSource`] that decodes an `ATRT1` file block-by-block,
/// holding only the pipeline's live window plus one block payload in
/// memory (O(1) in trace length).
///
/// [`TraceReplay::fast_forward_to`] skips whole segments by byte length
/// — no record decode — to start replay at the checkpoint frame at or
/// below a target index.
#[derive(Debug)]
pub struct TraceReplay {
    input: BufReader<File>,
    header: TraceHeader,
    program: Arc<Program>,
    path: PathBuf,
    /// Live window, `window[0]` at stream index `base_idx`.
    window: VecDeque<DynInst>,
    base_idx: u64,
    /// Next stream index to decode.
    next_idx: u64,
    start_idx: u64,
    /// Current block payload and decode position within it.
    block: Vec<u8>,
    block_pos: usize,
    block_remaining: u64,
    codec: BlockCodecState,
    /// Trailer reached: the stream is exhausted.
    done: bool,
}

impl TraceReplay {
    /// Opens `path` for replay of `program`, positioned at index 0.
    ///
    /// # Errors
    ///
    /// See [`TraceReader::open_validated`].
    pub fn open(path: &Path, program: Arc<Program>) -> Result<Self, TraceError> {
        let reader = TraceReader::open_validated(path, &program)?;
        Ok(TraceReplay {
            input: reader.input,
            header: reader.header,
            program,
            path: reader.path,
            window: VecDeque::new(),
            base_idx: 0,
            next_idx: 0,
            start_idx: 0,
            block: Vec::new(),
            block_pos: 0,
            block_remaining: 0,
            codec: BlockCodecState { expected_pc: 0, prev_mem: 0 },
            done: false,
        })
    }

    /// The trace header.
    #[must_use]
    pub fn header(&self) -> &TraceHeader {
        &self.header
    }

    /// Total records in the trace.
    #[must_use]
    pub fn records(&self) -> u64 {
        self.header.record_count
    }

    /// Skips forward to the checkpoint frame at or below `target` —
    /// whole segments are skipped by payload byte length, without
    /// decoding a record — and returns the frame index replay starts
    /// at. The residual `target - start` records still stream through
    /// the pipeline (detailed warmup from the checkpoint).
    ///
    /// # Errors
    ///
    /// [`TraceError::TooShort`] if the trace ends at or before
    /// `target`, or decode errors walking the segment headers.
    ///
    /// # Panics
    ///
    /// Panics if any record was already decoded — fast-forward is only
    /// meaningful on a freshly opened replay.
    pub fn fast_forward_to(&mut self, target: u64) -> Result<u64, TraceError> {
        assert!(
            self.next_idx == 0 && self.block_remaining == 0 && self.window.is_empty(),
            "fast_forward_to on a replay that already decoded records"
        );
        if target >= self.header.record_count {
            return Err(TraceError::TooShort { have: self.header.record_count, need: target + 1 });
        }
        loop {
            let mut tag = [0u8; 1];
            self.input.read_exact(&mut tag).map_err(|_| TraceError::Truncated("segment tag"))?;
            match tag[0] {
                TAG_FRAME => {
                    let frame = CheckpointFrame::decode(&mut self.input)?;
                    let mut block_tag = [0u8; 1];
                    self.input
                        .read_exact(&mut block_tag)
                        .map_err(|_| TraceError::Truncated("block tag"))?;
                    if block_tag[0] != TAG_BLOCK {
                        return Err(TraceError::Corrupt(format!(
                            "expected a record block after the frame, found tag {:#04x}",
                            block_tag[0]
                        )));
                    }
                    let n_records = read_u64(&mut self.input)?;
                    let payload_len = read_u64(&mut self.input)?;
                    if payload_len > MAX_PAYLOAD {
                        return Err(TraceError::Corrupt(format!(
                            "implausible block payload of {payload_len} B"
                        )));
                    }
                    if frame.index + n_records <= target {
                        // Entire segment precedes the target: skip its
                        // payload without touching a record.
                        self.input.seek_relative(payload_len as i64)?;
                        continue;
                    }
                    // Target lands in this block: load it and start here.
                    self.block.resize(payload_len as usize, 0);
                    self.input
                        .read_exact(&mut self.block)
                        .map_err(|_| TraceError::Truncated("block payload"))?;
                    self.block_pos = 0;
                    self.block_remaining = n_records;
                    self.codec = BlockCodecState::at_frame(&frame);
                    self.base_idx = frame.index;
                    self.next_idx = frame.index;
                    self.start_idx = frame.index;
                    return Ok(frame.index);
                }
                TAG_TRAILER => {
                    return Err(TraceError::TooShort {
                        have: self.header.record_count,
                        need: target + 1,
                    });
                }
                other => {
                    return Err(TraceError::Corrupt(format!("unknown segment tag {other:#04x}")));
                }
            }
        }
    }

    /// Decodes one record into the window. `Ok(false)` means the
    /// trailer was reached (stream exhausted).
    fn decode_next(&mut self) -> Result<bool, TraceError> {
        if self.done {
            return Ok(false);
        }
        if self.block_remaining == 0 {
            let mut tag = [0u8; 1];
            self.input.read_exact(&mut tag).map_err(|_| TraceError::Truncated("segment tag"))?;
            match tag[0] {
                TAG_FRAME => {
                    let frame = CheckpointFrame::decode(&mut self.input)?;
                    if frame.index != self.next_idx {
                        return Err(TraceError::Corrupt(format!(
                            "checkpoint frame indexed {} where record {} was expected",
                            frame.index, self.next_idx
                        )));
                    }
                    let (n_records, payload) = read_block(&mut self.input)?;
                    self.block = payload;
                    self.block_pos = 0;
                    self.block_remaining = n_records;
                    self.codec = BlockCodecState::at_frame(&frame);
                }
                TAG_TRAILER => {
                    let total = read_u64(&mut self.input)?;
                    if total != self.next_idx {
                        return Err(TraceError::Corrupt(format!(
                            "trailer claims {total} records but {} were decoded",
                            self.next_idx
                        )));
                    }
                    self.done = true;
                    return Ok(false);
                }
                other => {
                    return Err(TraceError::Corrupt(format!("unknown segment tag {other:#04x}")));
                }
            }
        }
        let mut cursor = &self.block[self.block_pos..];
        let before = cursor.len();
        let record = decode_record(&mut cursor, &mut self.codec, &self.program)?;
        self.block_pos += before - cursor.len();
        self.block_remaining -= 1;
        self.window.push_back(materialize(&record, self.next_idx, &self.program));
        self.next_idx += 1;
        Ok(true)
    }
}

impl TraceSource for TraceReplay {
    fn program(&self) -> &Arc<Program> {
        &self.program
    }

    fn get(&mut self, idx: u64) -> &DynInst {
        assert!(
            idx >= self.base_idx,
            "trace index {idx} already released (base {})",
            self.base_idx
        );
        while self.next_idx <= idx {
            match self.decode_next() {
                Ok(true) => {}
                Ok(false) => panic!(
                    "trace {} exhausted: {} records but index {idx} requested \
                     (capture too short for this run budget)",
                    self.path.display(),
                    self.next_idx
                ),
                Err(e) => panic!("trace {} failed at index {idx}: {e}", self.path.display()),
            }
        }
        &self.window[(idx - self.base_idx) as usize]
    }

    fn release_before(&mut self, idx: u64) {
        while self.base_idx < idx && !self.window.is_empty() {
            self.window.pop_front();
            self.base_idx += 1;
        }
    }

    fn clear_exception(&mut self, idx: u64) {
        assert!(
            idx >= self.base_idx && idx < self.next_idx,
            "clear_exception({idx}) outside window [{}, {})",
            self.base_idx,
            self.next_idx
        );
        self.window[(idx - self.base_idx) as usize].outcome.exception = None;
    }

    fn start_index(&self) -> u64 {
        self.start_idx
    }

    fn generated(&self) -> u64 {
        self.next_idx - self.start_idx
    }
}
