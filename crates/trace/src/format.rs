//! The `ATRT1` on-disk layout: header, checkpoint frames, record
//! blocks, trailer, and the digest chain that seals them.
//!
//! ```text
//! file    := header segment* trailer
//! segment := frame block
//! header  := "ATRT" version:u8 record_count:u64le
//!            seed entry text_len program_digest:u64le
//!            checkpoint_interval name_len name
//! frame   := 0x02 index next_pc call_depth
//!            rat_digest:u64le branch_digest:u64le mem_digest:u64le
//! block   := 0x01 n_records payload_len payload
//! trailer := 0xfe total_records stream_digest:u64le
//! ```
//!
//! Unadorned integers are LEB128 varints ([`crate::varint`]). Delta
//! state resets at every frame, so a block decodes independently given
//! its frame — which is what lets [`crate::TraceReplay`] skip whole
//! segments during fast-forward without decoding a single record.
//!
//! `record_count` is written as zero when the file is created and
//! patched at finalize, so a crashed capture is detected as incomplete
//! rather than silently replayed short.

use crate::varint::{read_fixed_u64, read_i64, read_u64, write_fixed_u64, write_i64, write_u64};
use crate::TraceError;
use atr_isa::{DynInst, Exception, OpClass, NUM_ARCH_REGS};
use atr_workload::behavior::mix64;
use atr_workload::Program;
use std::io::Read;

/// File magic.
pub const MAGIC: [u8; 4] = *b"ATRT";
/// Format version this crate reads and writes.
pub const VERSION: u8 = 1;
/// Byte offset of the fixed-width `record_count` header field (after
/// magic + version), patched in place at finalize.
pub const RECORD_COUNT_OFFSET: u64 = 5;

/// Tag byte opening a record block.
pub const TAG_BLOCK: u8 = 0x01;
/// Tag byte opening a checkpoint frame.
pub const TAG_FRAME: u8 = 0x02;
/// Tag byte opening the trailer.
pub const TAG_TRAILER: u8 = 0xfe;

/// Record flag: control flow was taken.
const F_TAKEN: u8 = 1 << 0;
/// Record flag: a memory address follows.
const F_MEM: u8 = 1 << 1;
/// Record flag: the record carries an injected exception.
const F_EXC: u8 = 1 << 2;
/// Record flag: exception kind (0 = page fault, 1 = divide by zero).
const F_EXC_KIND: u8 = 1 << 3;
/// Record flag: `pc` equals the previous record's `next_pc` (implicit).
const F_PC_IMPLICIT: u8 = 1 << 4;
/// Record flag: `next_pc` is the static fallthrough (implicit).
const F_NEXT_SEQ: u8 = 1 << 5;
/// Mask of flag bits a v1 reader understands; anything else is corrupt.
const F_KNOWN: u8 = F_TAKEN | F_MEM | F_EXC | F_EXC_KIND | F_PC_IMPLICIT | F_NEXT_SEQ;

/// One architectural stream record: exactly the dynamic facts the
/// pipeline needs beyond the static program — everything else in a
/// [`DynInst`] is reconstructed from the program text at replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Instruction PC.
    pub pc: u64,
    /// Architectural successor PC.
    pub next_pc: u64,
    /// Taken direction for control flow (`false` otherwise).
    pub taken: bool,
    /// Effective address for loads/stores.
    pub mem_addr: Option<u64>,
    /// Micro-op class (stored for program-mismatch detection).
    pub class: OpClass,
    /// Injected precise exception, if any.
    pub exception: Option<Exception>,
}

impl TraceRecord {
    /// Extracts the trace-relevant facts of a dynamic instruction.
    #[must_use]
    pub fn from_dyn(d: &DynInst) -> Self {
        TraceRecord {
            pc: d.sinst.pc,
            next_pc: d.outcome.next_pc,
            taken: d.outcome.taken,
            mem_addr: d.outcome.mem_addr,
            class: d.sinst.class,
            exception: d.outcome.exception,
        }
    }
}

/// The file header: program identity plus layout parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceHeader {
    /// Total records in the file; `0` until the writer finalizes, so an
    /// interrupted capture reads as incomplete.
    pub record_count: u64,
    /// Seed of the captured program.
    pub seed: u64,
    /// Entry PC of the captured program.
    pub entry: u64,
    /// Static instruction count of the captured program.
    pub text_len: u64,
    /// Digest of the program text ([`program_digest`]).
    pub program_digest: u64,
    /// Records per segment (one checkpoint frame each).
    pub checkpoint_interval: u64,
    /// Human-readable program/profile name.
    pub name: String,
}

impl TraceHeader {
    /// Builds the header a capture of `program` would carry.
    #[must_use]
    pub fn for_program(program: &Program, name: &str, checkpoint_interval: u64) -> Self {
        TraceHeader {
            record_count: 0,
            seed: program.seed(),
            entry: program.entry(),
            text_len: program.len() as u64,
            program_digest: program_digest(program),
            checkpoint_interval,
            name: name.to_owned(),
        }
    }

    /// Checks that `program` is the one this trace was captured from.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::ProgramMismatch`] naming the first
    /// differing identity field.
    pub fn check_program(&self, program: &Program) -> Result<(), TraceError> {
        let fields = [
            ("seed", self.seed, program.seed()),
            ("entry", self.entry, program.entry()),
            ("text_len", self.text_len, program.len() as u64),
            ("program_digest", self.program_digest, program_digest(program)),
        ];
        for (what, have, want) in fields {
            if have != want {
                return Err(TraceError::ProgramMismatch(format!(
                    "{what}: trace has {have:#x}, program has {want:#x}"
                )));
            }
        }
        Ok(())
    }

    /// Serializes the header. The `record_count` field is written at
    /// the fixed [`RECORD_COUNT_OFFSET`] so it can be patched later.
    pub fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&MAGIC);
        out.push(VERSION);
        out.extend_from_slice(&self.record_count.to_le_bytes());
        write_u64(out, self.seed);
        write_u64(out, self.entry);
        write_u64(out, self.text_len);
        out.extend_from_slice(&self.program_digest.to_le_bytes());
        write_u64(out, self.checkpoint_interval);
        write_u64(out, self.name.len() as u64);
        out.extend_from_slice(self.name.as_bytes());
    }

    /// Deserializes a header from the start of a trace stream.
    ///
    /// # Errors
    ///
    /// [`TraceError::BadMagic`] / [`TraceError::BadVersion`] for alien
    /// files, [`TraceError::Truncated`] / [`TraceError::Corrupt`] for
    /// damaged ones.
    pub fn decode(r: &mut impl Read) -> Result<Self, TraceError> {
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic).map_err(|_| TraceError::Truncated("magic"))?;
        if magic != MAGIC {
            return Err(TraceError::BadMagic);
        }
        let mut version = [0u8; 1];
        r.read_exact(&mut version).map_err(|_| TraceError::Truncated("version"))?;
        if version[0] != VERSION {
            return Err(TraceError::BadVersion(version[0]));
        }
        let record_count = read_fixed_u64(r)?;
        let seed = read_u64(r)?;
        let entry = read_u64(r)?;
        let text_len = read_u64(r)?;
        let program_digest = read_fixed_u64(r)?;
        let checkpoint_interval = read_u64(r)?;
        if checkpoint_interval == 0 {
            return Err(TraceError::Corrupt("checkpoint interval of zero".into()));
        }
        let name_len = read_u64(r)?;
        if name_len > 4096 {
            return Err(TraceError::Corrupt(format!("implausible name length {name_len}")));
        }
        let mut name = vec![0u8; name_len as usize];
        r.read_exact(&mut name).map_err(|_| TraceError::Truncated("name"))?;
        let name =
            String::from_utf8(name).map_err(|_| TraceError::Corrupt("name is not UTF-8".into()))?;
        Ok(TraceHeader {
            record_count,
            seed,
            entry,
            text_len,
            program_digest,
            checkpoint_interval,
            name,
        })
    }
}

/// An architectural checkpoint: everything needed to resume replay at
/// `index` after functional fast-forward, plus digests that pin the
/// skipped prefix (a full [`TraceReader::verify`](crate::TraceReader)
/// pass recomputes and checks them).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointFrame {
    /// Stream index of the first record after this frame.
    pub index: u64,
    /// PC of that record — where fetch resumes.
    pub next_pc: u64,
    /// Functional call-stack depth at `index`.
    pub call_depth: u64,
    /// Committed-RAT summary: digest of each architectural register's
    /// last-writer stream index over the prefix.
    pub rat_digest: u64,
    /// Branch-history digest over the prefix (control-flow records).
    pub branch_digest: u64,
    /// Memory-touch digest over the prefix (load/store addresses).
    pub mem_digest: u64,
}

impl CheckpointFrame {
    /// Serializes the frame, tag included.
    pub fn encode(&self, out: &mut Vec<u8>) {
        out.push(TAG_FRAME);
        write_u64(out, self.index);
        write_u64(out, self.next_pc);
        write_u64(out, self.call_depth);
        out.extend_from_slice(&self.rat_digest.to_le_bytes());
        out.extend_from_slice(&self.branch_digest.to_le_bytes());
        out.extend_from_slice(&self.mem_digest.to_le_bytes());
    }

    /// Deserializes a frame body (the tag byte has been consumed).
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Truncated`] if the stream ends mid-frame.
    pub fn decode(r: &mut impl Read) -> Result<Self, TraceError> {
        Ok(CheckpointFrame {
            index: read_u64(r)?,
            next_pc: read_u64(r)?,
            call_depth: read_u64(r)?,
            rat_digest: read_fixed_u64(r)?,
            branch_digest: read_fixed_u64(r)?,
            mem_digest: read_fixed_u64(r)?,
        })
    }
}

/// Per-block delta-codec state. Reset to
/// [`BlockCodecState::at_frame`] at every checkpoint frame, which is
/// what makes blocks independently decodable.
#[derive(Debug, Clone, Copy)]
pub struct BlockCodecState {
    /// Predicted PC of the next record (previous record's `next_pc`).
    pub expected_pc: u64,
    /// Previous memory address in this block (delta base).
    pub prev_mem: u64,
}

impl BlockCodecState {
    /// Fresh state at a checkpoint frame.
    #[must_use]
    pub fn at_frame(frame: &CheckpointFrame) -> Self {
        BlockCodecState { expected_pc: frame.next_pc, prev_mem: 0 }
    }
}

/// Encodes one record into `out`, advancing the delta state.
/// `fallthrough` is the record's static fallthrough PC (used for the
/// implicit-successor shortcut).
pub fn encode_record(
    out: &mut Vec<u8>,
    state: &mut BlockCodecState,
    r: &TraceRecord,
    fallthrough: u64,
) {
    let mut flags = 0u8;
    if r.taken {
        flags |= F_TAKEN;
    }
    if r.mem_addr.is_some() {
        flags |= F_MEM;
    }
    match r.exception {
        Some(Exception::PageFault) => flags |= F_EXC,
        Some(Exception::DivideByZero) => flags |= F_EXC | F_EXC_KIND,
        None => {}
    }
    if r.pc == state.expected_pc {
        flags |= F_PC_IMPLICIT;
    }
    if r.next_pc == fallthrough {
        flags |= F_NEXT_SEQ;
    }
    out.push(flags);
    out.push(class_code(r.class));
    if flags & F_PC_IMPLICIT == 0 {
        write_i64(out, r.pc.wrapping_sub(state.expected_pc) as i64);
    }
    if flags & F_NEXT_SEQ == 0 {
        write_i64(out, r.next_pc.wrapping_sub(r.pc) as i64);
    }
    if let Some(addr) = r.mem_addr {
        write_i64(out, addr.wrapping_sub(state.prev_mem) as i64);
        state.prev_mem = addr;
    }
    state.expected_pc = r.next_pc;
}

/// Decodes one record, advancing the delta state and validating it
/// against the static program.
///
/// # Errors
///
/// [`TraceError::Truncated`] / [`TraceError::Corrupt`] for a damaged
/// stream; [`TraceError::ProgramMismatch`] when the decoded PC does not
/// name an instruction of `program` or names one of a different class.
pub fn decode_record(
    r: &mut impl Read,
    state: &mut BlockCodecState,
    program: &Program,
) -> Result<TraceRecord, TraceError> {
    let mut head = [0u8; 2];
    r.read_exact(&mut head).map_err(|_| TraceError::Truncated("record head"))?;
    let (flags, code) = (head[0], head[1]);
    if flags & !F_KNOWN != 0 {
        return Err(TraceError::Corrupt(format!("unknown record flags {flags:#04x}")));
    }
    let class = class_from_code(code)
        .ok_or_else(|| TraceError::Corrupt(format!("unknown op-class code {code}")))?;
    let pc = if flags & F_PC_IMPLICIT != 0 {
        state.expected_pc
    } else {
        state.expected_pc.wrapping_add(read_i64(r)? as u64)
    };
    let sinst = program.at(pc).ok_or_else(|| {
        TraceError::ProgramMismatch(format!("record pc {pc:#x} is not an instruction boundary"))
    })?;
    if sinst.class != class {
        return Err(TraceError::ProgramMismatch(format!(
            "record at {pc:#x} has class {class:?} but the program decodes {:?}",
            sinst.class
        )));
    }
    let next_pc = if flags & F_NEXT_SEQ != 0 {
        sinst.fallthrough
    } else {
        pc.wrapping_add(read_i64(r)? as u64)
    };
    let mem_addr = if flags & F_MEM != 0 {
        let addr = state.prev_mem.wrapping_add(read_i64(r)? as u64);
        state.prev_mem = addr;
        Some(addr)
    } else {
        None
    };
    if flags & F_MEM == 0 && class.is_memory() {
        return Err(TraceError::Corrupt(format!(
            "memory instruction at {pc:#x} carries no address"
        )));
    }
    let exception = if flags & F_EXC != 0 {
        Some(if flags & F_EXC_KIND != 0 { Exception::DivideByZero } else { Exception::PageFault })
    } else {
        None
    };
    state.expected_pc = next_pc;
    Ok(TraceRecord { pc, next_pc, taken: flags & F_TAKEN != 0, mem_addr, class, exception })
}

/// Rebuilds the full [`DynInst`] a live Oracle would have produced for
/// this record at stream index `idx`.
///
/// # Panics
///
/// Panics if the record's PC is not in `program` — decode validated
/// that, so this only fires on caller misuse.
#[must_use]
pub fn materialize(r: &TraceRecord, idx: u64, program: &Program) -> DynInst {
    let sinst = *program.at(r.pc).expect("decode validated the pc");
    DynInst {
        seq: idx,
        sinst,
        outcome: atr_isa::DynOutcome {
            taken: r.taken,
            next_pc: r.next_pc,
            mem_addr: r.mem_addr,
            exception: r.exception,
        },
        on_wrong_path: false,
        oracle_idx: idx,
    }
}

/// The stable one-byte encoding of an op class (its position in
/// [`OpClass::ALL`]).
#[must_use]
pub fn class_code(class: OpClass) -> u8 {
    OpClass::ALL.iter().position(|c| *c == class).expect("ALL is exhaustive") as u8
}

/// Inverse of [`class_code`].
#[must_use]
pub fn class_from_code(code: u8) -> Option<OpClass> {
    OpClass::ALL.get(code as usize).copied()
}

/// Writes the trailer sealing `total` records under `stream_digest`.
pub fn encode_trailer(out: &mut Vec<u8>, total: u64, stream_digest: u64) {
    out.push(TAG_TRAILER);
    write_u64(out, total);
    let _ = write_fixed_u64(out, stream_digest);
}

// ---------------------------------------------------------- digests

/// Folds one record into the running whole-stream digest.
#[must_use]
pub fn stream_digest_step(d: u64, r: &TraceRecord) -> u64 {
    let mem = r.mem_addr.map_or(0x5bd1_e995, mix64);
    let exc = match r.exception {
        None => 0,
        Some(Exception::PageFault) => 0x9e37,
        Some(Exception::DivideByZero) => 0x79b9,
    };
    mix64(d ^ r.pc ^ r.next_pc.rotate_left(17) ^ (u64::from(r.taken) << 1 | 1) ^ mem ^ exc)
}

/// Folds one record into the branch-history digest (control flow only).
#[must_use]
pub fn branch_digest_step(d: u64, r: &TraceRecord) -> u64 {
    if r.class.is_control_flow() {
        mix64(d ^ r.pc ^ (u64::from(r.taken) << 63) ^ r.next_pc)
    } else {
        d
    }
}

/// Folds one record into the memory-touch digest (loads/stores only).
#[must_use]
pub fn mem_digest_step(d: u64, r: &TraceRecord) -> u64 {
    match r.mem_addr {
        Some(addr) => mix64(d ^ addr ^ r.pc.rotate_left(32)),
        None => d,
    }
}

/// Digest of the committed-RAT summary: each architectural register's
/// last-writer stream index (`u64::MAX` = never written).
#[must_use]
pub fn rat_digest(last_writer: &[u64; NUM_ARCH_REGS]) -> u64 {
    let mut d = 0u64;
    for (flat, &idx) in last_writer.iter().enumerate() {
        d = mix64(d ^ (flat as u64) ^ idx.rotate_left(13));
    }
    d
}

/// Digest of a program's static text plus identity, pinning trace
/// files to the exact program they were captured from.
#[must_use]
pub fn program_digest(program: &Program) -> u64 {
    let mut d = mix64(program.seed() ^ program.entry().rotate_left(7));
    for inst in program.instructions() {
        let mut h = inst.pc ^ (u64::from(class_code(inst.class)) << 56);
        h ^= inst.fallthrough.rotate_left(11);
        if let Some(t) = inst.taken_target {
            h ^= t.rotate_left(23) | 1;
        }
        if let Some(dst) = inst.dst {
            h ^= (dst.flat_index() as u64) << 40;
        }
        for (i, src) in inst.sources().enumerate() {
            h ^= (src.flat_index() as u64) << (8 * i);
        }
        d = mix64(d ^ h);
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_codes_roundtrip_exhaustively() {
        for class in OpClass::ALL {
            assert_eq!(class_from_code(class_code(class)), Some(class));
        }
        assert_eq!(class_from_code(OpClass::ALL.len() as u8), None);
    }

    #[test]
    fn header_roundtrips() {
        let h = TraceHeader {
            record_count: 12345,
            seed: 0xdead_beef,
            entry: 0x1000,
            text_len: 777,
            program_digest: 0x0123_4567_89ab_cdef,
            checkpoint_interval: 256,
            name: "505.mcf_r".to_owned(),
        };
        let mut buf = Vec::new();
        h.encode(&mut buf);
        assert_eq!(TraceHeader::decode(&mut buf.as_slice()).unwrap(), h);
        // record_count really sits at the fixed patch offset.
        let patched = u64::from_le_bytes(
            buf[RECORD_COUNT_OFFSET as usize..RECORD_COUNT_OFFSET as usize + 8].try_into().unwrap(),
        );
        assert_eq!(patched, 12345);
    }

    #[test]
    fn frame_roundtrips() {
        let f = CheckpointFrame {
            index: 4096,
            next_pc: 0x2040,
            call_depth: 3,
            rat_digest: 1,
            branch_digest: 2,
            mem_digest: 3,
        };
        let mut buf = Vec::new();
        f.encode(&mut buf);
        let mut slice = buf.as_slice();
        let mut tag = [0u8; 1];
        slice.read_exact(&mut tag).unwrap();
        assert_eq!(tag[0], TAG_FRAME);
        assert_eq!(CheckpointFrame::decode(&mut slice).unwrap(), f);
    }

    #[test]
    fn alien_and_future_files_are_rejected() {
        assert!(matches!(
            TraceHeader::decode(&mut b"NOPE".as_slice()),
            Err(TraceError::BadMagic | TraceError::Truncated(_))
        ));
        let mut buf = Vec::new();
        TraceHeader {
            record_count: 0,
            seed: 0,
            entry: 0,
            text_len: 0,
            program_digest: 0,
            checkpoint_interval: 1,
            name: String::new(),
        }
        .encode(&mut buf);
        buf[4] = 9; // future version
        assert!(matches!(TraceHeader::decode(&mut buf.as_slice()), Err(TraceError::BadVersion(9))));
    }
}
