//! `atr-trace`: compact trace capture/replay substrate (`ATRT1`).
//!
//! The paper drives Scarab with SPEC CPU 2017 simpoint traces; this
//! repo synthesizes dynamic streams with [`atr_workload::Oracle`]. The
//! run matrix re-simulates the same program under every scheme × tweak
//! point, so regenerating the identical functional stream per point is
//! pure waste — the gem5 split between cheap functional fast-forward
//! and detailed timing argues for capturing each program's stream
//! *once* and replaying it everywhere.
//!
//! This crate provides that substrate:
//!
//! * **`ATRT1`** — a versioned binary trace format: blocks of
//!   varint + delta-encoded records `(pc, next_pc, taken, mem_addr,
//!   uop class, exception)`, each block preceded by an architectural
//!   [checkpoint frame](format::CheckpointFrame) (stream index, resume
//!   PC, call depth, committed-RAT / branch-history / memory-touch
//!   digests) and the file sealed by a digest trailer;
//! * [`TraceWriter`] — streaming capture, e.g. from a live Oracle run
//!   ([`capture`]);
//! * [`TraceReader`] — header inspection and full-file verification
//!   ([`TraceReader::verify`] recomputes every digest);
//! * [`TraceReplay`] — an [`atr_workload::TraceSource`] that decodes
//!   block-by-block with O(1) memory, and can
//!   [fast-forward](TraceReplay::fast_forward_to) to the checkpoint
//!   frame at or below a target index so detailed simulation starts
//!   mid-stream (checkpointed warmup skip);
//! * [`TraceCache`] — an on-disk cache of captured traces keyed by
//!   program identity, used by `atr-sim`'s executor to capture each
//!   deduplicated program once per matrix.
//!
//! Replay is bit-exact: a [`TraceReplay`] serves the same
//! [`atr_isa::DynInst`]s a live Oracle would, so a pipeline run on
//! either substrate retires an identical stream (pinned by the
//! cross-scheme differential harness in `atr-sim`).

pub mod cache;
pub mod format;
pub mod reader;
pub mod varint;
pub mod writer;

pub use cache::TraceCache;
pub use format::{CheckpointFrame, TraceHeader, TraceRecord};
pub use reader::{TraceReader, TraceReplay, VerifyReport};
pub use writer::{capture, capture_oracle, TraceWriter};

/// Anything that can go wrong producing or consuming an `ATRT1` file.
#[derive(Debug)]
pub enum TraceError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The file does not start with the `ATRT` magic.
    BadMagic,
    /// The file is a later (or garbage) format version.
    BadVersion(u8),
    /// The stream ended inside the named structure.
    Truncated(&'static str),
    /// Structurally invalid content (bad tag, digest mismatch, …).
    Corrupt(String),
    /// The trace was captured from a different program than the one
    /// offered for replay.
    ProgramMismatch(String),
    /// A valid trace that holds fewer records than the run needs.
    TooShort {
        /// Records present in the trace.
        have: u64,
        /// Records the caller asked for.
        need: u64,
    },
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace I/O error: {e}"),
            TraceError::BadMagic => f.write_str("not an ATRT trace (bad magic)"),
            TraceError::BadVersion(v) => write!(f, "unsupported ATRT version {v} (expected 1)"),
            TraceError::Truncated(what) => write!(f, "trace truncated inside {what}"),
            TraceError::Corrupt(why) => write!(f, "corrupt trace: {why}"),
            TraceError::ProgramMismatch(why) => write!(f, "trace/program mismatch: {why}"),
            TraceError::TooShort { have, need } => {
                write!(f, "trace holds {have} records but {need} were requested")
            }
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for TraceError {
    fn from(e: std::io::Error) -> Self {
        TraceError::Io(e)
    }
}
