//! LEB128 varints and zigzag signed deltas.
//!
//! The `ATRT1` record stream is dominated by small PC and address
//! deltas, so every integer field is a base-128 varint and every delta
//! is zigzag-mapped first (small magnitudes of either sign stay short).

use crate::TraceError;
use std::io::{Read, Write};

/// Longest possible encoding of a `u64` (10 × 7 bits ≥ 64 bits).
pub const MAX_VARINT_LEN: usize = 10;

/// Appends `value` to `out` as an unsigned LEB128 varint.
pub fn write_u64(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Appends `value` zigzag-encoded (`0, -1, 1, -2, …` → `0, 1, 2, 3, …`).
pub fn write_i64(out: &mut Vec<u8>, value: i64) {
    write_u64(out, zigzag(value));
}

/// The zigzag mapping of a signed value.
#[must_use]
pub fn zigzag(value: i64) -> u64 {
    ((value << 1) ^ (value >> 63)) as u64
}

/// The inverse zigzag mapping.
#[must_use]
pub fn unzigzag(value: u64) -> i64 {
    ((value >> 1) as i64) ^ -((value & 1) as i64)
}

/// Reads one unsigned LEB128 varint from `r`.
///
/// # Errors
///
/// Returns [`TraceError::Truncated`] if the stream ends mid-varint and
/// [`TraceError::Corrupt`] if the encoding exceeds 64 bits.
pub fn read_u64(r: &mut impl Read) -> Result<u64, TraceError> {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let mut byte = [0u8; 1];
        r.read_exact(&mut byte).map_err(|_| TraceError::Truncated("varint"))?;
        let low = u64::from(byte[0] & 0x7f);
        if shift >= 63 && low > 1 {
            return Err(TraceError::Corrupt("varint overflows 64 bits".into()));
        }
        value |= low << shift;
        if byte[0] & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
        if shift as usize >= MAX_VARINT_LEN * 7 {
            return Err(TraceError::Corrupt("varint longer than 10 bytes".into()));
        }
    }
}

/// Reads one zigzag-encoded signed varint from `r`.
///
/// # Errors
///
/// Propagates [`read_u64`]'s errors.
pub fn read_i64(r: &mut impl Read) -> Result<i64, TraceError> {
    Ok(unzigzag(read_u64(r)?))
}

/// Writes a fixed-width little-endian `u64` (digest fields, where the
/// value is uniformly distributed and a varint would only add bytes).
pub fn write_fixed_u64(out: &mut impl Write, value: u64) -> std::io::Result<()> {
    out.write_all(&value.to_le_bytes())
}

/// Reads a fixed-width little-endian `u64`.
///
/// # Errors
///
/// Returns [`TraceError::Truncated`] if fewer than 8 bytes remain.
pub fn read_fixed_u64(r: &mut impl Read) -> Result<u64, TraceError> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf).map_err(|_| TraceError::Truncated("fixed u64"))?;
    Ok(u64::from_le_bytes(buf))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_u(value: u64) {
        let mut buf = Vec::new();
        write_u64(&mut buf, value);
        assert!(buf.len() <= MAX_VARINT_LEN);
        let mut slice = buf.as_slice();
        assert_eq!(read_u64(&mut slice).unwrap(), value, "u64 {value:#x}");
        assert!(slice.is_empty(), "trailing bytes for {value:#x}");
    }

    #[test]
    fn unsigned_roundtrip_at_boundaries() {
        for shift in 0..64 {
            roundtrip_u(1u64 << shift);
            roundtrip_u((1u64 << shift) - 1);
            roundtrip_u((1u64 << shift).wrapping_add(1));
        }
        roundtrip_u(u64::MAX);
    }

    #[test]
    fn zigzag_maps_small_magnitudes_to_small_codes() {
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
        assert_eq!(zigzag(i64::MIN), u64::MAX);
        for v in [-1000i64, -1, 0, 1, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn signed_roundtrip() {
        for v in [-5i64, 0, 5, i64::MAX, i64::MIN, -4096, 4096] {
            let mut buf = Vec::new();
            write_i64(&mut buf, v);
            assert_eq!(read_i64(&mut buf.as_slice()).unwrap(), v);
        }
    }

    #[test]
    fn truncated_varint_errors() {
        let mut buf = Vec::new();
        write_u64(&mut buf, u64::MAX);
        buf.pop();
        assert!(matches!(read_u64(&mut buf.as_slice()), Err(TraceError::Truncated(_))));
    }

    #[test]
    fn overlong_varint_errors() {
        let buf = [0x80u8; 11];
        assert!(matches!(read_u64(&mut buf.as_slice()), Err(TraceError::Corrupt(_))));
    }

    #[test]
    fn overflowing_tenth_byte_errors() {
        // 9 continuation bytes then a final byte with more than the one
        // remaining significant bit set.
        let mut buf = vec![0x80u8; 9];
        buf.push(0x02);
        assert!(matches!(read_u64(&mut buf.as_slice()), Err(TraceError::Corrupt(_))));
    }
}
