//! Life-of-a-register accounting (§3.1, Fig 4, Fig 14).

use atr_core::RegLifetime;
use atr_isa::RegClass;

/// Fractions of total register-lifetime cycles spent in each §3.1 state.
///
/// A register's lifetime runs from its allocation to the commit of the
/// redefining instruction (when the baseline frees it). It is:
///
/// * **in-use** until it has no pending consumers *and* has been
///   redefined,
/// * **unused** from then until the redefining instruction precommits
///   (speculative early release window — unsafe without shadow storage),
/// * **verified-unused** from precommit to commit (the non-speculative
///   early release window).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LifecycleBreakdown {
    /// Fraction of lifetime cycles the register was genuinely live.
    pub in_use: f64,
    /// Fraction recoverable only by speculative early release.
    pub unused: f64,
    /// Fraction recoverable by non-speculative early release.
    pub verified_unused: f64,
    /// Registers contributing to the statistic.
    pub samples: u64,
}

/// Computes the Fig 4 breakdown over completed lifetimes of `class`.
///
/// Only correct-path allocations whose redefiner committed contribute —
/// the same filtering the paper's Oracle analysis applies (squashed
/// registers have no commit-relative lifetime).
#[must_use]
pub fn lifecycle_breakdown(records: &[RegLifetime], class: RegClass) -> LifecycleBreakdown {
    let mut in_use = 0u64;
    let mut unused = 0u64;
    let mut verified = 0u64;
    let mut samples = 0u64;
    for r in records.iter().filter(|r| r.class == class && !r.wrong_path) {
        let (Some(redefine), Some(precommit), Some(commit)) =
            (r.redefine_cycle, r.redefiner_precommit_cycle, r.redefiner_commit_cycle)
        else {
            continue;
        };
        let last_use = r.last_consume_cycle.unwrap_or(r.alloc_cycle).max(redefine);
        // Clamp against out-of-order timestamp quirks (a consumer can
        // issue after the redefiner precommits).
        let last_use = last_use.min(commit);
        let precommit = precommit.clamp(last_use, commit);
        in_use += last_use - r.alloc_cycle;
        unused += precommit - last_use;
        verified += commit - precommit;
        samples += 1;
    }
    let total = (in_use + unused + verified).max(1) as f64;
    LifecycleBreakdown {
        in_use: in_use as f64 / total,
        unused: unused as f64 / total,
        verified_unused: verified as f64 / total,
        samples,
    }
}

/// Mean cycle gaps inside atomic commit regions (Fig 14).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RegionGaps {
    /// Mean cycles from rename to redefinition.
    pub rename_to_redefine: f64,
    /// Mean cycles from rename to the last consumption.
    pub rename_to_consume: f64,
    /// Mean cycles from rename to the redefiner's commit.
    pub rename_to_commit: f64,
    /// Regions contributing.
    pub samples: u64,
}

/// Computes the Fig 14 gaps over committed atomic regions of `class`.
#[must_use]
pub fn atomic_region_gaps(records: &[RegLifetime], class: RegClass) -> RegionGaps {
    let mut redefine = 0u64;
    let mut consume = 0u64;
    let mut commit = 0u64;
    let mut n = 0u64;
    for r in records.iter().filter(|r| {
        r.class == class && !r.wrong_path && r.is_atomic() && r.redefiner_commit_cycle.is_some()
    }) {
        redefine += r.redefine_cycle.expect("atomic implies redefined") - r.alloc_cycle;
        consume += r.last_consume_cycle.unwrap_or(r.alloc_cycle).saturating_sub(r.alloc_cycle);
        commit += r.redefiner_commit_cycle.expect("filtered") - r.alloc_cycle;
        n += 1;
    }
    let d = n.max(1) as f64;
    RegionGaps {
        rename_to_redefine: redefine as f64 / d,
        rename_to_consume: consume as f64 / d,
        rename_to_commit: commit as f64 / d,
        samples: n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atr_core::{RenameConfig, Renamer};
    use atr_isa::{ArchReg, StaticInst};

    /// Builds lifetime records by driving a real renamer through a tiny
    /// schedule.
    fn sample_records() -> Vec<RegLifetime> {
        let cfg = RenameConfig { collect_events: true, ..RenameConfig::default() };
        let mut rn = Renamer::new(&cfg);
        let r1 = ArchReg::int(1);
        let r2 = ArchReg::int(2);
        // alloc at 10, consumed at 20, redefined at 30 (rename of i2),
        // redefiner precommits 40, commits 50.
        let i1 = StaticInst::alu(0, r1, &[]);
        let c1 = StaticInst::alu(4, r2, &[r1]);
        let i2 = StaticInst::alu(8, r1, &[]);
        let u1 = rn.rename(&i1, 0, 10, false);
        let uc = rn.rename(&c1, 1, 12, false);
        let mut u2 = rn.rename(&i2, 2, 30, false);
        rn.on_issue(&uc.psrcs, 20);
        rn.on_precommit(&mut u2, 40);
        rn.on_commit(&u1, 45);
        rn.on_commit(&uc, 46);
        rn.on_commit(&u2, 50);
        rn.log().records().to_vec()
    }

    #[test]
    fn breakdown_partitions_lifetime() {
        let recs = sample_records();
        let b = lifecycle_breakdown(&recs, RegClass::Int);
        assert!(b.samples >= 1);
        assert!((b.in_use + b.unused + b.verified_unused - 1.0).abs() < 1e-9);
        assert!(b.in_use > 0.0);
    }

    #[test]
    fn breakdown_for_the_known_schedule() {
        // For i1's allocation: alloc 10, in-use until max(consume 20,
        // redefine 30) = 30, unused 30..40, verified 40..50.
        let recs = sample_records();
        // Find the record allocated at cycle 10.
        let r = recs.iter().find(|r| r.alloc_cycle == 10).unwrap();
        assert_eq!(r.redefine_cycle, Some(30));
        assert_eq!(r.redefiner_precommit_cycle, Some(40));
        assert_eq!(r.redefiner_commit_cycle, Some(50));
    }

    #[test]
    fn gaps_require_atomic_regions() {
        let recs = sample_records();
        let g = atomic_region_gaps(&recs, RegClass::Int);
        // The schedule has no branches or memory ops, so the region is
        // atomic.
        assert!(g.samples >= 1);
        assert!(g.rename_to_commit >= g.rename_to_redefine);
    }

    #[test]
    fn empty_input_is_well_defined() {
        let b = lifecycle_breakdown(&[], RegClass::Int);
        assert_eq!(b.samples, 0);
        assert_eq!(b.in_use, 0.0);
        let g = atomic_region_gaps(&[], RegClass::Fp);
        assert_eq!(g.samples, 0);
    }
}
