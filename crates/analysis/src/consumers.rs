//! Consumers-per-atomic-region histogram (Fig 12, §5.4).

use atr_core::RegLifetime;
use atr_isa::RegClass;

/// Distribution of consumer counts across atomic commit regions.
///
/// Bucket `i` (for `i < overflow_bucket`) holds the fraction of atomic
/// regions with exactly `i` consumers; the last bucket aggregates
/// everything at or above it (the paper's 3-bit counter reserves 7, so
/// `>= 7` consumers force no-early-release).
#[derive(Debug, Clone, PartialEq)]
pub struct ConsumerHistogram {
    /// Fraction of regions per consumer count; last bucket is `>=`.
    pub buckets: Vec<f64>,
    /// Mean consumers per region.
    pub mean: f64,
    /// Regions counted.
    pub samples: u64,
}

/// Builds the Fig 12 histogram over atomic regions of `class`, with
/// `overflow_bucket` as the saturating last bucket (7 for the paper's
/// 3-bit counter).
///
/// # Panics
///
/// Panics if `overflow_bucket` is zero.
#[must_use]
pub fn consumer_histogram(
    records: &[RegLifetime],
    class: RegClass,
    overflow_bucket: usize,
) -> ConsumerHistogram {
    assert!(overflow_bucket > 0, "need at least one bucket");
    let mut buckets = vec![0u64; overflow_bucket + 1];
    let mut total = 0u64;
    let mut sum = 0u64;
    for r in records.iter().filter(|r| r.class == class && r.is_atomic()) {
        let c = r.consumers as usize;
        buckets[c.min(overflow_bucket)] += 1;
        sum += u64::from(r.consumers);
        total += 1;
    }
    let d = total.max(1) as f64;
    ConsumerHistogram {
        buckets: buckets.into_iter().map(|b| b as f64 / d).collect(),
        mean: sum as f64 / d,
        samples: total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atr_core::{RenameConfig, Renamer};
    use atr_isa::{ArchReg, StaticInst};

    #[test]
    fn histogram_counts_consumers_of_atomic_regions() {
        let cfg = RenameConfig { collect_events: true, ..RenameConfig::default() };
        let mut rn = Renamer::new(&cfg);
        let r1 = ArchReg::int(1);
        // Region with exactly 2 consumers.
        let _ = rn.rename(&StaticInst::alu(0, r1, &[]), 0, 1, false);
        let _ = rn.rename(&StaticInst::alu(4, ArchReg::int(2), &[r1]), 1, 2, false);
        let _ = rn.rename(&StaticInst::alu(8, ArchReg::int(3), &[r1]), 2, 3, false);
        let _ = rn.rename(&StaticInst::alu(12, r1, &[]), 3, 4, false);
        let h = consumer_histogram(rn.log().records(), RegClass::Int, 7);
        assert!(h.samples > 0);
        assert_eq!(h.buckets.len(), 8);
        assert!(h.buckets[2] > 0.0, "the two-consumer region must appear: {h:?}");
        let total: f64 = h.buckets.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn overflow_bucket_saturates() {
        let cfg = RenameConfig { collect_events: true, ..RenameConfig::default() };
        let mut rn = Renamer::new(&cfg);
        let r1 = ArchReg::int(1);
        let _ = rn.rename(&StaticInst::alu(0, r1, &[]), 0, 1, false);
        for k in 0..9u64 {
            let _ = rn.rename(
                &StaticInst::alu(4 + k * 4, ArchReg::int(2 + (k % 6) as u8), &[r1]),
                1 + k,
                2 + k,
                false,
            );
        }
        let _ = rn.rename(&StaticInst::alu(64, r1, &[]), 20, 30, false);
        let h = consumer_histogram(rn.log().records(), RegClass::Int, 4);
        assert!(h.buckets[4] > 0.0, "9 consumers must land in the >=4 bucket");
    }

    #[test]
    #[should_panic(expected = "at least one bucket")]
    fn zero_buckets_panics() {
        let _ = consumer_histogram(&[], RegClass::Int, 0);
    }
}
