//! Region classification ratios (§3.2, Fig 6).

use atr_core::RegLifetime;
use atr_isa::RegClass;

/// Fractions of allocated registers whose rename→redefine span satisfies
/// each region property of Fig 6.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RegionRatios {
    /// No conditional branch or indirect jump in the region.
    pub non_branch: f64,
    /// No load, store, or division in the region.
    pub non_except: f64,
    /// Both: an atomic commit region.
    pub atomic: f64,
    /// Allocations considered.
    pub samples: u64,
}

/// Computes Fig 6's ratios over all allocations of `class`.
///
/// The denominator is *all allocated registers* (the paper's "ratio of
/// physical registers renamed as part of an atomic region and the total
/// number of allocated physical registers"), including allocations that
/// were never redefined before the run ended (they count as non-atomic)
/// and wrong-path allocations when `include_wrong_path` is set (regions
/// are detected at rename, which cannot know the path).
#[must_use]
pub fn region_ratios(
    records: &[RegLifetime],
    class: RegClass,
    include_wrong_path: bool,
) -> RegionRatios {
    let mut non_branch = 0u64;
    let mut non_except = 0u64;
    let mut atomic = 0u64;
    let mut samples = 0u64;
    for r in records.iter().filter(|r| r.class == class && (include_wrong_path || !r.wrong_path)) {
        samples += 1;
        if r.is_non_branch() {
            non_branch += 1;
        }
        if r.is_non_except() {
            non_except += 1;
        }
        if r.is_atomic() {
            atomic += 1;
        }
    }
    let d = samples.max(1) as f64;
    RegionRatios {
        non_branch: non_branch as f64 / d,
        non_except: non_except as f64 / d,
        atomic: atomic as f64 / d,
        samples,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atr_core::{RenameConfig, Renamer};
    use atr_isa::{ArchReg, StaticInst};

    #[test]
    fn ratios_reflect_region_hazards() {
        let cfg = RenameConfig { collect_events: true, ..RenameConfig::default() };
        let mut rn = Renamer::new(&cfg);
        let r1 = ArchReg::int(1);
        let r2 = ArchReg::int(2);
        let mut seq = 0;
        let mut cycle = 0;
        let mut rename = |rn: &mut Renamer, i: &StaticInst| {
            seq += 1;
            cycle += 1;
            rn.rename(i, seq, cycle, false)
        };
        // Atomic region on r1: define, redefine, nothing between.
        let _ = rename(&mut rn, &StaticInst::alu(0, r1, &[]));
        let _ = rename(&mut rn, &StaticInst::alu(4, r1, &[]));
        // Non-branch but excepting region on r2: define, load, redefine.
        let _ = rename(&mut rn, &StaticInst::alu(8, r2, &[]));
        let _ = rename(&mut rn, &StaticInst::load(12, ArchReg::int(3), ArchReg::int(0)));
        let _ = rename(&mut rn, &StaticInst::alu(16, r2, &[]));
        let ratios = region_ratios(rn.log().records(), RegClass::Int, true);
        // Redefined allocations: r1 gen1 (atomic), r2 gen1 (non-branch
        // only), plus initial mappings of r1/r2/r3 (redefined, with
        // hazards in between for some). At minimum the atomic count and
        // the ordering non_branch >= atomic must hold.
        assert!(ratios.samples > 0);
        assert!(ratios.non_branch >= ratios.atomic);
        assert!(ratios.non_except >= ratios.atomic);
        assert!(ratios.atomic > 0.0);
    }

    #[test]
    fn wrong_path_filter_changes_denominator() {
        let cfg = RenameConfig { collect_events: true, ..RenameConfig::default() };
        let mut rn = Renamer::new(&cfg);
        let _ = rn.rename(&StaticInst::alu(0, ArchReg::int(1), &[]), 0, 1, true);
        let with = region_ratios(rn.log().records(), RegClass::Int, true);
        let without = region_ratios(rn.log().records(), RegClass::Int, false);
        assert_eq!(with.samples, 1);
        assert_eq!(without.samples, 0);
    }
}
