//! Analytical core power/area model (the Fig 15 McPAT substitute).
//!
//! The paper runs McPAT to report that shrinking the register file from
//! 280 to ~204 entries saves ≈5.5% runtime power and ≈2.7% core area.
//! Those numbers are first-order functions of the register file's share
//! of core power/area and how that share scales with entries, so a
//! CACTI-style analytical model reproduces the trend:
//!
//! * multiported RF **area** scales linearly with entries × bits and
//!   quadratically with ports (wordlines × bitlines);
//! * RF **dynamic power** scales with accesses × bitline/wordline length
//!   (≈ √entries each, i.e. ≈ linearly with entries) and ports;
//! * RF **leakage** scales with entries × bits.
//!
//! Constants are calibrated so the *baseline shares* match published
//! Golden-Cove-class breakdowns (register files ≈ 18% of core dynamic
//! power at high occupancy, ≈ 9% of core area); the claims we reproduce
//! are the *relative reductions* of Fig 15, not absolute watts.

use atr_isa::RegClass;

/// Core power/area estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerReport {
    /// Register-file dynamic + leakage power (arbitrary units).
    pub rf_power: f64,
    /// Whole-core power (same units).
    pub core_power: f64,
    /// Register-file area (arbitrary units).
    pub rf_area: f64,
    /// Whole-core area (same units).
    pub core_area: f64,
}

impl PowerReport {
    /// Relative power saving of `self` versus `baseline` (positive =
    /// `self` cheaper).
    #[must_use]
    pub fn power_saving_vs(&self, baseline: &PowerReport) -> f64 {
        1.0 - self.core_power / baseline.core_power
    }

    /// Relative area saving versus `baseline`.
    #[must_use]
    pub fn area_saving_vs(&self, baseline: &PowerReport) -> f64 {
        1.0 - self.core_area / baseline.core_area
    }
}

/// The analytical model. All knobs public so ablations can stress the
/// calibration.
#[derive(Debug, Clone, PartialEq)]
pub struct CorePowerModel {
    /// Read ports per register file.
    pub read_ports: f64,
    /// Write ports per register file.
    pub write_ports: f64,
    /// Core power excluding the register files, in the same units as
    /// the RF terms (calibrated so a 280+280-entry configuration puts
    /// the RFs at ≈18% of core power).
    pub rest_of_core_power: f64,
    /// Core area excluding the register files (calibrated to ≈9% RF
    /// share at 280+280 entries).
    pub rest_of_core_area: f64,
    /// Dynamic-energy coefficient per entry-bit-port.
    pub dynamic_coeff: f64,
    /// Leakage coefficient per entry-bit.
    pub leakage_coeff: f64,
    /// Area coefficient per entry-bit-port².
    pub area_coeff: f64,
    /// RF access activity factor (accesses per cycle per port, 0..1).
    pub activity: f64,
}

impl Default for CorePowerModel {
    fn default() -> Self {
        // Calibration: at (280, 280) entries the RF power share is ~18%
        // and the area share ~9% — see the module docs.
        CorePowerModel {
            read_ports: 12.0,
            write_ports: 6.0,
            rest_of_core_power: 410_000.0,
            rest_of_core_area: 4_600_000.0,
            dynamic_coeff: 1.0,
            leakage_coeff: 0.25,
            area_coeff: 1.0,
            activity: 0.35,
        }
    }
}

impl CorePowerModel {
    fn rf_terms(&self, entries: usize, bits: u32) -> (f64, f64) {
        let e = entries as f64;
        let b = f64::from(bits);
        let ports = self.read_ports + self.write_ports;
        let dynamic = self.dynamic_coeff * self.activity * e * b.sqrt() * ports;
        let leakage = self.leakage_coeff * e * b;
        let area = self.area_coeff * e * b * ports * ports / 64.0;
        (dynamic + leakage, area)
    }

    /// Estimates core power/area for the given scalar/vector register
    /// file sizes.
    #[must_use]
    pub fn estimate(&self, int_entries: usize, fp_entries: usize) -> PowerReport {
        let (p_int, a_int) = self.rf_terms(int_entries, RegClass::Int.bit_width());
        let (p_fp, a_fp) = self.rf_terms(fp_entries, RegClass::Fp.bit_width());
        PowerReport {
            rf_power: p_int + p_fp,
            core_power: p_int + p_fp + self.rest_of_core_power,
            rf_area: a_int + a_fp,
            core_area: a_int + a_fp + self.rest_of_core_area,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rf_share_is_calibrated() {
        let m = CorePowerModel::default();
        let r = m.estimate(280, 280);
        let power_share = r.rf_power / r.core_power;
        let area_share = r.rf_area / r.core_area;
        assert!((0.12..0.25).contains(&power_share), "power share {power_share}");
        assert!((0.05..0.15).contains(&area_share), "area share {area_share}");
    }

    #[test]
    fn shrinking_the_rf_matches_fig15_magnitudes() {
        // Fig 15: 280 -> 204 registers gives ~5.5% power and ~2.7% area
        // reduction.
        let m = CorePowerModel::default();
        let base = m.estimate(280, 280);
        let small = m.estimate(204, 204);
        let p = small.power_saving_vs(&base);
        let a = small.area_saving_vs(&base);
        assert!((0.03..0.08).contains(&p), "power saving {p}");
        assert!((0.015..0.05).contains(&a), "area saving {a}");
    }

    #[test]
    fn savings_are_monotone_in_entries() {
        let m = CorePowerModel::default();
        let base = m.estimate(280, 280);
        let mut last = 0.0;
        for entries in [260, 230, 200, 170] {
            let s = m.estimate(entries, entries).power_saving_vs(&base);
            assert!(s > last, "saving should grow as the file shrinks");
            last = s;
        }
    }

    #[test]
    fn vector_file_dominates_area_per_entry() {
        let m = CorePowerModel::default();
        let int_only = m.estimate(280, 64);
        let fp_only = m.estimate(64, 280);
        assert!(fp_only.rf_area > int_only.rf_area, "256-bit entries cost more");
    }
}
