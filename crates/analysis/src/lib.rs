//! Analyses over simulator output: the paper's measurement machinery.
//!
//! * [`lifetime`] — the §3.1 life-of-a-register accounting (Fig 4's
//!   in-use / unused / verified-unused breakdown) and the Fig 14
//!   rename→redefine/consume/commit gaps;
//! * [`regions`] — the §3.2 region classification (Fig 6's non-branch /
//!   non-except / atomic allocation ratios);
//! * [`consumers`] — the Fig 12 consumers-per-atomic-region histogram
//!   (§5.4 counter-width sensitivity);
//! * [`power`] — a McPAT-style analytical power/area model for the
//!   Fig 15 overhead study;
//! * [`logic`] — a gate-level model of the §4.4 bulk no-early-release
//!   circuit (gate count and logic depth).

pub mod consumers;
pub mod lifetime;
pub mod logic;
pub mod power;
pub mod regions;

pub use consumers::{consumer_histogram, ConsumerHistogram};
pub use lifetime::{atomic_region_gaps, lifecycle_breakdown, LifecycleBreakdown, RegionGaps};
pub use logic::{BulkReleaseLogic, LogicReport};
pub use power::{CorePowerModel, PowerReport};
pub use regions::{region_ratios, RegionRatios};
