//! Gate-level model of the bulk no-early-release logic (§4.2.2, §4.4).
//!
//! The paper synthesizes the marking circuit with Yosys and reports a
//! worst-case path of 42 logic levels and 2,960 gates for an 8-wide
//! x86 design. This module rebuilds the same circuit structurally —
//! per-lane trigger decode, lane-to-slot masking, and the per-ptag
//! match/merge network — and counts two-input-equivalent gates and
//! depth, so the §4.4 feasibility claim can be regenerated and the
//! design-space (width, ptag bits, architectural registers) explored.

/// Parameters of the marking circuit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BulkReleaseLogic {
    /// Superscalar rename width N (8 in §4.4's example).
    pub width: usize,
    /// Physical tag width in bits (log2 of PRF size).
    pub ptag_bits: usize,
    /// Architectural registers per class visible in the SRT (16 for
    /// x86 integer).
    pub srt_entries: usize,
    /// Opcode bits examined by the branch/exception trigger decoder.
    pub opcode_bits: usize,
}

impl Default for BulkReleaseLogic {
    fn default() -> Self {
        BulkReleaseLogic { width: 8, ptag_bits: 9, srt_entries: 16, opcode_bits: 10 }
    }
}

/// Gate count and critical-path estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogicReport {
    /// Two-input-equivalent gates.
    pub gates: u64,
    /// Logic levels on the worst-case path.
    pub levels: u32,
    /// Signals produced (ptag slots that can be marked per cycle:
    /// SRT entries + in-flight group destinations, the paper's
    /// "16 + 7 = 23").
    pub mark_signals: usize,
    /// Delay estimate in picoseconds at the given FO4 delay, with the
    /// paper's 100% wire/fan-in margin.
    pub delay_ps: f64,
}

impl LogicReport {
    /// Maximum clock frequency in GHz for the given pipeline split
    /// (1 = combinational, n = n-stage pipelined marking logic).
    #[must_use]
    pub fn max_frequency_ghz(&self, pipeline_stages: u32) -> f64 {
        1000.0 / (self.delay_ps / f64::from(pipeline_stages.max(1)))
    }
}

/// Ceil(log2) (kept for tree-synthesis variants of the model).
#[allow(dead_code)]
fn clog2(n: usize) -> u32 {
    usize::BITS - n.saturating_sub(1).leading_zeros()
}

impl BulkReleaseLogic {
    /// Builds the circuit model and reports gates/levels.
    ///
    /// Structure (mirroring Fig 9):
    ///
    /// 1. **Trigger decode** per rename lane: classify the lane's opcode
    ///    as branch/exception-capable — a small AND/OR tree over
    ///    `opcode_bits`.
    /// 2. **Lane masking**: slot *s* must be marked if *any* lane whose
    ///    trigger fires is younger than the slot's producer. For the
    ///    SRT's entries every firing lane counts (OR over `width`); for
    ///    the in-flight group destination of lane *k*, lanes `k+1..N`
    ///    count.
    /// 3. **Redefine matching** per SRT entry: compare the entry's ptag
    ///    against each lane's destination tag (`ptag_bits`-bit equality)
    ///    and merge, producing the delayed-redefine signals the release
    ///    logic consumes.
    #[must_use]
    pub fn report(&self) -> LogicReport {
        let n = self.width;
        let mark_signals = self.srt_entries + n.saturating_sub(1);

        // 1. Trigger decode: ~opcode_bits AND terms + OR tree over the
        //    (heuristically) opcode_bits/2 matching patterns, per lane.
        let decode_gates_per_lane = (2 * self.opcode_bits + self.opcode_bits / 2) as u64;
        let decode_gates = decode_gates_per_lane * n as u64;
        // Depth accounting mirrors what unconstrained synthesis (the
        // paper's Yosys flow) produces: AND/OR *chains*, not balanced
        // trees — chains are what the 42-level figure reflects.
        let decode_levels = (self.opcode_bits / 2 + 2) as u32;

        // 2. Lane masking: OR trees. SRT slots take a full-width OR;
        //    group slot k takes an (N-1-k)-input OR. Each OR of m inputs
        //    costs m-1 two-input gates, depth ceil(log2 m).
        let or_full = (n - 1) as u64;
        let srt_mask_gates = or_full * self.srt_entries as u64;
        let group_mask_gates: u64 = (1..n).map(|k| (n - k).saturating_sub(1) as u64).sum();
        // Plus a valid-bit AND per slot.
        let mask_and_gates = mark_signals as u64;
        let mask_levels = n as u32 + 1;

        // 3. Redefine matching: per SRT entry, per lane: XNOR per tag
        //    bit + AND tree, then an OR across lanes, then the
        //    register/enable AND.
        let cmp_gates_per_pair = (self.ptag_bits + (self.ptag_bits - 1)) as u64;
        let match_gates = (self.srt_entries * n) as u64 * cmp_gates_per_pair
            + self.srt_entries as u64 * or_full
            + self.srt_entries as u64;
        let match_levels = 1 + self.ptag_bits as u32 + n as u32 / 2 + 2;

        let gates = decode_gates + srt_mask_gates + group_mask_gates + mask_and_gates + match_gates;
        let levels = decode_levels + mask_levels + match_levels;

        // §4.4: 4.5 ps FO4 at 5 nm, 100% margin for wires and fan-in.
        let fo4_ps = 4.5;
        let delay_ps = f64::from(levels) * fo4_ps * 2.0;

        LogicReport { gates, levels, mark_signals, delay_ps }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_ballpark() {
        // §4.4 reports 2,960 gates and 42 levels for the 8-wide design;
        // the structural model must land in the same ballpark (±40%).
        let r = BulkReleaseLogic::default().report();
        assert_eq!(r.mark_signals, 23, "16 SRT + 7 group ptags");
        assert!((1800..4200).contains(&r.gates), "gates {}", r.gates);
        assert!((25..60).contains(&r.levels), "levels {}", r.levels);
    }

    #[test]
    fn pipelining_reaches_4ghz() {
        // §4.4: combinational ≈ 2.6 GHz; two extra stages pass 4 GHz.
        let r = BulkReleaseLogic::default().report();
        assert!(r.max_frequency_ghz(1) > 2.0);
        assert!(r.max_frequency_ghz(3) > 4.0);
    }

    #[test]
    fn gates_scale_with_width() {
        let narrow = BulkReleaseLogic { width: 4, ..BulkReleaseLogic::default() }.report();
        let wide = BulkReleaseLogic { width: 16, ..BulkReleaseLogic::default() }.report();
        assert!(wide.gates > 2 * narrow.gates);
        assert!(wide.levels >= narrow.levels);
    }

    #[test]
    fn mark_signal_count_follows_geometry() {
        let l = BulkReleaseLogic { width: 6, srt_entries: 16, ..BulkReleaseLogic::default() };
        assert_eq!(l.report().mark_signals, 21);
    }
}
