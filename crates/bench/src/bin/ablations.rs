//! Design-choice ablations beyond the paper's figures: §6 move
//! elimination composed with ATR, and the §5.4 consumer-counter width
//! study as an IPC sweep.

use atr_bench::driver;
use atr_sim::experiments::{ablation_counter_width, ablation_move_elimination};

fn main() {
    let sim = driver::sim();
    let mut rows = ablation_move_elimination(&sim);
    rows.extend(ablation_counter_width(&sim));
    driver::emit(
        "ablations",
        "Ablations (ATR @64 registers, int suite)",
        &["study", "variant", "relative IPC"],
        &rows,
        |r| {
            vec![
                r.study.clone(),
                r.variant.clone(),
                format!("{:+.2}%", (r.relative_ipc - 1.0) * 100.0),
            ]
        },
        Some(
            "paper: §5.4 says 3-bit counters lose nothing; §6 says move\n\
             elimination composes with ATR."
                .to_owned(),
        ),
    );
}
