//! Design-choice ablations beyond the paper's figures: §6 move
//! elimination composed with ATR, and the §5.4 consumer-counter width
//! study as an IPC sweep.

use atr_sim::experiments::{ablation_counter_width, ablation_move_elimination};
use atr_sim::report::{render_table, save_json};
use atr_sim::SimConfig;

fn main() {
    let sim = SimConfig::golden_cove();
    let mut rows = ablation_move_elimination(&sim);
    rows.extend(ablation_counter_width(&sim));
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.study.clone(),
                r.variant.clone(),
                format!("{:+.2}%", (r.relative_ipc - 1.0) * 100.0),
            ]
        })
        .collect();
    println!("Ablations (ATR @64 registers, int suite)\n");
    print!("{}", render_table(&["study", "variant", "relative IPC"], &table));
    println!("\npaper: §5.4 says 3-bit counters lose nothing; §6 says move\nelimination composes with ATR.");
    if let Ok(path) = save_json("ablations", &rows) {
        println!("saved {}", path.display());
    }
}
