//! Regenerates Fig 14: average cycles between rename, redefine, last
//! consume, and redefiner commit within atomic commit regions.
//!
//! Paper reference: redefinition happens a few cycles after rename,
//! consumption significantly later (it waits on data dependencies), and
//! the redefiner's commit much later still -- which is why delaying the
//! redefine signal by 1-2 cycles (Fig 13) costs almost nothing.

use atr_bench::driver;

fn main() {
    let rows = atr_sim::experiments::fig14(&driver::sim());
    driver::emit(
        "fig14",
        "Fig 14: Mean cycles from rename within atomic regions",
        &["benchmark", "suite", "to redefine", "to last consume", "to redefiner commit"],
        &rows,
        |r| {
            vec![
                r.benchmark.clone(),
                r.class.clone(),
                format!("{:.1}", r.rename_to_redefine),
                format!("{:.1}", r.rename_to_consume),
                format!("{:.1}", r.rename_to_commit),
            ]
        },
        None,
    );
}
