//! Regenerates Table 2 (the SPEC CPU 2017 benchmark list) from the
//! workload substrate, with the modeled characteristics of each profile.

use atr_bench::driver;
use atr_workload::spec::all_profiles;

fn main() {
    let rows: Vec<Vec<String>> = all_profiles()
        .iter()
        .map(|p| {
            vec![
                p.name.to_owned(),
                p.class.to_string(),
                format!("{:.0}%", p.params.load_frac * 100.0),
                format!("{:.0}%", p.params.branch_entropy * 100.0),
                format!("{} MiB", p.params.mem_footprint >> 20),
                format!("{:.0}%", p.params.burst_frac * 100.0),
            ]
        })
        .collect();
    driver::print_table(
        "Table 2: SPEC CPU 2017 Benchmarks (synthetic stand-in profiles)",
        &["benchmark", "suite", "loads", "branch entropy", "footprint", "burst frac"],
        &rows,
    );
}
