//! Regenerates Fig 15: the smallest register file keeping IPC within 3%
//! of the 280-register baseline, per scheme, plus the analytical
//! power/area savings.
//!
//! Paper reference: atomic needs 204 registers (-27.1%), nonspec-ER 212
//! (-24.3%), combined 196 (-30%); the atomic scheme saves ~5.5% runtime
//! power and ~2.7% core area (McPAT).

use atr_analysis::CorePowerModel;
use atr_bench::driver;
use atr_sim::report::pct;

fn main() {
    let rows = atr_sim::experiments::fig15(&driver::sim(), 0.03, 8);
    let model = CorePowerModel::default();
    let baseline = model.estimate(280, 280);
    driver::emit(
        "fig15",
        "Fig 15: RF size for <=3% slowdown vs baseline@280\n\
         (paper: atomic 204/-27.1%, nonspec-ER 212/-24.3%, combined 196/-30%,\n\
          ~5.5% power and ~2.7-2.9% area saving)",
        &["scheme", "required rf", "reduction", "power saving", "area saving"],
        &rows,
        |r| {
            let est = model.estimate(r.required_rf, r.required_rf);
            vec![
                r.scheme.clone(),
                r.required_rf.to_string(),
                pct(r.reduction),
                pct(est.power_saving_vs(&baseline)),
                pct(est.area_saving_vs(&baseline)),
            ]
        },
        None,
    );
}
