//! Regenerates Fig 10: IPC speedup of nonspec-ER / atomic / combined
//! over the baseline at 64 and 224 physical registers.
//!
//! Paper reference at 64 registers: atomic +5.70% (int) / +4.69% (fp);
//! nonspec-ER +13.91% / +14.43%; combined adds +3.23% / +3.27% over
//! nonspec-ER. At 224: atomic +1.48% / +1.11%, beating nonspec-ER by
//! +0.37% / +0.46%.

use atr_sim::report::{gain, render_table, save_json};
use atr_sim::SimConfig;

fn main() {
    let sim = SimConfig::golden_cove();
    let rows = atr_sim::experiments::fig10(&sim);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.benchmark.clone(),
                r.class.clone(),
                r.rf_size.to_string(),
                r.scheme.clone(),
                gain(r.speedup),
            ]
        })
        .collect();
    println!("Fig 10: Scheme speedups over baseline @64/@224 registers\n");
    print!("{}", render_table(&["benchmark", "suite", "rf", "scheme", "speedup"], &table));
    if let Ok(path) = save_json("fig10", &rows) {
        println!("\nsaved {}", path.display());
    }
}
