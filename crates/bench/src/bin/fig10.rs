//! Regenerates Fig 10: IPC speedup of nonspec-ER / atomic / combined
//! over the baseline at 64 and 224 physical registers.
//!
//! Paper reference at 64 registers: atomic +5.70% (int) / +4.69% (fp);
//! nonspec-ER +13.91% / +14.43%; combined adds +3.23% / +3.27% over
//! nonspec-ER. At 224: atomic +1.48% / +1.11%, beating nonspec-ER by
//! +0.37% / +0.46%.

use atr_bench::driver;
use atr_sim::report::gain;

fn main() {
    let rows = atr_sim::experiments::fig10(&driver::sim());
    driver::emit(
        "fig10",
        "Fig 10: Scheme speedups over baseline @64/@224 registers",
        &["benchmark", "suite", "rf", "scheme", "speedup"],
        &rows,
        |r| {
            vec![
                r.benchmark.clone(),
                r.class.clone(),
                r.rf_size.to_string(),
                r.scheme.clone(),
                gain(r.speedup),
            ]
        },
        None,
    );
}
