//! Regenerates Fig 4: register lifecycle cyclecount distribution.
//!
//! Paper reference (SPEC2017int): registers are in-use 53.52% of their
//! lifetime, unused 41.03%, and verified-unused 5.05%; for the vector
//! file (SPEC2017fp): 78.27% / 18.91% / 2.81%.

use atr_sim::report::{pct, render_table, save_json};
use atr_sim::SimConfig;

fn main() {
    let sim = SimConfig::golden_cove();
    let rows = atr_sim::experiments::fig04(&sim);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.benchmark.clone(),
                r.class.clone(),
                pct(r.in_use),
                pct(r.unused),
                pct(r.verified_unused),
            ]
        })
        .collect();
    println!(
        "Fig 4: Register lifecycle distribution\n\
         (paper: int 53.52/41.03/5.05%, fp 78.27/18.91/2.81%)\n"
    );
    print!(
        "{}",
        render_table(&["benchmark", "suite", "in-use", "unused", "verified-unused"], &table)
    );
    if let Ok(path) = save_json("fig04", &rows) {
        println!("\nsaved {}", path.display());
    }
}
