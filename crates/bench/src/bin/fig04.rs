//! Regenerates Fig 4: register lifecycle cyclecount distribution.
//!
//! Paper reference (SPEC2017int): registers are in-use 53.52% of their
//! lifetime, unused 41.03%, and verified-unused 5.05%; for the vector
//! file (SPEC2017fp): 78.27% / 18.91% / 2.81%.

use atr_bench::driver;
use atr_sim::report::pct;

fn main() {
    let rows = atr_sim::experiments::fig04(&driver::sim());
    driver::emit(
        "fig04",
        "Fig 4: Register lifecycle distribution\n\
         (paper: int 53.52/41.03/5.05%, fp 78.27/18.91/2.81%)",
        &["benchmark", "suite", "in-use", "unused", "verified-unused"],
        &rows,
        |r| {
            vec![
                r.benchmark.clone(),
                r.class.clone(),
                pct(r.in_use),
                pct(r.unused),
                pct(r.verified_unused),
            ]
        },
        None,
    );
}
