//! Validates run-telemetry JSONL against the record schema.
//!
//! Reads the files named on the command line (or stdin when none),
//! checks every non-empty line with
//! [`atr_sim::telemetry::validate_record`] — parseable JSON, current
//! schema tag, required fields, CPI-slot sum == width × cycles — and
//! exits non-zero naming the first bad line. CI pipes the telemetry
//! output of a tiny-budget `all_experiments` pass through this.

use std::io::Read as _;
use std::process::ExitCode;

fn main() -> ExitCode {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    let sources: Vec<(String, String)> = if paths.is_empty() {
        let mut body = String::new();
        if let Err(e) = std::io::stdin().read_to_string(&mut body) {
            atr_telemetry::warn!("could not read stdin: {e}");
            return ExitCode::FAILURE;
        }
        vec![("<stdin>".to_owned(), body)]
    } else {
        let mut sources = Vec::new();
        for path in paths {
            match std::fs::read_to_string(&path) {
                Ok(body) => sources.push((path, body)),
                Err(e) => {
                    atr_telemetry::warn!("could not read {path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        sources
    };

    let mut records = 0usize;
    for (name, body) in &sources {
        for (lineno, line) in body.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            if let Err(e) = atr_sim::telemetry::validate_record(line) {
                atr_telemetry::warn!("{name}:{}: invalid telemetry record: {e}", lineno + 1);
                return ExitCode::FAILURE;
            }
            records += 1;
        }
    }
    if records == 0 {
        atr_telemetry::warn!("no telemetry records found (is ATR_TELEMETRY=stats set?)");
        return ExitCode::FAILURE;
    }
    atr_telemetry::info!("jsonl_check: {records} valid telemetry records");
    ExitCode::SUCCESS
}
