//! Per-scheme CPI stacks: where do the retire slots go?
//!
//! Runs every SPEC profile under each release scheme at a
//! freelist-pressured register file (64 regs, where the schemes differ
//! most), merges the per-run CPI stacks per scheme, and prints the
//! top-down comparison table. The freelist-stall column shrinking from
//! Baseline to ATR/Combined is the paper's mechanism made visible.
//!
//! Telemetry is forced to `stats` level internally — no `ATR_TELEMETRY`
//! needed — but budget (`ATR_SIM_WARMUP`/`ATR_SIM_INSTS`) and `ATR_LOG`
//! behave as everywhere else.

use atr_bench::driver;
use atr_core::ReleaseScheme;
use atr_sim::report::cpi_table;
use atr_sim::runner::{run_profile, RunSpec};
use atr_telemetry::{RunTelemetry, TelemetryConfig, TelemetryLevel};
use atr_workload::spec::all_profiles;

/// The paper's four schemes at the pressured design point.
const SCHEMES: [ReleaseScheme; 4] = [
    ReleaseScheme::Baseline,
    ReleaseScheme::NonSpecEr,
    ReleaseScheme::Atr { redefine_delay: 0 },
    ReleaseScheme::Combined { redefine_delay: 0 },
];
const RF_SIZE: usize = 64;

fn main() {
    let sim = driver::sim();
    let profiles = all_profiles();
    atr_telemetry::info!(
        "cpi_stack: {} profiles x {} schemes @{} regs (warmup {}, measure {})",
        profiles.len(),
        SCHEMES.len(),
        RF_SIZE,
        sim.warmup,
        sim.measure
    );

    // One aggregate stack per scheme; schemes run on parallel threads,
    // profiles serially within each (results are order-independent
    // because merged CPI stacks commute).
    let merged: Vec<(String, RunTelemetry)> = std::thread::scope(|scope| {
        let handles: Vec<_> = SCHEMES
            .map(|scheme| {
                let sim = &sim;
                let profiles = &profiles;
                scope.spawn(move || {
                    let spec = RunSpec {
                        scheme,
                        rf_size: RF_SIZE,
                        warmup: sim.warmup,
                        measure: sim.measure,
                        collect_events: false,
                        audit: false,
                        telemetry: TelemetryConfig {
                            level: TelemetryLevel::Stats,
                            ..TelemetryConfig::default()
                        },
                    };
                    let mut total = RunTelemetry::default();
                    for profile in profiles {
                        let result = run_profile(&sim.core, profile, &spec);
                        total.merge(&result.telemetry);
                        atr_telemetry::debug!("{} {} done", profile.name, scheme.label());
                    }
                    (format!("{}@{RF_SIZE}", scheme.label()), total)
                })
            })
            .into_iter()
            .collect();
        handles.into_iter().map(|h| h.join().expect("scheme worker panicked")).collect()
    });

    let columns: Vec<(String, &atr_telemetry::CpiStack)> = merged
        .iter()
        .map(|(name, t)| (name.clone(), t.cpi.as_ref().expect("stats level fills the stack")))
        .collect();
    for (name, stack) in &columns {
        stack.check().unwrap_or_else(|e| panic!("CPI invariant broken for {name}: {e}"));
    }
    println!("CPI stacks, SPEC aggregate (fraction of retire slots)\n");
    print!("{}", cpi_table(&columns));
}
