//! Regenerates Fig 6: the atomic register ratio per benchmark.
//!
//! Paper reference: on average 17.04% of allocated registers in
//! SPEC2017int and 13.14% in SPEC2017fp are in atomic commit regions,
//! with non-branch >= non-except >= atomic per benchmark.

use atr_bench::driver;
use atr_sim::report::pct;

fn main() {
    let rows = atr_sim::experiments::fig06(&driver::sim());
    driver::emit(
        "fig06",
        "Fig 6: Atomic register ratio (paper: 17.04% int / 13.14% fp average)",
        &["benchmark", "suite", "non-branch", "non-except", "atomic"],
        &rows,
        |r| {
            vec![
                r.benchmark.clone(),
                r.class.clone(),
                pct(r.non_branch),
                pct(r.non_except),
                pct(r.atomic),
            ]
        },
        None,
    );
}
