//! Regenerates Fig 6: the atomic register ratio per benchmark.
//!
//! Paper reference: on average 17.04% of allocated registers in
//! SPEC2017int and 13.14% in SPEC2017fp are in atomic commit regions,
//! with non-branch ≥ non-except ≥ atomic per benchmark.

use atr_sim::report::{pct, render_table, save_json};
use atr_sim::SimConfig;

fn main() {
    let sim = SimConfig::golden_cove();
    let rows = atr_sim::experiments::fig06(&sim);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.benchmark.clone(),
                r.class.clone(),
                pct(r.non_branch),
                pct(r.non_except),
                pct(r.atomic),
            ]
        })
        .collect();
    println!("Fig 6: Atomic register ratio (paper: 17.04% int / 13.14% fp average)\n");
    print!(
        "{}",
        render_table(&["benchmark", "suite", "non-branch", "non-except", "atomic"], &table)
    );
    if let Ok(path) = save_json("fig06", &rows) {
        println!("\nsaved {}", path.display());
    }
}
