//! Regenerates Fig 11: atomic-scheme speedup over the baseline across
//! register file sizes 64...280.
//!
//! Paper reference: the speedup shrinks monotonically with RF size --
//! +5.70%/+4.69% (int/fp) at 64 registers down to +0.93%/+0.53% at 280.

use atr_bench::driver;
use atr_sim::report::gain;

fn main() {
    let rows = atr_sim::experiments::fig11(&driver::sim());
    driver::emit(
        "fig11",
        "Fig 11: Atomic speedup vs RF size (paper: shrinking with size)",
        &["suite", "rf", "speedup"],
        &rows,
        |r| vec![r.class.clone(), r.rf_size.to_string(), gain(r.speedup)],
        None,
    );
}
