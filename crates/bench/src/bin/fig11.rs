//! Regenerates Fig 11: atomic-scheme speedup over the baseline across
//! register file sizes 64…280.
//!
//! Paper reference: the speedup shrinks monotonically with RF size —
//! +5.70%/+4.69% (int/fp) at 64 registers down to +0.93%/+0.53% at 280.

use atr_sim::report::{gain, render_table, save_json};
use atr_sim::SimConfig;

fn main() {
    let sim = SimConfig::golden_cove();
    let rows = atr_sim::experiments::fig11(&sim);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| vec![r.class.clone(), r.rf_size.to_string(), gain(r.speedup)])
        .collect();
    println!("Fig 11: Atomic speedup vs RF size (paper: shrinking with size)\n");
    print!("{}", render_table(&["suite", "rf", "speedup"], &table));
    if let Ok(path) = save_json("fig11", &rows) {
        println!("\nsaved {}", path.display());
    }
}
