//! Regenerates Fig 12: consumer count distribution per atomic region.
//!
//! Paper reference: most workloads average 1-2 consumers per atomic
//! region; only namd shows a considerable share of regions with up to
//! five consumers, so a 3-bit counter (sentinel at 7) loses nothing.

use atr_bench::driver;
use atr_sim::report::pct;

fn main() {
    let rows = atr_sim::experiments::fig12(&driver::sim());
    driver::emit(
        "fig12",
        "Fig 12: Consumers per atomic region (paper: mostly 1-2; namd up to 5)",
        &["benchmark", "suite", "mean", "0", "1", "2", "3", "4", "5", "6", ">=7"],
        &rows,
        |r| {
            let mut cells = vec![r.benchmark.clone(), r.class.clone(), format!("{:.2}", r.mean)];
            cells.extend(r.buckets.iter().map(|b| pct(*b)));
            cells
        },
        None,
    );
}
