//! Regenerates Fig 12: consumer count distribution per atomic region.
//!
//! Paper reference: most workloads average 1-2 consumers per atomic
//! region; only namd shows a considerable share of regions with up to
//! five consumers, so a 3-bit counter (sentinel at 7) loses nothing.

use atr_sim::report::{pct, render_table, save_json};
use atr_sim::SimConfig;

fn main() {
    let sim = SimConfig::golden_cove();
    let rows = atr_sim::experiments::fig12(&sim);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let mut cells = vec![r.benchmark.clone(), r.class.clone(), format!("{:.2}", r.mean)];
            cells.extend(r.buckets.iter().map(|b| pct(*b)));
            cells
        })
        .collect();
    println!("Fig 12: Consumers per atomic region (paper: mostly 1-2; namd up to 5)\n");
    print!(
        "{}",
        render_table(
            &["benchmark", "suite", "mean", "0", "1", "2", "3", "4", "5", "6", ">=7"],
            &table
        )
    );
    if let Ok(path) = save_json("fig12", &rows) {
        println!("\nsaved {}", path.display());
    }
}
