//! Regenerates Fig 13: effect of pipelining the redefine/marking logic
//! by 0/1/2 cycles on the atomic scheme.
//!
//! Paper reference: the impact is negligible, because consumption
//! happens much later than redefinition (Fig 14).

use atr_sim::report::{gain, render_table, save_json};
use atr_sim::SimConfig;

fn main() {
    let sim = SimConfig::golden_cove();
    let rows = atr_sim::experiments::fig13(&sim);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| vec![r.class.clone(), r.delay.to_string(), gain(r.speedup)])
        .collect();
    println!("Fig 13: Redefine-pipeline delay sensitivity @64 registers\n");
    print!("{}", render_table(&["suite", "delay", "speedup vs baseline"], &table));
    if let Ok(path) = save_json("fig13", &rows) {
        println!("\nsaved {}", path.display());
    }
}
