//! Regenerates Fig 13: effect of pipelining the redefine/marking logic
//! by 0/1/2 cycles on the atomic scheme.
//!
//! Paper reference: the impact is negligible, because consumption
//! happens much later than redefinition (Fig 14).

use atr_bench::driver;
use atr_sim::report::gain;

fn main() {
    let rows = atr_sim::experiments::fig13(&driver::sim());
    driver::emit(
        "fig13",
        "Fig 13: Redefine-pipeline delay sensitivity @64 registers",
        &["suite", "delay", "speedup vs baseline"],
        &rows,
        |r| vec![r.class.clone(), r.delay.to_string(), gain(r.speedup)],
        None,
    );
}
