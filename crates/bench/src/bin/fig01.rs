//! Regenerates Fig 1: baseline IPC vs register file size (SPEC2017int),
//! normalized to an effectively infinite register file.
//!
//! Paper reference: 64 registers reach only 37.7% of ideal IPC on
//! average; ~280 registers are needed to stay within 5% of ideal.

use atr_bench::driver;
use atr_sim::experiments::{fig01, fig01_average, RF_SWEEP};
use atr_sim::report::pct;

fn main() {
    let rows = fig01(&driver::sim());
    let footer = RF_SWEEP
        .iter()
        .map(|&rf| format!("average @{rf}: {}", pct(fig01_average(&rows, rf))))
        .collect::<Vec<_>>()
        .join("\n");
    driver::emit(
        "fig01",
        "Fig 1: Normalized baseline IPC vs RF size (paper: 37.7% of ideal at 64)",
        &["benchmark", "rf", "ipc/ideal"],
        &rows,
        |r| vec![r.benchmark.clone(), r.rf_size.to_string(), pct(r.normalized_ipc)],
        Some(footer),
    );
}
