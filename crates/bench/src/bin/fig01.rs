//! Regenerates Fig 1: baseline IPC vs register file size (SPEC2017int),
//! normalized to an effectively infinite register file.
//!
//! Paper reference: 64 registers reach only 37.7% of ideal IPC on
//! average; ~280 registers are needed to stay within 5% of ideal.

use atr_sim::experiments::{fig01, fig01_average, RF_SWEEP};
use atr_sim::report::{pct, render_table, save_json};
use atr_sim::SimConfig;

fn main() {
    let sim = SimConfig::golden_cove();
    let rows = fig01(&sim);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| vec![r.benchmark.clone(), r.rf_size.to_string(), pct(r.normalized_ipc)])
        .collect();
    println!("Fig 1: Normalized baseline IPC vs RF size (paper: 37.7% of ideal at 64)\n");
    print!("{}", render_table(&["benchmark", "rf", "ipc/ideal"], &table));
    println!();
    for rf in RF_SWEEP {
        println!("average @{rf}: {}", pct(fig01_average(&rows, rf)));
    }
    if let Ok(path) = save_json("fig01", &rows) {
        println!("\nsaved {}", path.display());
    }
}
