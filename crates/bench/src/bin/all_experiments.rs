//! Runs every experiment in DESIGN.md's index and writes
//! `results/*.json` plus a combined summary to stdout.
//!
//! This is the run-matrix engine's showcase pass: the union of every
//! figure's points is ensured **once** on a shared
//! [`atr_sim::RunMatrix`], so the baselines that fig01/fig10/fig11/
//! fig15 and the analysis figures share simulate exactly once, in
//! parallel (`ATR_SIM_THREADS` workers), and each figure is then
//! assembled from the cache for free.
//!
//! Budget control: `ATR_SIM_WARMUP` / `ATR_SIM_INSTS` (per measured
//! window). A full pass at the default budget takes tens of minutes.
//!
//! All narrative goes to **stderr** (via the `ATR_LOG` leveled logger),
//! so with `ATR_TELEMETRY=stats` and `ATR_TELEMETRY_OUT` unset, stdout
//! is pure JSONL: one run-telemetry record per simulated point.

use atr_analysis::{BulkReleaseLogic, CorePowerModel};
use atr_bench::driver;
use atr_sim::experiments as exp;
use atr_sim::report::{coverage_marker, gain, pct, save_json};
use atr_sim::RunMatrix;

fn main() {
    let sim = driver::sim();
    // Every ATR_* runtime knob, resolved exactly once.
    let session = driver::session();
    atr_telemetry::info!(
        "running all experiments (warmup {}, measure {}) ...",
        sim.warmup,
        sim.measure
    );
    atr_telemetry::info!("session: {}", session.describe());

    let t0 = std::time::Instant::now();

    // One shared matrix: declare everything, simulate the unique subset.
    let mut matrix = RunMatrix::new();
    matrix.ensure_with(&session, &sim.core, &exp::full_pass_points(&sim));
    atr_telemetry::info!("[{:>5.0?}] matrix: {}", t0.elapsed(), matrix.summary());

    let fig01 = exp::fig01_assemble(&sim, &matrix);
    let _ = save_json("fig01", &fig01);
    atr_telemetry::info!(
        "[{:>5.0?}] fig01: avg normalized IPC @64 = {} (paper 37.7%)",
        t0.elapsed(),
        pct(exp::fig01_average(&fig01, 64))
    );

    let fig04 = exp::fig04_assemble(&sim, &matrix);
    let _ = save_json("fig04", &fig04);
    for r in fig04.iter().filter(|r| r.benchmark.starts_with("average")) {
        atr_telemetry::info!(
            "[{:>5.0?}] fig04 {}: in-use {} unused {} verified {} (paper int 53.5/41.0/5.1, fp 78.3/18.9/2.8)",
            t0.elapsed(),
            r.benchmark,
            pct(r.in_use),
            pct(r.unused),
            pct(r.verified_unused)
        );
    }

    let fig06 = exp::fig06_assemble(&sim, &matrix);
    let _ = save_json("fig06", &fig06);
    for r in fig06.iter().filter(|r| r.benchmark.starts_with("average")) {
        atr_telemetry::info!(
            "[{:>5.0?}] fig06 {}: atomic {} (paper int 17.04%, fp 13.14%)",
            t0.elapsed(),
            r.benchmark,
            pct(r.atomic)
        );
    }

    let fig10 = exp::fig10_assemble(&sim, &matrix, &[64, 224]);
    let _ = save_json("fig10", &fig10);
    for r in fig10.iter().filter(|r| r.benchmark.starts_with("average")) {
        atr_telemetry::info!(
            "[{:>5.0?}] fig10 {} @{} {}: {}",
            t0.elapsed(),
            r.benchmark,
            r.rf_size,
            r.scheme,
            gain(r.speedup)
        );
    }

    let fig11 = exp::fig11_assemble(&sim, &matrix);
    let _ = save_json("fig11", &fig11);
    for r in &fig11 {
        atr_telemetry::info!(
            "[{:>5.0?}] fig11 {} @{}: {}",
            t0.elapsed(),
            r.class,
            r.rf_size,
            gain(r.speedup)
        );
    }

    let fig12 = exp::fig12_assemble(&sim, &matrix);
    let _ = save_json("fig12", &fig12);
    let mean_all: f64 = fig12.iter().map(|r| r.mean).sum::<f64>() / fig12.len() as f64;
    let namd = fig12.iter().find(|r| r.benchmark.contains("namd"));
    atr_telemetry::info!(
        "[{:>5.0?}] fig12: mean consumers/region {:.2}; namd mean {:.2} (paper: 1-2 typical, namd up to 5)",
        t0.elapsed(),
        mean_all,
        namd.map_or(0.0, |r| r.mean)
    );

    let fig13 = exp::fig13_assemble(&sim, &matrix);
    let _ = save_json("fig13", &fig13);
    for r in &fig13 {
        atr_telemetry::info!(
            "[{:>5.0?}] fig13 {} delay={}: {}",
            t0.elapsed(),
            r.class,
            r.delay,
            gain(r.speedup)
        );
    }

    let fig14 = exp::fig14_assemble(&sim, &matrix);
    let _ = save_json("fig14", &fig14);
    let avg = |f: fn(&exp::Fig14Row) -> f64| fig14.iter().map(f).sum::<f64>() / fig14.len() as f64;
    atr_telemetry::info!(
        "[{:>5.0?}] fig14: redefine {:.1}cy, consume {:.1}cy, commit {:.1}cy after rename",
        t0.elapsed(),
        avg(|r| r.rename_to_redefine),
        avg(|r| r.rename_to_consume),
        avg(|r| r.rename_to_commit)
    );

    let fig15 = exp::fig15_assemble(&sim, &matrix, 0.03, 8);
    let _ = save_json("fig15", &fig15);
    let model = CorePowerModel::default();
    let base = model.estimate(280, 280);
    for r in &fig15 {
        let est = model.estimate(r.required_rf, r.required_rf);
        atr_telemetry::info!(
            "[{:>5.0?}] fig15 {}: {} regs ({} reduction, {} power, {} area)",
            t0.elapsed(),
            r.scheme,
            r.required_rf,
            pct(r.reduction),
            pct(est.power_saving_vs(&base)),
            pct(est.area_saving_vs(&base)),
        );
    }

    let mut ablations = exp::ablation_move_elimination_assemble(&sim, &matrix);
    ablations.extend(exp::ablation_counter_width_assemble(&sim, &matrix));
    let _ = save_json("ablations", &ablations);
    for r in &ablations {
        atr_telemetry::info!(
            "[{:>5.0?}] ablation {} {}: {:+.2}%",
            t0.elapsed(),
            r.study,
            r.variant,
            (r.relative_ipc - 1.0) * 100.0
        );
    }

    let logic = BulkReleaseLogic::default().report();
    atr_telemetry::info!(
        "[{:>5.0?}] §4.4: {} gates, {} levels, {:.1} GHz combinational (paper 2,960 / 42 / 2.6)",
        t0.elapsed(),
        logic.gates,
        logic.levels,
        logic.max_frequency_ghz(1)
    );

    if let Some(marker) = coverage_marker(matrix.failed(), matrix.executed()) {
        for (point, failure) in matrix.failures() {
            atr_telemetry::warn!("failed point {}: {failure}", point.label());
        }
        atr_telemetry::warn!("{marker}");
    }
    atr_telemetry::info!("done in {:?}; {}; JSON in results/", t0.elapsed(), matrix.summary());
}
