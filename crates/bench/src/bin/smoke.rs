use atr_core::ReleaseScheme;
use atr_pipeline::{run_program, CoreConfig};
use atr_workload::spec;

fn main() {
    let n: u64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(100_000);
    for prof in ["548.exchange2_r", "505.mcf_r", "525.x264_r", "508.namd_r"] {
        let p = spec::find_profile(prof).unwrap();
        let program = p.build();
        print!("{:18}", prof);
        for rf in [64usize, 224] {
            for scheme in ReleaseScheme::ALL {
                let cfg = CoreConfig::default().with_rf_size(rf).with_scheme(scheme);
                let stats = run_program(&cfg, program.clone(), n);
                print!(" {}@{}={:.3}", scheme, rf, stats.ipc());
            }
        }
        println!();
    }
    // detail stats for one config
    let p = spec::find_profile("548").unwrap();
    let cfg = CoreConfig::default().with_rf_size(64);
    let s = run_program(&cfg, p.build(), n);
    println!("exchange2 base@64: ipc={:.3} mpki={:.1} mispred_rate={:.3} flushes={} wp_fetched={} wp_renamed={} exc={} freelist_stalls={} occ_int={:.1} atomic_rel={} commit_rel={} flush_rel={} dfa={}",
        s.ipc(), s.mpki(), s.mispredict_rate(), s.flushes, s.wrong_path_fetched, s.wrong_path_renamed, s.exceptions,
        s.rename_freelist_stalls, s.avg_int_prf_occupancy(), s.int_prf.released_atomic, s.int_prf.released_commit, s.int_prf.released_flush, s.int_prf.flush_double_free_avoided);
}
