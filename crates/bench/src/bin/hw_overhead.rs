//! Regenerates the §4.4 hardware-overhead analysis: storage cost of the
//! consumer counters and the gate count / logic depth / frequency of
//! the bulk no-early-release circuit.
//!
//! Paper reference: 3/64 = 4.6% scalar and 3/256 = 1.1% vector storage
//! overhead; 42 logic levels, 2,960 gates, 2.6 GHz combinational and
//! >4 GHz with two extra pipeline stages.

use atr_analysis::BulkReleaseLogic;
use atr_bench::driver;
use atr_isa::RegClass;

fn main() {
    let mut rows = Vec::new();
    for class in RegClass::ALL {
        let bits = class.bit_width();
        rows.push(vec![
            format!("{class} consumer counter"),
            format!("3 bits / {bits} -> {:.1}%", 3.0 / f64::from(bits) * 100.0),
        ]);
    }
    let logic = BulkReleaseLogic::default();
    let r = logic.report();
    rows.push(vec!["mark signals (16 SRT + width-1)".into(), r.mark_signals.to_string()]);
    rows.push(vec!["gates (2-input equivalent)".into(), r.gates.to_string()]);
    rows.push(vec!["logic levels".into(), r.levels.to_string()]);
    rows.push(vec!["delay (ps, FO4=4.5ps, 100% margin)".into(), format!("{:.0}", r.delay_ps)]);
    rows.push(vec!["combinational fmax".into(), format!("{:.1} GHz", r.max_frequency_ghz(1))]);
    rows.push(vec!["3-stage pipelined fmax".into(), format!("{:.1} GHz", r.max_frequency_ghz(3))]);
    driver::print_table("§4.4 Hardware overheads", &["quantity", "value"], &rows);
    println!("\npaper: 42 levels, 2,960 gates, 2.6 GHz combinational, >4 GHz pipelined");
}
