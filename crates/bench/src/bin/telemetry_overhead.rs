//! CI guard: the telemetry **off** path must cost (nearly) nothing.
//!
//! Runs one fixed-budget simulation interleaved at `off` and `stats`
//! levels (min of three walls each — min, not mean, because scheduler
//! noise only ever adds time) and fails when the off path is more than
//! 2% *slower* than the stats path. Stats does strictly more work
//! (per-cycle histogram sampling plus the forced lifetime log), so an
//! off path that fails this guard has lost its gating — e.g. the
//! observer being constructed, or event collection being forced, with
//! telemetry disabled.
//!
//! The timing gate is backed by functional zero-overhead checks: the
//! off run must produce no telemetry at all, and both levels must yield
//! bit-identical simulated results.
//!
//! The budget is fixed internally (not `ATR_SIM_*`) so the measurement
//! is long enough to be stable no matter how tiny CI's test budget is.

use atr_core::ReleaseScheme;
use atr_sim::runner::{run_profile, RunSpec};
use atr_telemetry::{TelemetryConfig, TelemetryLevel};
use atr_workload::spec::all_profiles;
use std::process::ExitCode;
use std::time::{Duration, Instant};

const REPS: usize = 3;
const TOLERANCE: f64 = 1.02;

fn main() -> ExitCode {
    let core = atr_pipeline::CoreConfig::default();
    let profiles = all_profiles();
    let profile = profiles.iter().find(|p| p.name == "505.mcf_r").expect("profile exists");
    let spec_at = |level: TelemetryLevel| RunSpec {
        scheme: ReleaseScheme::Atr { redefine_delay: 0 },
        rf_size: 96,
        warmup: 10_000,
        measure: 100_000,
        collect_events: false,
        audit: false,
        telemetry: TelemetryConfig { level, ..TelemetryConfig::default() },
    };

    let mut off_min = Duration::MAX;
    let mut stats_min = Duration::MAX;
    let mut fingerprints: Vec<(u64, u64, u64)> = Vec::new();
    for rep in 0..REPS {
        // Interleave so drift (thermal, noisy neighbors) hits both arms.
        for (level, min) in
            [(TelemetryLevel::Stats, &mut stats_min), (TelemetryLevel::Off, &mut off_min)]
        {
            let t0 = Instant::now();
            let r = run_profile(&core, profile, &spec_at(level));
            *min = (*min).min(t0.elapsed());
            fingerprints.push((r.stats.cycles, r.stats.retired, r.stats.flushes));
            if level == TelemetryLevel::Off && !r.telemetry.is_empty() {
                atr_telemetry::warn!("ATR_TELEMETRY=off still produced telemetry — gating broken");
                return ExitCode::FAILURE;
            }
            if level == TelemetryLevel::Stats && r.telemetry.cpi.is_none() {
                atr_telemetry::warn!("stats level produced no CPI stack");
                return ExitCode::FAILURE;
            }
        }
        atr_telemetry::debug!("rep {rep}: off_min {off_min:?}, stats_min {stats_min:?}");
    }
    if fingerprints.windows(2).any(|w| w[0] != w[1]) {
        atr_telemetry::warn!("telemetry level changed the simulated result: {fingerprints:?}");
        return ExitCode::FAILURE;
    }

    let ratio = off_min.as_secs_f64() / stats_min.as_secs_f64();
    atr_telemetry::info!(
        "telemetry_overhead: off {off_min:?} vs stats {stats_min:?} (off/stats = {ratio:.3})"
    );
    if ratio > TOLERANCE {
        atr_telemetry::warn!(
            "telemetry off path is {:.1}% slower than the stats path (tolerance 2%). \
             The disabled path must do strictly less work than stats — check that \
             OooCore skips the observer and that collect_events is not forced when \
             ATR_TELEMETRY=off.",
            (ratio - 1.0) * 100.0
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
