//! Regenerates Table 1 (processor configuration) from the live
//! simulator configuration.

use atr_sim::{config::table1, SimConfig};

fn main() {
    let sim = SimConfig::golden_cove();
    let rows: Vec<Vec<String>> = table1(&sim.core)
        .into_iter()
        .map(|(k, v)| vec![k, v])
        .collect();
    println!("Table 1: Processor Configuration (simulated)\n");
    print!("{}", atr_sim::report::render_table(&["Parameter", "Value"], &rows));
}
