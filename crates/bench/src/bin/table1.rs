//! Regenerates Table 1 (processor configuration) from the live
//! simulator configuration.

use atr_bench::driver;
use atr_sim::config::table1;

fn main() {
    let rows: Vec<Vec<String>> =
        table1(&driver::sim().core).into_iter().map(|(k, v)| vec![k, v]).collect();
    driver::print_table(
        "Table 1: Processor Configuration (simulated)",
        &["Parameter", "Value"],
        &rows,
    );
}
