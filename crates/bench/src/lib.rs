//! Benchmark harness support crate (binaries live in `src/bin`).
//!
//! [`driver`] is the one shared entry path all figure binaries go
//! through: each `--bin figNN` only names its experiment, headers, and
//! cell formatting, and the driver handles the table rendering, the
//! `results/*.json` artifact, and the shared [`atr_sim::SimConfig`].

pub mod timing {
    //! Minimal wall-clock micro-benchmark support for the `benches/`
    //! harnesses (plain `harness = false` mains — the container has no
    //! benchmarking framework, and min-of-N wall clock is enough to
    //! catch throughput regressions).

    use std::time::{Duration, Instant};

    /// Runs `f` `samples` times and prints the min/median sample time,
    /// plus per-element throughput when `elements > 0`.
    pub fn bench<T>(name: &str, samples: usize, elements: u64, mut f: impl FnMut() -> T) {
        assert!(samples > 0, "need at least one sample");
        let mut times: Vec<Duration> = Vec::with_capacity(samples);
        for _ in 0..samples {
            let t0 = Instant::now();
            let out = f();
            times.push(t0.elapsed());
            std::hint::black_box(&out);
        }
        times.sort();
        let min = times[0];
        let median = times[times.len() / 2];
        if elements > 0 {
            let rate = elements as f64 / min.as_secs_f64();
            println!("{name:<44} min {min:>10.1?}  median {median:>10.1?}  {rate:>12.0} elem/s");
        } else {
            println!("{name:<44} min {min:>10.1?}  median {median:>10.1?}");
        }
    }
}

pub mod driver {
    use atr_json::ToJson;
    use atr_sim::report::{render_table, save_json};
    use atr_sim::{Session, SimConfig};

    /// The configuration every binary simulates under: Golden-Cove core,
    /// `ATR_SIM_WARMUP`/`ATR_SIM_INSTS` budget.
    #[must_use]
    pub fn sim() -> SimConfig {
        SimConfig::golden_cove()
    }

    /// The one place a binary resolves its `ATR_*` runtime knobs: call
    /// once at entry, thread the session through
    /// `RunMatrix::ensure_with` / `execute_session`.
    #[must_use]
    pub fn session() -> Session {
        Session::from_env()
    }

    /// Prints a titled table without a JSON artifact (Table 1/2, §4.4).
    pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
        println!("{title}\n");
        print!("{}", render_table(headers, rows));
    }

    /// The full figure-binary protocol: titled table on stdout, optional
    /// footer lines, then the `results/<name>.json` artifact.
    pub fn emit<R: ToJson>(
        name: &str,
        title: &str,
        headers: &[&str],
        rows: &[R],
        cells: impl Fn(&R) -> Vec<String>,
        footer: Option<String>,
    ) {
        let table: Vec<Vec<String>> = rows.iter().map(&cells).collect();
        print_table(title, headers, &table);
        if let Some(footer) = footer {
            println!("\n{footer}");
        }
        match save_json(name, rows) {
            Ok(path) => atr_telemetry::info!("saved {}", path.display()),
            Err(err) => atr_telemetry::warn!("could not save results/{name}.json: {err}"),
        }
    }
}
