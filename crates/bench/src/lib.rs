//! Benchmark harness support crate (binaries live in src/bin).
