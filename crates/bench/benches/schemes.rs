//! Microbenchmarks of the rename-stage mechanisms: per-scheme rename
//! cost (ATR's bulk marking is the interesting delta), flush-walk cost,
//! and checkpoint-vs-walk SRT recovery — the ablations DESIGN.md calls
//! out for the design choices of §4.2.

use atr_core::{
    CheckpointPolicy, RenameConfig, RenamedUop, Renamer, ReleaseScheme,
};
use atr_isa::{ArchReg, StaticInst};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn cfg(scheme: ReleaseScheme) -> RenameConfig {
    RenameConfig {
        scheme,
        int_prf_size: 224,
        fp_prf_size: 224,
        ..RenameConfig::default()
    }
}

/// A short instruction mix: compute, a load, a branch — the worst case
/// for ATR's marking (two bulk-mark triggers per iteration).
fn mix() -> Vec<StaticInst> {
    let r = ArchReg::int;
    vec![
        StaticInst::alu(0x00, r(4), &[r(5), r(6)]),
        StaticInst::alu(0x04, r(5), &[r(4)]),
        StaticInst::load(0x08, r(6), r(0)),
        StaticInst::alu(0x0c, r(7), &[r(6), r(4)]),
        StaticInst::cond_branch(0x10, 0x40, &[r(7)]),
        StaticInst::alu(0x14, r(4), &[r(5)]),
    ]
}

fn bench_rename_throughput(c: &mut Criterion) {
    let insts = mix();
    let mut group = c.benchmark_group("rename_stage");
    group.throughput(Throughput::Elements(insts.len() as u64 * 64));
    for scheme in ReleaseScheme::ALL {
        group.bench_with_input(BenchmarkId::new("scheme", scheme.label()), &scheme, |b, &s| {
            b.iter_batched(
                || Renamer::new(&cfg(s)),
                |mut renamer| {
                    let mut uops: Vec<RenamedUop> = Vec::with_capacity(64 * insts.len());
                    let mut seq = 0u64;
                    for round in 0..64u64 {
                        for inst in &insts {
                            let uop = renamer.rename(inst, seq, round, false);
                            renamer.on_issue(&uop.psrcs, round);
                            uops.push(uop);
                            seq += 1;
                        }
                        // Retire the round to keep the free list alive.
                        for uop in uops.drain(..) {
                            renamer.on_commit(&uop, round);
                        }
                    }
                    renamer
                },
                criterion::BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn bench_flush_walk(c: &mut Criterion) {
    let insts = mix();
    let mut group = c.benchmark_group("flush_walk");
    for depth in [32usize, 256] {
        group.bench_with_input(BenchmarkId::new("squashed", depth), &depth, |b, &depth| {
            b.iter_batched(
                || {
                    // Rename `depth` instructions behind a branch, half issued.
                    let mut renamer = Renamer::new(&cfg(ReleaseScheme::Atr { redefine_delay: 0 }));
                    let mut records = Vec::new();
                    for k in 0..depth as u64 {
                        let inst = insts[(k as usize) % insts.len()];
                        let uop = renamer.rename(&inst, k, k, false);
                        let issued = k % 2 == 0;
                        if issued {
                            renamer.on_issue(&uop.psrcs, k);
                        }
                        records.push(uop.flush_record(&inst, issued));
                    }
                    records.reverse();
                    (renamer, records)
                },
                |(mut renamer, records)| {
                    renamer.flush_walk(&records, 1_000);
                    renamer
                },
                criterion::BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn bench_srt_recovery(c: &mut Criterion) {
    let mut group = c.benchmark_group("srt_recovery");
    let renamer = Renamer::new(&cfg(ReleaseScheme::Baseline));
    let checkpoint = renamer.take_checkpoint();
    group.bench_function("checkpoint_restore", |b| {
        b.iter_batched(
            || Renamer::new(&cfg(ReleaseScheme::Baseline)),
            |mut r| {
                r.restore_checkpoint(&checkpoint);
                r
            },
            criterion::BatchSize::SmallInput,
        );
    });
    group.bench_function("committed_walk_restore_64", |b| {
        let survivors: Vec<(ArchReg, atr_core::PTag)> = (0..64u32)
            .map(|i| {
                (
                    ArchReg::int((i % 16) as u8),
                    atr_core::PTag::new(atr_isa::RegClass::Int, 16 + (i % 200)),
                )
            })
            .collect();
        b.iter_batched(
            || Renamer::new(&cfg(ReleaseScheme::Baseline)),
            |mut r| {
                r.restore_from_committed(survivors.iter().copied());
                r
            },
            criterion::BatchSize::SmallInput,
        );
    });
    let _ = CheckpointPolicy::EveryBranch;
    group.finish();
}

fn bench_counter_width(c: &mut Criterion) {
    // §5.4 ablation: counter width does not change rename cost, only
    // release opportunity — this measures that the mechanism itself is
    // width-insensitive.
    let insts = mix();
    let mut group = c.benchmark_group("counter_width");
    for width in [2u32, 3, 8] {
        group.bench_with_input(BenchmarkId::new("bits", width), &width, |b, &w| {
            let mut config = cfg(ReleaseScheme::Atr { redefine_delay: 0 });
            config.counter_width = w;
            b.iter_batched(
                || Renamer::new(&config),
                |mut renamer| {
                    let mut uops = Vec::new();
                    for (k, inst) in insts.iter().cycle().take(128).enumerate() {
                        let uop = renamer.rename(inst, k as u64, k as u64, false);
                        renamer.on_issue(&uop.psrcs, k as u64);
                        uops.push(uop);
                    }
                    for uop in uops {
                        renamer.on_commit(&uop, 1_000);
                    }
                    renamer
                },
                criterion::BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_rename_throughput,
    bench_flush_walk,
    bench_srt_recovery,
    bench_counter_width
);
criterion_main!(benches);
