//! Microbenchmarks of the rename-stage mechanisms: per-scheme rename
//! cost (ATR's bulk marking is the interesting delta), flush-walk cost,
//! and checkpoint-vs-walk SRT recovery — the ablations DESIGN.md calls
//! out for the design choices of §4.2.

use atr_bench::timing::bench;
use atr_core::{CheckpointPolicy, ReleaseScheme, RenameConfig, RenamedUop, Renamer};
use atr_isa::{ArchReg, StaticInst};

const SAMPLES: usize = 20;

fn cfg(scheme: ReleaseScheme) -> RenameConfig {
    RenameConfig { scheme, int_prf_size: 224, fp_prf_size: 224, ..RenameConfig::default() }
}

/// A short instruction mix: compute, a load, a branch — the worst case
/// for ATR's marking (two bulk-mark triggers per iteration).
fn mix() -> Vec<StaticInst> {
    let r = ArchReg::int;
    vec![
        StaticInst::alu(0x00, r(4), &[r(5), r(6)]),
        StaticInst::alu(0x04, r(5), &[r(4)]),
        StaticInst::load(0x08, r(6), r(0)),
        StaticInst::alu(0x0c, r(7), &[r(6), r(4)]),
        StaticInst::cond_branch(0x10, 0x40, &[r(7)]),
        StaticInst::alu(0x14, r(4), &[r(5)]),
    ]
}

fn main() {
    println!("rename-stage microbenchmarks\n");
    let insts = mix();

    for scheme in ReleaseScheme::ALL {
        let insts = insts.clone();
        bench(
            &format!("rename_stage/scheme={}", scheme.label()),
            SAMPLES,
            insts.len() as u64 * 64,
            move || {
                let mut renamer = Renamer::new(&cfg(scheme));
                let mut uops: Vec<RenamedUop> = Vec::with_capacity(64 * insts.len());
                let mut seq = 0u64;
                for round in 0..64u64 {
                    for inst in &insts {
                        let uop = renamer.rename(inst, seq, round, false);
                        renamer.on_issue(&uop.psrcs, round);
                        uops.push(uop);
                        seq += 1;
                    }
                    // Retire the round to keep the free list alive.
                    for uop in uops.drain(..) {
                        renamer.on_commit(&uop, round);
                    }
                }
                renamer
            },
        );
    }

    for depth in [32usize, 256] {
        let insts = insts.clone();
        bench(&format!("flush_walk/squashed={depth}"), SAMPLES, depth as u64, move || {
            // Rename `depth` instructions behind a branch, half issued.
            let mut renamer = Renamer::new(&cfg(ReleaseScheme::Atr { redefine_delay: 0 }));
            let mut records = Vec::new();
            for k in 0..depth as u64 {
                let inst = insts[(k as usize) % insts.len()];
                let uop = renamer.rename(&inst, k, k, false);
                let issued = k % 2 == 0;
                if issued {
                    renamer.on_issue(&uop.psrcs, k);
                }
                records.push(uop.flush_record(&inst, issued));
            }
            records.reverse();
            renamer.flush_walk(&records, 1_000);
            renamer
        });
    }

    let checkpoint = Renamer::new(&cfg(ReleaseScheme::Baseline)).take_checkpoint();
    bench("srt_recovery/checkpoint_restore", SAMPLES, 0, move || {
        let mut r = Renamer::new(&cfg(ReleaseScheme::Baseline));
        r.restore_checkpoint(&checkpoint);
        r
    });
    let survivors: Vec<(ArchReg, atr_core::PTag)> = (0..64u32)
        .map(|i| {
            (
                ArchReg::int((i % 16) as u8),
                atr_core::PTag::new(atr_isa::RegClass::Int, 16 + (i % 200)),
            )
        })
        .collect();
    bench("srt_recovery/committed_walk_restore_64", SAMPLES, 64, move || {
        let mut r = Renamer::new(&cfg(ReleaseScheme::Baseline));
        r.restore_from_committed(survivors.iter().copied());
        r
    });
    let _ = CheckpointPolicy::EveryBranch;

    // §5.4 ablation: counter width does not change rename cost, only
    // release opportunity — this measures that the mechanism itself is
    // width-insensitive.
    for width in [2u32, 3, 8] {
        let insts = insts.clone();
        bench(&format!("counter_width/bits={width}"), SAMPLES, 128, move || {
            let mut config = cfg(ReleaseScheme::Atr { redefine_delay: 0 });
            config.counter_width = width;
            let mut renamer = Renamer::new(&config);
            let mut uops = Vec::new();
            for (k, inst) in insts.iter().cycle().take(128).enumerate() {
                let uop = renamer.rename(inst, k as u64, k as u64, false);
                renamer.on_issue(&uop.psrcs, k as u64);
                uops.push(uop);
            }
            for uop in uops {
                renamer.on_commit(&uop, 1_000);
            }
            renamer
        });
    }
}
