//! Substrate microbenchmarks: branch prediction, cache hierarchy, and
//! oracle-stream generation throughput.

use atr_frontend::{Bpu, BpuConfig, DirectionPredictor, GlobalHistory, PredictorKind, Tage};
use atr_isa::{ArchReg, StaticInst};
use atr_mem::{AccessKind, MemConfig, MemoryHierarchy};
use atr_workload::{spec, Oracle};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_predictors(c: &mut Criterion) {
    let mut group = c.benchmark_group("direction_predictors");
    group.throughput(Throughput::Elements(10_000));
    for kind in [PredictorKind::Bimodal, PredictorKind::Gshare, PredictorKind::Tage] {
        group.bench_with_input(
            BenchmarkId::new("predict_update", format!("{kind:?}")),
            &kind,
            |b, &kind| {
                let cfg = BpuConfig { kind, ..BpuConfig::default() };
                let mut bpu = Bpu::new(&cfg);
                let br = StaticInst::cond_branch(0x400, 0x800, &[ArchReg::int(0)]);
                b.iter(|| {
                    for i in 0..10_000u64 {
                        let p = bpu.predict(&br);
                        let taken = i % 3 != 0;
                        bpu.train(&br, &p.snapshot, taken, if taken { 0x800 } else { br.fallthrough });
                        if p.taken != taken {
                            bpu.recover(&br, &p.snapshot, taken, if taken { 0x800 } else { br.fallthrough });
                        }
                    }
                });
            },
        );
    }
    group.finish();
}

fn bench_tage_lookup(c: &mut Criterion) {
    let mut group = c.benchmark_group("tage");
    group.throughput(Throughput::Elements(10_000));
    group.bench_function("predict_only", |b| {
        let mut tage = Tage::default_config();
        let mut hist = GlobalHistory::new();
        for i in 0..1_000u64 {
            tage.update(i * 4, &hist, i % 2 == 0);
            hist.push(i % 2 == 0);
        }
        b.iter(|| {
            let mut acc = 0u64;
            for i in 0..10_000u64 {
                acc += u64::from(tage.predict(i * 4, &hist));
            }
            acc
        });
    });
    group.finish();
}

fn bench_memory_hierarchy(c: &mut Criterion) {
    let mut group = c.benchmark_group("memory_hierarchy");
    group.throughput(Throughput::Elements(10_000));
    group.bench_function("l1_hit_stream", |b| {
        let mut mem = MemoryHierarchy::new(&MemConfig::golden_cove());
        // Warm a small set.
        for i in 0..64u64 {
            let _ = mem.access(AccessKind::Load, 0x1000 + i * 64, i);
        }
        b.iter(|| {
            let mut t = 1_000u64;
            for i in 0..10_000u64 {
                t = mem.access(AccessKind::Load, 0x1000 + (i % 64) * 64, t);
            }
            t
        });
    });
    group.bench_function("dram_miss_stream", |b| {
        b.iter_batched(
            || MemoryHierarchy::new(&MemConfig::golden_cove()),
            |mut mem| {
                let mut t = 0u64;
                for i in 0..10_000u64 {
                    t = mem.access(AccessKind::Load, i * 64 * 131, t.min(i * 4));
                }
                (mem, t)
            },
            criterion::BatchSize::SmallInput,
        );
    });
    group.finish();
}

fn bench_oracle_stream(c: &mut Criterion) {
    let mut group = c.benchmark_group("oracle");
    group.throughput(Throughput::Elements(50_000));
    for name in ["exchange2", "omnetpp"] {
        group.bench_with_input(BenchmarkId::new("generate", name), &name, |b, name| {
            let program = spec::find_profile(name).expect("profile").build();
            b.iter_batched(
                || Oracle::new(program.clone()),
                |mut oracle| {
                    for i in 0..50_000u64 {
                        let _ = oracle.get(i);
                        if i % 1024 == 0 {
                            oracle.release_before(i.saturating_sub(512));
                        }
                    }
                    oracle
                },
                criterion::BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_predictors,
    bench_tage_lookup,
    bench_memory_hierarchy,
    bench_oracle_stream
);
criterion_main!(benches);
