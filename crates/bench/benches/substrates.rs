//! Substrate microbenchmarks: branch prediction, cache hierarchy, and
//! oracle-stream generation throughput.

use atr_bench::timing::bench;
use atr_frontend::{Bpu, BpuConfig, DirectionPredictor, GlobalHistory, PredictorKind, Tage};
use atr_isa::{ArchReg, StaticInst};
use atr_mem::{AccessKind, MemConfig, MemoryHierarchy};
use atr_workload::{spec, Oracle};

const SAMPLES: usize = 10;

fn main() {
    println!("substrate microbenchmarks\n");

    for kind in [PredictorKind::Bimodal, PredictorKind::Gshare, PredictorKind::Tage] {
        let config = BpuConfig { kind, ..BpuConfig::default() };
        let mut bpu = Bpu::new(&config);
        let br = StaticInst::cond_branch(0x400, 0x800, &[ArchReg::int(0)]);
        bench(&format!("predict_update/{kind:?}"), SAMPLES, 10_000, move || {
            for i in 0..10_000u64 {
                let p = bpu.predict(&br);
                let taken = i % 3 != 0;
                bpu.train(&br, &p.snapshot, taken, if taken { 0x800 } else { br.fallthrough });
                if p.taken != taken {
                    bpu.recover(
                        &br,
                        &p.snapshot,
                        taken,
                        if taken { 0x800 } else { br.fallthrough },
                    );
                }
            }
        });
    }

    let mut tage = Tage::default_config();
    let mut hist = GlobalHistory::new();
    for i in 0..1_000u64 {
        tage.update(i * 4, &hist, i % 2 == 0);
        hist.push(i % 2 == 0);
    }
    bench("tage/predict_only", SAMPLES, 10_000, move || {
        let mut acc = 0u64;
        for i in 0..10_000u64 {
            acc += u64::from(tage.predict(i * 4, &hist));
        }
        acc
    });

    let mut warm = MemoryHierarchy::new(&MemConfig::golden_cove());
    for i in 0..64u64 {
        let _ = warm.access(AccessKind::Load, 0x1000 + i * 64, i);
    }
    bench("memory_hierarchy/l1_hit_stream", SAMPLES, 10_000, move || {
        let mut t = 1_000u64;
        for i in 0..10_000u64 {
            t = warm.access(AccessKind::Load, 0x1000 + (i % 64) * 64, t);
        }
        t
    });
    bench("memory_hierarchy/dram_miss_stream", SAMPLES, 10_000, || {
        let mut mem = MemoryHierarchy::new(&MemConfig::golden_cove());
        let mut t = 0u64;
        for i in 0..10_000u64 {
            t = mem.access(AccessKind::Load, i * 64 * 131, t.min(i * 4));
        }
        t
    });

    for name in ["exchange2", "omnetpp"] {
        let program = spec::find_profile(name).expect("profile").build();
        bench(&format!("oracle/generate/{name}"), SAMPLES, 50_000, move || {
            let mut oracle = Oracle::new(program.clone());
            for i in 0..50_000u64 {
                let _ = oracle.get(i);
                if i % 1024 == 0 {
                    oracle.release_before(i.saturating_sub(512));
                }
            }
            oracle
        });
    }
}
