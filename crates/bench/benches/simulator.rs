//! End-to-end simulator throughput under each release scheme and
//! register-file size — the cost of the mechanisms themselves, as
//! opposed to the IPC experiments in `src/bin/`.

use atr_bench::timing::bench;
use atr_core::ReleaseScheme;
use atr_pipeline::{CoreConfig, OooCore};
use atr_workload::{spec, Oracle};

const INSTS: u64 = 20_000;
const SAMPLES: usize = 10;

fn main() {
    println!("simulator throughput ({INSTS} instructions per sample)\n");

    let program = spec::find_profile("exchange2").expect("profile").build();
    for scheme in ReleaseScheme::ALL {
        let program = program.clone();
        bench(&format!("simulate/scheme={}", scheme.label()), SAMPLES, INSTS, move || {
            let cfg = CoreConfig::default().with_rf_size(128).with_scheme(scheme);
            let mut core = OooCore::new(cfg, Oracle::new(program.clone()));
            core.run(INSTS)
        });
    }

    let program = spec::find_profile("x264").expect("profile").build();
    for rf in [64usize, 224] {
        let program = program.clone();
        bench(&format!("simulate/rf={rf}"), SAMPLES, INSTS, move || {
            let cfg = CoreConfig::default()
                .with_rf_size(rf)
                .with_scheme(ReleaseScheme::Combined { redefine_delay: 0 });
            let mut core = OooCore::new(cfg, Oracle::new(program.clone()));
            core.run(INSTS)
        });
    }

    let program = spec::find_profile("gcc").expect("profile").build();
    for events in [false, true] {
        let program = program.clone();
        bench(&format!("lifetime_log/collect_events={events}"), SAMPLES, INSTS, move || {
            let mut cfg = CoreConfig::default().with_rf_size(128);
            cfg.rename.collect_events = events;
            let mut core = OooCore::new(cfg, Oracle::new(program.clone()));
            core.run(INSTS)
        });
    }
}
