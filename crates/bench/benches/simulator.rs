//! End-to-end simulator throughput under each release scheme and
//! register-file size — the cost of the mechanisms themselves, as
//! opposed to the IPC experiments in `src/bin/`.

use atr_core::ReleaseScheme;
use atr_pipeline::{CoreConfig, OooCore};
use atr_workload::{spec, Oracle};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

const INSTS: u64 = 20_000;

fn bench_schemes(c: &mut Criterion) {
    let program = spec::find_profile("exchange2").expect("profile").build();
    let mut group = c.benchmark_group("simulate_20k_insts");
    group.throughput(Throughput::Elements(INSTS));
    group.sample_size(10);
    for scheme in ReleaseScheme::ALL {
        group.bench_with_input(BenchmarkId::new("scheme", scheme.label()), &scheme, |b, &s| {
            b.iter(|| {
                let cfg = CoreConfig::default().with_rf_size(128).with_scheme(s);
                let mut core = OooCore::new(cfg, Oracle::new(program.clone()));
                core.run(INSTS)
            });
        });
    }
    group.finish();
}

fn bench_rf_sizes(c: &mut Criterion) {
    let program = spec::find_profile("x264").expect("profile").build();
    let mut group = c.benchmark_group("simulate_rf_size");
    group.throughput(Throughput::Elements(INSTS));
    group.sample_size(10);
    for rf in [64usize, 224] {
        group.bench_with_input(BenchmarkId::new("rf", rf), &rf, |b, &rf| {
            b.iter(|| {
                let cfg = CoreConfig::default()
                    .with_rf_size(rf)
                    .with_scheme(ReleaseScheme::Combined { redefine_delay: 0 });
                let mut core = OooCore::new(cfg, Oracle::new(program.clone()));
                core.run(INSTS)
            });
        });
    }
    group.finish();
}

fn bench_event_collection_overhead(c: &mut Criterion) {
    let program = spec::find_profile("gcc").expect("profile").build();
    let mut group = c.benchmark_group("lifetime_log_overhead");
    group.sample_size(10);
    for events in [false, true] {
        group.bench_with_input(
            BenchmarkId::new("collect_events", events),
            &events,
            |b, &ev| {
                b.iter(|| {
                    let mut cfg = CoreConfig::default().with_rf_size(128);
                    cfg.rename.collect_events = ev;
                    let mut core = OooCore::new(cfg, Oracle::new(program.clone()));
                    core.run(INSTS)
                });
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_schemes,
    bench_rf_sizes,
    bench_event_collection_overhead
);
criterion_main!(benches);
