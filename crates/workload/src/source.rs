//! The dynamic-stream source abstraction.
//!
//! The pipeline consumes the architectural instruction stream through
//! the [`TraceSource`] trait, which makes it agnostic between the two
//! substrates that can produce that stream:
//!
//! * the live [`Oracle`](crate::Oracle) — functional execution of a
//!   [`Program`], generating each dynamic instruction on demand;
//! * a trace replay (`atr-trace`'s `TraceReplay`) — decoding a stream
//!   that an earlier Oracle run captured to disk, optionally starting
//!   mid-stream at a checkpoint frame after functional fast-forward.
//!
//! The contract mirrors what the pipeline actually needs: random access
//! within a sliding window (`get`), commit-driven garbage collection
//! (`release_before`), exception re-execution (`clear_exception`), and
//! the static [`Program`] for wrong-path fetch. Indices are the
//! architectural retirement order, identical across substrates — the
//! cross-scheme differential harness pins capture→replay bit-identity.

use crate::oracle::Oracle;
use crate::program::Program;
use atr_isa::DynInst;
use std::sync::Arc;

/// A source of the correct-path dynamic instruction stream.
///
/// Implementations must be deterministic: two sources over the same
/// program (or the same trace) must serve bit-identical [`DynInst`]s at
/// every index, or the run-matrix memoization and the differential
/// validation both become unsound.
pub trait TraceSource: Send {
    /// The static program the stream executes (wrong-path fetch walks
    /// its text by PC).
    fn program(&self) -> &Arc<Program>;

    /// Returns the dynamic instruction at stream index `idx`,
    /// generating or decoding forward as needed.
    ///
    /// # Panics
    ///
    /// Panics if `idx` precedes an index already passed to
    /// [`TraceSource::release_before`] (a pipeline bug), or — for
    /// replays — if the stream ends before `idx` (a capture that was
    /// too short for the requested budget).
    fn get(&mut self, idx: u64) -> &DynInst;

    /// Drops cached entries with index `< idx`; called from commit with
    /// the oldest index that can still be re-fetched after a flush.
    fn release_before(&mut self, idx: u64);

    /// Marks the injected exception at `idx` as serviced, so
    /// re-fetching the instruction after the handler does not fault
    /// again.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is not currently cached.
    fn clear_exception(&mut self, idx: u64);

    /// First stream index this source can serve: `0` for a live oracle,
    /// the checkpoint frame's index for a fast-forwarded replay. The
    /// pipeline starts fetching here.
    fn start_index(&self) -> u64 {
        0
    }

    /// Total entries generated or decoded so far (diagnostics).
    fn generated(&self) -> u64;
}

impl TraceSource for Oracle {
    fn program(&self) -> &Arc<Program> {
        Oracle::program(self)
    }

    fn get(&mut self, idx: u64) -> &DynInst {
        Oracle::get(self, idx)
    }

    fn release_before(&mut self, idx: u64) {
        Oracle::release_before(self, idx);
    }

    fn clear_exception(&mut self, idx: u64) {
        Oracle::clear_exception(self, idx);
    }

    fn generated(&self) -> u64 {
        Oracle::generated(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::behavior::BranchBehavior;
    use crate::program::ProgramBuilder;
    use atr_isa::ArchReg;

    fn looped() -> Arc<Program> {
        let mut b = ProgramBuilder::new(0, 3);
        let head = b.next_pc();
        b.push_alu(ArchReg::int(1), &[]);
        b.push_cond_branch(head, &[ArchReg::int(1)], BranchBehavior::AlwaysTaken);
        b.build()
    }

    #[test]
    fn oracle_serves_the_trait_contract() {
        let program = looped();
        let mut source: Box<dyn TraceSource> = Box::new(Oracle::new(program.clone()));
        assert_eq!(source.start_index(), 0);
        assert_eq!(source.program().entry(), program.entry());
        let first = *source.get(0);
        assert_eq!(first.oracle_idx, 0);
        let _ = source.get(64);
        source.release_before(32);
        assert_eq!(source.get(32).oracle_idx, 32);
        assert_eq!(source.generated(), 65);
    }
}
