//! Wrong-path outcome synthesis.
//!
//! After a mispredicted branch, the frontend keeps fetching real static
//! instructions down the predicted (wrong) path until the branch
//! resolves — these instructions allocate physical registers, occupy the
//! ROB/IQ/LSQ, and access the caches, which is exactly the traffic that
//! stresses ATR's flush-walk double-free avoidance and pollutes the
//! memory hierarchy.
//!
//! Wrong-path instructions have no architectural outcome, so we
//! synthesize one deterministically from `(pc, wrong-path sequence)`:
//! branches "resolve" in their predicted direction (so the wrong path
//! never triggers nested recovery, matching Scarab's trace-based
//! wrong-path mode), and memory operations get hashed addresses inside a
//! synthetic region, modeling cache pollution.

use crate::behavior::mix64;
use atr_isa::{DynOutcome, OpClass, StaticInst};

/// Base address of the synthetic region wrong-path memory ops touch.
const WRONG_PATH_REGION_BASE: u64 = 0x7f00_0000_0000;
/// Size of the synthetic wrong-path data region in bytes.
const WRONG_PATH_REGION_SIZE: u64 = 1 << 22; // 4 MiB

/// Synthesizes an outcome for a wrong-path instance of `inst`.
///
/// `predicted_taken` / `predicted_target` are what the frontend's
/// predictor chose for this instance; the synthesized outcome agrees with
/// the prediction so the instance resolves "correctly" and is simply
/// squashed when the original misprediction unwinds.
///
/// `salt` should mix the workload seed and a per-instance counter so
/// distinct wrong-path excursions see distinct addresses.
#[must_use]
pub fn synthesize_outcome(
    inst: &StaticInst,
    predicted_taken: bool,
    predicted_target: u64,
    salt: u64,
) -> DynOutcome {
    let mut out = DynOutcome::fallthrough(inst);
    match inst.class {
        OpClass::CondBranch => {
            out.taken = predicted_taken;
            out.next_pc = if predicted_taken {
                inst.taken_target.unwrap_or(predicted_target)
            } else {
                inst.fallthrough
            };
        }
        OpClass::DirectJump | OpClass::Call => {
            out.taken = true;
            out.next_pc = inst.taken_target.expect("direct control flow without target");
        }
        OpClass::IndirectJump | OpClass::Return => {
            out.taken = true;
            out.next_pc = predicted_target;
        }
        OpClass::Load | OpClass::Store => {
            let h = mix64(inst.pc ^ salt);
            out.mem_addr = Some(WRONG_PATH_REGION_BASE + ((h % WRONG_PATH_REGION_SIZE) & !7));
        }
        _ => {}
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use atr_isa::ArchReg;

    fn r(i: u8) -> ArchReg {
        ArchReg::int(i)
    }

    #[test]
    fn branch_follows_prediction() {
        let br = StaticInst::cond_branch(0x100, 0x200, &[r(0)]);
        let t = synthesize_outcome(&br, true, 0, 1);
        assert!(t.taken);
        assert_eq!(t.next_pc, 0x200);
        let nt = synthesize_outcome(&br, false, 0, 1);
        assert!(!nt.taken);
        assert_eq!(nt.next_pc, br.fallthrough);
    }

    #[test]
    fn indirect_uses_predicted_target() {
        let ij = StaticInst::new(0x10, OpClass::IndirectJump, None, &[r(1)]);
        let o = synthesize_outcome(&ij, true, 0xbeef, 2);
        assert_eq!(o.next_pc, 0xbeef);
    }

    #[test]
    fn memory_addresses_are_deterministic_and_salted() {
        let ld = StaticInst::load(0x40, r(1), r(2));
        let a = synthesize_outcome(&ld, false, 0, 7).mem_addr.unwrap();
        let b = synthesize_outcome(&ld, false, 0, 7).mem_addr.unwrap();
        let c = synthesize_outcome(&ld, false, 0, 8).mem_addr.unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a >= WRONG_PATH_REGION_BASE);
    }

    #[test]
    fn alu_falls_through_unchanged() {
        let alu = StaticInst::alu(0x44, r(0), &[r(1)]);
        let o = synthesize_outcome(&alu, false, 0, 3);
        assert_eq!(o.next_pc, alu.fallthrough);
        assert_eq!(o.mem_addr, None);
        assert_eq!(o.exception, None);
    }
}
