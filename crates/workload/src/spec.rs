//! SPEC CPU 2017 stand-in profiles (Table 2 of the paper).
//!
//! Each profile names one benchmark from Table 2 and instantiates
//! [`ProfileParams`] whose knobs reflect the published microarchitectural
//! character of that benchmark (branch behaviour, memory intensity and
//! irregularity, FP/vector content, call/indirect density). The dynamic
//! streams are synthetic, so absolute IPC does not match real SPEC runs;
//! what the profiles preserve is the *relative* register-pressure
//! behaviour the paper's evaluation depends on: rename→redefine
//! distances, atomic-region density, consumer counts, and misprediction
//! exposure.

use crate::generator::ProfileParams;
use crate::program::Program;
use std::sync::Arc;

/// Whether a profile belongs to the integer or floating-point suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadClass {
    /// SPEC2017int (scalar register file pressure).
    Int,
    /// SPEC2017fp (vector register file pressure).
    Fp,
}

impl std::fmt::Display for WorkloadClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkloadClass::Int => f.write_str("SPEC2017int"),
            WorkloadClass::Fp => f.write_str("SPEC2017fp"),
        }
    }
}

/// A named benchmark profile: Table 2 entry plus its generator knobs.
#[derive(Debug, Clone)]
pub struct SpecProfile {
    /// SPEC benchmark name, e.g. `"520.omnetpp_r"`.
    pub name: &'static str,
    /// Which suite the benchmark belongs to.
    pub class: WorkloadClass,
    /// Generator parameters modeling the benchmark's character.
    pub params: ProfileParams,
}

impl SpecProfile {
    /// Generates the static program for this profile.
    #[must_use]
    pub fn build(&self) -> Arc<Program> {
        self.params.build()
    }
}

fn base_int(name: &'static str, seed: u64) -> ProfileParams {
    ProfileParams { name: name.to_owned(), seed, fp_frac: 0.02, ..ProfileParams::default() }
}

fn base_fp(name: &'static str, seed: u64) -> ProfileParams {
    ProfileParams {
        name: name.to_owned(),
        seed,
        fp_frac: 0.70,
        load_frac: 0.26,
        store_frac: 0.09,
        branch_entropy: 0.08,
        loop_trip_mean: 64.0,
        stride_frac: 0.75,
        chase_frac: 0.03,
        burst_frac: 0.13,
        burst_len: 8,
        burst_window: 3,
        consumer_mean: 1.8,
        burst_hazard: 0.32,
        call_frac: 0.05,
        indirect_frac: 0.005,
        ..ProfileParams::default()
    }
}

/// The ten SPEC2017int benchmarks of Table 2.
#[must_use]
#[allow(clippy::vec_init_then_push)]
pub fn spec2017_int() -> Vec<SpecProfile> {
    use WorkloadClass::Int;
    let mut v = Vec::new();
    // 500.perlbench_r: interpreter — indirect-heavy, many calls, branchy.
    v.push(SpecProfile {
        name: "500.perlbench_r",
        class: Int,
        params: ProfileParams {
            branch_entropy: 0.30,
            call_frac: 0.30,
            indirect_frac: 0.10,
            burst_frac: 0.18,
            mem_footprint: 1 << 21,
            ..base_int("500.perlbench_r", 0x500)
        },
    });
    // 502.gcc_r: large footprint, calls, moderate mispredictions.
    v.push(SpecProfile {
        name: "502.gcc_r",
        class: Int,
        params: ProfileParams {
            branch_entropy: 0.28,
            call_frac: 0.25,
            indirect_frac: 0.05,
            mem_footprint: 1 << 24,
            stride_frac: 0.35,
            chase_frac: 0.25,
            burst_frac: 0.20,
            ..base_int("502.gcc_r", 0x502)
        },
    });
    // 505.mcf_r: pointer chasing, memory bound, few atomic bursts.
    v.push(SpecProfile {
        name: "505.mcf_r",
        class: Int,
        params: ProfileParams {
            branch_entropy: 0.35,
            load_frac: 0.32,
            mem_footprint: 1 << 26,
            stride_frac: 0.10,
            chase_frac: 0.60,
            burst_frac: 0.10,
            loop_trip_mean: 12.0,
            ..base_int("505.mcf_r", 0x505)
        },
    });
    // 520.omnetpp_r: discrete event simulation — pointer heavy, indirect.
    v.push(SpecProfile {
        name: "520.omnetpp_r",
        class: Int,
        params: ProfileParams {
            branch_entropy: 0.32,
            load_frac: 0.28,
            mem_footprint: 1 << 25,
            stride_frac: 0.15,
            chase_frac: 0.45,
            indirect_frac: 0.08,
            call_frac: 0.22,
            burst_frac: 0.15,
            ..base_int("520.omnetpp_r", 0x520)
        },
    });
    // 523.xalancbmk_r: XML — virtual dispatch, calls, medium footprint.
    v.push(SpecProfile {
        name: "523.xalancbmk_r",
        class: Int,
        params: ProfileParams {
            branch_entropy: 0.22,
            call_frac: 0.32,
            indirect_frac: 0.12,
            mem_footprint: 1 << 23,
            chase_frac: 0.30,
            burst_frac: 0.18,
            ..base_int("523.xalancbmk_r", 0x523)
        },
    });
    // 525.x264_r: video encoding — vectorizable compute bursts, predictable.
    v.push(SpecProfile {
        name: "525.x264_r",
        class: Int,
        params: ProfileParams {
            branch_entropy: 0.10,
            fp_frac: 0.25,
            loop_trip_mean: 48.0,
            stride_frac: 0.80,
            chase_frac: 0.02,
            burst_frac: 0.35,
            burst_len: 12,
            consumer_mean: 2.0,
            mem_footprint: 1 << 23,
            ..base_int("525.x264_r", 0x525)
        },
    });
    // 531.deepsjeng_r: chess — hard data-dependent branches.
    v.push(SpecProfile {
        name: "531.deepsjeng_r",
        class: Int,
        params: ProfileParams {
            branch_entropy: 0.45,
            loop_trip_mean: 8.0,
            mem_footprint: 1 << 22,
            burst_frac: 0.22,
            call_frac: 0.20,
            ..base_int("531.deepsjeng_r", 0x531)
        },
    });
    // 541.leela_r: go — hard branches, small footprint.
    v.push(SpecProfile {
        name: "541.leela_r",
        class: Int,
        params: ProfileParams {
            branch_entropy: 0.42,
            loop_trip_mean: 10.0,
            mem_footprint: 1 << 21,
            burst_frac: 0.22,
            consumer_mean: 1.7,
            ..base_int("541.leela_r", 0x541)
        },
    });
    // 548.exchange2_r: branchy integer compute, tiny memory footprint,
    // highest atomic-region density in the int suite.
    v.push(SpecProfile {
        name: "548.exchange2_r",
        class: Int,
        params: ProfileParams {
            branch_entropy: 0.18,
            load_frac: 0.10,
            store_frac: 0.04,
            mem_footprint: 1 << 18,
            burst_frac: 0.40,
            burst_len: 10,
            burst_window: 3,
            loop_trip_mean: 9.0,
            consumer_mean: 2.0,
            ..base_int("548.exchange2_r", 0x548)
        },
    });
    // 557.xz_r: compression — data-dependent branches, streaming + random mix.
    v.push(SpecProfile {
        name: "557.xz_r",
        class: Int,
        params: ProfileParams {
            branch_entropy: 0.38,
            load_frac: 0.26,
            stride_frac: 0.45,
            chase_frac: 0.20,
            mem_footprint: 1 << 24,
            burst_frac: 0.18,
            ..base_int("557.xz_r", 0x557)
        },
    });
    v
}

/// The thirteen SPEC2017fp benchmarks of Table 2.
#[must_use]
#[allow(clippy::vec_init_then_push)]
pub fn spec2017_fp() -> Vec<SpecProfile> {
    use WorkloadClass::Fp;
    let mut v = Vec::new();
    // 503.bwaves_r: dense solver — long streams, very predictable.
    v.push(SpecProfile {
        name: "503.bwaves_r",
        class: Fp,
        params: ProfileParams {
            loop_trip_mean: 128.0,
            stride_frac: 0.90,
            mem_footprint: 1 << 26,
            burst_frac: 0.25,
            ..base_fp("503.bwaves_r", 0x503)
        },
    });
    // 507.cactuBSSN_r: stencil — many streams, high ILP bursts.
    v.push(SpecProfile {
        name: "507.cactuBSSN_r",
        class: Fp,
        params: ProfileParams {
            stride_frac: 0.85,
            mem_footprint: 1 << 25,
            burst_frac: 0.30,
            burst_len: 12,
            consumer_mean: 2.2,
            ..base_fp("507.cactuBSSN_r", 0x507)
        },
    });
    // 508.namd_r: molecular dynamics — long compute regions with the
    // highest consumer counts in the suite (Fig 12).
    v.push(SpecProfile {
        name: "508.namd_r",
        class: Fp,
        params: ProfileParams {
            stride_frac: 0.60,
            mem_footprint: 1 << 23,
            burst_frac: 0.40,
            burst_len: 14,
            burst_window: 5,
            consumer_mean: 3.2,
            ..base_fp("508.namd_r", 0x508)
        },
    });
    // 510.parest_r: FEM — mixed streams and sparse access.
    v.push(SpecProfile {
        name: "510.parest_r",
        class: Fp,
        params: ProfileParams {
            stride_frac: 0.55,
            chase_frac: 0.15,
            mem_footprint: 1 << 25,
            ..base_fp("510.parest_r", 0x510)
        },
    });
    // 511.povray_r: ray tracing — branchy for an FP code, calls.
    v.push(SpecProfile {
        name: "511.povray_r",
        class: Fp,
        params: ProfileParams {
            branch_entropy: 0.30,
            call_frac: 0.25,
            loop_trip_mean: 16.0,
            mem_footprint: 1 << 21,
            burst_frac: 0.25,
            ..base_fp("511.povray_r", 0x511)
        },
    });
    // 519.lbm_r: lattice Boltzmann — pure streaming, few branches.
    v.push(SpecProfile {
        name: "519.lbm_r",
        class: Fp,
        params: ProfileParams {
            branch_entropy: 0.03,
            loop_trip_mean: 256.0,
            stride_frac: 0.95,
            mem_footprint: 1 << 26,
            load_frac: 0.30,
            store_frac: 0.14,
            burst_frac: 0.18,
            ..base_fp("519.lbm_r", 0x519)
        },
    });
    // 521.wrf_r: weather — many loop nests, mixed behaviour.
    v.push(SpecProfile {
        name: "521.wrf_r",
        class: Fp,
        params: ProfileParams {
            num_loop_nests: 6,
            mem_footprint: 1 << 25,
            ..base_fp("521.wrf_r", 0x521)
        },
    });
    // 526.blender_r: rendering — branchier, calls, irregular access.
    v.push(SpecProfile {
        name: "526.blender_r",
        class: Fp,
        params: ProfileParams {
            branch_entropy: 0.25,
            call_frac: 0.20,
            stride_frac: 0.40,
            chase_frac: 0.20,
            mem_footprint: 1 << 24,
            ..base_fp("526.blender_r", 0x526)
        },
    });
    // 527.cam4_r: climate — loop nests, moderate streams.
    v.push(SpecProfile {
        name: "527.cam4_r",
        class: Fp,
        params: ProfileParams {
            num_loop_nests: 5,
            stride_frac: 0.70,
            mem_footprint: 1 << 25,
            branch_entropy: 0.15,
            ..base_fp("527.cam4_r", 0x527)
        },
    });
    // 538.imagick_r: image processing — compute-dense bursts.
    v.push(SpecProfile {
        name: "538.imagick_r",
        class: Fp,
        params: ProfileParams {
            burst_frac: 0.40,
            burst_len: 12,
            consumer_mean: 2.4,
            stride_frac: 0.80,
            mem_footprint: 1 << 23,
            load_frac: 0.20,
            ..base_fp("538.imagick_r", 0x538)
        },
    });
    // 544.nab_r: molecular modeling — compute heavy, small footprint.
    v.push(SpecProfile {
        name: "544.nab_r",
        class: Fp,
        params: ProfileParams {
            burst_frac: 0.32,
            consumer_mean: 2.0,
            mem_footprint: 1 << 22,
            ..base_fp("544.nab_r", 0x544)
        },
    });
    // 549.fotonik3d_r: FDTD — pure streaming, long trips.
    v.push(SpecProfile {
        name: "549.fotonik3d_r",
        class: Fp,
        params: ProfileParams {
            loop_trip_mean: 200.0,
            stride_frac: 0.92,
            mem_footprint: 1 << 26,
            branch_entropy: 0.04,
            ..base_fp("549.fotonik3d_r", 0x549)
        },
    });
    // 554.roms_r: ocean model — streaming with loop nests.
    v.push(SpecProfile {
        name: "554.roms_r",
        class: Fp,
        params: ProfileParams {
            num_loop_nests: 6,
            loop_trip_mean: 96.0,
            stride_frac: 0.85,
            mem_footprint: 1 << 26,
            ..base_fp("554.roms_r", 0x554)
        },
    });
    v
}

/// Both suites concatenated (int first), as iterated by the experiment
/// harness.
#[must_use]
pub fn all_profiles() -> Vec<SpecProfile> {
    let mut v = spec2017_int();
    v.extend(spec2017_fp());
    v
}

/// Looks a profile up by (possibly abbreviated) name, e.g. `"mcf"`.
#[must_use]
pub fn find_profile(name: &str) -> Option<SpecProfile> {
    all_profiles().into_iter().find(|p| p.name.contains(name))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_counts_match_paper() {
        assert_eq!(spec2017_int().len(), 10);
        assert_eq!(spec2017_fp().len(), 13);
        assert_eq!(all_profiles().len(), 23);
    }

    #[test]
    fn names_are_unique_and_suffixed() {
        let all = all_profiles();
        let mut names: Vec<&str> = all.iter().map(|p| p.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 23);
        assert!(all.iter().all(|p| p.name.ends_with("_r")));
    }

    #[test]
    fn every_profile_builds_a_program() {
        for p in all_profiles() {
            let prog = p.build();
            assert!(prog.len() > 50, "{} produced a trivial program", p.name);
        }
    }

    #[test]
    fn fp_profiles_have_fp_content_and_int_profiles_do_not() {
        for p in all_profiles() {
            match p.class {
                WorkloadClass::Fp => assert!(p.params.fp_frac > 0.5, "{}", p.name),
                WorkloadClass::Int => assert!(p.params.fp_frac < 0.3, "{}", p.name),
            }
        }
    }

    #[test]
    fn find_profile_matches_substring() {
        assert_eq!(find_profile("mcf").unwrap().name, "505.mcf_r");
        assert_eq!(find_profile("namd").unwrap().name, "508.namd_r");
        assert!(find_profile("doesnotexist").is_none());
    }

    #[test]
    fn profile_seeds_are_distinct() {
        let all = all_profiles();
        let mut seeds: Vec<u64> = all.iter().map(|p| p.params.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 23);
    }
}
