//! Deterministic dynamic behaviours for branches and memory operations.
//!
//! A [`BranchBehavior`] or [`AddrPattern`] is a *static* description
//! attached to an instruction PC; the oracle instantiates per-PC runtime
//! state ([`BranchState`], [`AddrState`]) that advances deterministically
//! on each architectural execution. All randomness is derived from a
//! splittable seed, so the dynamic stream is bit-reproducible.

use atr_rng::{RngExt, SeedableRng, SmallRng};

/// Dynamic direction/target behaviour of a control-flow instruction.
#[derive(Debug, Clone, PartialEq)]
pub enum BranchBehavior {
    /// Always taken.
    AlwaysTaken,
    /// Never taken.
    NeverTaken,
    /// Loop back-edge: taken `trip_count - 1` consecutive times, then
    /// not-taken once, repeating. Highly predictable for loop-capable
    /// predictors; `trip_count` must be at least 1.
    Loop {
        /// Iterations per loop entry.
        trip_count: u32,
    },
    /// Independently random with the given taken probability (data
    /// dependent branch). `taken_prob` near 0.5 is the worst case for
    /// any predictor.
    Biased {
        /// Probability the branch is taken on any execution.
        taken_prob: f64,
    },
    /// A repeating fixed pattern of directions. Perfectly learnable by a
    /// history-based predictor with sufficient history.
    Pattern {
        /// The repeating direction sequence (must be non-empty).
        bits: Vec<bool>,
    },
    /// Indirect control flow choosing uniformly among `targets` (a
    /// switch / virtual dispatch). Targets must be non-empty.
    IndirectUniform {
        /// Candidate targets.
        targets: Vec<u64>,
    },
}

/// Runtime state for one branch PC.
#[derive(Debug, Clone)]
pub struct BranchState {
    behavior: BranchBehavior,
    counter: u64,
    rng: SmallRng,
}

impl BranchState {
    /// Instantiates runtime state; `seed` individualizes random branches.
    #[must_use]
    pub fn new(behavior: BranchBehavior, seed: u64) -> Self {
        if let BranchBehavior::Pattern { bits } = &behavior {
            assert!(!bits.is_empty(), "pattern behaviour needs at least one bit");
        }
        if let BranchBehavior::IndirectUniform { targets } = &behavior {
            assert!(!targets.is_empty(), "indirect behaviour needs at least one target");
        }
        BranchState { behavior, counter: 0, rng: SmallRng::seed_from_u64(seed) }
    }

    /// The next dynamic direction of this branch. For indirect behaviour
    /// the direction is always `true` (use [`BranchState::next_target`]).
    pub fn next_taken(&mut self) -> bool {
        let c = self.counter;
        self.counter += 1;
        match &self.behavior {
            BranchBehavior::AlwaysTaken | BranchBehavior::IndirectUniform { .. } => true,
            BranchBehavior::NeverTaken => false,
            BranchBehavior::Loop { trip_count } => {
                let t = u64::from((*trip_count).max(1));
                c % t != t - 1
            }
            BranchBehavior::Biased { taken_prob } => {
                self.rng.random_bool(taken_prob.clamp(0.0, 1.0))
            }
            BranchBehavior::Pattern { bits } => bits[(c % bits.len() as u64) as usize],
        }
    }

    /// The next dynamic target for indirect behaviour.
    ///
    /// # Panics
    ///
    /// Panics if the behaviour is not [`BranchBehavior::IndirectUniform`].
    pub fn next_target(&mut self) -> u64 {
        match &self.behavior {
            BranchBehavior::IndirectUniform { targets } => {
                let i = self.rng.random_range(0..targets.len());
                targets[i]
            }
            other => panic!("next_target on non-indirect behaviour {other:?}"),
        }
    }

    /// Is this an indirect (target-choosing) behaviour?
    #[must_use]
    pub fn is_indirect(&self) -> bool {
        matches!(self.behavior, BranchBehavior::IndirectUniform { .. })
    }
}

/// Effective-address behaviour of a load or store PC.
#[derive(Debug, Clone, PartialEq)]
pub enum AddrPattern {
    /// Sequential streaming: `base + i*stride`, wrapping within
    /// `footprint` bytes. Prefetcher- and cache-friendly for small
    /// strides; `footprint` must be non-zero.
    Stride {
        /// First address.
        base: u64,
        /// Per-access stride in bytes (may be negative).
        stride: i64,
        /// Region size in bytes the stream wraps within.
        footprint: u64,
    },
    /// Uniformly random addresses within `footprint` bytes of `base`,
    /// aligned to `align` bytes. Models irregular/pointer-heavy access.
    UniformRandom {
        /// Region base address.
        base: u64,
        /// Region size in bytes.
        footprint: u64,
        /// Access alignment in bytes (power of two).
        align: u64,
    },
    /// Dependent pointer chase: the next address is a deterministic hash
    /// of the previous one, confined to the region. Defeats stride
    /// prefetching and serializes misses, like `mcf`/`omnetpp`.
    PointerChase {
        /// Region base address.
        base: u64,
        /// Region size in bytes.
        footprint: u64,
    },
}

/// Runtime state for one memory-instruction PC.
#[derive(Debug, Clone)]
pub struct AddrState {
    pattern: AddrPattern,
    counter: u64,
    last: u64,
    rng: SmallRng,
}

/// A cheap 64-bit mix function (splitmix64 finalizer) used for the
/// pointer-chase walk and wrong-path address synthesis.
#[must_use]
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl AddrState {
    /// Instantiates runtime state for an address pattern.
    ///
    /// # Panics
    ///
    /// Panics if the pattern has a zero footprint or a non-power-of-two
    /// alignment.
    #[must_use]
    pub fn new(pattern: AddrPattern, seed: u64) -> Self {
        match &pattern {
            AddrPattern::Stride { footprint, .. } | AddrPattern::PointerChase { footprint, .. } => {
                assert!(*footprint > 0, "footprint must be non-zero");
            }
            AddrPattern::UniformRandom { footprint, align, .. } => {
                assert!(*footprint > 0, "footprint must be non-zero");
                assert!(align.is_power_of_two(), "alignment must be a power of two");
            }
        }
        let last = match &pattern {
            AddrPattern::Stride { base, .. }
            | AddrPattern::UniformRandom { base, .. }
            | AddrPattern::PointerChase { base, .. } => *base,
        };
        AddrState { pattern, counter: 0, last, rng: SmallRng::seed_from_u64(seed) }
    }

    /// The next effective address for this memory instruction.
    pub fn next_addr(&mut self) -> u64 {
        let c = self.counter;
        self.counter += 1;
        match &self.pattern {
            AddrPattern::Stride { base, stride, footprint } => {
                let span = *footprint;
                let off = (c as i64).wrapping_mul(*stride).rem_euclid(span as i64) as u64;
                base.wrapping_add(off)
            }
            AddrPattern::UniformRandom { base, footprint, align } => {
                let off = self.rng.random_range(0..*footprint) & !(align - 1);
                base.wrapping_add(off)
            }
            AddrPattern::PointerChase { base, footprint } => {
                let next = base.wrapping_add(mix64(self.last) % *footprint) & !7u64;
                self.last = next;
                next
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loop_behavior_is_taken_trip_minus_one_times() {
        let mut s = BranchState::new(BranchBehavior::Loop { trip_count: 4 }, 1);
        let dirs: Vec<bool> = (0..8).map(|_| s.next_taken()).collect();
        assert_eq!(dirs, vec![true, true, true, false, true, true, true, false]);
    }

    #[test]
    fn loop_trip_count_one_is_never_taken() {
        let mut s = BranchState::new(BranchBehavior::Loop { trip_count: 1 }, 1);
        assert!((0..5).all(|_| !s.next_taken()));
    }

    #[test]
    fn pattern_behavior_repeats() {
        let bits = vec![true, false, false];
        let mut s = BranchState::new(BranchBehavior::Pattern { bits: bits.clone() }, 0);
        for i in 0..12 {
            assert_eq!(s.next_taken(), bits[i % 3]);
        }
    }

    #[test]
    fn biased_behavior_is_seed_deterministic() {
        let mk = || BranchState::new(BranchBehavior::Biased { taken_prob: 0.3 }, 42);
        let (mut a, mut b) = (mk(), mk());
        for _ in 0..100 {
            assert_eq!(a.next_taken(), b.next_taken());
        }
    }

    #[test]
    fn biased_behavior_approximates_probability() {
        let mut s = BranchState::new(BranchBehavior::Biased { taken_prob: 0.25 }, 7);
        let taken = (0..10_000).filter(|_| s.next_taken()).count();
        let frac = taken as f64 / 10_000.0;
        assert!((frac - 0.25).abs() < 0.03, "observed {frac}");
    }

    #[test]
    fn indirect_targets_stay_in_set() {
        let targets = vec![0x100, 0x200, 0x300];
        let mut s =
            BranchState::new(BranchBehavior::IndirectUniform { targets: targets.clone() }, 9);
        assert!(s.is_indirect());
        for _ in 0..50 {
            assert!(s.next_taken());
            assert!(targets.contains(&s.next_target()));
        }
    }

    #[test]
    #[should_panic(expected = "non-indirect")]
    fn next_target_panics_for_direct_branch() {
        let mut s = BranchState::new(BranchBehavior::AlwaysTaken, 0);
        let _ = s.next_target();
    }

    #[test]
    fn stride_addresses_advance_and_wrap() {
        let mut a =
            AddrState::new(AddrPattern::Stride { base: 0x1000, stride: 64, footprint: 256 }, 0);
        let addrs: Vec<u64> = (0..6).map(|_| a.next_addr()).collect();
        assert_eq!(addrs, vec![0x1000, 0x1040, 0x1080, 0x10c0, 0x1000, 0x1040]);
    }

    #[test]
    fn negative_stride_wraps_into_region() {
        let mut a =
            AddrState::new(AddrPattern::Stride { base: 0x1000, stride: -64, footprint: 256 }, 0);
        let addrs: Vec<u64> = (0..4).map(|_| a.next_addr()).collect();
        for addr in &addrs {
            assert!((0x1000..0x1100).contains(addr), "addr {addr:#x} out of region");
        }
        assert_eq!(addrs[1], 0x10c0);
    }

    #[test]
    fn random_addresses_respect_region_and_alignment() {
        let mut a = AddrState::new(
            AddrPattern::UniformRandom { base: 0x4000, footprint: 0x1000, align: 8 },
            3,
        );
        for _ in 0..200 {
            let addr = a.next_addr();
            assert!((0x4000..0x5000).contains(&addr));
            assert_eq!(addr % 8, 0);
        }
    }

    #[test]
    fn pointer_chase_is_deterministic_and_confined() {
        let mk =
            || AddrState::new(AddrPattern::PointerChase { base: 0x10000, footprint: 0x800 }, 5);
        let (mut a, mut b) = (mk(), mk());
        for _ in 0..100 {
            let x = a.next_addr();
            assert_eq!(x, b.next_addr());
            assert!((0x10000..0x10800).contains(&x));
        }
    }

    #[test]
    #[should_panic(expected = "footprint")]
    fn zero_footprint_panics() {
        let _ = AddrState::new(AddrPattern::PointerChase { base: 0, footprint: 0 }, 0);
    }

    #[test]
    fn mix64_differs_on_neighboring_inputs() {
        assert_ne!(mix64(1), mix64(2));
        assert_ne!(mix64(0), 0);
    }
}
