//! The oracle stream: functional execution of the static program.
//!
//! The oracle is the architectural ground truth the pipeline replays —
//! the equivalent of Scarab's trace frontend. It walks the program from
//! its entry, instantiating per-PC branch/address behaviour state, and
//! produces the *correct-path* dynamic instruction stream. The pipeline
//! fetches oracle entries in order while its frontend is on-path, goes
//! off into [wrong-path synthesis](crate::wrongpath) after a
//! misprediction, and resumes from an oracle index after a flush.
//!
//! Entries are cached in a sliding window so that flush recovery can
//! re-read them; [`Oracle::release_before`] garbage-collects entries
//! older than the commit point.

use crate::behavior::{mix64, AddrState, BranchState};
use crate::program::Program;
use atr_isa::{DynInst, DynOutcome, Exception, OpClass};
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// Maximum modeled call depth; deeper calls wrap (the generator emits
/// balanced call/return pairs, so this is a guard, not a limit hit in
/// practice).
const MAX_CALL_DEPTH: usize = 256;

/// Functional executor of a [`Program`] producing the correct-path
/// dynamic instruction stream.
///
/// # Examples
///
/// ```
/// use atr_workload::{ProgramBuilder, BranchBehavior, Oracle};
/// use atr_isa::ArchReg;
///
/// let mut b = ProgramBuilder::new(0, 1);
/// let head = b.next_pc();
/// b.push_alu(ArchReg::int(0), &[]);
/// b.push_cond_branch(head, &[ArchReg::int(0)], BranchBehavior::AlwaysTaken);
/// let mut oracle = Oracle::new(b.build());
/// assert_eq!(oracle.get(0).sinst.pc, 0);
/// assert_eq!(oracle.get(2).sinst.pc, 0); // looped back
/// ```
#[derive(Debug)]
pub struct Oracle {
    program: Arc<Program>,
    pc: u64,
    branch_states: HashMap<u64, BranchState>,
    addr_states: HashMap<u64, AddrState>,
    call_stack: Vec<u64>,
    window: VecDeque<DynInst>,
    base_idx: u64,
    next_idx: u64,
    exception_rate: f64,
    generated: u64,
}

impl Oracle {
    /// Creates an oracle with no exception injection.
    #[must_use]
    pub fn new(program: Arc<Program>) -> Self {
        Oracle::with_exception_rate(program, 0.0)
    }

    /// Creates an oracle that injects a precise exception on
    /// exception-capable instructions with probability `rate`
    /// (deterministically per oracle index). Used by failure-injection
    /// tests and the precise-exception experiments.
    #[must_use]
    pub fn with_exception_rate(program: Arc<Program>, rate: f64) -> Self {
        let pc = program.entry();
        Oracle {
            program,
            pc,
            branch_states: HashMap::new(),
            addr_states: HashMap::new(),
            call_stack: Vec::new(),
            window: VecDeque::new(),
            base_idx: 0,
            next_idx: 0,
            exception_rate: rate.clamp(0.0, 1.0),
            generated: 0,
        }
    }

    /// The program being executed.
    #[must_use]
    pub fn program(&self) -> &Arc<Program> {
        &self.program
    }

    /// Total entries generated so far (diagnostics).
    #[must_use]
    pub fn generated(&self) -> u64 {
        self.generated
    }

    /// Returns the dynamic instruction at oracle index `idx`, generating
    /// forward as needed. Indices are the architectural retirement order.
    ///
    /// # Panics
    ///
    /// Panics if `idx` has already been released via
    /// [`Oracle::release_before`] (pipeline bug), or if the program's
    /// control flow escapes its own text segment (generator bug).
    pub fn get(&mut self, idx: u64) -> &DynInst {
        assert!(
            idx >= self.base_idx,
            "oracle index {idx} already released (base {})",
            self.base_idx
        );
        while self.next_idx <= idx {
            let entry = self.step();
            self.window.push_back(entry);
            self.next_idx += 1;
        }
        &self.window[(idx - self.base_idx) as usize]
    }

    /// Drops cached entries with index `< idx`. Call with the oldest
    /// index that can still be re-fetched (the commit point).
    pub fn release_before(&mut self, idx: u64) {
        while self.base_idx < idx && !self.window.is_empty() {
            self.window.pop_front();
            self.base_idx += 1;
        }
    }

    /// Marks the injected exception at `idx` as serviced, so re-fetching
    /// the instruction after the handler does not fault again.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is not currently cached.
    pub fn clear_exception(&mut self, idx: u64) {
        assert!(
            idx >= self.base_idx && idx < self.next_idx,
            "clear_exception({idx}) outside window [{}, {})",
            self.base_idx,
            self.next_idx
        );
        self.window[(idx - self.base_idx) as usize].outcome.exception = None;
    }

    /// Current cached-window length (diagnostics / GC tests).
    #[must_use]
    pub fn window_len(&self) -> usize {
        self.window.len()
    }

    fn step(&mut self) -> DynInst {
        let idx = self.next_idx;
        let pc = self.pc;
        let inst = *self
            .program
            .at(pc)
            .unwrap_or_else(|| panic!("oracle fell off the program at pc {pc:#x}"));

        let mut outcome = DynOutcome::fallthrough(&inst);
        match inst.class {
            OpClass::CondBranch => {
                let state = self.branch_state(pc);
                let taken = state.next_taken();
                outcome.taken = taken;
                outcome.next_pc = if taken {
                    inst.taken_target.expect("conditional branch without target")
                } else {
                    inst.fallthrough
                };
            }
            OpClass::DirectJump => {
                outcome.taken = true;
                outcome.next_pc = inst.taken_target.expect("jump without target");
            }
            OpClass::Call => {
                outcome.taken = true;
                outcome.next_pc = inst.taken_target.expect("call without target");
                if self.call_stack.len() < MAX_CALL_DEPTH {
                    self.call_stack.push(inst.fallthrough);
                }
            }
            OpClass::Return => {
                outcome.taken = true;
                outcome.next_pc = self.call_stack.pop().unwrap_or(self.program.entry());
            }
            OpClass::IndirectJump => {
                let state = self.branch_state(pc);
                outcome.taken = true;
                outcome.next_pc = state.next_target();
            }
            OpClass::Load | OpClass::Store => {
                let state = self.addr_state(pc);
                outcome.mem_addr = Some(state.next_addr());
            }
            _ => {}
        }

        if inst.class.may_raise_exception() && self.exception_rate > 0.0 {
            let draw = mix64(self.program.seed() ^ idx.wrapping_mul(0x1234_5678_9abc_def1));
            if (draw as f64 / u64::MAX as f64) < self.exception_rate {
                outcome.exception = Some(if inst.class.is_memory() {
                    Exception::PageFault
                } else {
                    Exception::DivideByZero
                });
            }
        }

        self.pc = outcome.next_pc;
        self.generated += 1;
        DynInst { seq: idx, sinst: inst, outcome, on_wrong_path: false, oracle_idx: idx }
    }

    fn branch_state(&mut self, pc: u64) -> &mut BranchState {
        let program = &self.program;
        self.branch_states.entry(pc).or_insert_with(|| {
            let behavior = program
                .branch_behavior(pc)
                .unwrap_or_else(|| panic!("no branch behaviour at {pc:#x}"))
                .clone();
            BranchState::new(behavior, program.seed() ^ mix64(pc))
        })
    }

    fn addr_state(&mut self, pc: u64) -> &mut AddrState {
        let program = &self.program;
        self.addr_states.entry(pc).or_insert_with(|| {
            let pattern = program
                .addr_pattern(pc)
                .unwrap_or_else(|| panic!("no address pattern at {pc:#x}"))
                .clone();
            AddrState::new(pattern, program.seed() ^ mix64(pc ^ 0xabcd))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::behavior::{AddrPattern, BranchBehavior};
    use crate::program::ProgramBuilder;
    use atr_isa::ArchReg;

    fn r(i: u8) -> ArchReg {
        ArchReg::int(i)
    }

    /// alu; loop-branch back (trip count 3); closing jump to keep the
    /// program executing forever.
    fn loop_program() -> Arc<Program> {
        let mut b = ProgramBuilder::new(0x100, 11);
        let head = b.next_pc();
        b.push_alu(r(0), &[r(0)]);
        b.push_cond_branch(head, &[r(0)], BranchBehavior::Loop { trip_count: 3 });
        b.push_jump(head);
        b.build()
    }

    #[test]
    fn loop_stream_follows_trip_count() {
        let mut o = Oracle::new(loop_program());
        // iterations: (alu, br taken) x2 then (alu, br not-taken), repeat.
        let taken: Vec<bool> = (0..14)
            .map(|i| *o.get(i))
            .filter(|d| d.sinst.class.is_conditional())
            .map(|d| d.taken())
            .collect();
        assert_eq!(taken, vec![true, true, false, true, true, false]);
    }

    #[test]
    fn not_taken_backedge_falls_through_and_wraps() {
        // After the loop exits, the branch falls through past the end of
        // the program... so the generator must keep programs closed. Here
        // we instead make an infinite always-taken loop and check the
        // stream is infinite.
        let mut b = ProgramBuilder::new(0, 3);
        let head = b.next_pc();
        b.push_alu(r(1), &[]);
        b.push_cond_branch(head, &[r(1)], BranchBehavior::AlwaysTaken);
        let mut o = Oracle::new(b.build());
        for i in 0..1000 {
            let d = *o.get(i);
            assert!(!d.on_wrong_path);
            assert_eq!(d.oracle_idx, i);
        }
    }

    #[test]
    fn call_and_return_pair_up() {
        let mut b = ProgramBuilder::new(0, 5);
        // 0: call 0x10 ; 4: jmp 0 ; ... 0x10: alu ; 0x14: ret
        b.push_call(0x10);
        b.push_jump(0);
        b.push_alu(r(9), &[]); // padding at 0x8
        b.push_alu(r(9), &[]); // padding at 0xc
        let func = b.next_pc();
        assert_eq!(func, 0x10);
        b.push_alu(r(2), &[]);
        b.push_return();
        let mut o = Oracle::new(b.build());
        let pcs: Vec<u64> = (0..5).map(|i| o.get(i).sinst.pc).collect();
        assert_eq!(pcs, vec![0x0, 0x10, 0x14, 0x4, 0x0]);
    }

    #[test]
    fn loads_carry_addresses() {
        let mut b = ProgramBuilder::new(0, 9);
        let head = b.next_pc();
        b.push_load(r(1), r(2), AddrPattern::Stride { base: 0x8000, stride: 8, footprint: 32 });
        b.push_cond_branch(head, &[r(1)], BranchBehavior::AlwaysTaken);
        let mut o = Oracle::new(b.build());
        let addrs: Vec<u64> = (0..10)
            .map(|i| *o.get(i))
            .filter(|d| d.sinst.class.is_load())
            .map(|d| d.outcome.mem_addr.unwrap())
            .collect();
        assert_eq!(addrs, vec![0x8000, 0x8008, 0x8010, 0x8018, 0x8000]);
    }

    #[test]
    fn release_before_gcs_window() {
        let mut o = Oracle::new(loop_program());
        let _ = o.get(99);
        assert_eq!(o.window_len(), 100);
        o.release_before(90);
        assert_eq!(o.window_len(), 10);
        assert_eq!(o.get(95).oracle_idx, 95);
    }

    #[test]
    #[should_panic(expected = "already released")]
    fn reading_released_entry_panics() {
        let mut o = Oracle::new(loop_program());
        let _ = o.get(50);
        o.release_before(40);
        let _ = o.get(10);
    }

    #[test]
    fn release_before_is_monotonic_and_ignores_stale_commit_points() {
        let mut o = Oracle::new(loop_program());
        let _ = o.get(49);
        o.release_before(30);
        assert_eq!(o.window_len(), 20);
        // A commit point older than the current base is a no-op, not a
        // rewind: GC never resurrects entries.
        o.release_before(10);
        assert_eq!(o.window_len(), 20);
        assert_eq!(o.get(30).oracle_idx, 30);
    }

    #[test]
    fn release_past_the_generated_end_clamps_to_an_empty_window() {
        let mut o = Oracle::new(loop_program());
        let _ = o.get(19);
        o.release_before(1_000);
        assert_eq!(o.window_len(), 0);
        // Generation continues from where the stream left off: index 20
        // onward is still reachable, released indices are not.
        assert_eq!(o.get(20).oracle_idx, 20);
    }

    #[test]
    #[should_panic(expected = "already released")]
    fn boundary_entry_just_below_the_commit_point_errors_loudly() {
        let mut o = Oracle::new(loop_program());
        let _ = o.get(50);
        o.release_before(40);
        // Exactly at the boundary is fine...
        assert_eq!(o.get(40).oracle_idx, 40);
        // ...one below it is the off-by-one a broken flush resume would
        // make, and must not be silently regenerated.
        let _ = o.get(39);
    }

    #[test]
    #[should_panic(expected = "outside window")]
    fn clearing_an_exception_on_a_released_entry_panics() {
        let mut o = Oracle::new(loop_program());
        let _ = o.get(50);
        o.release_before(40);
        o.clear_exception(10);
    }

    #[test]
    #[should_panic(expected = "outside window")]
    fn clearing_an_exception_beyond_the_generated_stream_panics() {
        let mut o = Oracle::new(loop_program());
        let _ = o.get(10);
        o.clear_exception(11);
    }

    #[test]
    fn exception_injection_is_deterministic_and_clearable() {
        let mut b = ProgramBuilder::new(0, 77);
        let head = b.next_pc();
        b.push_load(r(1), r(2), AddrPattern::Stride { base: 0, stride: 8, footprint: 4096 });
        b.push_cond_branch(head, &[r(1)], BranchBehavior::AlwaysTaken);
        let prog = b.build();

        let mut a = Oracle::with_exception_rate(prog.clone(), 0.2);
        let mut c = Oracle::with_exception_rate(prog, 0.2);
        let mut first_faulting = None;
        for i in 0..200 {
            assert_eq!(a.get(i).outcome.exception, c.get(i).outcome.exception);
            if first_faulting.is_none() && a.get(i).outcome.exception.is_some() {
                first_faulting = Some(i);
            }
        }
        let idx = first_faulting.expect("20% rate should fault within 100 loads");
        a.clear_exception(idx);
        assert_eq!(a.get(idx).outcome.exception, None);
    }

    #[test]
    fn zero_rate_never_faults() {
        let mut o = Oracle::new(loop_program());
        for i in 0..500 {
            assert_eq!(o.get(i).outcome.exception, None);
        }
    }

    #[test]
    fn oracle_is_replayable_across_instances() {
        let p = loop_program();
        let mut a = Oracle::new(p.clone());
        let mut b = Oracle::new(p);
        for i in 0..300 {
            assert_eq!(a.get(i), b.get(i));
        }
    }
}
