//! Random program generation from microarchitectural profile parameters.
//!
//! [`generate`] builds a closed (infinitely executing) program whose
//! dynamic character is controlled by [`ProfileParams`]. The parameters
//! map one-to-one onto the properties that determine register-file
//! pressure and ATR opportunity:
//!
//! * **atomic-region density** — `burst_frac`/`burst_len`/`burst_window`
//!   emit runs of pure register-to-register compute whose destinations
//!   rotate over a small register window, creating short
//!   rename→redefine distances with no branch or memory instruction in
//!   between (§3.2's atomic commit regions);
//! * **consumer counts** — `consumer_mean` controls how many readers a
//!   burst value gets before redefinition (Fig 12);
//! * **branch behaviour** — `branch_entropy` mixes predictable
//!   loop/biased branches with data-dependent coin flips, and
//!   `loop_trip_mean` sets inner-loop trip counts;
//! * **memory behaviour** — `mem_footprint`, `stride_frac`, `chase_frac`
//!   split accesses between streaming, uniform-random, and dependent
//!   pointer-chasing regions;
//! * **structure** — loop nests with if/else diamonds, helper calls, and
//!   indirect switches, so the frontend substrate (BTB, RAS, indirect
//!   predictor) is exercised.

use crate::behavior::{AddrPattern, BranchBehavior};
use crate::program::{Program, ProgramBuilder};
use atr_isa::{ArchReg, OpClass};
use atr_rng::{RngExt, SeedableRng, SmallRng};
use std::sync::Arc;

/// Tunable workload character. See the [module docs](self) for how each
/// knob maps to a microarchitectural property.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileParams {
    /// Human-readable name (SPEC benchmark name for the Table 2 suite).
    pub name: String,
    /// Master seed; all randomness derives from it.
    pub seed: u64,
    /// Fraction of compute operations using the FP/vector register file.
    pub fp_frac: f64,
    /// Fraction of instructions that are loads.
    pub load_frac: f64,
    /// Fraction of instructions that are stores.
    pub store_frac: f64,
    /// Fraction of compute that is multiply.
    pub mul_frac: f64,
    /// Fraction of compute that is (non-pipelined, exception-causing) divide.
    pub div_frac: f64,
    /// 0 = highly predictable branches, 1 = coin flips.
    pub branch_entropy: f64,
    /// Mean inner-loop trip count.
    pub loop_trip_mean: f64,
    /// Total data footprint in bytes.
    pub mem_footprint: u64,
    /// Fraction of memory PCs with streaming (stride) behaviour.
    pub stride_frac: f64,
    /// Fraction of memory PCs with dependent pointer-chase behaviour.
    pub chase_frac: f64,
    /// Fraction of block slots emitted as atomic compute bursts.
    pub burst_frac: f64,
    /// Instructions per compute burst.
    pub burst_len: u32,
    /// Destination-register rotation window inside a burst (smaller ⇒
    /// shorter rename→redefine distance ⇒ more atomic releases).
    pub burst_window: u32,
    /// Mean consumers per burst-defined value (1.0–5.0 is realistic).
    pub consumer_mean: f64,
    /// Probability per burst slot of an interleaved load (real kernels
    /// load operands mid-computation; each one terminates the atomic
    /// regions spanning it). The dominant calibration knob for the
    /// Fig 6 atomic ratio.
    pub burst_hazard: f64,
    /// Probability a block ends with a call to a shared helper.
    pub call_frac: f64,
    /// Probability a block ends with an indirect switch.
    pub indirect_frac: f64,
    /// Number of inner loop nests in the outer loop.
    pub num_loop_nests: u32,
    /// Straight-line blocks per loop nest.
    pub blocks_per_nest: u32,
    /// Mean instructions per straight-line block.
    pub avg_block_len: u32,
}

impl Default for ProfileParams {
    fn default() -> Self {
        ProfileParams {
            name: "default".to_owned(),
            seed: 0,
            fp_frac: 0.0,
            load_frac: 0.22,
            store_frac: 0.08,
            mul_frac: 0.04,
            div_frac: 0.002,
            branch_entropy: 0.25,
            loop_trip_mean: 24.0,
            mem_footprint: 1 << 22,
            stride_frac: 0.5,
            chase_frac: 0.15,
            burst_frac: 0.25,
            burst_len: 8,
            burst_window: 3,
            consumer_mean: 1.6,
            burst_hazard: 0.19,
            call_frac: 0.12,
            indirect_frac: 0.03,
            num_loop_nests: 4,
            blocks_per_nest: 5,
            avg_block_len: 9,
        }
    }
}

impl ProfileParams {
    /// Generates the static program for these parameters.
    #[must_use]
    pub fn build(&self) -> Arc<Program> {
        generate(self)
    }
}

/// Integer registers reserved as address bases (rarely redefined).
const BASE_REGS: [u8; 4] = [0, 1, 2, 3];
/// Integer registers used by mixed (non-burst) compute.
const MIXED_INT_REGS: [u8; 8] = [4, 5, 6, 7, 8, 9, 10, 11];
/// Integer registers dedicated to compute bursts.
const BURST_INT_REGS: [u8; 4] = [12, 13, 14, 15];
/// FP registers used by mixed compute.
const MIXED_FP_REGS: [u8; 10] = [0, 1, 2, 3, 4, 5, 6, 7, 8, 9];
/// FP registers dedicated to compute bursts.
const BURST_FP_REGS: [u8; 6] = [10, 11, 12, 13, 14, 15];

/// Instruction byte size used for precomputing switch-pad addresses.
const ISIZE: u64 = atr_isa::StaticInst::DEFAULT_SIZE as u64;

struct Gen<'a> {
    p: &'a ProfileParams,
    rng: SmallRng,
    b: ProgramBuilder,
    mixed_int_cursor: usize,
    mixed_fp_cursor: usize,
    last_int_def: ArchReg,
    last_fp_def: ArchReg,
    last_load_dst: Option<ArchReg>,
    call_sites: Vec<u64>,
    mem_region_cursor: u64,
}

impl<'a> Gen<'a> {
    fn new(p: &'a ProfileParams) -> Self {
        Gen {
            p,
            rng: SmallRng::seed_from_u64(p.seed),
            b: ProgramBuilder::new(0x40_0000, p.seed),
            mixed_int_cursor: 0,
            mixed_fp_cursor: 0,
            last_int_def: ArchReg::int(MIXED_INT_REGS[0]),
            last_fp_def: ArchReg::fp(MIXED_FP_REGS[0]),
            last_load_dst: None,
            call_sites: Vec::new(),
            mem_region_cursor: 0,
        }
    }

    fn geometric(&mut self, mean: f64) -> u32 {
        // Geometric with the given mean, at least 1.
        let mean = mean.max(1.0);
        let p = 1.0 / mean;
        let mut n = 1;
        while n < 10_000 && !self.rng.random_bool(p) {
            n += 1;
        }
        n
    }

    fn next_mixed_int(&mut self) -> ArchReg {
        let r = ArchReg::int(MIXED_INT_REGS[self.mixed_int_cursor % MIXED_INT_REGS.len()]);
        self.mixed_int_cursor += 1;
        self.last_int_def = r;
        r
    }

    fn next_mixed_fp(&mut self) -> ArchReg {
        let r = ArchReg::fp(MIXED_FP_REGS[self.mixed_fp_cursor % MIXED_FP_REGS.len()]);
        self.mixed_fp_cursor += 1;
        self.last_fp_def = r;
        r
    }

    fn recent_int(&mut self) -> ArchReg {
        if self.rng.random_bool(0.35) {
            self.last_int_def
        } else {
            let k = self.rng.random_range(0..MIXED_INT_REGS.len());
            ArchReg::int(MIXED_INT_REGS[k])
        }
    }

    fn recent_fp(&mut self) -> ArchReg {
        if self.rng.random_bool(0.35) {
            self.last_fp_def
        } else {
            let k = self.rng.random_range(0..MIXED_FP_REGS.len());
            ArchReg::fp(MIXED_FP_REGS[k])
        }
    }

    fn base_reg(&mut self) -> ArchReg {
        ArchReg::int(BASE_REGS[self.rng.random_range(0..BASE_REGS.len())])
    }

    fn addr_pattern(&mut self) -> AddrPattern {
        // Each memory PC gets its own sub-region of the footprint so
        // streams do not collide.
        let region = self.p.mem_footprint.max(4096) / 8;
        let base = 0x1000_0000 + self.mem_region_cursor * region;
        self.mem_region_cursor = (self.mem_region_cursor + 1) % 8;
        let roll: f64 = self.rng.random();
        if roll < self.p.stride_frac {
            let stride = *[8i64, 16, 64, -8].get(self.rng.random_range(0..4)).unwrap();
            AddrPattern::Stride { base, stride, footprint: region }
        } else if roll < self.p.stride_frac + self.p.chase_frac {
            AddrPattern::PointerChase { base, footprint: region }
        } else {
            AddrPattern::UniformRandom { base, footprint: region, align: 8 }
        }
    }

    fn cond_behavior(&mut self) -> BranchBehavior {
        if self.rng.random_bool(self.p.branch_entropy.clamp(0.0, 1.0)) {
            // Hard, data-dependent branch.
            BranchBehavior::Biased { taken_prob: self.rng.random_range(0.35..0.65) }
        } else if self.rng.random_bool(0.3) {
            // Learnable repeating pattern.
            let len = self.rng.random_range(2..8usize);
            let bits = (0..len).map(|_| self.rng.random_bool(0.5)).collect();
            BranchBehavior::Pattern { bits }
        } else {
            // Strongly biased.
            let p = self.rng.random_range(0.9..0.99);
            let taken_prob = if self.rng.random_bool(0.5) { p } else { 1.0 - p };
            BranchBehavior::Biased { taken_prob }
        }
    }

    /// Emits one mixed-code instruction.
    fn emit_mixed_inst(&mut self) {
        let roll: f64 = self.rng.random();
        let p = self.p;
        if roll < p.load_frac {
            let fp_dst = self.rng.random_bool(p.fp_frac);
            let dst = if fp_dst { self.next_mixed_fp() } else { self.next_mixed_int() };
            let pat = self.addr_pattern();
            // Dependent chases read the previous load's destination as
            // their base, serializing their misses like a real linked
            // traversal. Streaming/random loads mostly read freshly
            // computed address registers (induction/index arithmetic),
            // so their translation — and with it the precommit pointer
            // (§2.3) — waits for real dataflow; the rest use long-stable
            // bases and overlap freely.
            let base = match (&pat, self.last_load_dst) {
                (AddrPattern::PointerChase { .. }, Some(prev))
                    if prev.class() == atr_isa::RegClass::Int =>
                {
                    prev
                }
                _ if self.rng.random_bool(0.6) => {
                    let k = self.rng.random_range(0..MIXED_INT_REGS.len());
                    ArchReg::int(MIXED_INT_REGS[k])
                }
                _ => self.base_reg(),
            };
            self.b.push_load(dst, base, pat);
            self.last_load_dst = Some(dst);
        } else if roll < p.load_frac + p.store_frac {
            let base = self.base_reg();
            let data =
                if self.rng.random_bool(p.fp_frac) { self.recent_fp() } else { self.recent_int() };
            let pat = self.addr_pattern();
            self.b.push_store(base, data, pat);
        } else if roll < p.load_frac + p.store_frac + p.div_frac {
            let (dst, s) = if self.rng.random_bool(p.fp_frac) {
                (self.next_mixed_fp(), self.recent_fp())
            } else {
                (self.next_mixed_int(), self.recent_int())
            };
            let class =
                if dst.class() == atr_isa::RegClass::Fp { OpClass::FpDiv } else { OpClass::IntDiv };
            self.b.push_op(class, Some(dst), &[s, s]);
        } else if roll < p.load_frac + p.store_frac + p.div_frac + p.mul_frac {
            if self.rng.random_bool(p.fp_frac) {
                let (s1, s2) = (self.recent_fp(), self.recent_fp());
                let dst = self.next_mixed_fp();
                self.b.push_op(OpClass::FpMul, Some(dst), &[s1, s2]);
            } else {
                let (s1, s2) = (self.recent_int(), self.recent_int());
                let dst = self.next_mixed_int();
                self.b.push_op(OpClass::IntMul, Some(dst), &[s1, s2]);
            }
        } else if self.rng.random_bool(p.fp_frac) {
            let (s1, s2) = (self.recent_fp(), self.recent_fp());
            let dst = self.next_mixed_fp();
            let class = if self.rng.random_bool(0.5) { OpClass::FpAdd } else { OpClass::VecAlu };
            self.b.push_op(class, Some(dst), &[s1, s2]);
        } else {
            let (s1, s2) = (self.recent_int(), self.recent_int());
            let dst = self.next_mixed_int();
            let class = if self.rng.random_bool(0.08) { OpClass::Mov } else { OpClass::IntAlu };
            if class == OpClass::Mov {
                self.b.push_op(class, Some(dst), &[s1]);
            } else {
                self.b.push_op(class, Some(dst), &[s1, s2]);
            }
        }
    }

    /// Emits a compute burst: `burst_len` register-to-register ops whose
    /// destinations rotate over `burst_window` dedicated registers, with
    /// `consumer_mean` readers per definition — an atomic commit region
    /// factory.
    fn emit_burst(&mut self) {
        let fp = self.rng.random_bool(self.p.fp_frac);
        let regs: &[u8] = if fp { &BURST_FP_REGS } else { &BURST_INT_REGS };
        let window = (self.p.burst_window as usize).clamp(2, regs.len());
        let len = self.p.burst_len.max(2);
        let mut cursor = 0usize;
        let stable = self.base_reg();
        // Kernels compute on loaded data: seeding the chains with the
        // most recent load's value makes consumption wait for memory,
        // which is what stretches the in-use phase (Fig 4) and puts the
        // last consume well after the redefinition (Fig 14).
        let mut seed = match self.last_load_dst {
            Some(r) if (r.class() == atr_isa::RegClass::Fp) == fp => r,
            _ => stable,
        };
        for _ in 0..len {
            let dst_idx = regs[cursor % window];
            let dst = if fp { ArchReg::fp(dst_idx) } else { ArchReg::int(dst_idx) };
            cursor += 1;
            let class = if fp {
                if self.rng.random_bool(0.35) {
                    OpClass::FpMul
                } else {
                    OpClass::FpAdd
                }
            } else {
                OpClass::IntAlu
            };
            // Each destination register forms its own dependency chain:
            // the chain head reads the loaded seed (so consumption waits
            // for memory, stretching the in-use phase), and subsequent
            // links iterate on registers — `window` independent chains
            // of high ILP that make register-file capacity the binding
            // resource.
            let second = if cursor <= window { seed } else { stable };
            self.b.push_op(class, Some(dst), &[dst, second]);
            // Extra consumers of the new value before it is redefined,
            // mutually independent.
            let extra = (self.geometric(self.p.consumer_mean.max(1.0)) - 1).min(5);
            for _ in 0..extra {
                let sink = if fp { self.next_mixed_fp() } else { self.next_mixed_int() };
                let c = if fp { OpClass::FpAdd } else { OpClass::IntAlu };
                self.b.push_op(c, Some(sink), &[dst]);
                cursor += 1;
            }
            // Interleaved operand load: terminates the atomic regions
            // currently spanning the burst.
            if self.rng.random_bool(self.p.burst_hazard.clamp(0.0, 1.0)) {
                let ldst = if fp && self.rng.random_bool(0.5) {
                    self.next_mixed_fp()
                } else {
                    self.next_mixed_int()
                };
                let base = self.base_reg();
                let pat = self.addr_pattern();
                self.b.push_load(ldst, base, pat);
                self.last_load_dst = Some(ldst);
                if (ldst.class() == atr_isa::RegClass::Fp) == fp {
                    seed = ldst;
                }
            }
        }
        // Result store closing the kernel (breaks regions that would
        // otherwise stretch into the next burst).
        if self.rng.random_bool(0.5) {
            let data = if fp { self.recent_fp() } else { self.recent_int() };
            let base = self.base_reg();
            let pat = self.addr_pattern();
            self.b.push_store(base, data, pat);
        }
    }

    /// Emits a straight-line block of roughly `avg_block_len` instructions.
    fn emit_block(&mut self) {
        let len = self.rng.random_range(
            (self.p.avg_block_len.max(2) / 2)..=(self.p.avg_block_len.max(2) * 3 / 2),
        );
        let mut emitted = 0;
        while emitted < len {
            if self.rng.random_bool(self.p.burst_frac.clamp(0.0, 1.0)) {
                self.emit_burst();
                emitted += self.p.burst_len;
            } else {
                self.emit_mixed_inst();
                emitted += 1;
            }
        }
    }

    /// Branch source. Real control flow (loop exits, data-dependent
    /// conditions) reads the *latest* computed values — the tails of
    /// the dependency chains — so branches resolve about when the
    /// chains complete. That keeps the precommit pointer (§2.3), which
    /// must wait for every older branch, trailing commit realistically.
    fn branch_src(&mut self) -> ArchReg {
        let roll: f64 = self.rng.random();
        if roll < 0.6 {
            let k = self.rng.random_range(0..BURST_INT_REGS.len());
            return ArchReg::int(BURST_INT_REGS[k]);
        }
        if roll < 0.85 {
            if let Some(ld) = self.last_load_dst {
                if ld.class() == atr_isa::RegClass::Int {
                    return ld;
                }
            }
        }
        self.recent_int()
    }

    /// Emits an indirect switch with `k` landing pads, each jumping to a
    /// common join. Pad addresses are precomputed from the fixed
    /// instruction size.
    fn emit_switch(&mut self, k: usize) {
        let pad_body = 2u64; // instructions per pad, excluding the jump
        let switch_pc = self.b.next_pc();
        let first_pad = switch_pc + ISIZE;
        let pad_size = (pad_body + 1) * ISIZE;
        let targets: Vec<u64> = (0..k as u64).map(|i| first_pad + i * pad_size).collect();
        let join = first_pad + k as u64 * pad_size;
        let src = self.branch_src();
        self.b.push_indirect(targets.clone(), &[src]);
        for t in &targets {
            assert_eq!(self.b.next_pc(), *t, "switch pad layout drifted");
            for _ in 0..pad_body {
                let s = self.recent_int();
                let d = self.next_mixed_int();
                self.b.push_op(OpClass::IntAlu, Some(d), &[s]);
            }
            self.b.push_jump(join);
        }
        assert_eq!(self.b.next_pc(), join, "switch join layout drifted");
    }

    /// Emits the whole program.
    fn run(mut self) -> Arc<Program> {
        let outer_head = self.b.next_pc();
        for _ in 0..self.p.num_loop_nests.max(1) {
            // Re-seed base/address registers.
            for base in BASE_REGS {
                let s = self.recent_int();
                self.b.push_op(OpClass::IntAlu, Some(ArchReg::int(base)), &[s]);
            }
            let loop_head = self.b.next_pc();
            for _ in 0..self.p.blocks_per_nest.max(1) {
                self.emit_block();
                // Optional if/else diamond.
                if self.rng.random_bool(0.5) {
                    let behavior = self.cond_behavior();
                    let src = self.branch_src();
                    let fwd = self.b.push_cond_branch(0, &[src], behavior);
                    self.emit_block();
                    let join = self.b.next_pc();
                    self.b.patch_target(fwd, join);
                }
                if self.rng.random_bool(self.p.indirect_frac.clamp(0.0, 1.0)) {
                    let k = self.rng.random_range(2..5usize);
                    self.emit_switch(k);
                }
                if self.rng.random_bool(self.p.call_frac.clamp(0.0, 1.0)) {
                    let site = self.b.push_call(0);
                    self.call_sites.push(site);
                }
            }
            let trip = self.geometric(self.p.loop_trip_mean).max(2);
            let src = self.branch_src();
            self.b.push_cond_branch(loop_head, &[src], BranchBehavior::Loop { trip_count: trip });
        }
        self.b.push_jump(outer_head);

        // Helper functions, then patch call sites.
        let n_helpers = 3.max(self.call_sites.len().min(6));
        let mut helper_pcs = Vec::new();
        for _ in 0..n_helpers {
            helper_pcs.push(self.b.next_pc());
            for _ in 0..self.rng.random_range(3..9usize) {
                self.emit_mixed_inst();
            }
            self.b.push_return();
        }
        let sites = std::mem::take(&mut self.call_sites);
        for site in sites {
            let idx = self.rng.random_range(0..helper_pcs.len());
            let h = helper_pcs[idx];
            self.b.patch_target(site, h);
        }
        self.b.build()
    }
}

/// Generates a closed, infinitely executing program from `params`.
///
/// The result is deterministic in `params` (including the seed).
#[must_use]
pub fn generate(params: &ProfileParams) -> Arc<Program> {
    Gen::new(params).run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::Oracle;
    use atr_isa::OpClass;

    #[test]
    fn generation_is_deterministic() {
        let p = ProfileParams::default();
        let a = generate(&p);
        let b = generate(&p);
        assert_eq!(a.instructions(), b.instructions());
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&ProfileParams::default());
        let b = generate(&ProfileParams { seed: 1, ..ProfileParams::default() });
        assert_ne!(a.instructions(), b.instructions());
    }

    #[test]
    fn program_is_closed_over_long_executions() {
        let p = ProfileParams { indirect_frac: 0.1, call_frac: 0.2, ..ProfileParams::default() };
        let prog = generate(&p);
        let mut oracle = Oracle::new(prog);
        // 200k instructions without falling off the program.
        for i in 0..200_000 {
            let _ = oracle.get(i);
            if i % 4096 == 0 {
                oracle.release_before(i.saturating_sub(1024));
            }
        }
    }

    #[test]
    fn dynamic_mix_tracks_parameters() {
        let p = ProfileParams {
            load_frac: 0.3,
            store_frac: 0.1,
            burst_frac: 0.0,
            ..ProfileParams::default()
        };
        let mut oracle = Oracle::new(generate(&p));
        let n = 50_000;
        let mut loads = 0usize;
        let mut stores = 0usize;
        for i in 0..n {
            let c = oracle.get(i).sinst.class;
            if c == OpClass::Load {
                loads += 1;
            } else if c == OpClass::Store {
                stores += 1;
            }
            oracle.release_before(i.saturating_sub(16));
        }
        let lf = loads as f64 / n as f64;
        let sf = stores as f64 / n as f64;
        // Control-flow overhead dilutes the mix; accept a wide band.
        assert!(lf > 0.15 && lf < 0.40, "load fraction {lf}");
        assert!(sf > 0.04 && sf < 0.20, "store fraction {sf}");
    }

    #[test]
    fn fp_profile_emits_fp_compute() {
        let p = ProfileParams { fp_frac: 0.8, ..ProfileParams::default() };
        let h = generate(&p).class_histogram();
        let fp_ops = h.get(&OpClass::FpAdd).copied().unwrap_or(0)
            + h.get(&OpClass::FpMul).copied().unwrap_or(0)
            + h.get(&OpClass::VecAlu).copied().unwrap_or(0);
        let int_ops = h.get(&OpClass::IntAlu).copied().unwrap_or(0);
        assert!(fp_ops > int_ops / 2, "fp {fp_ops} vs int {int_ops}");
    }

    #[test]
    fn bursts_create_back_to_back_alu_runs() {
        let p = ProfileParams { burst_frac: 0.9, burst_len: 10, ..ProfileParams::default() };
        let prog = generate(&p);
        let mut best_run = 0usize;
        let mut run = 0usize;
        for i in prog.instructions() {
            if i.class == OpClass::IntAlu {
                run += 1;
                best_run = best_run.max(run);
            } else {
                run = 0;
            }
        }
        assert!(best_run >= 10, "longest ALU run {best_run}");
    }

    #[test]
    fn switch_pads_are_reachable() {
        let p = ProfileParams { indirect_frac: 1.0, ..ProfileParams::default() };
        let prog = generate(&p);
        // Every indirect target must be a valid instruction.
        for inst in prog.instructions() {
            if inst.class == OpClass::IndirectJump {
                if let Some(BranchBehavior::IndirectUniform { targets }) =
                    prog.branch_behavior(inst.pc)
                {
                    for t in targets {
                        assert!(prog.at(*t).is_some(), "dangling switch target {t:#x}");
                    }
                }
            }
        }
    }

    #[test]
    fn calls_target_helpers_that_return() {
        let p = ProfileParams { call_frac: 1.0, ..ProfileParams::default() };
        let prog = generate(&p);
        for inst in prog.instructions() {
            if inst.class == OpClass::Call {
                let t = inst.taken_target.unwrap();
                assert!(prog.at(t).is_some(), "dangling call target {t:#x}");
            }
        }
        let h = prog.class_histogram();
        assert!(h.get(&OpClass::Return).copied().unwrap_or(0) >= 3);
    }
}
