//! The static program: decoded instructions addressable by PC.

use crate::behavior::{AddrPattern, BranchBehavior};
use atr_isa::{OpClass, StaticInst};
use std::collections::HashMap;
use std::sync::Arc;

/// A static program: the analogue of a decoded text segment.
///
/// Instructions are laid out at ascending PCs; [`Program::at`] performs
/// the PC → instruction lookup that both on-path and wrong-path fetch
/// use. Control-flow and memory instructions carry attached behaviours
/// that the [oracle](crate::Oracle) instantiates.
#[derive(Debug, Clone)]
pub struct Program {
    insts: Vec<StaticInst>,
    pc_index: HashMap<u64, usize>,
    entry: u64,
    branch_behaviors: HashMap<u64, BranchBehavior>,
    addr_patterns: HashMap<u64, AddrPattern>,
    seed: u64,
}

impl Program {
    /// The entry PC (where the oracle starts executing).
    #[must_use]
    pub fn entry(&self) -> u64 {
        self.entry
    }

    /// Base seed individualizing this program's behaviours.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Looks up the instruction at `pc`, or `None` if `pc` is not a valid
    /// instruction boundary (fetch treats that as falling off the program
    /// on a wild wrong path).
    #[must_use]
    pub fn at(&self, pc: u64) -> Option<&StaticInst> {
        self.pc_index.get(&pc).map(|&i| &self.insts[i])
    }

    /// Number of static instructions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// True if the program has no instructions.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// All static instructions in layout order.
    #[must_use]
    pub fn instructions(&self) -> &[StaticInst] {
        &self.insts
    }

    /// The branch behaviour attached to `pc`, if any.
    #[must_use]
    pub fn branch_behavior(&self, pc: u64) -> Option<&BranchBehavior> {
        self.branch_behaviors.get(&pc)
    }

    /// The address pattern attached to `pc`, if any.
    #[must_use]
    pub fn addr_pattern(&self, pc: u64) -> Option<&AddrPattern> {
        self.addr_patterns.get(&pc)
    }

    /// Static instruction-mix histogram, used by tests and by the
    /// workload-characterization example.
    #[must_use]
    pub fn class_histogram(&self) -> HashMap<OpClass, usize> {
        let mut h = HashMap::new();
        for i in &self.insts {
            *h.entry(i.class).or_insert(0) += 1;
        }
        h
    }
}

/// Incremental builder for a [`Program`].
///
/// Instructions are appended at ascending PCs starting from `entry`; the
/// builder patches fallthrough targets and validates control-flow
/// wiring at [`ProgramBuilder::build`] time.
///
/// # Examples
///
/// ```
/// use atr_workload::{ProgramBuilder, BranchBehavior};
/// use atr_isa::{ArchReg, StaticInst};
///
/// let mut b = ProgramBuilder::new(0x1000, 7);
/// let head = b.next_pc();
/// b.push_alu(ArchReg::int(1), &[ArchReg::int(2)]);
/// b.push_cond_branch(head, &[ArchReg::int(1)], BranchBehavior::Loop { trip_count: 8 });
/// let program = b.build();
/// assert_eq!(program.len(), 2);
/// assert!(program.at(head).is_some());
/// ```
#[derive(Debug)]
pub struct ProgramBuilder {
    insts: Vec<StaticInst>,
    next_pc: u64,
    entry: u64,
    branch_behaviors: HashMap<u64, BranchBehavior>,
    addr_patterns: HashMap<u64, AddrPattern>,
    seed: u64,
}

impl ProgramBuilder {
    /// Starts a program at `entry`; `seed` individualizes behaviours.
    #[must_use]
    pub fn new(entry: u64, seed: u64) -> Self {
        ProgramBuilder {
            insts: Vec::new(),
            next_pc: entry,
            entry,
            branch_behaviors: HashMap::new(),
            addr_patterns: HashMap::new(),
            seed,
        }
    }

    /// The PC the next pushed instruction will occupy (usable as a
    /// branch target for back-edges).
    #[must_use]
    pub fn next_pc(&self) -> u64 {
        self.next_pc
    }

    /// Appends a raw instruction, assigning it the next PC. Returns its PC.
    pub fn push(&mut self, mut inst: StaticInst) -> u64 {
        let pc = self.next_pc;
        inst.pc = pc;
        inst.fallthrough = pc + u64::from(inst.size);
        self.next_pc = inst.fallthrough;
        self.insts.push(inst);
        pc
    }

    /// Appends an integer ALU op.
    pub fn push_alu(&mut self, dst: atr_isa::ArchReg, srcs: &[atr_isa::ArchReg]) -> u64 {
        self.push(StaticInst::alu(0, dst, srcs))
    }

    /// Appends an instruction of an arbitrary class.
    pub fn push_op(
        &mut self,
        class: OpClass,
        dst: Option<atr_isa::ArchReg>,
        srcs: &[atr_isa::ArchReg],
    ) -> u64 {
        self.push(StaticInst::new(0, class, dst, srcs))
    }

    /// Appends a load with an address pattern.
    pub fn push_load(
        &mut self,
        dst: atr_isa::ArchReg,
        base: atr_isa::ArchReg,
        pattern: AddrPattern,
    ) -> u64 {
        let pc = self.push(StaticInst::load(0, dst, base));
        self.addr_patterns.insert(pc, pattern);
        pc
    }

    /// Appends a store with an address pattern.
    pub fn push_store(
        &mut self,
        base: atr_isa::ArchReg,
        data: atr_isa::ArchReg,
        pattern: AddrPattern,
    ) -> u64 {
        let pc = self.push(StaticInst::store(0, base, data));
        self.addr_patterns.insert(pc, pattern);
        pc
    }

    /// Appends a conditional branch with a behaviour.
    pub fn push_cond_branch(
        &mut self,
        target: u64,
        srcs: &[atr_isa::ArchReg],
        behavior: BranchBehavior,
    ) -> u64 {
        let pc = self.push(StaticInst::cond_branch(0, target, srcs));
        self.branch_behaviors.insert(pc, behavior);
        pc
    }

    /// Appends an unconditional direct jump.
    pub fn push_jump(&mut self, target: u64) -> u64 {
        self.push(StaticInst::jump(0, target))
    }

    /// Appends a direct call to `target`.
    pub fn push_call(&mut self, target: u64) -> u64 {
        let mut i = StaticInst::new(0, OpClass::Call, None, &[]);
        i.taken_target = Some(target);
        self.push(i)
    }

    /// Appends a return.
    pub fn push_return(&mut self) -> u64 {
        self.push(StaticInst::new(0, OpClass::Return, None, &[]))
    }

    /// Appends an indirect jump choosing among `targets`.
    pub fn push_indirect(&mut self, targets: Vec<u64>, srcs: &[atr_isa::ArchReg]) -> u64 {
        let pc = self.push(StaticInst::new(0, OpClass::IndirectJump, None, srcs));
        self.branch_behaviors.insert(pc, BranchBehavior::IndirectUniform { targets });
        pc
    }

    /// Overrides the taken target of an already-pushed direct branch —
    /// used to patch forward branches once their target PC is known.
    ///
    /// # Panics
    ///
    /// Panics if `pc` is unknown or not direct control flow.
    pub fn patch_target(&mut self, pc: u64, target: u64) {
        let inst = self
            .insts
            .iter_mut()
            .find(|i| i.pc == pc)
            .unwrap_or_else(|| panic!("patch_target: no instruction at {pc:#x}"));
        assert!(
            matches!(inst.class, OpClass::CondBranch | OpClass::DirectJump | OpClass::Call),
            "patch_target: {:#x} is not direct control flow",
            pc
        );
        inst.taken_target = Some(target);
    }

    /// Finalizes the program.
    ///
    /// # Panics
    ///
    /// Panics if the program is empty, if any direct control flow is
    /// missing a target, if any conditional branch or indirect jump is
    /// missing a behaviour, or if any memory op is missing an address
    /// pattern — catching generator bugs early.
    #[must_use]
    pub fn build(self) -> Arc<Program> {
        assert!(!self.insts.is_empty(), "program must have at least one instruction");
        let mut pc_index = HashMap::with_capacity(self.insts.len());
        for (i, inst) in self.insts.iter().enumerate() {
            let prev = pc_index.insert(inst.pc, i);
            assert!(prev.is_none(), "duplicate PC {:#x}", inst.pc);
            match inst.class {
                OpClass::CondBranch | OpClass::DirectJump | OpClass::Call => {
                    assert!(
                        inst.taken_target.is_some(),
                        "direct control flow at {:#x} lacks a target",
                        inst.pc
                    );
                }
                _ => {}
            }
            if inst.class.is_conditional() || matches!(inst.class, OpClass::IndirectJump) {
                assert!(
                    self.branch_behaviors.contains_key(&inst.pc),
                    "branch at {:#x} lacks a behaviour",
                    inst.pc
                );
            }
            if inst.class.is_memory() {
                assert!(
                    self.addr_patterns.contains_key(&inst.pc),
                    "memory op at {:#x} lacks an address pattern",
                    inst.pc
                );
            }
        }
        Arc::new(Program {
            insts: self.insts,
            pc_index,
            entry: self.entry,
            branch_behaviors: self.branch_behaviors,
            addr_patterns: self.addr_patterns,
            seed: self.seed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atr_isa::ArchReg;

    fn r(i: u8) -> ArchReg {
        ArchReg::int(i)
    }

    #[test]
    fn builder_assigns_sequential_pcs() {
        let mut b = ProgramBuilder::new(0x400000, 0);
        let p0 = b.push_alu(r(0), &[r(1)]);
        let p1 = b.push_alu(r(1), &[r(0)]);
        assert_eq!(p0, 0x400000);
        assert_eq!(p1, 0x400004);
        let prog = b.build();
        assert_eq!(prog.at(p1).unwrap().fallthrough, 0x400008);
    }

    #[test]
    fn lookup_misses_between_instructions() {
        let mut b = ProgramBuilder::new(0x1000, 0);
        b.push_alu(r(0), &[]);
        let prog = b.build();
        assert!(prog.at(0x1000).is_some());
        assert!(prog.at(0x1002).is_none());
    }

    #[test]
    fn loop_program_wires_backedge() {
        let mut b = ProgramBuilder::new(0, 0);
        let head = b.next_pc();
        b.push_alu(r(0), &[r(0)]);
        b.push_cond_branch(head, &[r(0)], BranchBehavior::Loop { trip_count: 3 });
        let prog = b.build();
        let br = prog.instructions()[1];
        assert_eq!(br.taken_target, Some(head));
        assert!(prog.branch_behavior(br.pc).is_some());
    }

    #[test]
    fn patch_target_fixes_forward_branches() {
        let mut b = ProgramBuilder::new(0, 0);
        let br = b.push_cond_branch(0, &[r(0)], BranchBehavior::NeverTaken);
        b.push_alu(r(1), &[]);
        let join = b.next_pc();
        b.push_alu(r(2), &[]);
        b.patch_target(br, join);
        let prog = b.build();
        assert_eq!(prog.at(br).unwrap().taken_target, Some(join));
    }

    #[test]
    #[should_panic(expected = "lacks an address pattern")]
    fn memory_without_pattern_is_rejected() {
        let mut b = ProgramBuilder::new(0, 0);
        b.push(StaticInst::load(0, r(0), r(1)));
        let _ = b.build();
    }

    #[test]
    #[should_panic(expected = "lacks a behaviour")]
    fn branch_without_behavior_is_rejected() {
        let mut b = ProgramBuilder::new(0, 0);
        b.push(StaticInst::cond_branch(0, 0x40, &[]));
        let _ = b.build();
    }

    #[test]
    #[should_panic(expected = "at least one instruction")]
    fn empty_program_is_rejected() {
        let _ = ProgramBuilder::new(0, 0).build();
    }

    #[test]
    fn class_histogram_counts() {
        let mut b = ProgramBuilder::new(0, 0);
        b.push_alu(r(0), &[]);
        b.push_alu(r(1), &[]);
        b.push_load(r(2), r(0), AddrPattern::Stride { base: 0, stride: 8, footprint: 64 });
        let prog = b.build();
        let h = prog.class_histogram();
        assert_eq!(h[&OpClass::IntAlu], 2);
        assert_eq!(h[&OpClass::Load], 1);
    }
}
