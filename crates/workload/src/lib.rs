//! Synthetic workload substrate for the ATR simulator.
//!
//! The paper evaluates on SPEC CPU 2017 simpoint traces replayed through
//! Scarab. Those traces are proprietary, so this crate provides the
//! closest synthetic equivalent that exercises the same code paths:
//!
//! * a **static program** model ([`Program`]): decoded instructions
//!   addressable by PC, so the frontend can fetch down *wrong paths*
//!   after a misprediction exactly like a trace-based Scarab frontend;
//! * deterministic **behaviours** attached to branches and memory
//!   operations ([`BranchBehavior`], [`AddrPattern`]) that generate the
//!   architecturally correct dynamic stream;
//! * an **oracle stream** ([`Oracle`]) — the functional execution of the
//!   program, which the pipeline consumes in order and re-enters after
//!   flushes;
//! * the [`TraceSource`] trait abstracting over stream substrates, so a
//!   captured on-disk trace replay (the `atr-trace` crate) can stand in
//!   for live functional execution bit-for-bit;
//! * a **program generator** ([`generator::generate`]) driven by
//!   [`ProfileParams`] that control the microarchitectural character of
//!   the workload (branch predictability, memory footprint, dependency
//!   and register-redefinition distances, atomic-region density);
//! * one named profile per SPEC CPU 2017 benchmark in Table 2
//!   ([`spec::spec2017_int`], [`spec::spec2017_fp`]).
//!
//! # Examples
//!
//! ```
//! use atr_workload::{spec, Oracle};
//!
//! let profile = &spec::spec2017_int()[0]; // 500.perlbench_r
//! let program = profile.build();
//! let mut oracle = Oracle::new(program);
//! let first = *oracle.get(0);
//! assert_eq!(first.seq, 0);
//! ```

pub mod behavior;
pub mod generator;
pub mod oracle;
pub mod program;
pub mod source;
pub mod spec;
pub mod wrongpath;

pub use behavior::{AddrPattern, BranchBehavior};
pub use generator::ProfileParams;
pub use oracle::Oracle;
pub use program::{Program, ProgramBuilder};
pub use source::TraceSource;
pub use spec::{SpecProfile, WorkloadClass};
pub use wrongpath::synthesize_outcome;
