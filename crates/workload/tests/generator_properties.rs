//! Property-based tests over the program generator: any parameter point
//! must yield a closed, deterministic, well-formed program whose oracle
//! stream never derails.
//!
//! Randomness comes from the in-tree `atr-rng` (the container has no
//! registry access for proptest); each case is seeded deterministically
//! so a failing seed reproduces the exact parameter point.

use atr_rng::{RngExt, SeedableRng, SmallRng};
use atr_workload::{Oracle, ProfileParams};

const CASES: u64 = 48;

fn random_params(rng: &mut SmallRng) -> ProfileParams {
    let stride_frac = rng.random_range(0.0..1.0f64);
    let chase_frac_raw = rng.random_range(0.0..0.5f64);
    ProfileParams {
        name: "prop".to_owned(),
        seed: rng.random(),
        fp_frac: rng.random_range(0.0..0.9f64),
        load_frac: rng.random_range(0.05..0.35f64),
        store_frac: rng.random_range(0.0..0.15f64),
        mul_frac: 0.04,
        div_frac: 0.003,
        branch_entropy: rng.random_range(0.0..1.0f64),
        loop_trip_mean: rng.random_range(2.0..128.0f64),
        mem_footprint: 1 << 22,
        stride_frac,
        chase_frac: chase_frac_raw * (1.0 - stride_frac),
        burst_frac: rng.random_range(0.0..0.6f64),
        burst_len: rng.random_range(2..16u32),
        burst_window: rng.random_range(2..6u32),
        consumer_mean: 1.8,
        burst_hazard: rng.random_range(0.0..0.5f64),
        call_frac: rng.random_range(0.0..0.4f64),
        indirect_frac: rng.random_range(0.0..0.15f64),
        num_loop_nests: rng.random_range(1..6u32),
        blocks_per_nest: rng.random_range(2..8u32),
        avg_block_len: rng.random_range(3..14u32),
    }
}

/// Runs `check` against `CASES` random parameter points, reporting the
/// failing seed for reproduction.
fn fuzz(name: &str, salt: u64, check: impl Fn(&ProfileParams)) {
    for case in 0..CASES {
        let seed = salt + case;
        let mut rng = SmallRng::seed_from_u64(seed);
        let params = random_params(&mut rng);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| check(&params)));
        assert!(result.is_ok(), "{name}: case with seed {seed:#x} failed; params: {params:?}");
    }
}

#[test]
fn any_parameter_point_builds_a_closed_program() {
    fuzz("closed-program", 0x6E40_0000, |params| {
        let program = params.build();
        assert!(program.len() > 10);
        // Walk 30k dynamic instructions: the oracle must never fall off
        // the program (panics otherwise), and indices stay consistent.
        let mut oracle = Oracle::new(program);
        for i in 0..30_000u64 {
            let d = *oracle.get(i);
            assert_eq!(d.oracle_idx, i);
            assert!(!d.on_wrong_path);
            if i % 4096 == 0 {
                oracle.release_before(i.saturating_sub(512));
            }
        }
    });
}

#[test]
fn generation_is_a_pure_function_of_params() {
    fuzz("pure-function", 0x6E41_0000, |params| {
        let a = params.build();
        let b = params.build();
        assert_eq!(a.instructions(), b.instructions());
    });
}

#[test]
fn oracle_streams_replay_identically() {
    fuzz("replay", 0x6E42_0000, |params| {
        let program = params.build();
        let mut a = Oracle::new(program.clone());
        let mut b = Oracle::new(program);
        for i in 0..5_000u64 {
            assert_eq!(a.get(i), b.get(i));
        }
    });
}

#[test]
fn every_memory_op_gets_an_address() {
    fuzz("mem-addr", 0x6E43_0000, |params| {
        let program = params.build();
        let mut oracle = Oracle::new(program);
        for i in 0..10_000u64 {
            let d = *oracle.get(i);
            if d.sinst.class.is_memory() {
                assert!(d.outcome.mem_addr.is_some());
            } else {
                assert!(d.outcome.mem_addr.is_none());
            }
        }
    });
}

#[test]
fn control_flow_targets_are_real_instructions() {
    fuzz("control-flow", 0x6E44_0000, |params| {
        let program = params.build();
        let mut oracle = Oracle::new(program.clone());
        for i in 0..10_000u64 {
            let d = *oracle.get(i);
            assert!(
                program.at(d.outcome.next_pc).is_some(),
                "next pc {:#x} is not an instruction",
                d.outcome.next_pc
            );
        }
    });
}
