//! Property-based tests over the program generator: any parameter point
//! must yield a closed, deterministic, well-formed program whose oracle
//! stream never derails.

use atr_workload::{Oracle, ProfileParams};
use proptest::prelude::*;

fn params_strategy() -> impl Strategy<Value = ProfileParams> {
    (
        any::<u64>(),
        0.0f64..0.9,
        0.05f64..0.35,
        0.0f64..0.15,
        0.0f64..1.0,
        2.0f64..128.0,
        (0.0f64..1.0, 0.0f64..0.5),
        (0.0f64..0.6, 2u32..16, 2u32..6, 0.0f64..0.5),
        (0.0f64..0.4, 0.0f64..0.15),
        (1u32..6, 2u32..8, 3u32..14),
    )
        .prop_map(
            |(
                seed,
                fp_frac,
                load_frac,
                store_frac,
                branch_entropy,
                loop_trip_mean,
                (stride_frac, chase_frac_raw),
                (burst_frac, burst_len, burst_window, burst_hazard),
                (call_frac, indirect_frac),
                (num_loop_nests, blocks_per_nest, avg_block_len),
            )| {
                ProfileParams {
                    name: "prop".to_owned(),
                    seed,
                    fp_frac,
                    load_frac,
                    store_frac,
                    mul_frac: 0.04,
                    div_frac: 0.003,
                    branch_entropy,
                    loop_trip_mean,
                    mem_footprint: 1 << 22,
                    stride_frac,
                    chase_frac: chase_frac_raw * (1.0 - stride_frac),
                    burst_frac,
                    burst_len,
                    burst_window,
                    consumer_mean: 1.8,
                    burst_hazard,
                    call_frac,
                    indirect_frac,
                    num_loop_nests,
                    blocks_per_nest,
                    avg_block_len,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn any_parameter_point_builds_a_closed_program(params in params_strategy()) {
        let program = params.build();
        prop_assert!(program.len() > 10);
        // Walk 30k dynamic instructions: the oracle must never fall off
        // the program (panics otherwise), and indices stay consistent.
        let mut oracle = Oracle::new(program);
        for i in 0..30_000u64 {
            let d = *oracle.get(i);
            prop_assert_eq!(d.oracle_idx, i);
            prop_assert!(!d.on_wrong_path);
            if i % 4096 == 0 {
                oracle.release_before(i.saturating_sub(512));
            }
        }
    }

    #[test]
    fn generation_is_a_pure_function_of_params(params in params_strategy()) {
        let a = params.build();
        let b = params.build();
        prop_assert_eq!(a.instructions(), b.instructions());
    }

    #[test]
    fn oracle_streams_replay_identically(params in params_strategy()) {
        let program = params.build();
        let mut a = Oracle::new(program.clone());
        let mut b = Oracle::new(program);
        for i in 0..5_000u64 {
            prop_assert_eq!(a.get(i), b.get(i));
        }
    }

    #[test]
    fn every_memory_op_gets_an_address(params in params_strategy()) {
        let program = params.build();
        let mut oracle = Oracle::new(program);
        for i in 0..10_000u64 {
            let d = *oracle.get(i);
            if d.sinst.class.is_memory() {
                prop_assert!(d.outcome.mem_addr.is_some());
            } else {
                prop_assert!(d.outcome.mem_addr.is_none());
            }
        }
    }

    #[test]
    fn control_flow_targets_are_real_instructions(params in params_strategy()) {
        let program = params.build();
        let mut oracle = Oracle::new(program.clone());
        for i in 0..10_000u64 {
            let d = *oracle.get(i);
            prop_assert!(
                program.at(d.outcome.next_pc).is_some(),
                "next pc {:#x} is not an instruction", d.outcome.next_pc
            );
        }
    }
}
