//! Fault-tolerance and resume integration tests: panic isolation,
//! journaled kill/resume with bit-identical fingerprints, and journal
//! hygiene against torn tails and configuration drift.
//!
//! Every session here is built with [`Session::default`] plus explicit
//! builders — zero environment reads — so these tests cannot race other
//! tests on transient env state.

use atr_core::ReleaseScheme;
use atr_pipeline::CoreConfig;
use atr_sim::executor::{execute_session, FailureKind};
use atr_sim::journal::JOURNAL_FILE;
use atr_sim::{RunMatrix, RunResult, Session, SimPoint};
use std::io::Write as _;
use std::path::PathBuf;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("atr_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn mcf(scheme: ReleaseScheme, rf: usize) -> SimPoint {
    SimPoint::new("505.mcf_r", scheme, rf, 50, 200)
}

fn points() -> Vec<SimPoint> {
    vec![
        mcf(ReleaseScheme::Baseline, 64),
        mcf(ReleaseScheme::Atr { redefine_delay: 0 }, 64),
        SimPoint::new("548.exchange2_r", ReleaseScheme::Baseline, 64, 50, 200),
    ]
}

/// Asserts two results are bit-identical in every journaled quantity.
fn assert_bit_identical(context: &str, a: &RunResult, b: &RunResult) {
    assert_eq!(a.ipc.to_bits(), b.ipc.to_bits(), "{context}: IPC diverged");
    assert_eq!(
        a.avg_int_occupancy.to_bits(),
        b.avg_int_occupancy.to_bits(),
        "{context}: int occupancy diverged"
    );
    assert_eq!(
        a.avg_fp_occupancy.to_bits(),
        b.avg_fp_occupancy.to_bits(),
        "{context}: fp occupancy diverged"
    );
    assert_eq!(format!("{:?}", a.stats), format!("{:?}", b.stats), "{context}: stats diverged");
    assert_eq!(
        format!("{:?}", a.lifetimes),
        format!("{:?}", b.lifetimes),
        "{context}: lifetimes diverged"
    );
}

/// A poisoned point fails with the panic payload after its bounded
/// retries; its siblings' results survive the pass.
#[test]
fn injected_panic_is_isolated_and_carries_its_payload() {
    let core = CoreConfig::default();
    let session = Session::default().quiet().with_threads(2).with_fault_injection("505.mcf_r");
    let outcomes = execute_session(&session, &core, &points());

    for idx in [0usize, 1] {
        let failure = outcomes[idx].as_ref().expect_err("poisoned mcf point must fail");
        assert_eq!(failure.kind, FailureKind::Panic);
        assert_eq!(failure.attempts, 2, "default session = 1 retry = 2 attempts");
        assert!(failure.payload.contains("injected fault"), "{}", failure.payload);
        assert!(failure.label.contains("505.mcf_r"), "{}", failure.label);
    }
    let survivor = outcomes[2].as_ref().expect("the healthy sibling must survive");
    assert!(survivor.ipc > 0.0);

    // Retries are honored exactly: 0 retries = 1 attempt.
    let once = Session::default().quiet().with_retries(0).with_fault_injection("548.exchange2_r");
    let outcomes = execute_session(&once, &core, &points());
    assert!(outcomes[0].is_ok() && outcomes[1].is_ok());
    assert_eq!(outcomes[2].as_ref().unwrap_err().attempts, 1);
}

/// The same isolation through the matrix: failures land in the failure
/// set, `try_*` degrades, `get` of a healthy point still works.
#[test]
fn matrix_survives_a_poisoned_point() {
    let core = CoreConfig::default();
    let session = Session::default().quiet().with_retries(0).with_fault_injection("505.mcf_r");
    let mut matrix = RunMatrix::new();
    matrix.ensure_with(&session, &core, &points());
    assert_eq!(matrix.failed(), 2, "both mcf points are poisoned");
    assert_eq!(matrix.try_ipc(&points()[0]), None);
    assert!(matrix.try_get(&points()[2]).is_some());
    assert!(matrix.summary().contains("2 FAILED"), "{}", matrix.summary());
}

/// Kill/resume: a partial journaled pass, resumed, yields bit-identical
/// results to an uninterrupted journal-less pass — and the journaled
/// points are *not* re-simulated, proven by poisoning them with fault
/// injection on the resume (a served point never enters the worker, so
/// it cannot panic).
#[test]
fn killed_pass_resumes_bit_identical_without_resimulating() {
    let core = CoreConfig::default();
    let all = points();
    let dir = tmp_dir("journal_resume");

    // The uninterrupted, journal-less reference pass.
    let clean: Vec<RunResult> = execute_session(&Session::default().quiet(), &core, &all)
        .into_iter()
        .map(|o| o.expect("reference pass is healthy"))
        .collect();

    // "Killed" pass: only the two mcf points completed before the kill.
    let journaled = Session::default().quiet().with_journal(&dir);
    let partial = execute_session(&journaled, &core, &all[..2]);
    assert!(partial.iter().all(Result::is_ok));
    let journal_path = dir.join(JOURNAL_FILE);
    let lines = std::fs::read_to_string(&journal_path).unwrap().lines().count();
    assert_eq!(lines, 2, "one journal record per completed point");

    // Resume with the mcf points poisoned: if they were re-simulated
    // they would fail, so an all-Ok resume proves journal serving.
    let resume = journaled.clone().with_fault_injection("505.mcf_r");
    let resumed = execute_session(&resume, &core, &all);
    for (idx, (outcome, reference)) in resumed.iter().zip(&clean).enumerate() {
        let result = outcome
            .as_ref()
            .unwrap_or_else(|f| panic!("resume re-simulated or failed journaled point {idx}: {f}"));
        assert_bit_identical(&format!("resume point {idx}"), result, reference);
    }
    let lines = std::fs::read_to_string(&journal_path).unwrap().lines().count();
    assert_eq!(lines, 3, "the resume appended exactly the missing point");

    // A second resume serves everything — still bit-identical.
    let served = execute_session(&resume, &core, &all);
    for (idx, (outcome, reference)) in served.iter().zip(&clean).enumerate() {
        assert_bit_identical(
            &format!("fully-served point {idx}"),
            outcome.as_ref().unwrap(),
            reference,
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Journal hygiene: a torn trailing record (SIGKILL mid-append) is
/// ignored and compacted away; a journal written under a different core
/// configuration serves nothing.
#[test]
fn journal_tolerates_torn_tails_and_ignores_foreign_configs() {
    let core = CoreConfig::default();
    let all = points();
    let dir = tmp_dir("journal_hygiene");
    let journaled = Session::default().quiet().with_journal(&dir);

    let first = execute_session(&journaled, &core, &all);
    assert!(first.iter().all(Result::is_ok));
    let journal_path = dir.join(JOURNAL_FILE);

    // Tear the tail the way a kill mid-append would.
    let mut f = std::fs::OpenOptions::new().append(true).open(&journal_path).unwrap();
    f.write_all(b"{\"schema\":\"atr-run-journal-v1\",\"digest\":\"tr").unwrap();
    drop(f);

    // Poisoned resume: all served despite the torn tail ⇒ the intact
    // records survived and the garbage was ignored.
    let poisoned = journaled.clone().with_fault_injection("505.mcf_r");
    let resumed = execute_session(&poisoned, &core, &all);
    for (idx, (outcome, reference)) in resumed.iter().zip(&first).enumerate() {
        assert_bit_identical(
            &format!("post-torn-tail point {idx}"),
            outcome.as_ref().expect("torn tail must not block serving"),
            reference.as_ref().unwrap(),
        );
    }
    let body = std::fs::read_to_string(&journal_path).unwrap();
    assert_eq!(body.lines().count(), 3, "compaction dropped the torn tail");
    assert!(body.lines().all(|l| l.ends_with('}')), "only intact records remain");

    // A different core configuration must not be served stale results:
    // with the journal digest mismatched, every point re-simulates (the
    // poisoned session now fails its mcf points — proof of a live run).
    let mut other_core = core.clone();
    other_core.rob_size = 64;
    let foreign = execute_session(&poisoned, &other_core, &all);
    assert!(foreign[0].is_err() && foreign[1].is_err(), "foreign config must re-simulate");
    assert!(foreign[2].is_ok());
    let _ = std::fs::remove_dir_all(&dir);
}
