//! Integration tests for the observability layer: CPI-stack validity
//! across every scheme and profile, scheme sensitivity of the
//! freelist-stall bucket, and the zero-perturbation guarantee.

use atr_core::ReleaseScheme;
use atr_pipeline::CoreConfig;
use atr_sim::runner::{run_profile, RunSpec};
use atr_telemetry::{CpiBucket, TelemetryConfig, TelemetryLevel};
use atr_workload::spec::all_profiles;

/// The paper's four schemes (Fig 10's three plus the baseline).
const SCHEMES: [ReleaseScheme; 4] = [
    ReleaseScheme::Baseline,
    ReleaseScheme::NonSpecEr,
    ReleaseScheme::Atr { redefine_delay: 0 },
    ReleaseScheme::Combined { redefine_delay: 0 },
];

fn spec(scheme: ReleaseScheme, rf: usize, warmup: u64, measure: u64) -> RunSpec {
    RunSpec {
        scheme,
        rf_size: rf,
        warmup,
        measure,
        collect_events: false,
        audit: false,
        telemetry: TelemetryConfig { level: TelemetryLevel::Stats, ..TelemetryConfig::default() },
    }
}

/// The `Σ slots == width × cycles` invariant must hold for every scheme
/// on every SPEC profile — the explicit tiny budget keeps this a
/// seconds-scale sweep while still crossing every attribution path.
#[test]
fn cpi_invariant_holds_for_all_schemes_and_profiles() {
    let base = CoreConfig::default();
    for profile in &all_profiles() {
        for scheme in SCHEMES {
            let r = run_profile(&base, profile, &spec(scheme, 64, 500, 2_000));
            let cpi = r
                .telemetry
                .cpi
                .as_ref()
                .unwrap_or_else(|| panic!("{} {}: no CPI stack", profile.name, scheme.label()));
            cpi.check().unwrap_or_else(|e| {
                panic!("{} {}: CPI invariant broken: {e}", profile.name, scheme.label())
            });
            assert!(
                cpi.get(CpiBucket::Retiring) > 0,
                "{} {}: nothing retired into the stack",
                profile.name,
                scheme.label()
            );
        }
    }
}

/// The CPI stack must be scheme-sensitive where the paper says the
/// schemes differ: under freelist pressure, ATR's early releases must
/// strictly shrink the freelist-stall bucket relative to the baseline.
#[test]
fn freelist_stall_bucket_shrinks_under_atr() {
    let base = CoreConfig::default();
    let profiles = all_profiles();
    let pressured = profiles.iter().find(|p| p.name == "548.exchange2_r").expect("profile exists");
    let stalls = |scheme: ReleaseScheme| {
        let r = run_profile(&base, pressured, &spec(scheme, 64, 2_000, 20_000));
        r.telemetry.cpi.as_ref().expect("stats level").get(CpiBucket::FreelistStall)
    };
    let baseline = stalls(ReleaseScheme::Baseline);
    let atr = stalls(ReleaseScheme::Atr { redefine_delay: 0 });
    assert!(baseline > 0, "the pressured point must actually stall the baseline's freelist");
    assert!(
        baseline > atr,
        "ATR must attribute strictly fewer freelist-stall slots \
         (baseline {baseline} vs atr {atr})"
    );
}

/// Telemetry is a pure observer: the whole `CoreStats` block — not just
/// IPC — must be bit-identical across off, stats, and trace levels.
#[test]
fn telemetry_levels_never_perturb_core_stats() {
    let base = CoreConfig::default();
    let profiles = all_profiles();
    let profile = profiles.iter().find(|p| p.name == "505.mcf_r").expect("profile exists");
    let run_at = |level: TelemetryLevel| {
        let mut s = spec(ReleaseScheme::Combined { redefine_delay: 0 }, 96, 500, 4_000);
        s.telemetry.level = level;
        run_profile(&base, profile, &s)
    };
    let off = run_at(TelemetryLevel::Off);
    let stats = run_at(TelemetryLevel::Stats);
    let trace = run_at(TelemetryLevel::Trace);
    // `markings` is the one counter event collection legitimately
    // enables (region marking for the log); everything timed must match.
    let fingerprint = |r: &atr_sim::RunResult| {
        format!(
            "{:?} {:?} {:?} {:?}",
            r.ipc.to_bits(),
            (r.stats.cycles, r.stats.retired, r.stats.fetched, r.stats.flushes),
            (r.stats.rename_freelist_stalls, r.stats.rename_backpressure_stalls),
            (r.stats.int_prf, r.stats.fp_prf, r.stats.caches, r.stats.dram),
        )
    };
    assert_eq!(fingerprint(&off), fingerprint(&stats));
    assert_eq!(fingerprint(&off), fingerprint(&trace));
    assert!(off.telemetry.is_empty());
    assert!(!stats.telemetry.is_empty());
}
