//! Seeded flush-storm fuzzing of the audited pipeline.
//!
//! Each case draws a random high-misprediction workload and a random
//! core configuration (scheme, RF size, recovery policy, move
//! elimination), then runs it with the cycle-level auditor attached
//! while injecting interrupts to force §4.1 region-boundary flushes on
//! top of the branch-driven ones. Any SRT/free-list divergence — a
//! flush restore that disagrees with the committed-RAT walk, a leaked
//! or double-freed register — panics inside the auditor, and the
//! harness reports the failing seed so the exact case replays with
//! `storm(seed)`.

use atr_core::{CheckpointPolicy, ReleaseScheme};
use atr_pipeline::{CoreConfig, InterruptMode, OooCore};
use atr_rng::{RngExt, SeedableRng, SmallRng};
use atr_workload::{Oracle, ProfileParams};

const SEEDS: u64 = 32;
const INSTS_PER_CASE: u64 = 600;

/// One fuzz case, fully determined by `seed`.
fn storm(seed: u64) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let program = ProfileParams {
        seed: rng.next_u64(),
        // Hostile control flow: close to coin-flip branches, plus some
        // exception-raising divides to force full-pipeline squashes.
        branch_entropy: rng.random_range(0.6..1.0),
        div_frac: rng.random_range(0.0..0.03),
        load_frac: rng.random_range(0.10..0.30),
        store_frac: rng.random_range(0.05..0.15),
        ..ProfileParams::default()
    }
    .build();

    let scheme = ReleaseScheme::ALL[rng.random_range(0..ReleaseScheme::ALL.len())];
    let mut cfg = CoreConfig::default()
        .with_scheme(scheme)
        .with_rf_size(rng.random_range(48..128usize))
        .with_audit(true);
    cfg.rename.checkpoint_policy = if rng.random::<bool>() {
        CheckpointPolicy::EveryBranch
    } else {
        CheckpointPolicy::WalkOnly
    };
    cfg.rename.move_elimination = rng.random::<bool>();

    let mut core = OooCore::new(cfg, Oracle::new(program));
    // Interleave interrupts with execution so recovery runs while
    // claims, armed precommits, and redefine-delay entries are live.
    for chunk in 0u64..4 {
        core.run(INSTS_PER_CASE / 4);
        core.request_interrupt(if chunk % 2 == 0 {
            InterruptMode::FlushAtRegionBoundary
        } else {
            InterruptMode::Drain
        });
    }
    core.run(INSTS_PER_CASE / 2);

    let auditor = core.auditor().expect("audit was enabled");
    assert!(auditor.cycles_checked() > 0, "auditor never ran");
    assert_eq!(auditor.violations_found(), 0);
}

#[test]
fn flush_storm_recovery_survives_32_seeds() {
    for case in 0..SEEDS {
        let seed = 0xF1A5_0000 + case;
        let result = std::panic::catch_unwind(|| storm(seed));
        assert!(
            result.is_ok(),
            "flush-storm fuzz: case with seed {seed:#x} failed — call storm({seed:#x}) to replay"
        );
    }
}
