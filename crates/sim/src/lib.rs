//! Simulation driver and experiment harness.
//!
//! Glues the pipeline to the workload suite. Experiments are built on
//! the **run-matrix engine**: each figure declares the [`matrix::SimPoint`]s
//! it needs (`figNN_points`), a [`matrix::RunMatrix`] memoizes results by
//! point key and executes the unique subset in parallel
//! ([`executor`], `ATR_SIM_THREADS` workers), and `figNN_assemble` folds
//! the cached results into rows. One function per evaluation artifact of
//! the paper:
//!
//! | paper artifact | function |
//! |---|---|
//! | Table 1 configuration | [`config::table1`] |
//! | Fig 1 (baseline IPC vs RF size) | [`experiments::fig01`] |
//! | Fig 4 (register lifecycle) | [`experiments::fig04`] |
//! | Fig 6 (atomic register ratio) | [`experiments::fig06`] |
//! | Fig 10 (scheme speedups @64/@224) | [`experiments::fig10`] |
//! | Fig 11 (RF-size sensitivity) | [`experiments::fig11`] |
//! | Fig 12 (consumer histogram) | [`experiments::fig12`] |
//! | Fig 13 (redefine-delay sensitivity) | [`experiments::fig13`] |
//! | Fig 14 (region cycle gaps) | [`experiments::fig14`] |
//! | Fig 15 (RF-size reduction study) | [`experiments::fig15`] |
//! | §5.4 / §6 ablations | [`experiments::ablation_counter_width`], [`experiments::ablation_move_elimination`] |
//!
//! Budgets default to a laptop-scale quick pass and are overridden with
//! `ATR_SIM_WARMUP` / `ATR_SIM_INSTS` (instructions per measured window)
//! for full runs.

pub mod config;
pub mod differential;
pub mod executor;
pub mod experiments;
pub mod journal;
pub mod matrix;
pub mod report;
pub mod runner;
pub mod session;
pub mod telemetry;

pub use config::{table1, SimConfig};
pub use differential::{run_differential, verify_capture_replay, DifferentialReport, SchemeStream};
pub use executor::{execute_session, FailureKind, PointFailure, PointOutcome};
pub use journal::RunJournal;
pub use matrix::{CoreTweak, RunMatrix, SimPoint};
pub use runner::{run, run_with_source, RunResult, RunSpec};
pub use session::Session;
