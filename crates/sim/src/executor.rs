//! Parallel execution of simulation points over a scoped worker pool.
//!
//! Points are independent deterministic simulations, so they can run on
//! any worker in any order; results are returned index-aligned with the
//! input slice, which keeps the output bit-identical to a serial pass.
//! Uses only `std::thread::scope` — no external dependencies.
//!
//! Environment knobs:
//!
//! * `ATR_SIM_THREADS` — worker count (default: available cores).
//! * `ATR_SIM_PROGRESS=0` — silence the per-point progress lines.
//! * `ATR_TELEMETRY=stats|trace` — emit one JSONL telemetry record per
//!   point (see [`crate::telemetry`]), to stdout or `ATR_TELEMETRY_OUT`.
//! * `ATR_TRACE_CACHE=1|<dir>` — capture each distinct program's
//!   functional stream once into an on-disk `atr-trace` cache and
//!   replay it for every point sharing that program (bit-identical to
//!   live generation; see [`crate::config::trace_cache_from_env`]).
//! * `ATR_TRACE_FF=1` — additionally fast-forward each replay to the
//!   checkpoint frame at or below the point's warmup target.

use crate::matrix::SimPoint;
use crate::runner::{run_with_source, RunResult, RunSpec};
use atr_pipeline::CoreConfig;
use atr_trace::{TraceCache, TraceReplay};
use atr_workload::spec::all_profiles;
use atr_workload::{Oracle, Program, TraceSource};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Checkpoint frames are laid down every this many records in cached
/// captures (see `atr_trace::writer::DEFAULT_CHECKPOINT_INTERVAL`).
const CHECKPOINT_INTERVAL: u64 = atr_trace::writer::DEFAULT_CHECKPOINT_INTERVAL;

/// Extra records captured beyond the largest `warmup + measure` of the
/// points sharing a program: fetch runs ahead of retirement by up to
/// the in-flight window (ROB plus frontend buffering), so the trace
/// must extend past the last *retired* index or replay would exhaust
/// it mid-run.
fn capture_slack(core: &CoreConfig) -> u64 {
    2 * core.rob_size as u64 + 8192
}

/// The worker count: `ATR_SIM_THREADS` if set and valid, otherwise the
/// machine's available parallelism.
#[must_use]
pub fn thread_count() -> usize {
    if let Ok(raw) = std::env::var("ATR_SIM_THREADS") {
        match raw.trim().parse::<usize>() {
            Ok(n) if n > 0 => return n,
            _ => atr_telemetry::warn!(
                "ignoring malformed ATR_SIM_THREADS={raw:?} (expected a positive count)"
            ),
        }
    }
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

fn progress_enabled() -> bool {
    std::env::var("ATR_SIM_PROGRESS").map_or(true, |v| v != "0")
}

/// Executes every point, in parallel, against the base core config.
/// The result vector is index-aligned with `points`.
///
/// # Panics
///
/// Panics if a point names a profile `atr_workload::spec` does not know.
#[must_use]
pub fn execute(core: &CoreConfig, points: &[SimPoint]) -> Vec<RunResult> {
    execute_with(core, points, thread_count())
}

/// [`execute`] with an explicit worker count (1 = serial). Exposed so
/// the determinism tests can compare serial and parallel passes. The
/// trace cache (and fast-forward switch) come from the environment;
/// [`execute_with_cache`] takes them explicitly.
#[must_use]
pub fn execute_with(core: &CoreConfig, points: &[SimPoint], threads: usize) -> Vec<RunResult> {
    let cache_dir = crate::config::trace_cache_from_env();
    execute_with_cache(
        core,
        points,
        threads,
        cache_dir.as_deref(),
        crate::config::trace_ff_from_env(),
    )
}

/// [`execute_with`] with an explicit trace-cache directory and
/// fast-forward switch — the environment is not consulted, so tests
/// exercising the cache cannot race parallel tests on env state.
///
/// When `cache_dir` is set, each distinct program among `points` is
/// captured once (sized to the largest `warmup + measure` of its points
/// plus in-flight slack) before the workers spawn, and every point
/// replays the capture instead of re-generating the stream. Replay is
/// bit-identical to live generation; any cache problem (unwritable
/// directory, corrupt file) degrades that program to live generation
/// with a warning rather than failing the pass.
#[must_use]
pub fn execute_with_cache(
    core: &CoreConfig,
    points: &[SimPoint],
    threads: usize,
    cache_dir: Option<&Path>,
    fast_forward: bool,
) -> Vec<RunResult> {
    if points.is_empty() {
        return Vec::new();
    }
    // Generate each distinct profile's static program once up front:
    // points overwhelmingly share profiles, and generation is pure, so
    // prebuilding changes nothing but the wall clock.
    let known: HashMap<&'static str, _> = all_profiles().into_iter().map(|p| (p.name, p)).collect();
    let mut programs: HashMap<&'static str, Arc<Program>> = HashMap::new();
    for point in points {
        if !programs.contains_key(point.profile) {
            let profile = known
                .get(point.profile)
                .unwrap_or_else(|| panic!("unknown profile in SimPoint: {}", point.profile));
            programs.insert(point.profile, profile.build());
        }
    }
    let traces = prepare_traces(core, points, &programs, cache_dir);
    let workers = threads.clamp(1, points.len());
    let progress = progress_enabled();
    let telemetry = crate::config::telemetry_from_env();
    let t0 = Instant::now();
    let next = AtomicUsize::new(0);
    let done = AtomicUsize::new(0);

    let mut results: Vec<Option<(RunResult, Duration)>> = Vec::new();
    results.resize_with(points.len(), || None);

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let next = &next;
            let done = &done;
            let programs = &programs;
            let traces = &traces;
            handles.push(scope.spawn(move || {
                let mut produced: Vec<(usize, RunResult, Duration)> = Vec::new();
                loop {
                    let idx = next.fetch_add(1, Ordering::Relaxed);
                    if idx >= points.len() {
                        return produced;
                    }
                    let point = &points[idx];
                    let started = Instant::now();
                    let result = run_point(
                        core,
                        programs[point.profile].clone(),
                        point,
                        traces.get(point.profile).map(PathBuf::as_path),
                        fast_forward,
                    );
                    let wall = started.elapsed();
                    let finished = done.fetch_add(1, Ordering::Relaxed) + 1;
                    if progress {
                        atr_telemetry::info!(
                            "[matrix {:>4}/{:<4} {:>7.1?}] {} ({:.0?})",
                            finished,
                            points.len(),
                            t0.elapsed(),
                            point.label(),
                            wall,
                        );
                    }
                    produced.push((idx, result, wall));
                }
            }));
        }
        for handle in handles {
            for (idx, result, wall) in handle.join().expect("simulation worker panicked") {
                results[idx] = Some((result, wall));
            }
        }
    });

    let results: Vec<(RunResult, Duration)> = results
        .into_iter()
        .map(|r| r.expect("every index claimed by exactly one worker"))
        .collect();

    // One JSONL record per point, in input order — stable no matter
    // which worker ran what.
    if telemetry.stats_enabled() {
        let lines: Vec<String> = points
            .iter()
            .zip(&results)
            .map(|(point, (result, wall))| crate::telemetry::record(point, result, *wall).compact())
            .collect();
        crate::telemetry::emit_lines(&lines);
    }

    results.into_iter().map(|(r, _)| r).collect()
}

/// Captures (or finds cached) one trace per distinct program among
/// `points`, sized for the largest budget any of its points needs.
/// Returns the per-profile trace paths; an empty map means every point
/// runs a live oracle.
fn prepare_traces(
    core: &CoreConfig,
    points: &[SimPoint],
    programs: &HashMap<&'static str, Arc<Program>>,
    cache_dir: Option<&Path>,
) -> HashMap<&'static str, PathBuf> {
    let mut traces = HashMap::new();
    let Some(dir) = cache_dir else {
        return traces;
    };
    let cache = match TraceCache::new(dir) {
        Ok(c) => c,
        Err(e) => {
            atr_telemetry::warn!(
                "trace cache at {} is unusable ({e}); running every point live",
                dir.display()
            );
            return traces;
        }
    };
    let slack = capture_slack(core);
    for (&name, program) in programs {
        let needed = points
            .iter()
            .filter(|p| p.profile == name)
            .map(|p| p.warmup + p.measure)
            .max()
            .expect("every prebuilt program has a point")
            + slack;
        let t0 = Instant::now();
        match cache.ensure(program, name, CHECKPOINT_INTERVAL, needed) {
            Ok((path, hit)) => {
                if progress_enabled() {
                    atr_telemetry::info!(
                        "[trace {}] {name}: {} records in {:.0?} ({})",
                        if hit { "hit" } else { "capture" },
                        needed,
                        t0.elapsed(),
                        path.display()
                    );
                }
                traces.insert(name, path);
            }
            Err(e) => {
                atr_telemetry::warn!("trace capture failed for {name} ({e}); running it live");
            }
        }
    }
    traces
}

fn run_point(
    core: &CoreConfig,
    program: Arc<Program>,
    point: &SimPoint,
    trace: Option<&Path>,
    fast_forward: bool,
) -> RunResult {
    let mut cfg = core.clone();
    point.tweak.apply(&mut cfg);
    let spec = RunSpec {
        scheme: point.scheme,
        rf_size: point.rf_size,
        warmup: point.warmup,
        measure: point.measure,
        collect_events: point.collect_events,
        audit: crate::config::audit_from_env(),
        telemetry: crate::config::telemetry_from_env(),
    };
    let source: Box<dyn TraceSource> = match trace
        .and_then(|path| open_replay(path, &program, spec.warmup, fast_forward, point))
    {
        Some(replay) => Box::new(replay),
        None => Box::new(Oracle::new(program)),
    };
    run_with_source(&cfg, source, &spec)
}

/// Opens `path` for replay, optionally fast-forwarded to the warmup
/// target. Any failure degrades gracefully: a failed fast-forward may
/// leave the reader mid-stream, so the file is reopened for a full
/// replay; an unopenable file yields `None` (the point runs live).
fn open_replay(
    path: &Path,
    program: &Arc<Program>,
    warmup: u64,
    fast_forward: bool,
    point: &SimPoint,
) -> Option<TraceReplay> {
    let open = || match TraceReplay::open(path, program.clone()) {
        Ok(replay) => Some(replay),
        Err(e) => {
            atr_telemetry::warn!(
                "trace replay unavailable for {} ({e}); running it live",
                point.label()
            );
            None
        }
    };
    let mut replay = open()?;
    if fast_forward && warmup > 0 {
        if let Err(e) = replay.fast_forward_to(warmup) {
            atr_telemetry::warn!(
                "fast-forward to {warmup} failed for {} ({e}); replaying from 0",
                point.label()
            );
            replay = open()?;
        }
    }
    Some(replay)
}

#[cfg(test)]
mod tests {
    use super::*;
    use atr_core::ReleaseScheme;

    #[test]
    fn results_align_with_input_order() {
        let points = vec![
            SimPoint::new("505.mcf_r", ReleaseScheme::Baseline, 64, 50, 200),
            SimPoint::new("548.exchange2_r", ReleaseScheme::Baseline, 224, 50, 200),
        ];
        let serial = execute_with(&CoreConfig::default(), &points, 1);
        assert_eq!(serial.len(), 2);
        // exchange2 at 224 registers must comfortably out-run mcf at 64:
        // order inversion here would mean results got shuffled.
        assert!(serial[1].ipc > serial[0].ipc);
    }

    #[test]
    fn thread_count_is_positive() {
        assert!(thread_count() >= 1);
    }

    /// A cached pass — capture on the first point, replay everywhere —
    /// must be bit-identical to the live pass, with and without warmup
    /// fast-forward on the architectural stream (fast-forward may and
    /// does change timing, so only the no-FF pass is compared on IPC).
    #[test]
    fn trace_cached_pass_matches_live_pass() {
        let dir =
            std::env::temp_dir().join(format!("atr_executor_trace_cache_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let points = vec![
            SimPoint::new("505.mcf_r", ReleaseScheme::Baseline, 64, 600, 1_500),
            SimPoint::new("505.mcf_r", ReleaseScheme::Atr { redefine_delay: 0 }, 64, 600, 1_500),
            SimPoint::new("505.mcf_r", ReleaseScheme::Baseline, 224, 300, 1_000),
        ];
        let core = CoreConfig::default();
        let live = execute_with_cache(&core, &points, 1, None, false);
        let cached = execute_with_cache(&core, &points, 2, Some(&dir), false);
        assert_eq!(
            std::fs::read_dir(&dir).unwrap().count(),
            1,
            "three points over one program capture exactly one trace"
        );
        for (i, (a, b)) in live.iter().zip(&cached).enumerate() {
            assert_eq!(a.ipc.to_bits(), b.ipc.to_bits(), "point {i} IPC diverged under replay");
            assert_eq!(a.stats.cycles, b.stats.cycles, "point {i} cycles diverged under replay");
            assert_eq!(a.stats.retired, b.stats.retired);
            assert_eq!(a.stats.flushes, b.stats.flushes);
        }

        // Fast-forward skips detailed warmup: retired count per window
        // still matches, and the measured stream is the same
        // architectural instructions (cycles legitimately differ).
        let ff = execute_with_cache(&core, &points, 1, Some(&dir), true);
        for (i, (a, b)) in live.iter().zip(&ff).enumerate() {
            let lived = a.stats.retired;
            let ffd = b.stats.retired;
            assert!(ffd <= lived, "point {i}: FF run retired more ({ffd}) than live ({lived})");
            assert!(b.ipc > 0.0, "point {i}: FF run produced no progress");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Event collection is observation-only: the lifetime log records
    /// what the renamer does but feeds nothing back into scheduling, so
    /// timing is bit-identical with and without it. (`stats.markings`
    /// may differ — the log enables region marking under schemes that
    /// would otherwise skip it — but no timed quantity does.) This is
    /// what lets `RunMatrix::ensure` serve a non-events point from its
    /// `.with_events()` twin.
    #[test]
    fn event_collection_does_not_change_timing() {
        for scheme in [ReleaseScheme::Baseline, ReleaseScheme::Atr { redefine_delay: 0 }] {
            let plain = SimPoint::new("505.mcf_r", scheme, 64, 50, 200);
            let events = plain.clone().with_events();
            let r = execute_with(&CoreConfig::default(), &[plain, events], 1);
            assert_eq!(r[0].ipc.to_bits(), r[1].ipc.to_bits());
            assert_eq!(r[0].stats.cycles, r[1].stats.cycles);
            assert_eq!(r[0].stats.retired, r[1].stats.retired);
            assert_eq!(r[0].stats.flushes, r[1].stats.flushes);
            assert_eq!(r[0].avg_int_occupancy.to_bits(), r[1].avg_int_occupancy.to_bits());
            assert_eq!(r[0].avg_fp_occupancy.to_bits(), r[1].avg_fp_occupancy.to_bits());
            assert!(r[0].lifetimes.is_empty() && !r[1].lifetimes.is_empty());
        }
    }
}
