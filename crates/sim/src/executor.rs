//! Fault-tolerant parallel execution of simulation points.
//!
//! Points are independent deterministic simulations, so they can run on
//! any worker in any order; results are returned index-aligned with the
//! input slice, which keeps the output bit-identical to a serial pass.
//! Uses only `std::thread::scope` — no external dependencies.
//!
//! The primary entry point is [`execute_session`]: every runtime knob
//! comes from one resolved [`Session`] (see [`crate::session`]), and
//! each point yields a [`PointOutcome`] instead of a bare result:
//!
//! * a point that **panics** is retried a bounded number of times, then
//!   surfaced as a structured [`PointFailure`] carrying the panic
//!   payload — the other points' results survive;
//! * a point naming an **unknown profile** fails the same structured
//!   way during prebuild instead of sinking the pass;
//! * with a [`crate::journal::RunJournal`] configured, completed points
//!   are appended as they finish and an interrupted pass **resumes**:
//!   journaled points are served without re-simulation, bit-identical
//!   to an uninterrupted run;
//! * a **straggler supervisor** warns when a point exceeds a
//!   budget-scaled soft deadline (it never kills the point — the
//!   simulator is deterministic, slow points are just slow).
//!
//! [`execute`], [`execute_with`], and [`execute_with_cache`] remain as
//! thin shims that resolve a [`Session`] (from the environment) and
//! panic on the first failure — the pre-fault-tolerance contract their
//! callers still expect.

use crate::journal::RunJournal;
use crate::matrix::SimPoint;
use crate::runner::{run_with_source, RunResult, RunSpec};
use crate::session::Session;
use atr_pipeline::CoreConfig;
use atr_trace::{TraceCache, TraceReplay};
use atr_workload::spec::all_profiles;
use atr_workload::{Oracle, Program, TraceSource};
use std::collections::{HashMap, HashSet};
use std::panic::AssertUnwindSafe;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Checkpoint frames are laid down every this many records in cached
/// captures (see `atr_trace::writer::DEFAULT_CHECKPOINT_INTERVAL`).
const CHECKPOINT_INTERVAL: u64 = atr_trace::writer::DEFAULT_CHECKPOINT_INTERVAL;

/// Fixed part of the straggler soft deadline.
const STRAGGLER_BASE: Duration = Duration::from_secs(10);

/// Budget-scaled part of the straggler soft deadline: the tiny-budget
/// CI pass simulates well under 1 µs/instruction, so 50 µs/instruction
/// flags a point only when it is pathologically slower than its peers.
const STRAGGLER_MICROS_PER_INST: u64 = 50;

/// How often the straggler supervisor scans the in-flight set.
const STRAGGLER_SCAN: Duration = Duration::from_millis(200);

/// Extra records captured beyond the largest `warmup + measure` of the
/// points sharing a program: fetch runs ahead of retirement by up to
/// the in-flight window (ROB plus frontend buffering), so the trace
/// must extend past the last *retired* index or replay would exhaust
/// it mid-run.
fn capture_slack(core: &CoreConfig) -> u64 {
    2 * core.rob_size as u64 + 8192
}

/// The worker count with no environment consulted: the machine's
/// available parallelism. [`Session::default`] uses this.
#[must_use]
pub fn thread_count_default() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// The worker count: `ATR_SIM_THREADS` if set and valid, otherwise the
/// machine's available parallelism.
#[must_use]
pub fn thread_count() -> usize {
    if let Ok(raw) = std::env::var("ATR_SIM_THREADS") {
        match raw.trim().parse::<usize>() {
            Ok(n) if n > 0 => return n,
            _ => atr_telemetry::warn!(
                "ignoring malformed ATR_SIM_THREADS={raw:?} (expected a positive count)"
            ),
        }
    }
    thread_count_default()
}

/// Why a point produced no result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// The point names a profile `atr_workload::spec` does not know.
    UnknownProfile,
    /// Every attempt at the point panicked.
    Panic,
}

/// A structured per-point failure: the pass continues, the caller
/// decides (the matrix records it, reports degrade, shims panic).
#[derive(Debug, Clone)]
pub struct PointFailure {
    /// [`SimPoint::label`] of the failed point.
    pub label: String,
    /// What went wrong.
    pub kind: FailureKind,
    /// The panic payload (or prebuild diagnostic) of the last attempt.
    pub payload: String,
    /// Attempts made (0 for prebuild failures that never ran).
    pub attempts: u32,
}

impl std::fmt::Display for PointFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.kind {
            FailureKind::UnknownProfile => write!(f, "{}: {}", self.label, self.payload),
            FailureKind::Panic => {
                write!(
                    f,
                    "{} panicked after {} attempt(s): {}",
                    self.label, self.attempts, self.payload
                )
            }
        }
    }
}

/// One point's outcome under [`execute_session`].
pub type PointOutcome = Result<RunResult, PointFailure>;

/// Executes every point, in parallel, against the base core config,
/// with every runtime knob taken from `session` (the environment is
/// *not* consulted — resolve a session first with
/// [`Session::from_env`]). The outcome vector is index-aligned with
/// `points`; equal results are bit-identical no matter the thread
/// count, journal state, or telemetry level.
#[must_use]
pub fn execute_session(
    session: &Session,
    core: &CoreConfig,
    points: &[SimPoint],
) -> Vec<PointOutcome> {
    if points.is_empty() {
        return Vec::new();
    }
    let mut outcomes: Vec<Option<PointOutcome>> = Vec::new();
    outcomes.resize_with(points.len(), || None);

    // Generate each distinct known profile's static program once up
    // front: points overwhelmingly share profiles, and generation is
    // pure, so prebuilding changes nothing but the wall clock. A point
    // naming an unknown profile becomes a structured failure here
    // instead of a panic — one typo'd point must not sink a pass.
    let known: HashMap<&'static str, _> = all_profiles().into_iter().map(|p| (p.name, p)).collect();
    let mut programs: HashMap<&'static str, Arc<Program>> = HashMap::new();
    for point in points {
        if !programs.contains_key(point.profile) {
            if let Some(profile) = known.get(point.profile) {
                programs.insert(point.profile, profile.build());
            }
        }
    }
    let mut unknown_warned: HashSet<&'static str> = HashSet::new();
    for (idx, point) in points.iter().enumerate() {
        if !programs.contains_key(point.profile) {
            if unknown_warned.insert(point.profile) {
                atr_telemetry::warn!(
                    "unknown profile in SimPoint: {} — failing its point(s), continuing the pass",
                    point.profile
                );
            }
            outcomes[idx] = Some(Err(PointFailure {
                label: point.label(),
                kind: FailureKind::UnknownProfile,
                payload: format!("unknown profile in SimPoint: {}", point.profile),
                attempts: 0,
            }));
        }
    }

    // Resume: serve everything the journal already holds for this core
    // configuration. The "[journal] N of M" line is load-bearing — the
    // CI interrupt-resume gate greps it to prove journaled points were
    // not re-simulated.
    let mut journal: Option<RunJournal> = None;
    if let Some(dir) = &session.journal {
        match RunJournal::open(dir, core) {
            Ok(j) => journal = Some(j),
            Err(e) => atr_telemetry::warn!(
                "run journal at {} is unusable ({e}); continuing without resume",
                dir.display()
            ),
        }
    }
    if let Some(j) = &journal {
        let mut served = 0usize;
        for (idx, point) in points.iter().enumerate() {
            if outcomes[idx].is_none() {
                if let Some(result) = j.lookup(point) {
                    outcomes[idx] = Some(Ok(result.clone()));
                    served += 1;
                }
            }
        }
        atr_telemetry::info!(
            "[journal] {served} of {} points served from {}",
            points.len(),
            j.path().display()
        );
    }

    let todo: Vec<usize> = (0..points.len()).filter(|&i| outcomes[i].is_none()).collect();
    let todo_points: Vec<&SimPoint> = todo.iter().map(|&i| &points[i]).collect();
    let traces = prepare_traces(session, core, &todo_points, &programs);

    let mut walls: HashMap<usize, Duration> = HashMap::new();
    if !todo.is_empty() {
        let workers = session.threads.clamp(1, todo.len());
        let t0 = Instant::now();
        let next = AtomicUsize::new(0);
        let done = AtomicUsize::new(0);
        let journal_cell: Option<Mutex<RunJournal>> = journal.map(Mutex::new);
        // Straggler bookkeeping: point index → (start, soft deadline).
        let inflight: Mutex<HashMap<usize, (Instant, Duration)>> = Mutex::new(HashMap::new());
        let stop = (Mutex::new(false), Condvar::new());

        std::thread::scope(|scope| {
            // Supervisor: scans the in-flight set on a condvar timeout
            // (not a naked sleep loop — shutdown is immediate once the
            // workers drain, so short passes pay no scan latency).
            let supervisor = {
                let inflight = &inflight;
                let stop = &stop;
                scope.spawn(move || {
                    let (lock, cvar) = stop;
                    let mut warned: HashSet<usize> = HashSet::new();
                    let mut stopped = lock.lock().unwrap();
                    while !*stopped {
                        stopped = cvar.wait_timeout(stopped, STRAGGLER_SCAN).unwrap().0;
                        if *stopped {
                            return;
                        }
                        let now = Instant::now();
                        for (&idx, &(start, deadline)) in inflight.lock().unwrap().iter() {
                            let running = now.duration_since(start);
                            if running > deadline && warned.insert(idx) {
                                atr_telemetry::warn!(
                                    "[straggler] {} running {running:.1?}, past its soft deadline {deadline:.1?}",
                                    points[idx].label()
                                );
                            }
                        }
                    }
                })
            };

            let mut handles = Vec::with_capacity(workers);
            for _ in 0..workers {
                let next = &next;
                let done = &done;
                let todo = &todo;
                let programs = &programs;
                let traces = &traces;
                let inflight = &inflight;
                let journal_cell = &journal_cell;
                handles.push(scope.spawn(move || {
                    let mut produced: Vec<(usize, PointOutcome, Duration)> = Vec::new();
                    loop {
                        let slot = next.fetch_add(1, Ordering::Relaxed);
                        let Some(&idx) = todo.get(slot) else {
                            return produced;
                        };
                        let point = &points[idx];
                        let started = Instant::now();
                        inflight.lock().unwrap().insert(idx, (started, straggler_deadline(point)));
                        let outcome = run_point_guarded(
                            session,
                            core,
                            programs[point.profile].clone(),
                            point,
                            traces.get(point.profile).map(PathBuf::as_path),
                        );
                        inflight.lock().unwrap().remove(&idx);
                        let wall = started.elapsed();
                        if let (Some(cell), Ok(result)) = (journal_cell, &outcome) {
                            cell.lock().unwrap().append(point, result);
                        }
                        let finished = done.fetch_add(1, Ordering::Relaxed) + 1;
                        match &outcome {
                            Ok(_) if session.progress => atr_telemetry::info!(
                                "[matrix {:>4}/{:<4} {:>7.1?}] {} ({:.0?})",
                                finished,
                                todo.len(),
                                t0.elapsed(),
                                point.label(),
                                wall,
                            ),
                            Ok(_) => {}
                            Err(failure) => atr_telemetry::warn!(
                                "[matrix {:>4}/{:<4}] FAILED {failure}",
                                finished,
                                todo.len(),
                            ),
                        }
                        produced.push((idx, outcome, wall));
                    }
                }));
            }
            for handle in handles {
                // Workers cannot panic — run_point_guarded catches — so
                // a join failure here is a harness bug, not a bad point.
                for (idx, outcome, wall) in handle.join().expect("executor worker died") {
                    walls.insert(idx, wall);
                    outcomes[idx] = Some(outcome);
                }
            }
            *stop.0.lock().unwrap() = true;
            stop.1.notify_all();
            supervisor.join().expect("straggler supervisor died");
        });
    }

    let outcomes: Vec<PointOutcome> = outcomes
        .into_iter()
        .map(|o| o.expect("every point resolved by prebuild, journal, or a worker"))
        .collect();

    // One JSONL record per *freshly simulated* point, in input order —
    // stable no matter which worker ran what. Journal-served points
    // emit nothing: their observer state was not recorded (telemetry is
    // excluded from the journal by design), and an empty record would
    // be indistinguishable from a telemetry-off run.
    if session.telemetry.stats_enabled() {
        let lines: Vec<String> = outcomes
            .iter()
            .enumerate()
            .filter_map(|(idx, outcome)| match (outcome, walls.get(&idx)) {
                (Ok(result), Some(wall)) => {
                    Some(crate::telemetry::record(&points[idx], result, *wall).compact())
                }
                _ => None,
            })
            .collect();
        crate::telemetry::emit_lines(&lines);
    }

    let failed = outcomes.iter().filter(|o| o.is_err()).count();
    if failed > 0 {
        atr_telemetry::warn!(
            "[matrix] {failed} of {} point(s) failed; downstream reports degrade to the surviving set",
            points.len()
        );
    }
    outcomes
}

/// The soft deadline after which a running point is flagged as a
/// straggler: a fixed base plus a budget-scaled term, so a 10M-inst
/// full-budget point gets proportionally more headroom than a tiny CI
/// point.
fn straggler_deadline(point: &SimPoint) -> Duration {
    STRAGGLER_BASE
        + Duration::from_micros(
            (point.warmup + point.measure).saturating_mul(STRAGGLER_MICROS_PER_INST),
        )
}

/// Executes every point against the environment-resolved session,
/// panicking on any failure. The result vector is index-aligned with
/// `points`.
///
/// # Panics
///
/// Panics on the first failed point (unknown profile, exhausted panic
/// retries). Use [`execute_session`] for structured failures.
#[must_use]
pub fn execute(core: &CoreConfig, points: &[SimPoint]) -> Vec<RunResult> {
    expect_all(execute_session(&Session::from_env(), core, points))
}

/// [`execute`] with an explicit worker count (1 = serial). Exposed so
/// the determinism tests can compare serial and parallel passes. The
/// trace cache (and fast-forward switch) come from the environment;
/// [`execute_with_cache`] takes them explicitly.
///
/// # Panics
///
/// Panics on the first failed point.
#[must_use]
pub fn execute_with(core: &CoreConfig, points: &[SimPoint], threads: usize) -> Vec<RunResult> {
    expect_all(execute_session(&Session::from_env().with_threads(threads), core, points))
}

/// [`execute_with`] with an explicit trace-cache directory and
/// fast-forward switch — the cache knobs are *not* read from the
/// environment, so tests exercising the cache cannot race parallel
/// tests on env state.
///
/// When `cache_dir` is set, each distinct program among `points` is
/// captured once (sized to the largest `warmup + measure` of its points
/// plus in-flight slack) before the workers spawn, and every point
/// replays the capture instead of re-generating the stream. Replay is
/// bit-identical to live generation; any cache problem (unwritable
/// directory, corrupt file) degrades that program to live generation
/// with a warning rather than failing the pass.
///
/// # Panics
///
/// Panics on the first failed point.
#[must_use]
pub fn execute_with_cache(
    core: &CoreConfig,
    points: &[SimPoint],
    threads: usize,
    cache_dir: Option<&Path>,
    fast_forward: bool,
) -> Vec<RunResult> {
    let mut session = Session::from_env().with_threads(threads).with_trace_ff(fast_forward);
    session.trace_cache = cache_dir.map(Path::to_path_buf);
    expect_all(execute_session(&session, core, points))
}

fn expect_all(outcomes: Vec<PointOutcome>) -> Vec<RunResult> {
    outcomes
        .into_iter()
        .map(|outcome| match outcome {
            Ok(result) => result,
            Err(failure) => panic!("{failure}"),
        })
        .collect()
}

/// Captures (or finds cached) one trace per distinct program among
/// `points`, sized for the largest budget any of its points needs.
/// Distinct programs are captured concurrently on a scoped pool — on a
/// cold cache this turns the slowest serial phase of a pass into a
/// parallel one. Returns the per-profile trace paths; an empty map
/// means every point runs a live oracle.
fn prepare_traces(
    session: &Session,
    core: &CoreConfig,
    points: &[&SimPoint],
    programs: &HashMap<&'static str, Arc<Program>>,
) -> HashMap<&'static str, PathBuf> {
    let Some(dir) = &session.trace_cache else {
        return HashMap::new();
    };
    let cache = match TraceCache::new(dir) {
        Ok(c) => c,
        Err(e) => {
            atr_telemetry::warn!(
                "trace cache at {} is unusable ({e}); running every point live",
                dir.display()
            );
            return HashMap::new();
        }
    };
    let slack = capture_slack(core);
    let mut needed: HashMap<&'static str, u64> = HashMap::new();
    for point in points {
        let records = point.warmup + point.measure + slack;
        let entry = needed.entry(point.profile).or_insert(0);
        *entry = (*entry).max(records);
    }
    let jobs: Vec<(&'static str, u64)> = needed.into_iter().collect();
    if jobs.is_empty() {
        return HashMap::new();
    }
    let workers = session.threads.clamp(1, jobs.len());
    let next = AtomicUsize::new(0);
    let traces: Mutex<HashMap<&'static str, PathBuf>> = Mutex::new(HashMap::new());
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let next = &next;
            let jobs = &jobs;
            let cache = &cache;
            let traces = &traces;
            scope.spawn(move || loop {
                let Some(&(name, records)) = jobs.get(next.fetch_add(1, Ordering::Relaxed)) else {
                    return;
                };
                let t0 = Instant::now();
                match cache.ensure(&programs[name], name, CHECKPOINT_INTERVAL, records) {
                    Ok((path, hit)) => {
                        if session.progress {
                            atr_telemetry::info!(
                                "[trace {}] {name}: {} records in {:.0?} ({})",
                                if hit { "hit" } else { "capture" },
                                records,
                                t0.elapsed(),
                                path.display()
                            );
                        }
                        traces.lock().unwrap().insert(name, path);
                    }
                    Err(e) => {
                        atr_telemetry::warn!(
                            "trace capture failed for {name} ({e}); running it live"
                        );
                    }
                }
            });
        }
    });
    traces.into_inner().unwrap()
}

/// Runs one point with panic isolation and bounded retry. The closure
/// is unwind-safe in the only sense that matters here: the simulator
/// owns all its state per run and a failed attempt shares nothing with
/// the retry.
fn run_point_guarded(
    session: &Session,
    core: &CoreConfig,
    program: Arc<Program>,
    point: &SimPoint,
    trace: Option<&Path>,
) -> PointOutcome {
    let attempts = session.retries + 1;
    let mut payload = String::new();
    for attempt in 1..=attempts {
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            if let Some(needle) = &session.fault_injection {
                if point.label().contains(needle.as_str()) {
                    panic!("injected fault for {}", point.label());
                }
            }
            run_point(session, core, program.clone(), point, trace)
        }));
        match caught {
            Ok(result) => return Ok(result),
            Err(panic) => {
                payload = panic_message(panic.as_ref());
                if attempt < attempts {
                    atr_telemetry::warn!(
                        "{} panicked on attempt {attempt}/{attempts} ({payload}); retrying",
                        point.label()
                    );
                }
            }
        }
    }
    Err(PointFailure { label: point.label(), kind: FailureKind::Panic, payload, attempts })
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

fn run_point(
    session: &Session,
    core: &CoreConfig,
    program: Arc<Program>,
    point: &SimPoint,
    trace: Option<&Path>,
) -> RunResult {
    let mut cfg = core.clone();
    point.tweak.apply(&mut cfg);
    let spec = RunSpec {
        scheme: point.scheme,
        rf_size: point.rf_size,
        warmup: point.warmup,
        measure: point.measure,
        collect_events: point.collect_events,
        audit: session.audit,
        telemetry: session.telemetry,
    };
    let source: Box<dyn TraceSource> = match trace
        .and_then(|path| open_replay(path, &program, spec.warmup, session.trace_ff, point))
    {
        Some(replay) => Box::new(replay),
        None => Box::new(Oracle::new(program)),
    };
    run_with_source(&cfg, source, &spec)
}

/// Opens `path` for replay, optionally fast-forwarded to the warmup
/// target. Any failure degrades gracefully: a failed fast-forward may
/// leave the reader mid-stream, so the file is reopened for a full
/// replay; an unopenable file yields `None` (the point runs live).
fn open_replay(
    path: &Path,
    program: &Arc<Program>,
    warmup: u64,
    fast_forward: bool,
    point: &SimPoint,
) -> Option<TraceReplay> {
    let open = || match TraceReplay::open(path, program.clone()) {
        Ok(replay) => Some(replay),
        Err(e) => {
            atr_telemetry::warn!(
                "trace replay unavailable for {} ({e}); running it live",
                point.label()
            );
            None
        }
    };
    let mut replay = open()?;
    if fast_forward && warmup > 0 {
        if let Err(e) = replay.fast_forward_to(warmup) {
            atr_telemetry::warn!(
                "fast-forward to {warmup} failed for {} ({e}); replaying from 0",
                point.label()
            );
            replay = open()?;
        }
    }
    Some(replay)
}

#[cfg(test)]
mod tests {
    use super::*;
    use atr_core::ReleaseScheme;

    #[test]
    fn results_align_with_input_order() {
        let points = vec![
            SimPoint::new("505.mcf_r", ReleaseScheme::Baseline, 64, 50, 200),
            SimPoint::new("548.exchange2_r", ReleaseScheme::Baseline, 224, 50, 200),
        ];
        let serial = execute_with(&CoreConfig::default(), &points, 1);
        assert_eq!(serial.len(), 2);
        // exchange2 at 224 registers must comfortably out-run mcf at 64:
        // order inversion here would mean results got shuffled.
        assert!(serial[1].ipc > serial[0].ipc);
    }

    #[test]
    fn thread_count_is_positive() {
        assert!(thread_count() >= 1);
        assert!(thread_count_default() >= 1);
    }

    /// An unknown profile becomes a structured failure; its siblings
    /// still simulate. Regression for the old prebuild panic.
    #[test]
    fn unknown_profile_fails_its_point_without_sinking_the_pass() {
        let points = vec![
            SimPoint::new("505.mcf_r", ReleaseScheme::Baseline, 64, 50, 200),
            SimPoint::new("999.not_a_profile", ReleaseScheme::Baseline, 64, 50, 200),
        ];
        let session = Session::default().quiet().with_threads(1);
        let outcomes = execute_session(&session, &CoreConfig::default(), &points);
        assert!(outcomes[0].is_ok(), "the healthy sibling must survive");
        let failure = outcomes[1].as_ref().expect_err("unknown profile must fail");
        assert_eq!(failure.kind, FailureKind::UnknownProfile);
        assert_eq!(failure.attempts, 0, "prebuild failures never run");
        assert!(failure.payload.contains("999.not_a_profile"), "{}", failure.payload);
    }

    /// A cached pass — capture on the first point, replay everywhere —
    /// must be bit-identical to the live pass, with and without warmup
    /// fast-forward on the architectural stream (fast-forward may and
    /// does change timing, so only the no-FF pass is compared on IPC).
    #[test]
    fn trace_cached_pass_matches_live_pass() {
        let dir =
            std::env::temp_dir().join(format!("atr_executor_trace_cache_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let points = vec![
            SimPoint::new("505.mcf_r", ReleaseScheme::Baseline, 64, 600, 1_500),
            SimPoint::new("505.mcf_r", ReleaseScheme::Atr { redefine_delay: 0 }, 64, 600, 1_500),
            SimPoint::new("505.mcf_r", ReleaseScheme::Baseline, 224, 300, 1_000),
        ];
        let core = CoreConfig::default();
        let live = execute_with_cache(&core, &points, 1, None, false);
        let cached = execute_with_cache(&core, &points, 2, Some(&dir), false);
        assert_eq!(
            std::fs::read_dir(&dir).unwrap().count(),
            1,
            "three points over one program capture exactly one trace"
        );
        for (i, (a, b)) in live.iter().zip(&cached).enumerate() {
            assert_eq!(a.ipc.to_bits(), b.ipc.to_bits(), "point {i} IPC diverged under replay");
            assert_eq!(a.stats.cycles, b.stats.cycles, "point {i} cycles diverged under replay");
            assert_eq!(a.stats.retired, b.stats.retired);
            assert_eq!(a.stats.flushes, b.stats.flushes);
        }

        // Fast-forward skips detailed warmup: retired count per window
        // still matches, and the measured stream is the same
        // architectural instructions (cycles legitimately differ).
        let ff = execute_with_cache(&core, &points, 1, Some(&dir), true);
        for (i, (a, b)) in live.iter().zip(&ff).enumerate() {
            let lived = a.stats.retired;
            let ffd = b.stats.retired;
            assert!(ffd <= lived, "point {i}: FF run retired more ({ffd}) than live ({lived})");
            assert!(b.ipc > 0.0, "point {i}: FF run produced no progress");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Event collection is observation-only: the lifetime log records
    /// what the renamer does but feeds nothing back into scheduling, so
    /// timing is bit-identical with and without it. (`stats.markings`
    /// may differ — the log enables region marking under schemes that
    /// would otherwise skip it — but no timed quantity does.) This is
    /// what lets `RunMatrix::ensure` serve a non-events point from its
    /// `.with_events()` twin.
    #[test]
    fn event_collection_does_not_change_timing() {
        for scheme in [ReleaseScheme::Baseline, ReleaseScheme::Atr { redefine_delay: 0 }] {
            let plain = SimPoint::new("505.mcf_r", scheme, 64, 50, 200);
            let events = plain.clone().with_events();
            let r = execute_with(&CoreConfig::default(), &[plain, events], 1);
            assert_eq!(r[0].ipc.to_bits(), r[1].ipc.to_bits());
            assert_eq!(r[0].stats.cycles, r[1].stats.cycles);
            assert_eq!(r[0].stats.retired, r[1].stats.retired);
            assert_eq!(r[0].stats.flushes, r[1].stats.flushes);
            assert_eq!(r[0].avg_int_occupancy.to_bits(), r[1].avg_int_occupancy.to_bits());
            assert_eq!(r[0].avg_fp_occupancy.to_bits(), r[1].avg_fp_occupancy.to_bits());
            assert!(r[0].lifetimes.is_empty() && !r[1].lifetimes.is_empty());
        }
    }
}
