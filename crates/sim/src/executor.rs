//! Parallel execution of simulation points over a scoped worker pool.
//!
//! Points are independent deterministic simulations, so they can run on
//! any worker in any order; results are returned index-aligned with the
//! input slice, which keeps the output bit-identical to a serial pass.
//! Uses only `std::thread::scope` — no external dependencies.
//!
//! Environment knobs:
//!
//! * `ATR_SIM_THREADS` — worker count (default: available cores).
//! * `ATR_SIM_PROGRESS=0` — silence the per-point progress lines.
//! * `ATR_TELEMETRY=stats|trace` — emit one JSONL telemetry record per
//!   point (see [`crate::telemetry`]), to stdout or `ATR_TELEMETRY_OUT`.

use crate::matrix::SimPoint;
use crate::runner::{run, RunResult, RunSpec};
use atr_pipeline::CoreConfig;
use atr_workload::spec::all_profiles;
use atr_workload::Program;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The worker count: `ATR_SIM_THREADS` if set and valid, otherwise the
/// machine's available parallelism.
#[must_use]
pub fn thread_count() -> usize {
    if let Ok(raw) = std::env::var("ATR_SIM_THREADS") {
        match raw.trim().parse::<usize>() {
            Ok(n) if n > 0 => return n,
            _ => atr_telemetry::warn!(
                "ignoring malformed ATR_SIM_THREADS={raw:?} (expected a positive count)"
            ),
        }
    }
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

fn progress_enabled() -> bool {
    std::env::var("ATR_SIM_PROGRESS").map_or(true, |v| v != "0")
}

/// Executes every point, in parallel, against the base core config.
/// The result vector is index-aligned with `points`.
///
/// # Panics
///
/// Panics if a point names a profile `atr_workload::spec` does not know.
#[must_use]
pub fn execute(core: &CoreConfig, points: &[SimPoint]) -> Vec<RunResult> {
    execute_with(core, points, thread_count())
}

/// [`execute`] with an explicit worker count (1 = serial). Exposed so
/// the determinism tests can compare serial and parallel passes.
#[must_use]
pub fn execute_with(core: &CoreConfig, points: &[SimPoint], threads: usize) -> Vec<RunResult> {
    if points.is_empty() {
        return Vec::new();
    }
    // Generate each distinct profile's static program once up front:
    // points overwhelmingly share profiles, and generation is pure, so
    // prebuilding changes nothing but the wall clock.
    let known: HashMap<&'static str, _> = all_profiles().into_iter().map(|p| (p.name, p)).collect();
    let mut programs: HashMap<&'static str, Arc<Program>> = HashMap::new();
    for point in points {
        if !programs.contains_key(point.profile) {
            let profile = known
                .get(point.profile)
                .unwrap_or_else(|| panic!("unknown profile in SimPoint: {}", point.profile));
            programs.insert(point.profile, profile.build());
        }
    }
    let workers = threads.clamp(1, points.len());
    let progress = progress_enabled();
    let telemetry = crate::config::telemetry_from_env();
    let t0 = Instant::now();
    let next = AtomicUsize::new(0);
    let done = AtomicUsize::new(0);

    let mut results: Vec<Option<(RunResult, Duration)>> = Vec::new();
    results.resize_with(points.len(), || None);

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let next = &next;
            let done = &done;
            let programs = &programs;
            handles.push(scope.spawn(move || {
                let mut produced: Vec<(usize, RunResult, Duration)> = Vec::new();
                loop {
                    let idx = next.fetch_add(1, Ordering::Relaxed);
                    if idx >= points.len() {
                        return produced;
                    }
                    let point = &points[idx];
                    let started = Instant::now();
                    let result = run_point(core, programs[point.profile].clone(), point);
                    let wall = started.elapsed();
                    let finished = done.fetch_add(1, Ordering::Relaxed) + 1;
                    if progress {
                        atr_telemetry::info!(
                            "[matrix {:>4}/{:<4} {:>7.1?}] {} ({:.0?})",
                            finished,
                            points.len(),
                            t0.elapsed(),
                            point.label(),
                            wall,
                        );
                    }
                    produced.push((idx, result, wall));
                }
            }));
        }
        for handle in handles {
            for (idx, result, wall) in handle.join().expect("simulation worker panicked") {
                results[idx] = Some((result, wall));
            }
        }
    });

    let results: Vec<(RunResult, Duration)> = results
        .into_iter()
        .map(|r| r.expect("every index claimed by exactly one worker"))
        .collect();

    // One JSONL record per point, in input order — stable no matter
    // which worker ran what.
    if telemetry.stats_enabled() {
        let lines: Vec<String> = points
            .iter()
            .zip(&results)
            .map(|(point, (result, wall))| crate::telemetry::record(point, result, *wall).compact())
            .collect();
        crate::telemetry::emit_lines(&lines);
    }

    results.into_iter().map(|(r, _)| r).collect()
}

fn run_point(core: &CoreConfig, program: Arc<Program>, point: &SimPoint) -> RunResult {
    let mut cfg = core.clone();
    point.tweak.apply(&mut cfg);
    let spec = RunSpec {
        scheme: point.scheme,
        rf_size: point.rf_size,
        warmup: point.warmup,
        measure: point.measure,
        collect_events: point.collect_events,
        audit: crate::config::audit_from_env(),
        telemetry: crate::config::telemetry_from_env(),
    };
    run(&cfg, program, &spec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use atr_core::ReleaseScheme;

    #[test]
    fn results_align_with_input_order() {
        let points = vec![
            SimPoint::new("505.mcf_r", ReleaseScheme::Baseline, 64, 50, 200),
            SimPoint::new("548.exchange2_r", ReleaseScheme::Baseline, 224, 50, 200),
        ];
        let serial = execute_with(&CoreConfig::default(), &points, 1);
        assert_eq!(serial.len(), 2);
        // exchange2 at 224 registers must comfortably out-run mcf at 64:
        // order inversion here would mean results got shuffled.
        assert!(serial[1].ipc > serial[0].ipc);
    }

    #[test]
    fn thread_count_is_positive() {
        assert!(thread_count() >= 1);
    }

    /// Event collection is observation-only: the lifetime log records
    /// what the renamer does but feeds nothing back into scheduling, so
    /// timing is bit-identical with and without it. (`stats.markings`
    /// may differ — the log enables region marking under schemes that
    /// would otherwise skip it — but no timed quantity does.) This is
    /// what lets `RunMatrix::ensure` serve a non-events point from its
    /// `.with_events()` twin.
    #[test]
    fn event_collection_does_not_change_timing() {
        for scheme in [ReleaseScheme::Baseline, ReleaseScheme::Atr { redefine_delay: 0 }] {
            let plain = SimPoint::new("505.mcf_r", scheme, 64, 50, 200);
            let events = plain.clone().with_events();
            let r = execute_with(&CoreConfig::default(), &[plain, events], 1);
            assert_eq!(r[0].ipc.to_bits(), r[1].ipc.to_bits());
            assert_eq!(r[0].stats.cycles, r[1].stats.cycles);
            assert_eq!(r[0].stats.retired, r[1].stats.retired);
            assert_eq!(r[0].stats.flushes, r[1].stats.flushes);
            assert_eq!(r[0].avg_int_occupancy.to_bits(), r[1].avg_int_occupancy.to_bits());
            assert_eq!(r[0].avg_fp_occupancy.to_bits(), r[1].avg_fp_occupancy.to_bits());
            assert!(r[0].lifetimes.is_empty() && !r[1].lifetimes.is_empty());
        }
    }
}
