//! Structured run telemetry: one JSON line per simulated point.
//!
//! When `ATR_TELEMETRY` is at `stats` or above, the executor emits one
//! self-describing record per [`crate::matrix::SimPoint`] it ran: the
//! full configuration key, wall-clock cost, simulation throughput, the
//! CPI stack, and the histogram summaries. Records go to stdout by
//! default (one compact [`atr_json::Json`] line each — greppable,
//! `jq`-able, safely interleaved with nothing because all human
//! diagnostics go to stderr via `atr-telemetry`'s logger), or are
//! appended to `ATR_TELEMETRY_OUT` when that points at a file.
//!
//! [`validate_record`] is the other half of the contract: CI parses
//! every emitted line back and checks the schema, so the record format
//! cannot silently rot.

use crate::matrix::SimPoint;
use crate::runner::RunResult;
use atr_json::Json;
use std::io::Write as _;
use std::time::Duration;

/// Schema tag carried by every record (bump on incompatible changes).
pub const RECORD_SCHEMA: &str = "atr-run-telemetry-v1";

/// Builds the JSONL record for one executed point.
#[must_use]
pub fn record(point: &SimPoint, result: &RunResult, wall: Duration) -> Json {
    let wall_s = wall.as_secs_f64();
    let retired = result.stats.retired;
    #[allow(clippy::cast_precision_loss)]
    let sim_mips = if wall_s > 0.0 { retired as f64 / wall_s / 1.0e6 } else { 0.0 };
    let mut fields: Vec<(String, Json)> = vec![
        ("schema".to_owned(), Json::Str(RECORD_SCHEMA.to_owned())),
        ("label".to_owned(), Json::Str(point.label())),
        ("profile".to_owned(), Json::Str(point.profile.to_owned())),
        ("scheme".to_owned(), Json::Str(point.scheme.label().to_owned())),
        ("rf_size".to_owned(), Json::Int(i64::try_from(point.rf_size).unwrap_or(i64::MAX))),
        ("warmup".to_owned(), Json::Int(i64::try_from(point.warmup).unwrap_or(i64::MAX))),
        ("measure".to_owned(), Json::Int(i64::try_from(point.measure).unwrap_or(i64::MAX))),
        ("wall_s".to_owned(), Json::Num(wall_s)),
        ("sim_mips".to_owned(), Json::Num(sim_mips)),
        ("ipc".to_owned(), Json::Num(result.ipc)),
        ("cycles".to_owned(), Json::Int(i64::try_from(result.stats.cycles).unwrap_or(i64::MAX))),
        ("retired".to_owned(), Json::Int(i64::try_from(retired).unwrap_or(i64::MAX))),
    ];
    fields.push(("telemetry".to_owned(), result.telemetry.to_json()));
    Json::Obj(fields)
}

/// Checks one emitted line against the record schema: it must parse,
/// carry the current schema tag, have every required scalar with the
/// right type, and hold a CPI stack whose buckets sum to
/// `width × cycles`.
///
/// # Errors
///
/// Returns a description of the first schema violation.
pub fn validate_record(line: &str) -> Result<(), String> {
    let j = Json::parse(line).map_err(|e| format!("unparseable record: {e}"))?;
    match j.get("schema").and_then(Json::as_str) {
        Some(RECORD_SCHEMA) => {}
        Some(other) => return Err(format!("unknown schema tag {other:?}")),
        None => return Err("missing schema tag".to_owned()),
    }
    for key in ["label", "profile", "scheme"] {
        if j.get(key).and_then(Json::as_str).is_none() {
            return Err(format!("missing string field {key:?}"));
        }
    }
    for key in ["rf_size", "warmup", "measure", "wall_s", "sim_mips", "ipc", "cycles", "retired"] {
        if j.get(key).and_then(Json::as_f64).is_none() {
            return Err(format!("missing numeric field {key:?}"));
        }
    }
    let telemetry = j.get("telemetry").ok_or("missing telemetry object")?;
    telemetry.get("histograms").ok_or("missing telemetry.histograms")?;
    let cpi = telemetry.get("cpi_stack").ok_or("missing telemetry.cpi_stack")?;
    let num = |key: &str| {
        cpi.get(key)
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("missing cpi_stack field {key:?}"))
    };
    let width = num("width")?;
    let cycles = num("cycles")?;
    let mut total = 0.0;
    for bucket in atr_telemetry::CpiBucket::ALL {
        total += num(bucket.label())?;
    }
    if (total - width * cycles).abs() > 0.5 {
        return Err(format!("CPI slots sum to {total} but width x cycles = {}", width * cycles));
    }
    Ok(())
}

/// Where records go: the `ATR_TELEMETRY_OUT` file (append, created on
/// demand) or stdout when unset.
///
/// Appending keeps one experiment binary's multiple executor passes in
/// a single file; a sweep script truncates it up front if it wants a
/// per-run file.
pub fn emit_lines(lines: &[String]) {
    if lines.is_empty() {
        return;
    }
    match std::env::var_os("ATR_TELEMETRY_OUT") {
        Some(path) => {
            let appended =
                std::fs::OpenOptions::new().create(true).append(true).open(&path).and_then(
                    |mut f| {
                        for line in lines {
                            writeln!(f, "{line}")?;
                        }
                        f.flush()
                    },
                );
            if let Err(e) = appended {
                atr_telemetry::warn!(
                    "could not append telemetry records to {}: {e}",
                    path.to_string_lossy()
                );
            }
        }
        None => {
            let stdout = std::io::stdout();
            let mut out = stdout.lock();
            for line in lines {
                let _ = writeln!(out, "{line}");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{run, RunSpec};
    use atr_core::ReleaseScheme;
    use atr_pipeline::CoreConfig;
    use atr_telemetry::{TelemetryConfig, TelemetryLevel};
    use atr_workload::ProfileParams;

    fn telemetry_result() -> RunResult {
        let spec = RunSpec {
            scheme: ReleaseScheme::Atr { redefine_delay: 0 },
            rf_size: 96,
            warmup: 1_000,
            measure: 5_000,
            collect_events: false,
            audit: false,
            telemetry: TelemetryConfig {
                level: TelemetryLevel::Stats,
                ..TelemetryConfig::default()
            },
        };
        run(&CoreConfig::default(), ProfileParams::default().build(), &spec)
    }

    #[test]
    fn emitted_record_passes_its_own_validator() {
        let result = telemetry_result();
        let point =
            SimPoint::new("505.mcf_r", ReleaseScheme::Atr { redefine_delay: 0 }, 96, 1_000, 5_000);
        let line = record(&point, &result, Duration::from_millis(125)).compact();
        assert!(!line.contains('\n'));
        validate_record(&line).unwrap();
        let j = Json::parse(&line).unwrap();
        assert!(j.get("sim_mips").and_then(Json::as_f64).unwrap() > 0.0);
        assert_eq!(j.get("profile").and_then(Json::as_str), Some("505.mcf_r"));
        let hists = j.get("telemetry").unwrap().get("histograms").unwrap();
        assert!(hists.get("reg_lifetime").is_some());
        assert!(hists.get("rob_occupancy").is_some());
    }

    #[test]
    fn validator_rejects_broken_records() {
        assert!(validate_record("not json").is_err());
        assert!(validate_record("{}").unwrap_err().contains("schema"));
        let tagged = format!(r#"{{"schema":"{RECORD_SCHEMA}"}}"#);
        assert!(validate_record(&tagged).unwrap_err().contains("label"));

        // A record whose CPI slots do not sum to width x cycles.
        let result = telemetry_result();
        let point = SimPoint::new("505.mcf_r", ReleaseScheme::Baseline, 96, 1_000, 5_000);
        let good = record(&point, &result, Duration::from_millis(10)).compact();
        validate_record(&good).unwrap();
        let broken = good.replacen("\"retiring\":", "\"retiring\":9", 1);
        assert!(validate_record(&broken).unwrap_err().contains("CPI slots"));
    }
}
