//! The measurement runner: warmup + measured window over one workload.

use atr_core::{RegLifetime, ReleaseScheme};
use atr_pipeline::{CoreConfig, CoreStats, OooCore};
use atr_workload::{Oracle, Program, SpecProfile};
use std::sync::Arc;

/// One run's parameters.
#[derive(Debug, Clone)]
pub struct RunSpec {
    /// Release scheme under test.
    pub scheme: ReleaseScheme,
    /// Physical register file size (applied to both classes, like the
    /// paper's sweeps).
    pub rf_size: usize,
    /// Warmup instructions (not measured).
    pub warmup: u64,
    /// Measured instructions.
    pub measure: u64,
    /// Collect the per-allocation lifetime log (analysis figures).
    pub collect_events: bool,
    /// Attach the cycle-level invariant auditor ([`atr_core::audit`]).
    /// Purely a checking knob: audited runs produce bit-identical
    /// results, they just panic on the first broken release invariant.
    pub audit: bool,
}

impl RunSpec {
    /// A spec with the environment-controlled budget and audit switch.
    #[must_use]
    pub fn new(scheme: ReleaseScheme, rf_size: usize) -> Self {
        let (warmup, measure) = crate::config::budget_from_env();
        let audit = crate::config::audit_from_env();
        RunSpec { scheme, rf_size, warmup, measure, collect_events: false, audit }
    }

    /// Enables lifetime-event collection.
    #[must_use]
    pub fn with_events(mut self) -> Self {
        self.collect_events = true;
        self
    }
}

/// Result of one measured run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// IPC over the measured window (warmup excluded).
    pub ipc: f64,
    /// Mean allocated integer registers per cycle over the window.
    pub avg_int_occupancy: f64,
    /// Mean allocated FP registers per cycle over the window.
    pub avg_fp_occupancy: f64,
    /// Cumulative whole-run statistics.
    pub stats: CoreStats,
    /// Lifetime records (empty unless requested).
    pub lifetimes: Vec<RegLifetime>,
}

/// Runs `program` under `spec` on top of `base` (everything except
/// scheme/RF size/event collection is taken from `base`).
#[must_use]
pub fn run(base: &CoreConfig, program: Arc<Program>, spec: &RunSpec) -> RunResult {
    let mut cfg = base.clone().with_rf_size(spec.rf_size).with_scheme(spec.scheme);
    cfg.rename.collect_events = spec.collect_events;
    cfg.rename.audit = spec.audit;
    let mut core = OooCore::new(cfg, Oracle::new(program));
    let s0 = if spec.warmup > 0 { core.run(spec.warmup) } else { core.snapshot_stats() };
    let s1 = core.run(spec.measure);
    let cycles = (s1.cycles - s0.cycles).max(1);
    let ipc = (s1.retired - s0.retired) as f64 / cycles as f64;
    let avg_int = (s1.int_prf_occupancy_sum - s0.int_prf_occupancy_sum) as f64 / cycles as f64;
    let avg_fp = (s1.fp_prf_occupancy_sum - s0.fp_prf_occupancy_sum) as f64 / cycles as f64;
    RunResult {
        ipc,
        avg_int_occupancy: avg_int,
        avg_fp_occupancy: avg_fp,
        stats: s1,
        lifetimes: core.lifetime_log().to_vec(),
    }
}

/// Convenience: run a named SPEC profile.
#[must_use]
pub fn run_profile(base: &CoreConfig, profile: &SpecProfile, spec: &RunSpec) -> RunResult {
    run(base, profile.build(), spec)
}

/// Geometric mean of positive values (the paper's average speedups).
///
/// An empty input yields `1.0` — the neutral speedup — rather than the
/// `0/0 → NaN`-prone path a fold would produce, so aggregating an empty
/// benchmark subset cannot poison a downstream average.
#[must_use]
pub fn geomean(values: impl IntoIterator<Item = f64>) -> f64 {
    let mut log_sum = 0.0;
    let mut n = 0usize;
    for v in values {
        debug_assert!(v > 0.0, "geomean of a non-positive value");
        log_sum += v.ln();
        n += 1;
    }
    if n == 0 {
        1.0
    } else {
        (log_sum / n as f64).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atr_workload::ProfileParams;

    fn quick_spec(scheme: ReleaseScheme, rf: usize) -> RunSpec {
        RunSpec {
            scheme,
            rf_size: rf,
            warmup: 2_000,
            measure: 10_000,
            collect_events: false,
            audit: false,
        }
    }

    #[test]
    fn measured_window_excludes_warmup() {
        let program = ProfileParams::default().build();
        let r = run(&CoreConfig::default(), program, &quick_spec(ReleaseScheme::Baseline, 128));
        assert!(r.ipc > 0.05, "ipc {}", r.ipc);
        assert!(r.stats.retired >= 12_000);
        assert!(r.avg_int_occupancy > 16.0, "occupancy {}", r.avg_int_occupancy);
    }

    #[test]
    fn runs_are_deterministic() {
        let program = ProfileParams::default().build();
        let spec = quick_spec(ReleaseScheme::Atr { redefine_delay: 0 }, 96);
        let a = run(&CoreConfig::default(), program.clone(), &spec);
        let b = run(&CoreConfig::default(), program, &spec);
        assert_eq!(a.ipc, b.ipc);
        assert_eq!(a.stats.flushes, b.stats.flushes);
    }

    #[test]
    fn events_are_collected_on_request() {
        let program = ProfileParams::default().build();
        let spec = quick_spec(ReleaseScheme::Baseline, 128).with_events();
        let mut spec = spec;
        spec.measure = 5_000;
        let r = run(&CoreConfig::default(), program, &spec);
        assert!(!r.lifetimes.is_empty());
    }

    #[test]
    fn geomean_basics() {
        assert!((geomean([2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!((geomean([3.0]) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn geomean_of_empty_input_is_neutral() {
        let empty = geomean(std::iter::empty());
        assert_eq!(empty, 1.0, "empty geomean must be the neutral speedup");
        assert!(empty.is_finite());
    }
}
