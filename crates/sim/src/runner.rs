//! The measurement runner: warmup + measured window over one workload.

use atr_core::{RegLifetime, ReleaseKind, ReleaseScheme};
use atr_pipeline::telemetry::hist_names;
use atr_pipeline::{CoreConfig, CoreStats, OooCore};
use atr_telemetry::{Log2Hist, RunTelemetry, TelemetryConfig};
use atr_workload::{Oracle, Program, SpecProfile, TraceSource};
use std::sync::Arc;

/// One run's parameters.
#[derive(Debug, Clone)]
pub struct RunSpec {
    /// Release scheme under test.
    pub scheme: ReleaseScheme,
    /// Physical register file size (applied to both classes, like the
    /// paper's sweeps).
    pub rf_size: usize,
    /// Warmup instructions (not measured).
    pub warmup: u64,
    /// Measured instructions.
    pub measure: u64,
    /// Collect the per-allocation lifetime log (analysis figures).
    pub collect_events: bool,
    /// Attach the cycle-level invariant auditor ([`atr_core::audit`]).
    /// Purely a checking knob: audited runs produce bit-identical
    /// results, they just panic on the first broken release invariant.
    pub audit: bool,
    /// Observer configuration (CPI stack, histograms, trace). Like
    /// `audit`, pure observation: results are bit-identical at every
    /// level, so this is excluded from memoization keys.
    pub telemetry: TelemetryConfig,
}

impl RunSpec {
    /// A spec with the environment-controlled budget, audit switch, and
    /// telemetry level — sugar for `for_session(&Session::from_env(), …)`.
    #[must_use]
    pub fn new(scheme: ReleaseScheme, rf_size: usize) -> Self {
        RunSpec::for_session(&crate::session::Session::from_env(), scheme, rf_size)
    }

    /// A spec taking its audit switch and telemetry level from a
    /// resolved [`crate::session::Session`] (budget still from
    /// `ATR_SIM_WARMUP`/`ATR_SIM_INSTS` — the budget is part of the
    /// *measurement*, not the session's serving knobs).
    #[must_use]
    pub fn for_session(
        session: &crate::session::Session,
        scheme: ReleaseScheme,
        rf_size: usize,
    ) -> Self {
        let (warmup, measure) = crate::config::budget_from_env();
        RunSpec {
            scheme,
            rf_size,
            warmup,
            measure,
            collect_events: false,
            audit: session.audit,
            telemetry: session.telemetry,
        }
    }

    /// Enables lifetime-event collection.
    #[must_use]
    pub fn with_events(mut self) -> Self {
        self.collect_events = true;
        self
    }
}

/// Result of one measured run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// IPC over the measured window (warmup excluded).
    pub ipc: f64,
    /// Mean allocated integer registers per cycle over the window.
    pub avg_int_occupancy: f64,
    /// Mean allocated FP registers per cycle over the window.
    pub avg_fp_occupancy: f64,
    /// Cumulative whole-run statistics.
    pub stats: CoreStats,
    /// Lifetime records (empty unless requested).
    pub lifetimes: Vec<RegLifetime>,
    /// What the observer recorded (empty when `ATR_TELEMETRY=off`).
    pub telemetry: RunTelemetry,
}

/// Runs `program` under `spec` on top of `base` (everything except
/// scheme/RF size/event collection is taken from `base`), generating
/// the stream with a live [`Oracle`].
#[must_use]
pub fn run(base: &CoreConfig, program: Arc<Program>, spec: &RunSpec) -> RunResult {
    run_with_source(base, Box::new(Oracle::new(program)), spec)
}

/// [`run`] over an arbitrary stream source — a live [`Oracle`] or an
/// `atr-trace` replay. A source that starts mid-stream (a
/// fast-forwarded replay) has its start index credited against the
/// warmup budget: the pipeline only streams the residual
/// `warmup - start_index()` instructions before the measured window, so
/// the window covers the same architectural instructions either way.
#[must_use]
pub fn run_with_source(
    base: &CoreConfig,
    source: Box<dyn TraceSource>,
    spec: &RunSpec,
) -> RunResult {
    let mut cfg = base.clone().with_rf_size(spec.rf_size).with_scheme(spec.scheme);
    // Stats-level telemetry derives the lifetime/claim histograms from
    // the lifetime log, so it forces collection on. Collection is
    // observation-only (pinned by
    // `executor::tests::event_collection_does_not_change_timing`), so
    // the forced log cannot perturb the timed result.
    cfg.rename.collect_events = spec.collect_events || spec.telemetry.stats_enabled();
    cfg.rename.audit = spec.audit;
    cfg.telemetry = spec.telemetry;
    let residual_warmup = spec.warmup.saturating_sub(source.start_index());
    let mut core = OooCore::with_source(cfg, source);
    let s0 = if residual_warmup > 0 { core.run(residual_warmup) } else { core.snapshot_stats() };
    let s1 = core.run(spec.measure);
    let cycles = (s1.cycles - s0.cycles).max(1);
    let ipc = (s1.retired - s0.retired) as f64 / cycles as f64;
    let avg_int = (s1.int_prf_occupancy_sum - s0.int_prf_occupancy_sum) as f64 / cycles as f64;
    let avg_fp = (s1.fp_prf_occupancy_sum - s0.fp_prf_occupancy_sum) as f64 / cycles as f64;
    let telemetry = collect_telemetry(&mut core);
    RunResult {
        ipc,
        avg_int_occupancy: avg_int,
        avg_fp_occupancy: avg_fp,
        stats: s1,
        // Only the *requested* log is surfaced: a telemetry-forced log
        // stays private so results stay bit-identical to an off run.
        lifetimes: if spec.collect_events { core.lifetime_log().to_vec() } else { Vec::new() },
        telemetry,
    }
}

/// Detaches the core's observer and folds it — plus the histograms
/// derived from the lifetime log — into a [`RunTelemetry`].
fn collect_telemetry(core: &mut OooCore) -> RunTelemetry {
    let mut out = RunTelemetry::default();
    let Some(t) = core.take_telemetry() else {
        return out;
    };
    let t = *t;
    out.cpi = Some(t.cpi);
    out.hists = vec![
        (hist_names::ROB_OCCUPANCY.to_owned(), t.rob_occupancy),
        (hist_names::INT_PRF_OCCUPANCY.to_owned(), t.int_prf_occupancy),
        (hist_names::FP_PRF_OCCUPANCY.to_owned(), t.fp_prf_occupancy),
        (hist_names::FLUSH_WALK_LEN.to_owned(), t.flush_walk_len),
        (hist_names::BRANCH_RESOLUTION.to_owned(), t.branch_resolution),
    ];
    if !t.int_occ_series.values.is_empty() {
        out.series.push((hist_names::INT_PRF_OCCUPANCY.to_owned(), t.int_occ_series));
    }
    let mut lifetime = Log2Hist::new();
    let mut claim = Log2Hist::new();
    for rec in core.lifetime_log() {
        let Some(released) = rec.release_cycle else {
            continue;
        };
        lifetime.record(released.saturating_sub(rec.alloc_cycle));
        if rec.release_kind == Some(ReleaseKind::Atomic) {
            if let Some(redefined) = rec.redefine_cycle {
                claim.record(released.saturating_sub(redefined));
            }
        }
    }
    out.hists.push((hist_names::REG_LIFETIME.to_owned(), lifetime));
    out.hists.push((hist_names::CLAIM_DURATION.to_owned(), claim));
    out
}

/// Convenience: run a named SPEC profile.
#[must_use]
pub fn run_profile(base: &CoreConfig, profile: &SpecProfile, spec: &RunSpec) -> RunResult {
    run(base, profile.build(), spec)
}

/// Geometric mean of positive values (the paper's average speedups).
///
/// An empty input yields `1.0` — the neutral speedup — rather than the
/// `0/0 → NaN`-prone path a fold would produce, so aggregating an empty
/// benchmark subset cannot poison a downstream average.
#[must_use]
pub fn geomean(values: impl IntoIterator<Item = f64>) -> f64 {
    let mut log_sum = 0.0;
    let mut n = 0usize;
    for v in values {
        debug_assert!(v > 0.0, "geomean of a non-positive value");
        log_sum += v.ln();
        n += 1;
    }
    if n == 0 {
        1.0
    } else {
        (log_sum / n as f64).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atr_workload::ProfileParams;

    fn quick_spec(scheme: ReleaseScheme, rf: usize) -> RunSpec {
        RunSpec {
            scheme,
            rf_size: rf,
            warmup: 2_000,
            measure: 10_000,
            collect_events: false,
            audit: false,
            telemetry: TelemetryConfig::default(),
        }
    }

    #[test]
    fn stats_telemetry_fills_cpi_and_derived_histograms() {
        use atr_telemetry::{CpiBucket, TelemetryLevel};
        let program = ProfileParams::default().build();
        let mut spec = quick_spec(ReleaseScheme::Atr { redefine_delay: 0 }, 96);
        spec.telemetry = TelemetryConfig {
            level: TelemetryLevel::Stats,
            series_interval: 100,
            ..TelemetryConfig::default()
        };
        let r = run(&CoreConfig::default(), program.clone(), &spec);
        let cpi = r.telemetry.cpi.as_ref().expect("stats level records a CPI stack");
        cpi.check().unwrap();
        // The core's cycle counter has origin 1, so the observer sees
        // exactly stats.cycles - 1 ticks.
        assert_eq!(cpi.cycles + 1, r.stats.cycles);
        assert!(cpi.get(CpiBucket::Retiring) > 0);
        let lifetime = r.telemetry.hist("reg_lifetime").unwrap();
        assert!(lifetime.count > 0, "released registers must land in the lifetime histogram");
        let claim = r.telemetry.hist("claim_duration").unwrap();
        assert!(claim.count > 0, "ATR runs must record atomic claim durations");
        assert!(claim.count <= lifetime.count);
        assert_eq!(r.telemetry.series.len(), 1, "series sampling was requested");
        assert!(r.lifetimes.is_empty(), "telemetry-forced log must stay private");

        // The observer never perturbs the simulated result.
        spec.telemetry = TelemetryConfig::default();
        let off = run(&CoreConfig::default(), program, &spec);
        assert_eq!(off.ipc.to_bits(), r.ipc.to_bits());
        assert_eq!(off.stats.cycles, r.stats.cycles);
        assert!(off.telemetry.is_empty());
    }

    #[test]
    fn measured_window_excludes_warmup() {
        let program = ProfileParams::default().build();
        let r = run(&CoreConfig::default(), program, &quick_spec(ReleaseScheme::Baseline, 128));
        assert!(r.ipc > 0.05, "ipc {}", r.ipc);
        assert!(r.stats.retired >= 12_000);
        assert!(r.avg_int_occupancy > 16.0, "occupancy {}", r.avg_int_occupancy);
    }

    #[test]
    fn runs_are_deterministic() {
        let program = ProfileParams::default().build();
        let spec = quick_spec(ReleaseScheme::Atr { redefine_delay: 0 }, 96);
        let a = run(&CoreConfig::default(), program.clone(), &spec);
        let b = run(&CoreConfig::default(), program, &spec);
        assert_eq!(a.ipc, b.ipc);
        assert_eq!(a.stats.flushes, b.stats.flushes);
    }

    #[test]
    fn events_are_collected_on_request() {
        let program = ProfileParams::default().build();
        let spec = quick_spec(ReleaseScheme::Baseline, 128).with_events();
        let mut spec = spec;
        spec.measure = 5_000;
        let r = run(&CoreConfig::default(), program, &spec);
        assert!(!r.lifetimes.is_empty());
    }

    #[test]
    fn geomean_basics() {
        assert!((geomean([2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!((geomean([3.0]) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn geomean_of_empty_input_is_neutral() {
        let empty = geomean(std::iter::empty());
        assert_eq!(empty, 1.0, "empty geomean must be the neutral speedup");
        assert!(empty.is_finite());
    }
}
