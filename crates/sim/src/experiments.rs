//! One function per evaluation artifact (figure) of the paper.
//!
//! Every function returns plain serializable rows; the `atr-bench`
//! binaries print them (and `report::render_table` formats them as
//! aligned tables). Budgets come from the [`SimConfig`] argument, which
//! `SimConfig::golden_cove()` populates from the `ATR_SIM_WARMUP` /
//! `ATR_SIM_INSTS` environment variables.

use crate::config::SimConfig;
use crate::runner::{geomean, run_profile, RunSpec};
use atr_core::ReleaseScheme;
use atr_workload::spec::{all_profiles, spec2017_fp, spec2017_int, SpecProfile, WorkloadClass};
use serde::Serialize;

/// RF sizes swept by Fig 1 / Fig 11 (the paper's 64…280 plus a
/// practically infinite point for normalization).
pub const RF_SWEEP: [usize; 8] = [64, 96, 128, 160, 192, 224, 256, 280];
/// "Infinite" register file used as the normalization baseline.
pub const RF_INFINITE: usize = 2048;

fn spec_of(sim: &SimConfig, scheme: ReleaseScheme, rf: usize) -> RunSpec {
    RunSpec {
        scheme,
        rf_size: rf,
        warmup: sim.warmup,
        measure: sim.measure,
        collect_events: false,
    }
}

fn class_of(p: &SpecProfile) -> &'static str {
    match p.class {
        WorkloadClass::Int => "int",
        WorkloadClass::Fp => "fp",
    }
}

// ------------------------------------------------------------- Fig 1

/// One point of Fig 1: baseline IPC at a given RF size, normalized to
/// the infinite-RF IPC of the same benchmark.
#[derive(Debug, Clone, Serialize)]
pub struct Fig01Row {
    /// Benchmark name.
    pub benchmark: String,
    /// Physical register file size.
    pub rf_size: usize,
    /// IPC / IPC(infinite registers).
    pub normalized_ipc: f64,
}

/// Fig 1: normalized baseline IPC across register file sizes
/// (SPEC2017int).
#[must_use]
pub fn fig01(sim: &SimConfig) -> Vec<Fig01Row> {
    let mut rows = Vec::new();
    for p in spec2017_int() {
        let ideal = run_profile(&sim.core, &p, &spec_of(sim, ReleaseScheme::Baseline, RF_INFINITE)).ipc;
        for &rf in &RF_SWEEP {
            let ipc = run_profile(&sim.core, &p, &spec_of(sim, ReleaseScheme::Baseline, rf)).ipc;
            rows.push(Fig01Row {
                benchmark: p.name.to_owned(),
                rf_size: rf,
                normalized_ipc: ipc / ideal.max(1e-9),
            });
        }
        rows.push(Fig01Row {
            benchmark: p.name.to_owned(),
            rf_size: RF_INFINITE,
            normalized_ipc: 1.0,
        });
    }
    rows
}

/// Average of Fig 1 rows at one RF size.
#[must_use]
pub fn fig01_average(rows: &[Fig01Row], rf: usize) -> f64 {
    geomean(rows.iter().filter(|r| r.rf_size == rf).map(|r| r.normalized_ipc))
}

// ------------------------------------------------------------- Fig 4

/// One suite's lifecycle breakdown (Fig 4).
#[derive(Debug, Clone, Serialize)]
pub struct Fig04Row {
    /// Benchmark (or suite-average) name.
    pub benchmark: String,
    /// Suite ("int"/"fp").
    pub class: String,
    /// Fraction of register-lifetime cycles in use.
    pub in_use: f64,
    /// Fraction unused (speculative-release opportunity).
    pub unused: f64,
    /// Fraction verified-unused (non-speculative opportunity).
    pub verified_unused: f64,
}

/// Fig 4: register lifecycle cycle distribution under the baseline
/// scheme, per benchmark plus suite averages.
#[must_use]
pub fn fig04(sim: &SimConfig) -> Vec<Fig04Row> {
    let mut rows = Vec::new();
    for p in all_profiles() {
        let spec = spec_of(sim, ReleaseScheme::Baseline, 280).with_events();
        let r = run_profile(&sim.core, &p, &spec);
        let reg_class = match p.class {
            WorkloadClass::Int => atr_isa::RegClass::Int,
            WorkloadClass::Fp => atr_isa::RegClass::Fp,
        };
        let b = atr_analysis::lifecycle_breakdown(&r.lifetimes, reg_class);
        rows.push(Fig04Row {
            benchmark: p.name.to_owned(),
            class: class_of(&p).to_owned(),
            in_use: b.in_use,
            unused: b.unused,
            verified_unused: b.verified_unused,
        });
    }
    for class in ["int", "fp"] {
        let members: Vec<&Fig04Row> = rows.iter().filter(|r| r.class == class).collect();
        let n = members.len().max(1) as f64;
        let avg = Fig04Row {
            benchmark: format!("average-{class}"),
            class: class.to_owned(),
            in_use: members.iter().map(|r| r.in_use).sum::<f64>() / n,
            unused: members.iter().map(|r| r.unused).sum::<f64>() / n,
            verified_unused: members.iter().map(|r| r.verified_unused).sum::<f64>() / n,
        };
        rows.push(avg);
    }
    rows
}

// ------------------------------------------------------------- Fig 6

/// One benchmark's region ratios (Fig 6).
#[derive(Debug, Clone, Serialize)]
pub struct Fig06Row {
    /// Benchmark (or suite-average) name.
    pub benchmark: String,
    /// Suite ("int"/"fp").
    pub class: String,
    /// Fraction of allocations in non-branch regions.
    pub non_branch: f64,
    /// Fraction in non-except regions.
    pub non_except: f64,
    /// Fraction in atomic commit regions.
    pub atomic: f64,
}

/// Fig 6: atomic register ratios per benchmark plus suite averages.
#[must_use]
pub fn fig06(sim: &SimConfig) -> Vec<Fig06Row> {
    let mut rows = Vec::new();
    for p in all_profiles() {
        let spec = spec_of(sim, ReleaseScheme::Baseline, 280).with_events();
        let r = run_profile(&sim.core, &p, &spec);
        let reg_class = match p.class {
            WorkloadClass::Int => atr_isa::RegClass::Int,
            WorkloadClass::Fp => atr_isa::RegClass::Fp,
        };
        let ratios = atr_analysis::region_ratios(&r.lifetimes, reg_class, true);
        rows.push(Fig06Row {
            benchmark: p.name.to_owned(),
            class: class_of(&p).to_owned(),
            non_branch: ratios.non_branch,
            non_except: ratios.non_except,
            atomic: ratios.atomic,
        });
    }
    for class in ["int", "fp"] {
        let members: Vec<&Fig06Row> = rows.iter().filter(|r| r.class == class).collect();
        let n = members.len().max(1) as f64;
        rows.push(Fig06Row {
            benchmark: format!("average-{class}"),
            class: class.to_owned(),
            non_branch: members.iter().map(|r| r.non_branch).sum::<f64>() / n,
            non_except: members.iter().map(|r| r.non_except).sum::<f64>() / n,
            atomic: members.iter().map(|r| r.atomic).sum::<f64>() / n,
        });
    }
    rows
}

// ------------------------------------------------------------ Fig 10

/// One benchmark × RF size × scheme speedup (Fig 10).
#[derive(Debug, Clone, Serialize)]
pub struct Fig10Row {
    /// Benchmark (or suite-average) name.
    pub benchmark: String,
    /// Suite ("int"/"fp").
    pub class: String,
    /// Register file size (64 or 224 in the paper).
    pub rf_size: usize,
    /// Scheme label ("nonspec-ER"/"atomic"/"combined").
    pub scheme: String,
    /// IPC / IPC(baseline at the same RF size).
    pub speedup: f64,
}

/// Fig 10: speedup of each early-release scheme over the baseline at 64
/// and 224 physical registers.
#[must_use]
pub fn fig10(sim: &SimConfig) -> Vec<Fig10Row> {
    fig10_at(sim, &[64, 224])
}

/// Fig 10 at caller-chosen RF sizes.
#[must_use]
pub fn fig10_at(sim: &SimConfig, rf_sizes: &[usize]) -> Vec<Fig10Row> {
    let schemes = [
        ReleaseScheme::NonSpecEr,
        ReleaseScheme::Atr { redefine_delay: 0 },
        ReleaseScheme::Combined { redefine_delay: 0 },
    ];
    let mut rows = Vec::new();
    for p in all_profiles() {
        for &rf in rf_sizes {
            let baseline = run_profile(&sim.core, &p, &spec_of(sim, ReleaseScheme::Baseline, rf)).ipc;
            for scheme in schemes {
                let ipc = run_profile(&sim.core, &p, &spec_of(sim, scheme, rf)).ipc;
                rows.push(Fig10Row {
                    benchmark: p.name.to_owned(),
                    class: class_of(&p).to_owned(),
                    rf_size: rf,
                    scheme: scheme.label().to_owned(),
                    speedup: ipc / baseline.max(1e-9),
                });
            }
        }
    }
    // Suite averages.
    let mut averages = Vec::new();
    for class in ["int", "fp"] {
        for &rf in rf_sizes {
            for scheme in schemes {
                let member_speedups: Vec<f64> = rows
                    .iter()
                    .filter(|r| r.class == class && r.rf_size == rf && r.scheme == scheme.label())
                    .map(|r| r.speedup)
                    .collect();
                averages.push(Fig10Row {
                    benchmark: format!("average-{class}"),
                    class: class.to_owned(),
                    rf_size: rf,
                    scheme: scheme.label().to_owned(),
                    speedup: geomean(member_speedups),
                });
            }
        }
    }
    rows.extend(averages);
    rows
}

// ------------------------------------------------------------ Fig 11

/// One suite-average point of Fig 11.
#[derive(Debug, Clone, Serialize)]
pub struct Fig11Row {
    /// Suite ("int"/"fp").
    pub class: String,
    /// Register file size.
    pub rf_size: usize,
    /// Geomean speedup of the atomic scheme over the baseline.
    pub speedup: f64,
}

/// Fig 11: atomic-scheme speedup over the baseline across RF sizes.
#[must_use]
pub fn fig11(sim: &SimConfig) -> Vec<Fig11Row> {
    let mut rows = Vec::new();
    for (class, profiles) in [("int", spec2017_int()), ("fp", spec2017_fp())] {
        for &rf in &RF_SWEEP {
            let mut speedups = Vec::new();
            for p in &profiles {
                let b = run_profile(&sim.core, p, &spec_of(sim, ReleaseScheme::Baseline, rf)).ipc;
                let a = run_profile(
                    &sim.core,
                    p,
                    &spec_of(sim, ReleaseScheme::Atr { redefine_delay: 0 }, rf),
                )
                .ipc;
                speedups.push(a / b.max(1e-9));
            }
            rows.push(Fig11Row { class: class.to_owned(), rf_size: rf, speedup: geomean(speedups) });
        }
    }
    rows
}

// ------------------------------------------------------------ Fig 12

/// One benchmark's consumer distribution (Fig 12).
#[derive(Debug, Clone, Serialize)]
pub struct Fig12Row {
    /// Benchmark name.
    pub benchmark: String,
    /// Suite ("int"/"fp").
    pub class: String,
    /// Fraction of atomic regions per consumer count (last bucket ≥7).
    pub buckets: Vec<f64>,
    /// Mean consumers per atomic region.
    pub mean: f64,
}

/// Fig 12: consumers per atomic region, per benchmark.
#[must_use]
pub fn fig12(sim: &SimConfig) -> Vec<Fig12Row> {
    let mut rows = Vec::new();
    for p in all_profiles() {
        let spec = spec_of(sim, ReleaseScheme::Baseline, 280).with_events();
        let r = run_profile(&sim.core, &p, &spec);
        let reg_class = match p.class {
            WorkloadClass::Int => atr_isa::RegClass::Int,
            WorkloadClass::Fp => atr_isa::RegClass::Fp,
        };
        let h = atr_analysis::consumer_histogram(&r.lifetimes, reg_class, 7);
        rows.push(Fig12Row {
            benchmark: p.name.to_owned(),
            class: class_of(&p).to_owned(),
            buckets: h.buckets,
            mean: h.mean,
        });
    }
    rows
}

// ------------------------------------------------------------ Fig 13

/// One suite × delay point of Fig 13.
#[derive(Debug, Clone, Serialize)]
pub struct Fig13Row {
    /// Suite ("int"/"fp").
    pub class: String,
    /// Redefine-pipeline delay in cycles.
    pub delay: u32,
    /// Geomean speedup of the (delayed) atomic scheme over the baseline
    /// at 64 registers.
    pub speedup: f64,
}

/// Fig 13: sensitivity of the atomic scheme to pipelining the marking
/// logic by 0/1/2 cycles.
#[must_use]
pub fn fig13(sim: &SimConfig) -> Vec<Fig13Row> {
    let mut rows = Vec::new();
    for (class, profiles) in [("int", spec2017_int()), ("fp", spec2017_fp())] {
        for delay in [0u32, 1, 2] {
            let mut speedups = Vec::new();
            for p in &profiles {
                let b = run_profile(&sim.core, p, &spec_of(sim, ReleaseScheme::Baseline, 64)).ipc;
                let a = run_profile(
                    &sim.core,
                    p,
                    &spec_of(sim, ReleaseScheme::Atr { redefine_delay: delay }, 64),
                )
                .ipc;
                speedups.push(a / b.max(1e-9));
            }
            rows.push(Fig13Row { class: class.to_owned(), delay, speedup: geomean(speedups) });
        }
    }
    rows
}

// ------------------------------------------------------------ Fig 14

/// One benchmark's region cycle gaps (Fig 14).
#[derive(Debug, Clone, Serialize)]
pub struct Fig14Row {
    /// Benchmark name.
    pub benchmark: String,
    /// Suite ("int"/"fp").
    pub class: String,
    /// Mean cycles rename → redefine.
    pub rename_to_redefine: f64,
    /// Mean cycles rename → last consume.
    pub rename_to_consume: f64,
    /// Mean cycles rename → redefiner commit.
    pub rename_to_commit: f64,
}

/// Fig 14: average cycle gaps within atomic commit regions.
#[must_use]
pub fn fig14(sim: &SimConfig) -> Vec<Fig14Row> {
    let mut rows = Vec::new();
    for p in all_profiles() {
        let spec = spec_of(sim, ReleaseScheme::Baseline, 280).with_events();
        let r = run_profile(&sim.core, &p, &spec);
        let reg_class = match p.class {
            WorkloadClass::Int => atr_isa::RegClass::Int,
            WorkloadClass::Fp => atr_isa::RegClass::Fp,
        };
        let g = atr_analysis::atomic_region_gaps(&r.lifetimes, reg_class);
        rows.push(Fig14Row {
            benchmark: p.name.to_owned(),
            class: class_of(&p).to_owned(),
            rename_to_redefine: g.rename_to_redefine,
            rename_to_consume: g.rename_to_consume,
            rename_to_commit: g.rename_to_commit,
        });
    }
    rows
}

// ------------------------------------------------------------ Fig 15

/// One scheme's register-requirement result (Fig 15).
#[derive(Debug, Clone, Serialize)]
pub struct Fig15Row {
    /// Scheme label.
    pub scheme: String,
    /// Smallest RF size keeping IPC within the tolerance of the
    /// 280-register baseline.
    pub required_rf: usize,
    /// Relative reduction versus 280 registers.
    pub reduction: f64,
}

/// Fig 15: the smallest register file for which each scheme's mean IPC
/// stays within `tolerance` (paper: 3%) of the 280-register baseline.
///
/// Measures each scheme once on the fixed [`RF_SWEEP`] grid and
/// interpolates the crossing point linearly between grid neighbours
/// (rounded outward to `step` entries), which bounds the cost at
/// `4 schemes × 8 sizes × 23 profiles` regardless of where the
/// crossings fall.
#[must_use]
pub fn fig15(sim: &SimConfig, tolerance: f64, step: usize) -> Vec<Fig15Row> {
    let profiles = all_profiles();
    let reference: Vec<f64> = profiles
        .iter()
        .map(|p| run_profile(&sim.core, p, &spec_of(sim, ReleaseScheme::Baseline, 280)).ipc)
        .collect();

    let mean_rel = |scheme: ReleaseScheme, rf: usize| -> f64 {
        let rel: Vec<f64> = profiles
            .iter()
            .zip(&reference)
            .map(|(p, &r0)| {
                run_profile(&sim.core, p, &spec_of(sim, scheme, rf)).ipc / r0.max(1e-9)
            })
            .collect();
        geomean(rel)
    };

    let threshold = 1.0 - tolerance;
    ReleaseScheme::ALL
        .into_iter()
        .map(|scheme| {
            let curve: Vec<(usize, f64)> =
                RF_SWEEP.iter().map(|&rf| (rf, mean_rel(scheme, rf))).collect();
            // Find the smallest grid point meeting the threshold, then
            // interpolate toward its smaller neighbour.
            let mut required = 280usize;
            for (i, &(rf, rel)) in curve.iter().enumerate() {
                if rel >= threshold {
                    required = rf;
                    if i > 0 {
                        let (lo_rf, lo_rel) = curve[i - 1];
                        if lo_rel < threshold && rel > lo_rel {
                            let t = (threshold - lo_rel) / (rel - lo_rel);
                            let exact = lo_rf as f64 + t * (rf - lo_rf) as f64;
                            required = (exact / step as f64).ceil() as usize * step;
                        }
                    } else {
                        // Meets the threshold at the smallest grid point.
                        required = rf;
                    }
                    break;
                }
            }
            Fig15Row {
                scheme: scheme.label().to_owned(),
                required_rf: required.min(280),
                reduction: 1.0 - required.min(280) as f64 / 280.0,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use atr_pipeline::CoreConfig;

    fn tiny(warmup: u64, measure: u64) -> SimConfig {
        SimConfig { core: CoreConfig::default(), warmup, measure }
    }

    #[test]
    fn fig10_rows_cover_schemes_and_sizes() {
        // A tiny budget keeps CI fast; one RF size.
        let rows = fig10_at(&tiny(1_000, 4_000), &[64]);
        // 23 benchmarks x 3 schemes + 2 averages x 3 schemes.
        assert_eq!(rows.len(), 23 * 3 + 6);
        assert!(
            rows.iter().all(|r| r.speedup > 0.1 && r.speedup < 10.0),
            "speedups out of sanity band"
        );
        let avg_int = rows
            .iter()
            .find(|r| r.benchmark == "average-int" && r.scheme == "combined")
            .unwrap();
        assert!(avg_int.speedup > 0.95, "combined should not slow down: {}", avg_int.speedup);
    }

    #[test]
    fn fig15_requires_less_for_early_release() {
        let rows = fig15(&tiny(500, 2_000), 0.10, 64);
        let get = |label: &str| rows.iter().find(|r| r.scheme == label).unwrap().required_rf;
        assert!(get("combined") <= get("baseline"));
        assert!(rows.iter().all(|r| r.required_rf <= 280));
    }
}

// -------------------------------------------------------- Ablations

/// One ablation data point.
#[derive(Debug, Clone, Serialize)]
pub struct AblationRow {
    /// Which ablation ("move-elim", "counter-width", "checkpoint").
    pub study: String,
    /// Variant label.
    pub variant: String,
    /// Geomean IPC relative to the study's reference variant.
    pub relative_ipc: f64,
}

/// §6 move-elimination ablation: ATR at 64 registers with and without
/// move elimination (the paper argues they compose synergistically).
#[must_use]
pub fn ablation_move_elimination(sim: &SimConfig) -> Vec<AblationRow> {
    let profiles = spec2017_int();
    let run_with = |elim: bool| -> f64 {
        let ipcs: Vec<f64> = profiles
            .iter()
            .map(|p| {
                let mut core_cfg = sim
                    .core
                    .clone()
                    .with_rf_size(64)
                    .with_scheme(ReleaseScheme::Atr { redefine_delay: 0 });
                core_cfg.rename.move_elimination = elim;
                let spec = RunSpec {
                    scheme: core_cfg.rename.scheme,
                    rf_size: 64,
                    warmup: sim.warmup,
                    measure: sim.measure,
                    collect_events: false,
                };
                crate::runner::run(&core_cfg, p.build(), &spec).ipc
            })
            .collect();
        geomean(ipcs)
    };
    let off = run_with(false);
    let on = run_with(true);
    vec![
        AblationRow { study: "move-elim".into(), variant: "off".into(), relative_ipc: 1.0 },
        AblationRow { study: "move-elim".into(), variant: "on".into(), relative_ipc: on / off },
    ]
}

/// §5.4 consumer-counter-width ablation: ATR with 2/3/4/8-bit counters
/// at 64 registers (the paper: 3 bits lose nothing vs infinite).
#[must_use]
pub fn ablation_counter_width(sim: &SimConfig) -> Vec<AblationRow> {
    let profiles = spec2017_int();
    let run_width = |width: u32| -> f64 {
        let ipcs: Vec<f64> = profiles
            .iter()
            .map(|p| {
                let mut core_cfg = sim
                    .core
                    .clone()
                    .with_rf_size(64)
                    .with_scheme(ReleaseScheme::Atr { redefine_delay: 0 });
                core_cfg.rename.counter_width = width;
                let spec = RunSpec {
                    scheme: core_cfg.rename.scheme,
                    rf_size: 64,
                    warmup: sim.warmup,
                    measure: sim.measure,
                    collect_events: false,
                };
                crate::runner::run(&core_cfg, p.build(), &spec).ipc
            })
            .collect();
        geomean(ipcs)
    };
    let reference = run_width(8);
    [2u32, 3, 4, 8]
        .into_iter()
        .map(|w| AblationRow {
            study: "counter-width".into(),
            variant: format!("{w}-bit"),
            relative_ipc: run_width(w) / reference,
        })
        .collect()
}

#[cfg(test)]
mod ablation_tests {
    use super::*;
    use atr_pipeline::CoreConfig;

    #[test]
    fn counter_width_three_bits_suffice() {
        let sim = SimConfig { core: CoreConfig::default(), warmup: 1_000, measure: 6_000 };
        let rows = ablation_counter_width(&sim);
        let three = rows.iter().find(|r| r.variant == "3-bit").unwrap();
        assert!(
            three.relative_ipc > 0.98,
            "§5.4: a 3-bit counter must track a wide one, got {}",
            three.relative_ipc
        );
    }
}
