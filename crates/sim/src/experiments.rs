//! One function per evaluation artifact (figure) of the paper, built on
//! the run-matrix engine.
//!
//! Every figure is expressed as a pure `points → assemble` pair:
//! `figNN_points` declares the exact [`SimPoint`]s the figure needs and
//! `figNN_assemble` folds cached results into rows. The one-shot
//! `figNN(sim)` wrappers run a private [`RunMatrix`]; a shared matrix
//! (see `all_experiments`) deduplicates across figures — fig01, fig10,
//! fig11, and fig15 all request overlapping `Baseline` points that then
//! simulate exactly once.
//!
//! Every function returns plain serializable rows; the `atr-bench`
//! binaries print them (and `report::render_table` formats them as
//! aligned tables). Budgets come from the [`SimConfig`] argument, which
//! `SimConfig::golden_cove()` populates from the `ATR_SIM_WARMUP` /
//! `ATR_SIM_INSTS` environment variables.

use crate::config::SimConfig;
use crate::matrix::{CoreTweak, RunMatrix, SimPoint};
use crate::runner::geomean;
use atr_core::ReleaseScheme;
use atr_json::json_record;
use atr_workload::spec::{all_profiles, spec2017_fp, spec2017_int, SpecProfile, WorkloadClass};

/// RF sizes swept by Fig 1 / Fig 11 (the paper's 64…280 plus a
/// practically infinite point for normalization).
pub const RF_SWEEP: [usize; 8] = [64, 96, 128, 160, 192, 224, 256, 280];
/// "Infinite" register file used as the normalization baseline.
pub const RF_INFINITE: usize = 2048;

/// The three early-release schemes Fig 10 compares against the baseline.
const FIG10_SCHEMES: [ReleaseScheme; 3] = [
    ReleaseScheme::NonSpecEr,
    ReleaseScheme::Atr { redefine_delay: 0 },
    ReleaseScheme::Combined { redefine_delay: 0 },
];

fn pt(sim: &SimConfig, profile: &'static str, scheme: ReleaseScheme, rf: usize) -> SimPoint {
    SimPoint::new(profile, scheme, rf, sim.warmup, sim.measure)
}

/// The lifetime-log point shared by every analysis figure (4/6/12/14):
/// the baseline scheme at the paper's 280-register design point.
fn events_point(sim: &SimConfig, profile: &'static str) -> SimPoint {
    pt(sim, profile, ReleaseScheme::Baseline, 280).with_events()
}

fn class_of(p: &SpecProfile) -> &'static str {
    match p.class {
        WorkloadClass::Int => "int",
        WorkloadClass::Fp => "fp",
    }
}

fn reg_class_of(p: &SpecProfile) -> atr_isa::RegClass {
    match p.class {
        WorkloadClass::Int => atr_isa::RegClass::Int,
        WorkloadClass::Fp => atr_isa::RegClass::Fp,
    }
}

/// Runs one figure's `points → assemble` pair on a private matrix.
fn solo<R>(sim: &SimConfig, points: Vec<SimPoint>, assemble: impl FnOnce(&RunMatrix) -> R) -> R {
    let mut matrix = RunMatrix::new();
    matrix.ensure(&sim.core, &points);
    assemble(&matrix)
}

// ------------------------------------------------------------- Fig 1

/// One point of Fig 1: baseline IPC at a given RF size, normalized to
/// the infinite-RF IPC of the same benchmark.
#[derive(Debug, Clone)]
pub struct Fig01Row {
    /// Benchmark name.
    pub benchmark: String,
    /// Physical register file size.
    pub rf_size: usize,
    /// IPC / IPC(infinite registers).
    pub normalized_ipc: f64,
}
json_record!(Fig01Row { benchmark, rf_size, normalized_ipc });

/// The simulation points Fig 1 needs.
#[must_use]
pub fn fig01_points(sim: &SimConfig) -> Vec<SimPoint> {
    let mut points = Vec::new();
    for p in spec2017_int() {
        points.push(pt(sim, p.name, ReleaseScheme::Baseline, RF_INFINITE));
        for &rf in &RF_SWEEP {
            points.push(pt(sim, p.name, ReleaseScheme::Baseline, rf));
        }
    }
    points
}

/// Assembles Fig 1 rows from an ensured matrix. A failed point drops
/// its rows (the normalization reference drops the whole benchmark);
/// the pass-level coverage marker reports the loss.
#[must_use]
pub fn fig01_assemble(sim: &SimConfig, matrix: &RunMatrix) -> Vec<Fig01Row> {
    let mut rows = Vec::new();
    for p in spec2017_int() {
        let Some(ideal) = matrix.try_ipc(&pt(sim, p.name, ReleaseScheme::Baseline, RF_INFINITE))
        else {
            continue;
        };
        for &rf in &RF_SWEEP {
            let Some(ipc) = matrix.try_ipc(&pt(sim, p.name, ReleaseScheme::Baseline, rf)) else {
                continue;
            };
            rows.push(Fig01Row {
                benchmark: p.name.to_owned(),
                rf_size: rf,
                normalized_ipc: ipc / ideal.max(1e-9),
            });
        }
        rows.push(Fig01Row {
            benchmark: p.name.to_owned(),
            rf_size: RF_INFINITE,
            normalized_ipc: 1.0,
        });
    }
    rows
}

/// Fig 1: normalized baseline IPC across register file sizes
/// (SPEC2017int).
#[must_use]
pub fn fig01(sim: &SimConfig) -> Vec<Fig01Row> {
    solo(sim, fig01_points(sim), |m| fig01_assemble(sim, m))
}

/// Average of Fig 1 rows at one RF size.
#[must_use]
pub fn fig01_average(rows: &[Fig01Row], rf: usize) -> f64 {
    geomean(rows.iter().filter(|r| r.rf_size == rf).map(|r| r.normalized_ipc))
}

// ------------------------------------------------------------- Fig 4

/// One suite's lifecycle breakdown (Fig 4).
#[derive(Debug, Clone)]
pub struct Fig04Row {
    /// Benchmark (or suite-average) name.
    pub benchmark: String,
    /// Suite ("int"/"fp").
    pub class: String,
    /// Fraction of register-lifetime cycles in use.
    pub in_use: f64,
    /// Fraction unused (speculative-release opportunity).
    pub unused: f64,
    /// Fraction verified-unused (non-speculative opportunity).
    pub verified_unused: f64,
}
json_record!(Fig04Row { benchmark, class, in_use, unused, verified_unused });

/// The simulation points Fig 4 needs (shared with Figs 6/12/14).
#[must_use]
pub fn fig04_points(sim: &SimConfig) -> Vec<SimPoint> {
    all_profiles().iter().map(|p| events_point(sim, p.name)).collect()
}

/// Assembles Fig 4 rows from an ensured matrix.
#[must_use]
pub fn fig04_assemble(sim: &SimConfig, matrix: &RunMatrix) -> Vec<Fig04Row> {
    let mut rows = Vec::new();
    for p in all_profiles() {
        let Some(r) = matrix.try_get(&events_point(sim, p.name)) else {
            continue;
        };
        let b = atr_analysis::lifecycle_breakdown(&r.lifetimes, reg_class_of(&p));
        rows.push(Fig04Row {
            benchmark: p.name.to_owned(),
            class: class_of(&p).to_owned(),
            in_use: b.in_use,
            unused: b.unused,
            verified_unused: b.verified_unused,
        });
    }
    for class in ["int", "fp"] {
        let members: Vec<&Fig04Row> = rows.iter().filter(|r| r.class == class).collect();
        let n = members.len().max(1) as f64;
        let avg = Fig04Row {
            benchmark: format!("average-{class}"),
            class: class.to_owned(),
            in_use: members.iter().map(|r| r.in_use).sum::<f64>() / n,
            unused: members.iter().map(|r| r.unused).sum::<f64>() / n,
            verified_unused: members.iter().map(|r| r.verified_unused).sum::<f64>() / n,
        };
        rows.push(avg);
    }
    rows
}

/// Fig 4: register lifecycle cycle distribution under the baseline
/// scheme, per benchmark plus suite averages.
#[must_use]
pub fn fig04(sim: &SimConfig) -> Vec<Fig04Row> {
    solo(sim, fig04_points(sim), |m| fig04_assemble(sim, m))
}

// ------------------------------------------------------------- Fig 6

/// One benchmark's region ratios (Fig 6).
#[derive(Debug, Clone)]
pub struct Fig06Row {
    /// Benchmark (or suite-average) name.
    pub benchmark: String,
    /// Suite ("int"/"fp").
    pub class: String,
    /// Fraction of allocations in non-branch regions.
    pub non_branch: f64,
    /// Fraction in non-except regions.
    pub non_except: f64,
    /// Fraction in atomic commit regions.
    pub atomic: f64,
}
json_record!(Fig06Row { benchmark, class, non_branch, non_except, atomic });

/// The simulation points Fig 6 needs (shared with Figs 4/12/14).
#[must_use]
pub fn fig06_points(sim: &SimConfig) -> Vec<SimPoint> {
    fig04_points(sim)
}

/// Assembles Fig 6 rows from an ensured matrix.
#[must_use]
pub fn fig06_assemble(sim: &SimConfig, matrix: &RunMatrix) -> Vec<Fig06Row> {
    let mut rows = Vec::new();
    for p in all_profiles() {
        let Some(r) = matrix.try_get(&events_point(sim, p.name)) else {
            continue;
        };
        let ratios = atr_analysis::region_ratios(&r.lifetimes, reg_class_of(&p), true);
        rows.push(Fig06Row {
            benchmark: p.name.to_owned(),
            class: class_of(&p).to_owned(),
            non_branch: ratios.non_branch,
            non_except: ratios.non_except,
            atomic: ratios.atomic,
        });
    }
    for class in ["int", "fp"] {
        let members: Vec<&Fig06Row> = rows.iter().filter(|r| r.class == class).collect();
        let n = members.len().max(1) as f64;
        rows.push(Fig06Row {
            benchmark: format!("average-{class}"),
            class: class.to_owned(),
            non_branch: members.iter().map(|r| r.non_branch).sum::<f64>() / n,
            non_except: members.iter().map(|r| r.non_except).sum::<f64>() / n,
            atomic: members.iter().map(|r| r.atomic).sum::<f64>() / n,
        });
    }
    rows
}

/// Fig 6: atomic register ratios per benchmark plus suite averages.
#[must_use]
pub fn fig06(sim: &SimConfig) -> Vec<Fig06Row> {
    solo(sim, fig06_points(sim), |m| fig06_assemble(sim, m))
}

// ------------------------------------------------------------ Fig 10

/// One benchmark × RF size × scheme speedup (Fig 10).
#[derive(Debug, Clone)]
pub struct Fig10Row {
    /// Benchmark (or suite-average) name.
    pub benchmark: String,
    /// Suite ("int"/"fp").
    pub class: String,
    /// Register file size (64 or 224 in the paper).
    pub rf_size: usize,
    /// Scheme label ("nonspec-ER"/"atomic"/"combined").
    pub scheme: String,
    /// IPC / IPC(baseline at the same RF size).
    pub speedup: f64,
}
json_record!(Fig10Row { benchmark, class, rf_size, scheme, speedup });

/// The simulation points Fig 10 needs at the given RF sizes.
#[must_use]
pub fn fig10_points(sim: &SimConfig, rf_sizes: &[usize]) -> Vec<SimPoint> {
    let mut points = Vec::new();
    for p in all_profiles() {
        for &rf in rf_sizes {
            points.push(pt(sim, p.name, ReleaseScheme::Baseline, rf));
            for scheme in FIG10_SCHEMES {
                points.push(pt(sim, p.name, scheme, rf));
            }
        }
    }
    points
}

/// Assembles Fig 10 rows from an ensured matrix.
#[must_use]
pub fn fig10_assemble(sim: &SimConfig, matrix: &RunMatrix, rf_sizes: &[usize]) -> Vec<Fig10Row> {
    let mut rows = Vec::new();
    for p in all_profiles() {
        for &rf in rf_sizes {
            let Some(baseline) = matrix.try_ipc(&pt(sim, p.name, ReleaseScheme::Baseline, rf))
            else {
                continue;
            };
            for scheme in FIG10_SCHEMES {
                let Some(ipc) = matrix.try_ipc(&pt(sim, p.name, scheme, rf)) else {
                    continue;
                };
                rows.push(Fig10Row {
                    benchmark: p.name.to_owned(),
                    class: class_of(&p).to_owned(),
                    rf_size: rf,
                    scheme: scheme.label().to_owned(),
                    speedup: ipc / baseline.max(1e-9),
                });
            }
        }
    }
    // Suite averages.
    let mut averages = Vec::new();
    for class in ["int", "fp"] {
        for &rf in rf_sizes {
            for scheme in FIG10_SCHEMES {
                let member_speedups: Vec<f64> = rows
                    .iter()
                    .filter(|r| r.class == class && r.rf_size == rf && r.scheme == scheme.label())
                    .map(|r| r.speedup)
                    .collect();
                averages.push(Fig10Row {
                    benchmark: format!("average-{class}"),
                    class: class.to_owned(),
                    rf_size: rf,
                    scheme: scheme.label().to_owned(),
                    speedup: geomean(member_speedups),
                });
            }
        }
    }
    rows.extend(averages);
    rows
}

/// Fig 10: speedup of each early-release scheme over the baseline at 64
/// and 224 physical registers.
#[must_use]
pub fn fig10(sim: &SimConfig) -> Vec<Fig10Row> {
    fig10_at(sim, &[64, 224])
}

/// Fig 10 at caller-chosen RF sizes.
#[must_use]
pub fn fig10_at(sim: &SimConfig, rf_sizes: &[usize]) -> Vec<Fig10Row> {
    solo(sim, fig10_points(sim, rf_sizes), |m| fig10_assemble(sim, m, rf_sizes))
}

// ------------------------------------------------------------ Fig 11

/// One suite-average point of Fig 11.
#[derive(Debug, Clone)]
pub struct Fig11Row {
    /// Suite ("int"/"fp").
    pub class: String,
    /// Register file size.
    pub rf_size: usize,
    /// Geomean speedup of the atomic scheme over the baseline.
    pub speedup: f64,
}
json_record!(Fig11Row { class, rf_size, speedup });

/// The simulation points Fig 11 needs.
#[must_use]
pub fn fig11_points(sim: &SimConfig) -> Vec<SimPoint> {
    let mut points = Vec::new();
    for p in all_profiles() {
        for &rf in &RF_SWEEP {
            points.push(pt(sim, p.name, ReleaseScheme::Baseline, rf));
            points.push(pt(sim, p.name, ReleaseScheme::Atr { redefine_delay: 0 }, rf));
        }
    }
    points
}

/// Assembles Fig 11 rows from an ensured matrix.
#[must_use]
pub fn fig11_assemble(sim: &SimConfig, matrix: &RunMatrix) -> Vec<Fig11Row> {
    let mut rows = Vec::new();
    for (class, profiles) in [("int", spec2017_int()), ("fp", spec2017_fp())] {
        for &rf in &RF_SWEEP {
            let mut speedups = Vec::new();
            for p in &profiles {
                let (Some(b), Some(a)) = (
                    matrix.try_ipc(&pt(sim, p.name, ReleaseScheme::Baseline, rf)),
                    matrix.try_ipc(&pt(sim, p.name, ReleaseScheme::Atr { redefine_delay: 0 }, rf)),
                ) else {
                    continue;
                };
                speedups.push(a / b.max(1e-9));
            }
            rows.push(Fig11Row {
                class: class.to_owned(),
                rf_size: rf,
                speedup: geomean(speedups),
            });
        }
    }
    rows
}

/// Fig 11: atomic-scheme speedup over the baseline across RF sizes.
#[must_use]
pub fn fig11(sim: &SimConfig) -> Vec<Fig11Row> {
    solo(sim, fig11_points(sim), |m| fig11_assemble(sim, m))
}

// ------------------------------------------------------------ Fig 12

/// One benchmark's consumer distribution (Fig 12).
#[derive(Debug, Clone)]
pub struct Fig12Row {
    /// Benchmark name.
    pub benchmark: String,
    /// Suite ("int"/"fp").
    pub class: String,
    /// Fraction of atomic regions per consumer count (last bucket ≥7).
    pub buckets: Vec<f64>,
    /// Mean consumers per atomic region.
    pub mean: f64,
}
json_record!(Fig12Row { benchmark, class, buckets, mean });

/// The simulation points Fig 12 needs (shared with Figs 4/6/14).
#[must_use]
pub fn fig12_points(sim: &SimConfig) -> Vec<SimPoint> {
    fig04_points(sim)
}

/// Assembles Fig 12 rows from an ensured matrix.
#[must_use]
pub fn fig12_assemble(sim: &SimConfig, matrix: &RunMatrix) -> Vec<Fig12Row> {
    let mut rows = Vec::new();
    for p in all_profiles() {
        let Some(r) = matrix.try_get(&events_point(sim, p.name)) else {
            continue;
        };
        let h = atr_analysis::consumer_histogram(&r.lifetimes, reg_class_of(&p), 7);
        rows.push(Fig12Row {
            benchmark: p.name.to_owned(),
            class: class_of(&p).to_owned(),
            buckets: h.buckets,
            mean: h.mean,
        });
    }
    rows
}

/// Fig 12: consumers per atomic region, per benchmark.
#[must_use]
pub fn fig12(sim: &SimConfig) -> Vec<Fig12Row> {
    solo(sim, fig12_points(sim), |m| fig12_assemble(sim, m))
}

// ------------------------------------------------------------ Fig 13

/// One suite × delay point of Fig 13.
#[derive(Debug, Clone)]
pub struct Fig13Row {
    /// Suite ("int"/"fp").
    pub class: String,
    /// Redefine-pipeline delay in cycles.
    pub delay: u32,
    /// Geomean speedup of the (delayed) atomic scheme over the baseline
    /// at 64 registers.
    pub speedup: f64,
}
json_record!(Fig13Row { class, delay, speedup });

/// The simulation points Fig 13 needs — one entry per simulator
/// invocation the naive serial implementation performed (it re-ran
/// every profile's baseline once *per delay*); the matrix collapses
/// the repeats.
#[must_use]
pub fn fig13_points(sim: &SimConfig) -> Vec<SimPoint> {
    let mut points = Vec::new();
    for p in all_profiles() {
        for delay in [0u32, 1, 2] {
            points.push(pt(sim, p.name, ReleaseScheme::Baseline, 64));
            points.push(pt(sim, p.name, ReleaseScheme::Atr { redefine_delay: delay }, 64));
        }
    }
    points
}

/// Assembles Fig 13 rows from an ensured matrix.
#[must_use]
pub fn fig13_assemble(sim: &SimConfig, matrix: &RunMatrix) -> Vec<Fig13Row> {
    let mut rows = Vec::new();
    for (class, profiles) in [("int", spec2017_int()), ("fp", spec2017_fp())] {
        for delay in [0u32, 1, 2] {
            let mut speedups = Vec::new();
            for p in &profiles {
                let (Some(b), Some(a)) = (
                    matrix.try_ipc(&pt(sim, p.name, ReleaseScheme::Baseline, 64)),
                    matrix.try_ipc(&pt(
                        sim,
                        p.name,
                        ReleaseScheme::Atr { redefine_delay: delay },
                        64,
                    )),
                ) else {
                    continue;
                };
                speedups.push(a / b.max(1e-9));
            }
            rows.push(Fig13Row { class: class.to_owned(), delay, speedup: geomean(speedups) });
        }
    }
    rows
}

/// Fig 13: sensitivity of the atomic scheme to pipelining the marking
/// logic by 0/1/2 cycles.
#[must_use]
pub fn fig13(sim: &SimConfig) -> Vec<Fig13Row> {
    solo(sim, fig13_points(sim), |m| fig13_assemble(sim, m))
}

// ------------------------------------------------------------ Fig 14

/// One benchmark's region cycle gaps (Fig 14).
#[derive(Debug, Clone)]
pub struct Fig14Row {
    /// Benchmark name.
    pub benchmark: String,
    /// Suite ("int"/"fp").
    pub class: String,
    /// Mean cycles rename → redefine.
    pub rename_to_redefine: f64,
    /// Mean cycles rename → last consume.
    pub rename_to_consume: f64,
    /// Mean cycles rename → redefiner commit.
    pub rename_to_commit: f64,
}
json_record!(Fig14Row {
    benchmark,
    class,
    rename_to_redefine,
    rename_to_consume,
    rename_to_commit,
});

/// The simulation points Fig 14 needs (shared with Figs 4/6/12).
#[must_use]
pub fn fig14_points(sim: &SimConfig) -> Vec<SimPoint> {
    fig04_points(sim)
}

/// Assembles Fig 14 rows from an ensured matrix.
#[must_use]
pub fn fig14_assemble(sim: &SimConfig, matrix: &RunMatrix) -> Vec<Fig14Row> {
    let mut rows = Vec::new();
    for p in all_profiles() {
        let Some(r) = matrix.try_get(&events_point(sim, p.name)) else {
            continue;
        };
        let g = atr_analysis::atomic_region_gaps(&r.lifetimes, reg_class_of(&p));
        rows.push(Fig14Row {
            benchmark: p.name.to_owned(),
            class: class_of(&p).to_owned(),
            rename_to_redefine: g.rename_to_redefine,
            rename_to_consume: g.rename_to_consume,
            rename_to_commit: g.rename_to_commit,
        });
    }
    rows
}

/// Fig 14: average cycle gaps within atomic commit regions.
#[must_use]
pub fn fig14(sim: &SimConfig) -> Vec<Fig14Row> {
    solo(sim, fig14_points(sim), |m| fig14_assemble(sim, m))
}

// ------------------------------------------------------------ Fig 15

/// One scheme's register-requirement result (Fig 15).
#[derive(Debug, Clone)]
pub struct Fig15Row {
    /// Scheme label.
    pub scheme: String,
    /// Smallest RF size keeping IPC within the tolerance of the
    /// 280-register baseline.
    pub required_rf: usize,
    /// Relative reduction versus 280 registers.
    pub reduction: f64,
}
json_record!(Fig15Row { scheme, required_rf, reduction });

/// The simulation points Fig 15 needs: every scheme on the fixed
/// [`RF_SWEEP`] grid, plus the 280-register baseline references (which
/// the grid already contains — the matrix deduplicates them).
#[must_use]
pub fn fig15_points(sim: &SimConfig) -> Vec<SimPoint> {
    let mut points = Vec::new();
    for p in all_profiles() {
        points.push(pt(sim, p.name, ReleaseScheme::Baseline, 280));
        for scheme in ReleaseScheme::ALL {
            for &rf in &RF_SWEEP {
                points.push(pt(sim, p.name, scheme, rf));
            }
        }
    }
    points
}

/// Assembles Fig 15 rows from an ensured matrix.
#[must_use]
pub fn fig15_assemble(
    sim: &SimConfig,
    matrix: &RunMatrix,
    tolerance: f64,
    step: usize,
) -> Vec<Fig15Row> {
    let profiles = all_profiles();
    // Benchmarks whose 280-register reference failed drop out of the
    // study; the survivors' geomean still defines every curve.
    let reference: Vec<(&'static str, f64)> = profiles
        .iter()
        .filter_map(|p| {
            matrix.try_ipc(&pt(sim, p.name, ReleaseScheme::Baseline, 280)).map(|ipc| (p.name, ipc))
        })
        .collect();

    let mean_rel = |scheme: ReleaseScheme, rf: usize| -> f64 {
        geomean(reference.iter().filter_map(|&(name, r0)| {
            matrix.try_ipc(&pt(sim, name, scheme, rf)).map(|ipc| ipc / r0.max(1e-9))
        }))
    };

    let threshold = 1.0 - tolerance;
    ReleaseScheme::ALL
        .into_iter()
        .map(|scheme| {
            let curve: Vec<(usize, f64)> =
                RF_SWEEP.iter().map(|&rf| (rf, mean_rel(scheme, rf))).collect();
            // Find the smallest grid point meeting the threshold, then
            // interpolate toward its smaller neighbour.
            let mut required = 280usize;
            for (i, &(rf, rel)) in curve.iter().enumerate() {
                if rel >= threshold {
                    required = rf;
                    if i > 0 {
                        let (lo_rf, lo_rel) = curve[i - 1];
                        if lo_rel < threshold && rel > lo_rel {
                            let t = (threshold - lo_rel) / (rel - lo_rel);
                            let exact = lo_rf as f64 + t * (rf - lo_rf) as f64;
                            required = (exact / step as f64).ceil() as usize * step;
                        }
                    } else {
                        // Meets the threshold at the smallest grid point.
                        required = rf;
                    }
                    break;
                }
            }
            Fig15Row {
                scheme: scheme.label().to_owned(),
                required_rf: required.min(280),
                reduction: 1.0 - required.min(280) as f64 / 280.0,
            }
        })
        .collect()
}

/// Fig 15: the smallest register file for which each scheme's mean IPC
/// stays within `tolerance` (paper: 3%) of the 280-register baseline.
///
/// Measures each scheme once on the fixed [`RF_SWEEP`] grid and
/// interpolates the crossing point linearly between grid neighbours
/// (rounded outward to `step` entries), which bounds the cost at
/// `4 schemes × 8 sizes × 23 profiles` regardless of where the
/// crossings fall — and the matrix cache means the whole grid is
/// simulated once, not once per scheme query.
#[must_use]
pub fn fig15(sim: &SimConfig, tolerance: f64, step: usize) -> Vec<Fig15Row> {
    solo(sim, fig15_points(sim), |m| fig15_assemble(sim, m, tolerance, step))
}

// -------------------------------------------------------- Ablations

/// One ablation data point.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// Which ablation ("move-elim", "counter-width", "checkpoint").
    pub study: String,
    /// Variant label.
    pub variant: String,
    /// Geomean IPC relative to the study's reference variant.
    pub relative_ipc: f64,
}
json_record!(AblationRow { study, variant, relative_ipc });

fn move_elim_point(sim: &SimConfig, profile: &'static str, elim: bool) -> SimPoint {
    pt(sim, profile, ReleaseScheme::Atr { redefine_delay: 0 }, 64)
        .with_tweak(CoreTweak { move_elimination: Some(elim), ..CoreTweak::default() })
}

/// The simulation points the §6 move-elimination ablation needs.
#[must_use]
pub fn ablation_move_elimination_points(sim: &SimConfig) -> Vec<SimPoint> {
    let mut points = Vec::new();
    for p in spec2017_int() {
        for elim in [false, true] {
            points.push(move_elim_point(sim, p.name, elim));
        }
    }
    points
}

/// Assembles the move-elimination ablation from an ensured matrix.
#[must_use]
pub fn ablation_move_elimination_assemble(sim: &SimConfig, matrix: &RunMatrix) -> Vec<AblationRow> {
    let run_with = |elim: bool| -> f64 {
        geomean(
            spec2017_int()
                .iter()
                .filter_map(|p| matrix.try_ipc(&move_elim_point(sim, p.name, elim))),
        )
    };
    let off = run_with(false);
    let on = run_with(true);
    vec![
        AblationRow { study: "move-elim".into(), variant: "off".into(), relative_ipc: 1.0 },
        AblationRow { study: "move-elim".into(), variant: "on".into(), relative_ipc: on / off },
    ]
}

/// §6 move-elimination ablation: ATR at 64 registers with and without
/// move elimination (the paper argues they compose synergistically).
#[must_use]
pub fn ablation_move_elimination(sim: &SimConfig) -> Vec<AblationRow> {
    solo(sim, ablation_move_elimination_points(sim), |m| ablation_move_elimination_assemble(sim, m))
}

/// Counter widths the §5.4 ablation sweeps (8 is the reference).
const COUNTER_WIDTHS: [u32; 4] = [2, 3, 4, 8];

fn counter_width_point(sim: &SimConfig, profile: &'static str, width: u32) -> SimPoint {
    pt(sim, profile, ReleaseScheme::Atr { redefine_delay: 0 }, 64)
        .with_tweak(CoreTweak { counter_width: Some(width), ..CoreTweak::default() })
}

/// The simulation points the §5.4 counter-width ablation needs — one
/// entry per simulator invocation the naive serial implementation
/// performed (it ran the 8-bit reference separately *and* as a sweep
/// member); the matrix collapses the repeat, and the sweep's
/// default-width member canonicalizes onto the untweaked ATR point.
#[must_use]
pub fn ablation_counter_width_points(sim: &SimConfig) -> Vec<SimPoint> {
    let mut points = Vec::new();
    for p in spec2017_int() {
        points.push(counter_width_point(sim, p.name, 8));
        for width in COUNTER_WIDTHS {
            points.push(counter_width_point(sim, p.name, width));
        }
    }
    points
}

/// Assembles the counter-width ablation from an ensured matrix.
#[must_use]
pub fn ablation_counter_width_assemble(sim: &SimConfig, matrix: &RunMatrix) -> Vec<AblationRow> {
    let run_width = |width: u32| -> f64 {
        geomean(
            spec2017_int()
                .iter()
                .filter_map(|p| matrix.try_ipc(&counter_width_point(sim, p.name, width))),
        )
    };
    let reference = run_width(8);
    COUNTER_WIDTHS
        .into_iter()
        .map(|w| AblationRow {
            study: "counter-width".into(),
            variant: format!("{w}-bit"),
            relative_ipc: run_width(w) / reference,
        })
        .collect()
}

/// §5.4 consumer-counter-width ablation: ATR with 2/3/4/8-bit counters
/// at 64 registers (the paper: 3 bits lose nothing vs infinite).
#[must_use]
pub fn ablation_counter_width(sim: &SimConfig) -> Vec<AblationRow> {
    solo(sim, ablation_counter_width_points(sim), |m| ablation_counter_width_assemble(sim, m))
}

// ------------------------------------------------- Full-pass support

/// Every point of a full experiment pass (the union the
/// `all_experiments` binary ensures once, before any assembly): the
/// global-dedup factor reported by [`RunMatrix::summary`] measures
/// exactly how much cross-figure overlap the engine removes.
#[must_use]
pub fn full_pass_points(sim: &SimConfig) -> Vec<SimPoint> {
    let mut points = fig01_points(sim);
    points.extend(fig04_points(sim));
    points.extend(fig06_points(sim));
    points.extend(fig10_points(sim, &[64, 224]));
    points.extend(fig11_points(sim));
    points.extend(fig12_points(sim));
    points.extend(fig13_points(sim));
    points.extend(fig14_points(sim));
    points.extend(fig15_points(sim));
    points.extend(ablation_move_elimination_points(sim));
    points.extend(ablation_counter_width_points(sim));
    points
}

#[cfg(test)]
mod tests {
    use super::*;
    use atr_pipeline::CoreConfig;

    fn tiny(warmup: u64, measure: u64) -> SimConfig {
        SimConfig { core: CoreConfig::default(), warmup, measure }
    }

    #[test]
    fn fig10_rows_cover_schemes_and_sizes() {
        // A tiny budget keeps CI fast; one RF size.
        let rows = fig10_at(&tiny(1_000, 4_000), &[64]);
        // 23 benchmarks x 3 schemes + 2 averages x 3 schemes.
        assert_eq!(rows.len(), 23 * 3 + 6);
        assert!(
            rows.iter().all(|r| r.speedup > 0.1 && r.speedup < 10.0),
            "speedups out of sanity band"
        );
        let avg_int =
            rows.iter().find(|r| r.benchmark == "average-int" && r.scheme == "combined").unwrap();
        assert!(avg_int.speedup > 0.95, "combined should not slow down: {}", avg_int.speedup);
    }

    #[test]
    fn fig15_requires_less_for_early_release() {
        let rows = fig15(&tiny(500, 2_000), 0.10, 64);
        let get = |label: &str| rows.iter().find(|r| r.scheme == label).unwrap().required_rf;
        assert!(get("combined") <= get("baseline"));
        assert!(rows.iter().all(|r| r.required_rf <= 280));
    }

    #[test]
    fn shared_matrix_reproduces_solo_rows() {
        // A figure assembled from a shared (over-provisioned) matrix
        // must produce exactly the rows of its solo wrapper: results
        // are keyed, not positional.
        let sim = tiny(500, 2_000);
        let mut matrix = RunMatrix::new();
        matrix.ensure(&sim.core, &fig13_points(&sim));
        matrix.ensure(&sim.core, &fig11_points(&sim));
        let shared = fig13_assemble(&sim, &matrix);
        let solo_rows = fig13(&sim);
        assert_eq!(shared.len(), solo_rows.len());
        for (a, b) in shared.iter().zip(&solo_rows) {
            assert_eq!(a.class, b.class);
            assert_eq!(a.delay, b.delay);
            assert_eq!(a.speedup.to_bits(), b.speedup.to_bits(), "rows must be bit-identical");
        }
    }
}

#[cfg(test)]
mod ablation_tests {
    use super::*;
    use atr_pipeline::CoreConfig;

    #[test]
    fn counter_width_three_bits_suffice() {
        let sim = SimConfig { core: CoreConfig::default(), warmup: 1_000, measure: 6_000 };
        let rows = ablation_counter_width(&sim);
        let three = rows.iter().find(|r| r.variant == "3-bit").unwrap();
        assert!(
            three.relative_ipc > 0.98,
            "§5.4: a 3-bit counter must track a wide one, got {}",
            three.relative_ipc
        );
    }
}
