//! Top-level simulation configuration (Table 1).

use atr_pipeline::CoreConfig;

/// A full simulation configuration: the core plus measurement windows.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Pipeline/memory/frontend/rename configuration.
    pub core: CoreConfig,
    /// Instructions to warm structures before measuring.
    pub warmup: u64,
    /// Instructions in the measured window.
    pub measure: u64,
}

impl SimConfig {
    /// The paper's Golden-Cove-like configuration (Table 1) with the
    /// environment-controlled measurement budget.
    #[must_use]
    pub fn golden_cove() -> Self {
        let (warmup, measure) = budget_from_env();
        SimConfig { core: CoreConfig::default(), warmup, measure }
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig::golden_cove()
    }
}

/// Reads the measurement budget from `ATR_SIM_WARMUP` / `ATR_SIM_INSTS`,
/// defaulting to a quick 40k/160k pass (the paper simulates 10M-weighted
/// simpoints; scale up for full runs).
///
/// A malformed value is *not* silently swallowed: it falls back to the
/// default with a one-line warning on stderr, so a typo in a sweep
/// script cannot quietly produce default-budget numbers.
#[must_use]
pub fn budget_from_env() -> (u64, u64) {
    (env_u64("ATR_SIM_WARMUP", 40_000), env_u64("ATR_SIM_INSTS", 160_000))
}

/// Reads the `ATR_AUDIT` switch: any value other than unset, empty, or
/// `0` attaches the cycle-level [`atr_core::audit::RenameAuditor`] to
/// every run. CI uses this for an audited tiny-budget pass; it changes
/// no simulation result, only adds checking (and cost), so it is
/// deliberately *not* part of the run-matrix memoization key.
#[must_use]
pub fn audit_from_env() -> bool {
    std::env::var("ATR_AUDIT").is_ok_and(|v| !v.trim().is_empty() && v.trim() != "0")
}

/// Reads the telemetry (observer) configuration from `ATR_TELEMETRY`
/// plus `ATR_TRACE_CAP` / `ATR_TELEMETRY_SERIES`. Telemetry is pure
/// observation — flipping it never changes a simulated result — so,
/// like [`audit_from_env`], it is deliberately *not* part of the
/// run-matrix memoization key.
#[must_use]
pub fn telemetry_from_env() -> atr_telemetry::TelemetryConfig {
    atr_telemetry::TelemetryConfig::from_env()
}

/// Reads the trace-cache location from `ATR_TRACE_CACHE`: unset, empty,
/// or `0` disables trace capture/replay (every point runs a live
/// Oracle); `1` selects the default `trace-cache/` directory under the
/// results dir (itself `ATR_RESULTS_DIR`-relocatable); any other value
/// is an explicit cache directory.
#[must_use]
pub fn trace_cache_from_env() -> Option<std::path::PathBuf> {
    let raw = std::env::var("ATR_TRACE_CACHE").ok()?;
    let raw = raw.trim();
    match raw {
        "" | "0" => None,
        "1" => Some(crate::report::results_dir().join("trace-cache")),
        dir => Some(std::path::PathBuf::from(dir)),
    }
}

/// Reads the `ATR_TRACE_FF` switch: any value other than unset, empty,
/// or `0` makes trace replay fast-forward to the checkpoint frame at or
/// below the warmup target instead of streaming the whole warmup
/// through the pipeline. Off by default because skipping detailed
/// warmup perturbs timing (structures start cold at the checkpoint) —
/// results stay architecturally identical but are no longer
/// cycle-comparable with live runs.
#[must_use]
pub fn trace_ff_from_env() -> bool {
    std::env::var("ATR_TRACE_FF").is_ok_and(|v| !v.trim().is_empty() && v.trim() != "0")
}

/// Reads the `ATR_SIM_PROGRESS` switch: per-point progress lines are on
/// unless the variable is set to `0`.
#[must_use]
pub fn progress_from_env() -> bool {
    std::env::var("ATR_SIM_PROGRESS").map_or(true, |v| v != "0")
}

/// Reads the run-journal location from `ATR_RUN_JOURNAL`: unset, empty,
/// or `0` disables journaling; `1` selects the default `run-journal/`
/// directory under the results dir (itself `ATR_RESULTS_DIR`-
/// relocatable); any other value is an explicit journal directory.
/// Like the trace cache, the journal is a serving layer — flipping it
/// never changes a simulated result — so it is deliberately *not* part
/// of the run-matrix memoization key.
#[must_use]
pub fn journal_from_env() -> Option<std::path::PathBuf> {
    let raw = std::env::var("ATR_RUN_JOURNAL").ok()?;
    let raw = raw.trim();
    match raw {
        "" | "0" => None,
        "1" => Some(crate::report::results_dir().join("run-journal")),
        dir => Some(std::path::PathBuf::from(dir)),
    }
}

/// Reads the `ATR_FAULT_INJECT` chaos hook: a non-empty value makes
/// every point whose label contains it panic inside the worker. Only
/// the CI interrupt-resume gate and the panic-isolation tests set this.
#[must_use]
pub fn fault_injection_from_env() -> Option<String> {
    let raw = std::env::var("ATR_FAULT_INJECT").ok()?;
    let trimmed = raw.trim();
    if trimmed.is_empty() {
        None
    } else {
        Some(trimmed.to_owned())
    }
}

fn env_u64(var: &str, default: u64) -> u64 {
    let Ok(raw) = std::env::var(var) else {
        return default;
    };
    let trimmed = raw.trim();
    match trimmed.parse::<u64>() {
        Ok(v) => v,
        Err(_) => {
            // `ParseIntError::kind` is unstable, so classify by shape:
            // a leading sign is a rejected negative, all-digits that
            // still fail is a u64 overflow, anything else is malformed.
            let why = if trimmed.starts_with('-') {
                "negative values are rejected"
            } else if !trimmed.is_empty() && trimmed.chars().all(|c| c.is_ascii_digit()) {
                "value overflows u64"
            } else {
                "expected an unsigned instruction count"
            };
            atr_telemetry::warn!(
                "ignoring malformed {var}={raw:?} ({why}); using default {default}"
            );
            default
        }
    }
}

/// Renders the Table 1 parameter table from the live configuration, so
/// the printed table cannot drift from the simulated one.
#[must_use]
pub fn table1(cfg: &CoreConfig) -> Vec<(String, String)> {
    let mem = &cfg.mem;
    let mut rows = vec![
        ("CPU".to_owned(), "Golden Cove-like (simulated)".to_owned()),
        (
            "Frontend width and retirement".to_owned(),
            format!("{}-wide fetch/decode, {}-wide retirement", cfg.fetch_width, cfg.retire_width),
        ),
        (
            "Functional Units".to_owned(),
            format!("{} ALU, {} Load, {} Store", cfg.num_alu, cfg.num_load, cfg.num_store),
        ),
        ("Branch Predictor".to_owned(), "TAGE-L (TAGE-SC-L-class) + BTB + ITB + RAS".to_owned()),
        ("Branch Target Buffer (BTB)".to_owned(), format!("{} entries", cfg.bpu.btb_entries)),
        (
            "Indirect Branch Target Buffer".to_owned(),
            format!("{} entries", 1usize << cfg.bpu.indirect_bits),
        ),
        ("ROB".to_owned(), format!("{} entries", cfg.rob_size)),
        ("Reservation Station".to_owned(), format!("{} entries", cfg.rs_size)),
        ("Load Buffer".to_owned(), format!("{} entries", cfg.load_buffer)),
        ("Store Buffer".to_owned(), format!("{} entries", cfg.store_buffer)),
        (
            "Frontend Fetch targets (FT) per cycle".to_owned(),
            format!("{}", cfg.fetch_targets_per_cycle),
        ),
        ("FT block size".to_owned(), format!("{} B", cfg.fetch_block_bytes)),
    ];
    let kib = |b: usize| format!("{} KiB", b >> 10);
    rows.push((
        "L1 instruction cache".to_owned(),
        format!("{}, {}-way", kib(mem.l1i.size_bytes), mem.l1i.ways),
    ));
    rows.push((
        "L1 data cache".to_owned(),
        format!("{}, {}-way", kib(mem.l1d.size_bytes), mem.l1d.ways),
    ));
    rows.push((
        "L2 unified cache".to_owned(),
        format!("{}, {}-way", kib(mem.l2.size_bytes), mem.l2.ways),
    ));
    rows.push((
        "LLC unified cache".to_owned(),
        format!("{}, {}-way", kib(mem.llc.size_bytes), mem.llc.ways),
    ));
    rows.push(("L1 D-cache latency".to_owned(), format!("{} cycles", mem.l1d.latency)));
    rows.push(("L1 I-cache latency".to_owned(), format!("{} cycles", mem.l1i.latency)));
    rows.push(("L2 latency".to_owned(), format!("{} cycles", mem.l2.latency)));
    rows.push(("LLC latency".to_owned(), format!("{} cycles", mem.llc.latency)));
    rows.push(("Memory".to_owned(), format!("DDR4-3200-like ({} channels)", mem.dram.channels)));
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_reflects_the_live_config() {
        let cfg = CoreConfig::default();
        let rows = table1(&cfg);
        let find = |k: &str| {
            rows.iter().find(|(key, _)| key.contains(k)).map(|(_, v)| v.clone()).unwrap_or_default()
        };
        assert_eq!(find("ROB"), "512 entries");
        assert_eq!(find("Reservation"), "160 entries");
        assert!(find("Functional").contains("5 ALU"));
        assert!(find("L1 data").contains("48 KiB"));
        assert!(find("L2 unified").contains("1280 KiB"));
    }

    #[test]
    fn golden_cove_uses_env_budget() {
        let cfg = SimConfig::golden_cove();
        assert!(cfg.warmup > 0 && cfg.measure > 0);
    }

    #[test]
    fn budget_env_parsing_accepts_valid_and_rejects_malformed() {
        // All env manipulation lives in this one test: parallel tests
        // never observe the transient state of these two variables.
        std::env::set_var("ATR_SIM_WARMUP", "1234");
        std::env::set_var("ATR_SIM_INSTS", " 5678 ");
        assert_eq!(budget_from_env(), (1234, 5678));

        std::env::set_var("ATR_SIM_WARMUP", "not-a-number");
        std::env::set_var("ATR_SIM_INSTS", "-5");
        // Malformed and negative values warn on stderr and fall back.
        assert_eq!(budget_from_env(), (40_000, 160_000));

        // A value past u64::MAX is an overflow, not a silent wrap.
        std::env::set_var("ATR_SIM_WARMUP", "99999999999999999999999999");
        std::env::set_var("ATR_SIM_INSTS", "+12");
        assert_eq!(budget_from_env(), (40_000, 12), "leading + is valid u64 syntax");

        std::env::remove_var("ATR_SIM_WARMUP");
        std::env::remove_var("ATR_SIM_INSTS");
        assert_eq!(budget_from_env(), (40_000, 160_000));
    }

    #[test]
    fn trace_env_knobs_parse() {
        // All ATR_TRACE_* manipulation lives in this one test (parallel
        // tests must not observe transient values).
        std::env::remove_var("ATR_TRACE_CACHE");
        std::env::remove_var("ATR_TRACE_FF");
        assert_eq!(trace_cache_from_env(), None);
        assert!(!trace_ff_from_env());

        std::env::set_var("ATR_TRACE_CACHE", "0");
        assert_eq!(trace_cache_from_env(), None);
        std::env::set_var("ATR_TRACE_CACHE", "1");
        let default_dir = trace_cache_from_env().expect("1 selects the default dir");
        assert!(default_dir.ends_with("trace-cache"));
        std::env::set_var("ATR_TRACE_CACHE", "/tmp/custom-traces");
        assert_eq!(trace_cache_from_env(), Some(std::path::PathBuf::from("/tmp/custom-traces")));
        std::env::remove_var("ATR_TRACE_CACHE");

        std::env::set_var("ATR_TRACE_FF", "1");
        assert!(trace_ff_from_env());
        std::env::set_var("ATR_TRACE_FF", "0");
        assert!(!trace_ff_from_env());
        std::env::remove_var("ATR_TRACE_FF");
    }

    #[test]
    fn journal_and_fault_env_knobs_parse() {
        // All ATR_RUN_JOURNAL / ATR_FAULT_INJECT manipulation lives in
        // this one test (parallel tests must not observe transient
        // values).
        std::env::remove_var("ATR_RUN_JOURNAL");
        std::env::remove_var("ATR_FAULT_INJECT");
        assert_eq!(journal_from_env(), None);
        assert_eq!(fault_injection_from_env(), None);

        std::env::set_var("ATR_RUN_JOURNAL", "0");
        assert_eq!(journal_from_env(), None);
        std::env::set_var("ATR_RUN_JOURNAL", "1");
        let default_dir = journal_from_env().expect("1 selects the default dir");
        assert!(default_dir.ends_with("run-journal"));
        std::env::set_var("ATR_RUN_JOURNAL", "/tmp/custom-journal");
        assert_eq!(journal_from_env(), Some(std::path::PathBuf::from("/tmp/custom-journal")));
        std::env::remove_var("ATR_RUN_JOURNAL");

        std::env::set_var("ATR_FAULT_INJECT", "  ");
        assert_eq!(fault_injection_from_env(), None, "blank needle is off");
        std::env::set_var("ATR_FAULT_INJECT", "505.mcf_r");
        assert_eq!(fault_injection_from_env().as_deref(), Some("505.mcf_r"));
        std::env::remove_var("ATR_FAULT_INJECT");
    }
}
