//! Plain-text table rendering and JSON result persistence for the
//! experiment binaries.

use atr_json::ToJson;
use atr_telemetry::{CpiBucket, CpiStack};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Renders rows of cells as an aligned plain-text table.
///
/// # Examples
///
/// ```
/// use atr_sim::report::render_table;
///
/// let t = render_table(
///     &["benchmark", "ipc"],
///     &[vec!["505.mcf_r".to_owned(), "0.21".to_owned()]],
/// );
/// assert!(t.contains("505.mcf_r"));
/// ```
#[must_use]
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let ncols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(ncols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let write_row = |out: &mut String, cells: &[String]| {
        for (i, cell) in cells.iter().enumerate().take(ncols) {
            let _ = write!(out, "{:<width$}  ", cell, width = widths[i]);
        }
        out.push('\n');
    };
    write_row(&mut out, &headers.iter().map(|s| (*s).to_owned()).collect::<Vec<_>>());
    let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    write_row(&mut out, &sep);
    for row in rows {
        write_row(&mut out, row);
    }
    out
}

/// Formats a ratio as a percentage with two decimals.
#[must_use]
pub fn pct(x: f64) -> String {
    format!("{:.2}%", x * 100.0)
}

/// Formats a speedup ratio as a signed percentage gain.
#[must_use]
pub fn gain(speedup: f64) -> String {
    format!("{:+.2}%", (speedup - 1.0) * 100.0)
}

/// Renders labeled CPI stacks side by side: one row per top-down
/// bucket (slot share as a percentage, zero rows elided when no stack
/// uses them) plus a closing `cpi` row.
#[must_use]
pub fn cpi_table(stacks: &[(String, &CpiStack)]) -> String {
    let mut headers = vec!["bucket"];
    for (name, _) in stacks {
        headers.push(name);
    }
    let mut rows: Vec<Vec<String>> = Vec::new();
    for bucket in CpiBucket::ALL {
        if stacks.iter().all(|(_, s)| s.get(bucket) == 0) {
            continue;
        }
        let mut row = vec![bucket.label().to_owned()];
        for (_, stack) in stacks {
            row.push(pct(stack.fraction(bucket)));
        }
        rows.push(row);
    }
    let mut cpi_row = vec!["cpi".to_owned()];
    for (_, stack) in stacks {
        let retired = stack.get(CpiBucket::Retiring).max(1);
        #[allow(clippy::cast_precision_loss)]
        cpi_row.push(format!("{:.3}", stack.cycles as f64 / retired as f64));
    }
    rows.push(cpi_row);
    render_table(&headers, &rows)
}

/// The explicit degraded-coverage marker for a pass with failed
/// points: `Some("7/832 points failed; figures cover the surviving
/// set")`, `None` when everything succeeded. Drivers print it under
/// their tables so a partial pass can never masquerade as a complete
/// one.
#[must_use]
pub fn coverage_marker(failed: usize, requested: usize) -> Option<String> {
    if failed == 0 {
        None
    } else {
        Some(format!("{failed}/{requested} points failed; figures cover the surviving set"))
    }
}

/// The directory experiment JSON lands in: `ATR_RESULTS_DIR` if set,
/// otherwise `<workspace root>/results` — so the binaries write to the
/// same place no matter which directory they are launched from.
#[must_use]
pub fn results_dir() -> PathBuf {
    if let Some(dir) = std::env::var_os("ATR_RESULTS_DIR") {
        return PathBuf::from(dir);
    }
    // crates/sim/ -> workspace root, resolved at compile time.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crate dir has a workspace root")
        .join("results")
}

/// Persists experiment rows as JSON under [`results_dir`] (created on
/// demand), returning the written path.
///
/// # Errors
///
/// Returns any I/O error from creating the directory or writing.
pub fn save_json<T: ToJson + ?Sized>(name: &str, rows: &T) -> std::io::Result<PathBuf> {
    let dir = results_dir();
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{name}.json"));
    std::fs::write(&path, rows.to_json().pretty())?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment_pads_columns() {
        let t = render_table(
            &["a", "bench"],
            &[vec!["1".to_owned(), "x".to_owned()], vec!["22".to_owned(), "yy".to_owned()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("a "));
        assert!(lines[1].starts_with("--"));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.1234), "12.34%");
        assert_eq!(gain(1.0513), "+5.13%");
        assert_eq!(gain(0.97), "-3.00%");
    }

    #[test]
    fn cpi_table_shares_and_elides_zero_buckets() {
        let mut a = CpiStack::new(8);
        a.account_cycle(8, CpiBucket::Retiring); // full retire
        a.account_cycle(0, CpiBucket::MemDram);
        let mut b = CpiStack::new(8);
        b.account_cycle(4, CpiBucket::FreelistStall);
        let t = cpi_table(&[("base".to_owned(), &a), ("atr".to_owned(), &b)]);
        assert!(t.contains("retiring"));
        assert!(t.contains("mem_dram"));
        assert!(t.contains("freelist_stall"));
        assert!(!t.contains("serialization"), "all-zero buckets are elided:\n{t}");
        assert!(t.lines().last().unwrap().starts_with("cpi"));
        // base: 2 cycles / 8 retired = 0.25 CPI.
        assert!(t.contains("0.250"), "{t}");
    }

    #[test]
    fn coverage_marker_is_silent_on_full_coverage() {
        assert_eq!(coverage_marker(0, 832), None);
        let m = coverage_marker(7, 832).unwrap();
        assert!(m.contains("7/832"), "{m}");
    }

    #[test]
    fn results_dir_override_and_fallback() {
        // One test covers both paths so no parallel test observes the
        // transient env-var state.
        let dir = std::env::temp_dir().join("atr_sim_report_test");
        std::env::set_var("ATR_RESULTS_DIR", &dir);
        let path = save_json("unit_test_rows", &vec![1.5f64, 2.0]).unwrap();
        std::env::remove_var("ATR_RESULTS_DIR");
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.contains("1.5"));
        assert!(path.starts_with(&dir));
        let _ = std::fs::remove_dir_all(&dir);

        let fallback = results_dir();
        assert!(fallback.ends_with("results"));
        assert!(fallback.parent().unwrap().join("Cargo.toml").exists());
    }
}
