//! The run-matrix engine: declarative simulation points, global
//! deduplication, and a memoizing result cache.
//!
//! Every experiment in [`crate::experiments`] is a pure function of a
//! set of simulation points. A [`SimPoint`] is the complete key of one
//! measured run — `profile × scheme × rf_size × collect_events ×
//! budget × core tweaks` — and a [`RunMatrix`] memoizes [`RunResult`]s
//! by that key. Figures declare the points they need (`figNN_points`),
//! the matrix executes the *unique* ones (in parallel, see
//! [`crate::executor`]), and assembly reads results back by key — so
//! rows are bit-identical to the old serial loops while shared points
//! (the baselines that fig01/fig10/fig11/fig15 all re-ran) simulate
//! exactly once per pass.

use crate::executor::{self, PointFailure};
use crate::runner::RunResult;
use crate::session::Session;
use atr_core::ReleaseScheme;
use atr_pipeline::CoreConfig;
use std::collections::HashMap;

/// Optional overrides a point applies to the base [`CoreConfig`] —
/// the knobs the ablation studies sweep. `None` keeps the base value,
/// so tweaked and untweaked points hash to different keys only when
/// they genuinely differ.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct CoreTweak {
    /// Override `rename.move_elimination` (§6 ablation).
    pub move_elimination: Option<bool>,
    /// Override `rename.counter_width` (§5.4 ablation).
    pub counter_width: Option<u32>,
}

impl CoreTweak {
    /// Is this the identity tweak?
    #[must_use]
    pub fn is_neutral(&self) -> bool {
        *self == CoreTweak::default()
    }

    /// Applies the overrides to a core configuration.
    pub fn apply(&self, cfg: &mut CoreConfig) {
        if let Some(me) = self.move_elimination {
            cfg.rename.move_elimination = me;
        }
        if let Some(w) = self.counter_width {
            cfg.rename.counter_width = w;
        }
    }
}

/// The complete key of one measured simulation run.
///
/// Two points with equal keys produce bit-identical [`RunResult`]s
/// (the simulator is deterministic), which is what makes global
/// memoization sound.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SimPoint {
    /// SPEC profile name (resolved via `atr_workload::spec`).
    pub profile: &'static str,
    /// Release scheme under test.
    pub scheme: ReleaseScheme,
    /// Physical register file size.
    pub rf_size: usize,
    /// Collect the per-allocation lifetime log.
    pub collect_events: bool,
    /// Warmup instructions (not measured).
    pub warmup: u64,
    /// Measured instructions.
    pub measure: u64,
    /// Ablation overrides applied on top of the base core config.
    pub tweak: CoreTweak,
}

impl SimPoint {
    /// A point with the given run parameters and no tweaks or events.
    #[must_use]
    pub fn new(
        profile: &'static str,
        scheme: ReleaseScheme,
        rf_size: usize,
        warmup: u64,
        measure: u64,
    ) -> Self {
        SimPoint {
            profile,
            scheme,
            rf_size,
            collect_events: false,
            warmup,
            measure,
            tweak: CoreTweak::default(),
        }
    }

    /// Enables lifetime-event collection.
    #[must_use]
    pub fn with_events(mut self) -> Self {
        self.collect_events = true;
        self
    }

    /// Attaches ablation overrides.
    #[must_use]
    pub fn with_tweak(mut self, tweak: CoreTweak) -> Self {
        self.tweak = tweak;
        self
    }

    /// The canonical form of this point against a base configuration:
    /// tweak overrides equal to the base value are the identity and are
    /// dropped, so e.g. the counter-width ablation's default-width
    /// variant shares a key with the untweaked sweep point it
    /// duplicates.
    #[must_use]
    pub fn canonical(&self, core: &CoreConfig) -> SimPoint {
        let mut p = self.clone();
        if p.tweak.move_elimination == Some(core.rename.move_elimination) {
            p.tweak.move_elimination = None;
        }
        if p.tweak.counter_width == Some(core.rename.counter_width) {
            p.tweak.counter_width = None;
        }
        p
    }

    /// The memoization key as a string: the `Debug` rendering of the
    /// complete point. The run journal stores results under this key,
    /// so a future field added to `SimPoint` (which must change the
    /// rendering) safely misses old journal records instead of serving
    /// stale ones.
    #[must_use]
    pub fn memo_key(&self) -> String {
        format!("{self:?}")
    }

    /// One-line human label for progress output.
    #[must_use]
    pub fn label(&self) -> String {
        let mut s = format!("{} {}@{}", self.profile, self.scheme.label(), self.rf_size);
        if self.collect_events {
            s.push_str(" +events");
        }
        if let Some(me) = self.tweak.move_elimination {
            s.push_str(if me { " +move-elim" } else { " -move-elim" });
        }
        if let Some(w) = self.tweak.counter_width {
            s.push_str(&format!(" ctr={w}"));
        }
        s
    }
}

/// A memoizing, deduplicating executor of simulation points.
///
/// Feed it point sets with [`RunMatrix::ensure`]; read results back by
/// key with [`RunMatrix::get`] / [`RunMatrix::ipc`]. A matrix shared
/// across figures (as `all_experiments` does) deduplicates globally:
/// a baseline point requested by four figures simulates once.
#[derive(Debug, Default)]
pub struct RunMatrix {
    cache: HashMap<SimPoint, RunResult>,
    /// Requested keys served by a different cached key (canonicalized
    /// tweaks, events-superset runs).
    alias: HashMap<SimPoint, SimPoint>,
    /// Points that produced a structured failure instead of a result
    /// (panicked past retries, unknown profile). Kept so assemblies can
    /// degrade to the surviving set and reports can say `n/m failed`.
    failures: HashMap<SimPoint, PointFailure>,
    requested: usize,
    executed: usize,
}

impl RunMatrix {
    /// An empty matrix.
    #[must_use]
    pub fn new() -> Self {
        RunMatrix::default()
    }

    /// Makes every point in `points` available in the cache, executing
    /// the not-yet-cached unique subset in parallel. Results are stored
    /// by key, so the outcome is independent of execution order and of
    /// the worker count.
    ///
    /// Two requested keys that cannot produce different results are
    /// collapsed onto one simulation:
    ///
    /// * tweaks are canonicalized against `core` (see
    ///   [`SimPoint::canonical`]);
    /// * a non-events point whose `.with_events()` twin is also in the
    ///   matrix is served by the twin — event collection is
    ///   observation-only and never perturbs timing (pinned by
    ///   `executor::tests::event_collection_does_not_change_timing`).
    pub fn ensure(&mut self, core: &CoreConfig, points: &[SimPoint]) {
        self.ensure_with(&Session::from_env(), core, points);
    }

    /// [`RunMatrix::ensure`] against an explicit [`Session`] — the
    /// environment is consulted exactly zero times, so library callers
    /// and tests get deterministic sessions, and drivers resolve
    /// `Session::from_env()` once at entry instead of per batch.
    ///
    /// A point that fails (panics past its retry budget, or names an
    /// unknown profile) is recorded in the failure set instead of
    /// aborting the batch; it is not retried by later `ensure` calls in
    /// the same process (the simulator is deterministic — it would fail
    /// again).
    pub fn ensure_with(&mut self, session: &Session, core: &CoreConfig, points: &[SimPoint]) {
        self.requested += points.len();
        // Events-enabled keys that will exist after this call, from the
        // cache and from this batch.
        let canon: Vec<SimPoint> = points.iter().map(|p| p.canonical(core)).collect();
        let mut with_events: std::collections::HashSet<SimPoint> =
            self.cache.keys().filter(|k| k.collect_events).cloned().collect();
        with_events.extend(canon.iter().filter(|p| p.collect_events).cloned());

        let mut missing: Vec<SimPoint> = Vec::new();
        let mut seen: std::collections::HashSet<SimPoint> = std::collections::HashSet::new();
        for (orig, mut key) in points.iter().zip(canon) {
            if !key.collect_events && with_events.contains(&key.clone().with_events()) {
                key = key.with_events();
            }
            if *orig != key {
                self.alias.insert(orig.clone(), key.clone());
            }
            if !self.cache.contains_key(&key)
                && !self.failures.contains_key(&key)
                && seen.insert(key.clone())
            {
                missing.push(key);
            }
        }
        if missing.is_empty() {
            return;
        }
        self.executed += missing.len();
        let outcomes = executor::execute_session(session, core, &missing);
        for (point, outcome) in missing.into_iter().zip(outcomes) {
            match outcome {
                Ok(result) => {
                    self.cache.insert(point, result);
                }
                Err(failure) => {
                    self.failures.insert(point, failure);
                }
            }
        }
    }

    /// The cached result for a point, or `None` if the point was
    /// ensured but **failed** (assemblies use this to degrade to the
    /// surviving set instead of panicking on a poisoned point).
    ///
    /// # Panics
    ///
    /// Panics if the point was never [`RunMatrix::ensure`]d — that is a
    /// bug in the calling figure's `points()` declaration, not a
    /// runtime failure, so it stays loud.
    #[must_use]
    pub fn try_get(&self, point: &SimPoint) -> Option<&RunResult> {
        let key = self.alias.get(point).unwrap_or(point);
        if let Some(result) = self.cache.get(key) {
            return Some(result);
        }
        if self.failures.contains_key(key) {
            return None;
        }
        panic!("point not ensured before assembly: {}", point.label())
    }

    /// Convenience: the cached IPC of a point, `None` if it failed.
    #[must_use]
    pub fn try_ipc(&self, point: &SimPoint) -> Option<f64> {
        self.try_get(point).map(|r| r.ipc)
    }

    /// The cached result for a point.
    ///
    /// # Panics
    ///
    /// Panics if the point was never [`RunMatrix::ensure`]d or if it
    /// failed — callers that can degrade use [`RunMatrix::try_get`].
    #[must_use]
    pub fn get(&self, point: &SimPoint) -> &RunResult {
        self.try_get(point).unwrap_or_else(|| {
            let key = self.alias.get(point).unwrap_or(point);
            panic!("point failed: {}", self.failures[key])
        })
    }

    /// Convenience: the cached IPC of a point.
    #[must_use]
    pub fn ipc(&self, point: &SimPoint) -> f64 {
        self.get(point).ipc
    }

    /// Number of ensured points that failed.
    #[must_use]
    pub fn failed(&self) -> usize {
        self.failures.len()
    }

    /// The failure records, for reporting.
    pub fn failures(&self) -> impl Iterator<Item = (&SimPoint, &PointFailure)> {
        self.failures.iter()
    }

    /// Points requested across all `ensure` calls, duplicates included —
    /// what a naive serial pass would have simulated.
    #[must_use]
    pub fn requested(&self) -> usize {
        self.requested
    }

    /// Points actually simulated (unique, after memoization).
    #[must_use]
    pub fn executed(&self) -> usize {
        self.executed
    }

    /// One-line dedup summary for pass-level logging.
    #[must_use]
    pub fn summary(&self) -> String {
        let saved = self.requested - self.executed;
        let mut s = format!(
            "{} points requested, {} simulated ({} deduplicated, {:.2}x)",
            self.requested,
            self.executed,
            saved,
            self.requested as f64 / self.executed.max(1) as f64
        );
        if !self.failures.is_empty() {
            s.push_str(&format!(", {} FAILED", self.failures.len()));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn points_key_on_every_field() {
        let base = SimPoint::new("505.mcf_r", ReleaseScheme::Baseline, 64, 100, 400);
        let mut set = std::collections::HashSet::new();
        set.insert(base.clone());
        assert!(set.contains(&base.clone()));
        assert!(!set.contains(&SimPoint { rf_size: 96, ..base.clone() }));
        assert!(!set.contains(&base.clone().with_events()));
        assert!(!set.contains(
            &base.clone().with_tweak(CoreTweak { counter_width: Some(3), ..CoreTweak::default() })
        ));
        assert!(!set.contains(&SimPoint {
            scheme: ReleaseScheme::Atr { redefine_delay: 1 },
            ..base.clone()
        }));
        assert!(!set.contains(&SimPoint { measure: 401, ..base }));
    }

    #[test]
    fn neutral_tweak_is_identity() {
        let mut cfg = CoreConfig::default();
        let before = cfg.clone();
        CoreTweak::default().apply(&mut cfg);
        assert_eq!(format!("{before:?}"), format!("{cfg:?}"));
        assert!(CoreTweak::default().is_neutral());

        let tweak = CoreTweak { counter_width: Some(2), move_elimination: Some(true) };
        tweak.apply(&mut cfg);
        assert_eq!(cfg.rename.counter_width, 2);
        assert!(cfg.rename.move_elimination);
        assert!(!tweak.is_neutral());
    }

    #[test]
    fn matrix_deduplicates_within_and_across_ensure_calls() {
        let core = CoreConfig::default();
        let a = SimPoint::new("505.mcf_r", ReleaseScheme::Baseline, 64, 50, 200);
        let b = SimPoint::new("505.mcf_r", ReleaseScheme::NonSpecEr, 64, 50, 200);
        let mut m = RunMatrix::new();
        m.ensure(&core, &[a.clone(), b.clone(), a.clone()]);
        assert_eq!(m.requested(), 3);
        assert_eq!(m.executed(), 2);
        m.ensure(&core, &[a.clone(), b.clone()]);
        assert_eq!(m.requested(), 5);
        assert_eq!(m.executed(), 2, "second ensure must be fully cached");
        assert!(m.ipc(&a) > 0.0);
        assert!(m.summary().contains("5 points requested, 2 simulated"));
    }

    #[test]
    #[should_panic(expected = "not ensured")]
    fn get_of_unensured_point_panics() {
        let m = RunMatrix::new();
        let _ = m.get(&SimPoint::new("505.mcf_r", ReleaseScheme::Baseline, 64, 10, 20));
    }

    #[test]
    fn memo_key_covers_every_field() {
        let base = SimPoint::new("505.mcf_r", ReleaseScheme::Baseline, 64, 100, 400);
        assert_eq!(base.memo_key(), base.clone().memo_key());
        assert_ne!(base.memo_key(), base.clone().with_events().memo_key());
        assert_ne!(base.memo_key(), SimPoint { rf_size: 96, ..base.clone() }.memo_key());
        assert_ne!(
            base.memo_key(),
            base.clone()
                .with_tweak(CoreTweak { counter_width: Some(3), ..CoreTweak::default() })
                .memo_key()
        );
    }

    #[test]
    fn failed_points_degrade_instead_of_poisoning_the_matrix() {
        let core = CoreConfig::default();
        let good = SimPoint::new("548.exchange2_r", ReleaseScheme::Baseline, 64, 50, 200);
        let bad = SimPoint::new("505.mcf_r", ReleaseScheme::Baseline, 64, 50, 200);
        let session = Session::default().quiet().with_retries(0).with_fault_injection("505.mcf_r");
        let mut m = RunMatrix::new();
        m.ensure_with(&session, &core, &[good.clone(), bad.clone()]);
        assert_eq!(m.failed(), 1);
        assert!(m.try_ipc(&good).is_some(), "the healthy point survives its poisoned sibling");
        assert_eq!(m.try_ipc(&bad), None);
        assert!(m.summary().contains("1 FAILED"), "{}", m.summary());
        // A later ensure must not re-run the deterministic failure.
        m.ensure_with(&session, &core, std::slice::from_ref(&bad));
        assert_eq!(m.executed(), 2, "the failed point is not retried across ensure calls");
        let (_, failure) = m.failures().next().expect("failure record kept");
        assert!(failure.payload.contains("injected fault"), "{}", failure.payload);
    }

    #[test]
    fn tweak_equal_to_base_config_is_canonicalized_away() {
        let core = CoreConfig::default();
        let plain =
            SimPoint::new("505.mcf_r", ReleaseScheme::Atr { redefine_delay: 0 }, 64, 50, 200);
        // The base config's own counter width / move-elim setting,
        // spelled as an explicit override: the identity tweak.
        let spelled = plain.clone().with_tweak(CoreTweak {
            counter_width: Some(core.rename.counter_width),
            move_elimination: Some(core.rename.move_elimination),
        });
        assert_eq!(spelled.canonical(&core), plain);
        // A genuinely different override survives canonicalization.
        let different =
            plain.clone().with_tweak(CoreTweak { counter_width: Some(8), ..CoreTweak::default() });
        assert_eq!(different.canonical(&core), different);

        let mut m = RunMatrix::new();
        m.ensure(&core, &[plain.clone(), spelled.clone()]);
        assert_eq!(m.executed(), 1, "identity tweak must share the untweaked simulation");
        assert_eq!(m.ipc(&plain).to_bits(), m.ipc(&spelled).to_bits());
    }

    #[test]
    fn non_events_point_is_served_by_its_events_twin() {
        let core = CoreConfig::default();
        let plain = SimPoint::new("505.mcf_r", ReleaseScheme::Baseline, 64, 50, 200);
        let events = plain.clone().with_events();
        let mut m = RunMatrix::new();
        m.ensure(&core, &[plain.clone(), events.clone()]);
        assert_eq!(m.executed(), 1, "the events run subsumes the plain one");
        assert_eq!(m.ipc(&plain).to_bits(), m.ipc(&events).to_bits());
        assert!(!m.get(&events).lifetimes.is_empty());
        // The upgrade also applies across ensure calls (twin cached first).
        let plain2 = SimPoint::new("548.exchange2_r", ReleaseScheme::Baseline, 64, 50, 200);
        m.ensure(&core, &[plain2.clone().with_events()]);
        m.ensure(&core, std::slice::from_ref(&plain2));
        assert_eq!(m.executed(), 2);
        assert!(m.ipc(&plain2) > 0.0);
    }
}
