//! Cross-scheme differential validation.
//!
//! All four release schemes are pure *timing* mechanisms: whatever they
//! do to physical registers, the retired architectural stream must be
//! bit-identical across schemes and must equal the functional ground
//! truth the [`Oracle`] replays. A scheme that frees a register too
//! early shows up here as a diverged retired instruction long before it
//! would corrupt a figure — and a seeded run pins the exact program
//! that exposed it.
//!
//! [`run_differential`] runs one program under every scheme with the
//! retire log enabled, then checks:
//!
//! 1. every stream retires at least the requested instruction count;
//! 2. every stream's `oracle_idx` sequence is exactly `0, 1, 2, …` —
//!    nothing skipped, nothing retired twice (exceptions re-execute,
//!    but retire once);
//! 3. every stream matches the oracle's functional replay — PC,
//!    successor PC, taken bit, and memory address;
//! 4. all streams are elementwise identical to the baseline scheme's.
//!
//! Checks 2–3 make check 4 sharp: four schemes agreeing on a *wrong*
//! stream cannot pass, because the oracle replay is computed without a
//! pipeline at all.

use atr_core::ReleaseScheme;
use atr_pipeline::{CoreConfig, OooCore, RetiredInst};
use atr_trace::{capture, TraceReplay};
use atr_workload::{Oracle, Program};
use std::sync::Arc;

/// One scheme's captured run.
#[derive(Debug, Clone)]
pub struct SchemeStream {
    /// The scheme that produced this stream.
    pub scheme: ReleaseScheme,
    /// Retired instructions, in commit order.
    pub retired: Vec<RetiredInst>,
    /// Cycles the run took (differs across schemes; the *stream* must
    /// not).
    pub cycles: u64,
    /// Cycles the attached auditor checked (0 when auditing is off).
    pub audit_cycles: u64,
}

/// The outcome of a clean differential run.
#[derive(Debug, Clone)]
pub struct DifferentialReport {
    /// Per-scheme captures, in [`ReleaseScheme::ALL`] order.
    pub streams: Vec<SchemeStream>,
    /// Retired instructions compared across every pair of streams.
    pub compared: usize,
}

/// Runs `program` for `insts` retired instructions under every release
/// scheme and cross-validates the retired streams (see the [module
/// docs](self)). `audit` additionally attaches the cycle-level
/// invariant auditor to every run.
///
/// # Errors
///
/// Returns a description of the first divergence found: which scheme,
/// which retired index, and both versions of the instruction.
pub fn run_differential(
    base: &CoreConfig,
    program: &Arc<Program>,
    insts: u64,
    audit: bool,
) -> Result<DifferentialReport, String> {
    let mut streams = Vec::new();
    for scheme in ReleaseScheme::ALL {
        let cfg = base.clone().with_scheme(scheme).with_audit(audit);
        let mut core = OooCore::new(cfg, Oracle::new(program.clone()));
        core.enable_retire_log();
        let stats = core.run(insts);
        let audit_cycles = core.auditor().map_or(0, |a| a.cycles_checked());
        let retired = core.retire_log().to_vec();
        if (retired.len() as u64) < insts {
            return Err(format!(
                "{}: retired only {} of the requested {insts} instructions \
                 ({} cycles — likely a deadlock guard or cycle cap)",
                scheme.label(),
                retired.len(),
                stats.cycles
            ));
        }
        streams.push(SchemeStream { scheme, retired, cycles: stats.cycles, audit_cycles });
    }

    // Functional ground truth, replayed without any pipeline.
    let mut oracle = Oracle::new(program.clone());
    for stream in &streams {
        let label = stream.scheme.label();
        for (i, r) in stream.retired.iter().enumerate() {
            if r.oracle_idx != i as u64 {
                return Err(format!(
                    "{label}: retired index {i} carries oracle_idx {} — the architectural \
                     stream skipped or repeated an instruction",
                    r.oracle_idx
                ));
            }
            let truth = oracle.get(r.oracle_idx);
            let (pc, next_pc, taken, mem_addr) =
                (truth.sinst.pc, truth.next_pc(), truth.taken(), truth.outcome.mem_addr);
            if (r.pc, r.next_pc, r.taken, r.mem_addr) != (pc, next_pc, taken, mem_addr) {
                return Err(format!(
                    "{label}: retired index {i} diverged from the oracle: \
                     got pc={:#x} next={:#x} taken={} mem={:?}, \
                     expected pc={pc:#x} next={next_pc:#x} taken={taken} mem={mem_addr:?}",
                    r.pc, r.next_pc, r.taken, r.mem_addr
                ));
            }
        }
    }

    // Cross-scheme identity against the baseline stream.
    let (reference, others) = streams.split_first().expect("ALL is non-empty");
    let mut compared = 0usize;
    for stream in others {
        let n = reference.retired.len().min(stream.retired.len());
        for i in 0..n {
            let (a, b) = (&reference.retired[i], &stream.retired[i]);
            if a != b {
                return Err(format!(
                    "retired stream diverged at index {i}: {} retired {a:?}, {} retired {b:?}",
                    reference.scheme.label(),
                    stream.scheme.label()
                ));
            }
        }
        compared += n;
    }
    Ok(DifferentialReport { streams, compared })
}

/// Capture→replay differential: captures `program`'s stream to a trace
/// under `dir`, then runs every release scheme twice — once on the live
/// [`Oracle`], once on a [`TraceReplay`] of the capture — and compares
/// the two retired streams element-wise, plus cycle counts (replay must
/// be *bit*-identical, timing included). Returns the retired
/// instructions compared.
///
/// # Errors
///
/// Returns a description of the first divergence (scheme, retired
/// index, both versions), or of a capture/open failure.
pub fn verify_capture_replay(
    base: &CoreConfig,
    program: &Arc<Program>,
    insts: u64,
    dir: &std::path::Path,
) -> Result<usize, String> {
    std::fs::create_dir_all(dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
    let path = dir.join("capture_replay.atrt");
    // Size the capture like the executor does: past the last retired
    // index by the in-flight window.
    let records = insts + 2 * base.rob_size as u64 + 8192;
    capture(program, "capture_replay", records, 256, &path)
        .map_err(|e| format!("capture failed: {e}"))?;

    let mut compared = 0usize;
    for scheme in ReleaseScheme::ALL {
        let run = |replayed: bool| -> Result<(Vec<RetiredInst>, u64), String> {
            let cfg = base.clone().with_scheme(scheme);
            let mut core = if replayed {
                let replay = TraceReplay::open(&path, program.clone())
                    .map_err(|e| format!("opening the capture: {e}"))?;
                OooCore::with_source(cfg, Box::new(replay))
            } else {
                OooCore::new(cfg, Oracle::new(program.clone()))
            };
            core.enable_retire_log();
            let stats = core.run(insts);
            Ok((core.retire_log().to_vec(), stats.cycles))
        };
        let label = scheme.label();
        let (live, live_cycles) = run(false)?;
        let (replayed, replayed_cycles) = run(true)?;
        if live_cycles != replayed_cycles {
            return Err(format!(
                "{label}: live run took {live_cycles} cycles but replay took \
                 {replayed_cycles} — replay is not timing-identical"
            ));
        }
        if live.len() != replayed.len() {
            return Err(format!(
                "{label}: live retired {} instructions but replay retired {}",
                live.len(),
                replayed.len()
            ));
        }
        for (i, (a, b)) in live.iter().zip(&replayed).enumerate() {
            if a != b {
                return Err(format!(
                    "{label}: retired index {i} diverged between substrates: \
                     live {a:?}, replay {b:?}"
                ));
            }
        }
        compared += live.len();
    }
    Ok(compared)
}

#[cfg(test)]
mod tests {
    use super::*;
    use atr_workload::ProfileParams;

    #[test]
    fn default_profile_streams_agree() {
        let program = ProfileParams { seed: 99, ..ProfileParams::default() }.build();
        let report = run_differential(&CoreConfig::default(), &program, 4_000, false)
            .expect("schemes must retire identical streams");
        assert_eq!(report.streams.len(), ReleaseScheme::ALL.len());
        assert!(report.compared >= 3 * 4_000);
        assert_eq!(report.streams[0].audit_cycles, 0, "audit was off");
    }

    #[test]
    fn capture_replay_is_bit_identical_across_schemes() {
        let program = ProfileParams { seed: 41, ..ProfileParams::default() }.build();
        let dir =
            std::env::temp_dir().join(format!("atr_diff_capture_replay_{}", std::process::id()));
        let compared = verify_capture_replay(&CoreConfig::default(), &program, 2_000, &dir)
            .expect("replayed runs must match live runs bit-for-bit");
        assert!(compared >= ReleaseScheme::ALL.len() * 2_000);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn audited_differential_checks_cycles() {
        let program = ProfileParams { seed: 7, ..ProfileParams::default() }.build();
        let report =
            run_differential(&CoreConfig::default().with_rf_size(72), &program, 2_000, true)
                .expect("audited run stays clean");
        for s in &report.streams {
            assert!(s.audit_cycles > 0, "{}: auditor never ran", s.scheme.label());
        }
    }
}
