//! The typed execution session: every runtime knob resolved **once**.
//!
//! Before this module existed, the executor re-read
//! `ATR_AUDIT`/`ATR_TELEMETRY` per point *inside worker threads*, which
//! wasted syscalls and let parallel tests race on transient env state.
//! A [`Session`] is the one place the environment is consulted:
//! [`Session::from_env`] resolves every `ATR_*` variable at the
//! executor/driver entry, and the resolved struct is threaded
//! explicitly through [`crate::executor::execute_session`] and
//! [`crate::matrix::RunMatrix::ensure_with`]. No `std::env` read
//! remains inside the per-point worker path.
//!
//! Every field is also settable in code (builder style), so tests and
//! library users get deterministic sessions with no env coupling at
//! all. The `ATR_*` names remain the compatibility surface — see the
//! README's environment-variable reference table.

use atr_telemetry::TelemetryConfig;
use std::path::{Path, PathBuf};

/// Bounded retry count for a panicking point before it becomes a
/// structured [`crate::executor::PointFailure`]: the first attempt plus
/// this many retries. Deterministic panics fail fast; transient ones
/// (exhausted file descriptors during capture, say) get a second
/// chance.
pub const DEFAULT_RETRIES: u32 = 1;

/// All runtime knobs of one execution pass, resolved up front.
///
/// Nothing in here may change a simulated result: threads, progress,
/// audit, telemetry, the trace cache, and the run journal are all
/// serving/observation concerns, which is why none of them is part of
/// the [`crate::matrix::SimPoint`] memoization key and why fingerprints
/// are bit-identical under every setting.
#[derive(Debug, Clone, PartialEq)]
pub struct Session {
    /// Worker threads for the point pool and trace capture
    /// (`ATR_SIM_THREADS`; default: available cores).
    pub threads: usize,
    /// Per-point progress lines on stderr (`ATR_SIM_PROGRESS`, on by
    /// default).
    pub progress: bool,
    /// Attach the cycle-level rename/release auditor (`ATR_AUDIT`).
    pub audit: bool,
    /// Observer configuration (`ATR_TELEMETRY` plus its satellites).
    pub telemetry: TelemetryConfig,
    /// Trace capture/replay cache directory (`ATR_TRACE_CACHE`).
    pub trace_cache: Option<PathBuf>,
    /// Fast-forward replays to the warmup checkpoint (`ATR_TRACE_FF`).
    pub trace_ff: bool,
    /// Run-journal directory for fault-tolerant resume
    /// (`ATR_RUN_JOURNAL`; off by default).
    pub journal: Option<PathBuf>,
    /// Retries (beyond the first attempt) for a panicking point.
    pub retries: u32,
    /// Chaos hook (`ATR_FAULT_INJECT`): any point whose label contains
    /// this substring panics inside the worker. Exercises the panic
    /// isolation path in tests and CI; never set it in a real run.
    pub fault_injection: Option<String>,
}

impl Default for Session {
    /// An env-free session: machine parallelism, progress on,
    /// everything else off.
    fn default() -> Self {
        Session {
            threads: crate::executor::thread_count_default(),
            progress: true,
            audit: false,
            telemetry: TelemetryConfig::default(),
            trace_cache: None,
            trace_ff: false,
            journal: None,
            retries: DEFAULT_RETRIES,
            fault_injection: None,
        }
    }
}

impl Session {
    /// Resolves every `ATR_*` knob from the environment, once. This is
    /// the compatibility surface: the variable names and their parsing
    /// are unchanged from the scattered `*_from_env()` era — they are
    /// just read at one entry point instead of per worker iteration.
    #[must_use]
    pub fn from_env() -> Self {
        Session {
            threads: crate::executor::thread_count(),
            progress: crate::config::progress_from_env(),
            audit: crate::config::audit_from_env(),
            telemetry: crate::config::telemetry_from_env(),
            trace_cache: crate::config::trace_cache_from_env(),
            trace_ff: crate::config::trace_ff_from_env(),
            journal: crate::config::journal_from_env(),
            retries: DEFAULT_RETRIES,
            fault_injection: crate::config::fault_injection_from_env(),
        }
    }

    /// Overrides the worker count (1 = serial).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Silences per-point progress lines.
    #[must_use]
    pub fn quiet(mut self) -> Self {
        self.progress = false;
        self
    }

    /// Attaches the rename/release auditor to every run.
    #[must_use]
    pub fn with_audit(mut self, audit: bool) -> Self {
        self.audit = audit;
        self
    }

    /// Sets the observer configuration.
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: TelemetryConfig) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Points the trace capture/replay cache at `dir`.
    #[must_use]
    pub fn with_trace_cache(mut self, dir: impl AsRef<Path>) -> Self {
        self.trace_cache = Some(dir.as_ref().to_owned());
        self
    }

    /// Sets warmup fast-forward for trace replays.
    #[must_use]
    pub fn with_trace_ff(mut self, ff: bool) -> Self {
        self.trace_ff = ff;
        self
    }

    /// Journals completed points under `dir` and serves journaled
    /// points on the next pass (fault-tolerant resume).
    #[must_use]
    pub fn with_journal(mut self, dir: impl AsRef<Path>) -> Self {
        self.journal = Some(dir.as_ref().to_owned());
        self
    }

    /// Sets the bounded retry count for panicking points.
    #[must_use]
    pub fn with_retries(mut self, retries: u32) -> Self {
        self.retries = retries;
        self
    }

    /// Injects a panic into every point whose label contains `needle`
    /// (test/CI chaos hook).
    #[must_use]
    pub fn with_fault_injection(mut self, needle: impl Into<String>) -> Self {
        self.fault_injection = Some(needle.into());
        self
    }

    /// One-line description for pass-level logging.
    #[must_use]
    pub fn describe(&self) -> String {
        let dir = |d: &Option<PathBuf>| {
            d.as_ref().map_or_else(|| "off".to_owned(), |p| p.display().to_string())
        };
        format!(
            "threads={} progress={} audit={} telemetry={:?} trace-cache={} ff={} journal={}",
            self.threads,
            if self.progress { "on" } else { "off" },
            if self.audit { "on" } else { "off" },
            self.telemetry.level,
            dir(&self.trace_cache),
            self.trace_ff,
            dir(&self.journal),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_session_is_env_free_and_off() {
        let s = Session::default();
        assert!(s.threads >= 1);
        assert!(s.progress);
        assert!(!s.audit);
        assert!(!s.telemetry.stats_enabled());
        assert_eq!(s.trace_cache, None);
        assert_eq!(s.journal, None);
        assert_eq!(s.retries, DEFAULT_RETRIES);
        assert_eq!(s.fault_injection, None);
    }

    #[test]
    fn builders_compose() {
        let s = Session::default()
            .quiet()
            .with_threads(0)
            .with_audit(true)
            .with_trace_cache("/tmp/tc")
            .with_trace_ff(true)
            .with_journal("/tmp/j")
            .with_retries(3)
            .with_fault_injection("505.mcf_r");
        assert_eq!(s.threads, 1, "a zero thread request clamps to serial");
        assert!(!s.progress);
        assert!(s.audit && s.trace_ff);
        assert_eq!(s.trace_cache.as_deref(), Some(Path::new("/tmp/tc")));
        assert_eq!(s.journal.as_deref(), Some(Path::new("/tmp/j")));
        assert_eq!(s.retries, 3);
        assert_eq!(s.fault_injection.as_deref(), Some("505.mcf_r"));
        let d = s.describe();
        assert!(d.contains("threads=1") && d.contains("journal=/tmp/j"), "{d}");
    }
}
