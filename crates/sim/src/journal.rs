//! The run journal: append-only JSONL of completed simulation points,
//! the substrate of fault-tolerant resume.
//!
//! A large campaign (832 deduplicated points per full pass) should not
//! lose everything to one OOM kill or Ctrl-C. With `ATR_RUN_JOURNAL`
//! set, the executor appends one JSONL record per *completed* point
//! and, on the next pass, serves journaled points instead of
//! re-simulating them — the same serving discipline as the trace
//! cache, but for results.
//!
//! Safety properties:
//!
//! * **Keyed, not positional.** Each record carries the full
//!   [`SimPoint`] memo key plus a digest of the base [`CoreConfig`]
//!   (neutralized of observation-only fields), so a journal written
//!   under a different core configuration can never serve a wrong
//!   result — mismatched records are simply not loaded.
//! * **Crash tolerant.** Appends are single-buffer writes, so a
//!   SIGKILL mid-append leaves at most one torn trailing line, which
//!   reload skips. When unparseable lines are found, the file is
//!   compacted — surviving records rewritten to a temp file and
//!   `rename`d into place, so a crash during compaction never loses
//!   the journal either.
//! * **Bit-exact.** Every `f64` round-trips through its raw bit
//!   pattern and every counter through a decimal string, so a resumed
//!   pass produces figure fingerprints bit-identical to an
//!   uninterrupted one (CI enforces this).
//!
//! The journal stores the timed result and the lifetime log, but not
//! telemetry (pure observation, excluded from fingerprints): a
//! journal-served point carries an empty [`RunTelemetry`] and emits no
//! telemetry record.

use crate::matrix::SimPoint;
use crate::runner::RunResult;
use atr_core::{RegLifetime, ReleaseKind};
use atr_isa::RegClass;
use atr_json::Json;
use atr_pipeline::{CoreConfig, CoreStats};
use atr_telemetry::RunTelemetry;
use atr_workload::behavior::mix64;
use std::collections::HashMap;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Schema tag carried by every journal record (bump on incompatible
/// layout changes; old-tag records read as foreign and are ignored).
pub const JOURNAL_SCHEMA: &str = "atr-run-journal-v1";

/// File name inside the journal directory.
pub const JOURNAL_FILE: &str = "run-journal.jsonl";

/// A loaded (and appendable) run journal for one base configuration.
#[derive(Debug)]
pub struct RunJournal {
    path: PathBuf,
    digest: u64,
    records: HashMap<String, RunResult>,
    writer: Option<std::fs::File>,
}

impl RunJournal {
    /// Opens (creating if needed) the journal under `dir`, loading
    /// every intact record whose config digest matches `core`.
    ///
    /// Unparseable lines (a torn tail from a killed writer) are
    /// skipped with a warning and compacted away via an atomic
    /// tmp+rename rewrite; parseable records with a foreign digest are
    /// preserved on disk (they belong to a different configuration)
    /// but not loaded.
    ///
    /// # Errors
    ///
    /// Any I/O error creating the directory or opening the append
    /// handle. Callers degrade to journal-less execution.
    pub fn open(dir: &Path, core: &CoreConfig) -> std::io::Result<RunJournal> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(JOURNAL_FILE);
        let digest = core_digest(core);
        let mut records = HashMap::new();
        let mut keep: Vec<String> = Vec::new();
        let mut dropped = 0usize;
        let mut foreign = 0usize;
        if let Ok(body) = std::fs::read_to_string(&path) {
            for line in body.lines() {
                if line.trim().is_empty() {
                    continue;
                }
                match parse_record(line, digest) {
                    Parsed::Live(key, result) => {
                        records.insert(key, *result);
                        keep.push(line.to_owned());
                    }
                    Parsed::Foreign => {
                        foreign += 1;
                        keep.push(line.to_owned());
                    }
                    Parsed::Garbage => dropped += 1,
                }
            }
        }
        if dropped > 0 {
            atr_telemetry::warn!(
                "run journal {}: dropping {dropped} unparseable record(s) \
                 (truncated tail from an interrupted pass?)",
                path.display()
            );
            compact(&path, &keep)?;
        }
        if foreign > 0 {
            atr_telemetry::debug!(
                "run journal {}: {foreign} record(s) belong to a different \
                 configuration and were not loaded",
                path.display()
            );
        }
        let writer = std::fs::OpenOptions::new().create(true).append(true).open(&path)?;
        Ok(RunJournal { path, digest, records, writer: Some(writer) })
    }

    /// The journal file path.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Loaded records for the current configuration.
    #[must_use]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Is the journal empty (for the current configuration)?
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The journaled result for `point`, if this configuration already
    /// completed it.
    #[must_use]
    pub fn lookup(&self, point: &SimPoint) -> Option<&RunResult> {
        self.records.get(&point.memo_key())
    }

    /// Appends one completed point. An I/O failure warns once and
    /// disables further appends — journaling is a serving layer, never
    /// a reason to fail the pass.
    pub fn append(&mut self, point: &SimPoint, result: &RunResult) {
        let line = encode_record(self.digest, point, result);
        if let Some(w) = &mut self.writer {
            let mut buf = line.into_bytes();
            buf.push(b'\n');
            if let Err(e) = w.write_all(&buf).and_then(|()| w.flush()) {
                atr_telemetry::warn!(
                    "run journal {}: append failed ({e}); journaling disabled for this pass",
                    self.path.display()
                );
                self.writer = None;
            }
        }
        self.records.insert(point.memo_key(), result.clone());
    }
}

/// Atomically replaces the journal with `lines` (tmp + rename).
fn compact(path: &Path, lines: &[String]) -> std::io::Result<()> {
    let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
    let mut body = lines.join("\n");
    if !body.is_empty() {
        body.push('\n');
    }
    std::fs::write(&tmp, body)?;
    std::fs::rename(&tmp, path)
}

/// Digest of the base core configuration with observation-only fields
/// neutralized: telemetry, audit, and event collection are set per run
/// from the [`crate::session::Session`] (and are excluded from the
/// memo key for the same reason), so they must not fork the journal.
/// Everything that *can* change a simulated result — widths, latencies,
/// memory hierarchy, rename policy — is covered via the config's
/// `Debug` rendering, so adding a field changes the digest and safely
/// invalidates old journals (they re-simulate; they never serve stale
/// results).
#[must_use]
pub fn core_digest(core: &CoreConfig) -> u64 {
    let mut neutral = core.clone();
    neutral.telemetry = atr_telemetry::TelemetryConfig::default();
    neutral.rename.audit = false;
    neutral.rename.collect_events = false;
    mix64(fnv1a(format!("{neutral:?}").as_bytes()))
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

enum Parsed {
    /// Schema + digest match, payload decoded.
    Live(String, Box<RunResult>),
    /// Parseable record for a different configuration — preserved on
    /// disk, not loaded.
    Foreign,
    /// Unparseable or undecodable — compacted away.
    Garbage,
}

fn parse_record(line: &str, want_digest: u64) -> Parsed {
    let Ok(j) = Json::parse(line) else {
        return Parsed::Garbage;
    };
    if j.get("schema").and_then(Json::as_str) != Some(JOURNAL_SCHEMA) {
        return Parsed::Garbage;
    }
    let Some(digest) =
        j.get("digest").and_then(Json::as_str).and_then(|s| u64::from_str_radix(s, 16).ok())
    else {
        return Parsed::Garbage;
    };
    if digest != want_digest {
        return Parsed::Foreign;
    }
    let Some(key) = j.get("key").and_then(Json::as_str) else {
        return Parsed::Garbage;
    };
    match decode_result(&j) {
        Some(result) => Parsed::Live(key.to_owned(), Box::new(result)),
        None => Parsed::Garbage,
    }
}

fn encode_record(digest: u64, point: &SimPoint, result: &RunResult) -> String {
    let fields = vec![
        ("schema".to_owned(), Json::Str(JOURNAL_SCHEMA.to_owned())),
        ("digest".to_owned(), Json::Str(format!("{digest:016x}"))),
        ("key".to_owned(), Json::Str(point.memo_key())),
        ("label".to_owned(), Json::Str(point.label())),
        ("ipc".to_owned(), Json::Str(f64_hex(result.ipc))),
        ("avg_int".to_owned(), Json::Str(f64_hex(result.avg_int_occupancy))),
        ("avg_fp".to_owned(), Json::Str(f64_hex(result.avg_fp_occupancy))),
        ("stats".to_owned(), encode_stats(&result.stats)),
        (
            "lifetimes".to_owned(),
            Json::Arr(result.lifetimes.iter().map(|l| Json::Str(encode_lifetime(l))).collect()),
        ),
    ];
    Json::Obj(fields).compact()
}

fn decode_result(j: &Json) -> Option<RunResult> {
    let f = |key: &str| j.get(key).and_then(Json::as_str).and_then(hex_f64);
    let lifetimes = match j.get("lifetimes")? {
        Json::Arr(items) => items
            .iter()
            .map(|item| item.as_str().and_then(decode_lifetime))
            .collect::<Option<Vec<_>>>()?,
        _ => return None,
    };
    Some(RunResult {
        ipc: f("ipc")?,
        avg_int_occupancy: f("avg_int")?,
        avg_fp_occupancy: f("avg_fp")?,
        stats: decode_stats(j.get("stats")?)?,
        lifetimes,
        telemetry: RunTelemetry::default(),
    })
}

/// `f64` → raw-bit hex: lossless for every value, including ones whose
/// shortest decimal form would not round-trip the JSON parser.
fn f64_hex(x: f64) -> String {
    format!("{:016x}", x.to_bits())
}

fn hex_f64(s: &str) -> Option<f64> {
    u64::from_str_radix(s, 16).ok().map(f64::from_bits)
}

/// Flat fixed-order counter array covering every `CoreStats` field.
/// Decimal strings keep `u64`/`u128` exact without `i64` clamping.
fn encode_stats(s: &CoreStats) -> Json {
    let mut out: Vec<String> = vec![
        s.cycles.to_string(),
        s.retired.to_string(),
        s.fetched.to_string(),
        s.wrong_path_fetched.to_string(),
        s.wrong_path_renamed.to_string(),
        s.cond_branches.to_string(),
        s.cond_mispredicts.to_string(),
        s.target_mispredicts.to_string(),
        s.flushes.to_string(),
        s.exceptions.to_string(),
        s.interrupts.to_string(),
        s.interrupt_wait_cycles.to_string(),
        s.rename_freelist_stalls.to_string(),
        s.rename_backpressure_stalls.to_string(),
        s.int_prf_occupancy_sum.to_string(),
        s.fp_prf_occupancy_sum.to_string(),
    ];
    for prf in [&s.int_prf, &s.fp_prf] {
        out.extend([
            prf.allocations.to_string(),
            prf.released_commit.to_string(),
            prf.released_precommit.to_string(),
            prf.released_atomic.to_string(),
            prf.released_flush.to_string(),
            prf.flush_double_free_avoided.to_string(),
            prf.releases.to_string(),
        ]);
    }
    let (l1i, l1d, l2, llc) = &s.caches;
    for c in [l1i, l1d, l2, llc] {
        out.extend([
            c.hits.to_string(),
            c.misses.to_string(),
            c.inflight_hits.to_string(),
            c.prefetch_fills.to_string(),
            c.prefetch_useful.to_string(),
            c.writebacks.to_string(),
        ]);
    }
    out.extend([s.dram.0.to_string(), s.dram.1.to_string(), s.dram.2.to_string()]);
    out.push(s.markings.to_string());
    Json::Arr(out.into_iter().map(Json::Str).collect())
}

fn decode_stats(j: &Json) -> Option<CoreStats> {
    let Json::Arr(items) = j else {
        return None;
    };
    let mut it = items.iter().map(|item| item.as_str());
    let mut u64_next = || -> Option<u64> { it.next()??.parse().ok() };
    let mut s = CoreStats { cycles: u64_next()?, ..CoreStats::default() };
    s.retired = u64_next()?;
    s.fetched = u64_next()?;
    s.wrong_path_fetched = u64_next()?;
    s.wrong_path_renamed = u64_next()?;
    s.cond_branches = u64_next()?;
    s.cond_mispredicts = u64_next()?;
    s.target_mispredicts = u64_next()?;
    s.flushes = u64_next()?;
    s.exceptions = u64_next()?;
    s.interrupts = u64_next()?;
    s.interrupt_wait_cycles = u64_next()?;
    s.rename_freelist_stalls = u64_next()?;
    s.rename_backpressure_stalls = u64_next()?;
    s.int_prf_occupancy_sum = it.next()??.parse().ok()?;
    s.fp_prf_occupancy_sum = it.next()??.parse().ok()?;
    for prf in [&mut s.int_prf, &mut s.fp_prf] {
        prf.allocations = it.next()??.parse().ok()?;
        prf.released_commit = it.next()??.parse().ok()?;
        prf.released_precommit = it.next()??.parse().ok()?;
        prf.released_atomic = it.next()??.parse().ok()?;
        prf.released_flush = it.next()??.parse().ok()?;
        prf.flush_double_free_avoided = it.next()??.parse().ok()?;
        prf.releases = it.next()??.parse().ok()?;
    }
    {
        let (l1i, l1d, l2, llc) = &mut s.caches;
        for c in [l1i, l1d, l2, llc] {
            c.hits = it.next()??.parse().ok()?;
            c.misses = it.next()??.parse().ok()?;
            c.inflight_hits = it.next()??.parse().ok()?;
            c.prefetch_fills = it.next()??.parse().ok()?;
            c.prefetch_useful = it.next()??.parse().ok()?;
            c.writebacks = it.next()??.parse().ok()?;
        }
    }
    s.dram = (it.next()??.parse().ok()?, it.next()??.parse().ok()?, it.next()??.parse().ok()?);
    s.markings = it.next()??.parse().ok()?;
    if it.next().is_some() {
        return None; // layout drift: more counters on disk than known
    }
    Some(s)
}

/// One lifetime record as a compact space-separated field string:
/// `class alloc_cycle alloc_seq wrong_path consumers last_consume
/// redefine redefiner_precommit redefiner_commit release kind
/// saw_branch saw_exception overflowed`, with `-` for absent options.
fn encode_lifetime(l: &RegLifetime) -> String {
    let opt = |v: Option<u64>| v.map_or_else(|| "-".to_owned(), |x| x.to_string());
    let kind = match l.release_kind {
        None => '-',
        Some(ReleaseKind::RedefinerCommit) => 'c',
        Some(ReleaseKind::Precommit) => 'p',
        Some(ReleaseKind::Atomic) => 'a',
        Some(ReleaseKind::FlushWalk) => 'w',
    };
    format!(
        "{} {} {} {} {} {} {} {} {} {} {} {} {} {}",
        if l.class == RegClass::Int { 'i' } else { 'f' },
        l.alloc_cycle,
        l.alloc_seq,
        u8::from(l.wrong_path),
        l.consumers,
        opt(l.last_consume_cycle),
        opt(l.redefine_cycle),
        opt(l.redefiner_precommit_cycle),
        opt(l.redefiner_commit_cycle),
        opt(l.release_cycle),
        kind,
        u8::from(l.saw_branch),
        u8::from(l.saw_exception),
        u8::from(l.overflowed),
    )
}

fn decode_lifetime(s: &str) -> Option<RegLifetime> {
    let mut it = s.split(' ');
    let class = match it.next()? {
        "i" => RegClass::Int,
        "f" => RegClass::Fp,
        _ => return None,
    };
    let mut num = || -> Option<u64> { it.next()?.parse().ok() };
    let alloc_cycle = num()?;
    let alloc_seq = num()?;
    let wrong_path = num()? != 0;
    let consumers = u32::try_from(num()?).ok()?;
    let mut opt = || -> Option<Option<u64>> {
        match it.next()? {
            "-" => Some(None),
            raw => raw.parse().ok().map(Some),
        }
    };
    let last_consume_cycle = opt()?;
    let redefine_cycle = opt()?;
    let redefiner_precommit_cycle = opt()?;
    let redefiner_commit_cycle = opt()?;
    let release_cycle = opt()?;
    let release_kind = match it.next()? {
        "-" => None,
        "c" => Some(ReleaseKind::RedefinerCommit),
        "p" => Some(ReleaseKind::Precommit),
        "a" => Some(ReleaseKind::Atomic),
        "w" => Some(ReleaseKind::FlushWalk),
        _ => return None,
    };
    let mut flag = || -> Option<bool> { it.next().map(|v| v != "0") };
    let saw_branch = flag()?;
    let saw_exception = flag()?;
    let overflowed = flag()?;
    if it.next().is_some() {
        return None;
    }
    Some(RegLifetime {
        class,
        alloc_cycle,
        alloc_seq,
        wrong_path,
        consumers,
        last_consume_cycle,
        redefine_cycle,
        redefiner_precommit_cycle,
        redefiner_commit_cycle,
        release_cycle,
        release_kind,
        saw_branch,
        saw_exception,
        overflowed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use atr_core::ReleaseScheme;

    fn sample_result() -> RunResult {
        let mut stats = CoreStats { cycles: 12_345, ..CoreStats::default() };
        stats.retired = 45_678;
        stats.int_prf_occupancy_sum = u128::from(u64::MAX) + 17;
        stats.int_prf.released_atomic = 99;
        stats.caches.1.misses = 7;
        stats.dram = (1, 2, 3);
        stats.markings = 5;
        RunResult {
            ipc: 1.234_567_890_123_456_7,
            avg_int_occupancy: 0.1 + 0.2, // deliberately non-representable
            avg_fp_occupancy: f64::MIN_POSITIVE,
            stats,
            lifetimes: vec![
                RegLifetime {
                    class: RegClass::Fp,
                    alloc_cycle: 10,
                    alloc_seq: 3,
                    wrong_path: true,
                    consumers: 4,
                    last_consume_cycle: Some(40),
                    redefine_cycle: None,
                    redefiner_precommit_cycle: Some(50),
                    redefiner_commit_cycle: None,
                    release_cycle: Some(60),
                    release_kind: Some(ReleaseKind::Atomic),
                    saw_branch: true,
                    saw_exception: false,
                    overflowed: true,
                },
                RegLifetime {
                    class: RegClass::Int,
                    alloc_cycle: 0,
                    alloc_seq: 0,
                    wrong_path: false,
                    consumers: 0,
                    last_consume_cycle: None,
                    redefine_cycle: None,
                    redefiner_precommit_cycle: None,
                    redefiner_commit_cycle: None,
                    release_cycle: None,
                    release_kind: None,
                    saw_branch: false,
                    saw_exception: false,
                    overflowed: false,
                },
            ],
            telemetry: RunTelemetry::default(),
        }
    }

    fn point() -> SimPoint {
        SimPoint::new("505.mcf_r", ReleaseScheme::Atr { redefine_delay: 1 }, 96, 500, 2_000)
    }

    #[test]
    fn record_round_trip_is_bit_exact() {
        let result = sample_result();
        let line = encode_record(0xdead_beef, &point(), &result);
        assert!(!line.contains('\n'));
        let Parsed::Live(key, back) = parse_record(&line, 0xdead_beef) else {
            panic!("round trip failed to parse as live");
        };
        assert_eq!(key, point().memo_key());
        assert_eq!(back.ipc.to_bits(), result.ipc.to_bits());
        assert_eq!(back.avg_int_occupancy.to_bits(), result.avg_int_occupancy.to_bits());
        assert_eq!(back.avg_fp_occupancy.to_bits(), result.avg_fp_occupancy.to_bits());
        assert_eq!(format!("{:?}", back.stats), format!("{:?}", result.stats));
        assert_eq!(format!("{:?}", back.lifetimes), format!("{:?}", result.lifetimes));
        assert!(back.telemetry.is_empty(), "telemetry is never journaled");
    }

    #[test]
    fn digest_mismatch_reads_as_foreign_and_garbage_as_garbage() {
        let line = encode_record(0x1111, &point(), &sample_result());
        assert!(matches!(parse_record(&line, 0x2222), Parsed::Foreign));
        assert!(matches!(parse_record(&line[..line.len() / 2], 0x1111), Parsed::Garbage));
        assert!(matches!(parse_record("{\"schema\":\"other\"}", 0x1111), Parsed::Garbage));
        // A live-looking record with a corrupt payload is garbage, not
        // a wrong result.
        let broken = line.replace("\"ipc\":\"", "\"ipc\":\"zz");
        assert!(matches!(parse_record(&broken, 0x1111), Parsed::Garbage));
    }

    #[test]
    fn core_digest_ignores_observation_knobs_but_not_timing_knobs() {
        let base = CoreConfig::default();
        let mut observed = base.clone();
        observed.rename.audit = true;
        observed.rename.collect_events = true;
        observed.telemetry = atr_telemetry::TelemetryConfig {
            level: atr_telemetry::TelemetryLevel::Stats,
            ..atr_telemetry::TelemetryConfig::default()
        };
        assert_eq!(core_digest(&base), core_digest(&observed));
        let mut timed = base.clone();
        timed.rob_size = 256;
        assert_ne!(core_digest(&base), core_digest(&timed));
    }

    #[test]
    fn journal_appends_reloads_and_compacts_torn_tails() {
        let dir = std::env::temp_dir().join(format!("atr_journal_unit_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let core = CoreConfig::default();
        let result = sample_result();

        let mut j = RunJournal::open(&dir, &core).unwrap();
        assert!(j.is_empty());
        j.append(&point(), &result);
        assert_eq!(j.len(), 1);
        drop(j);

        // Simulate a SIGKILL mid-append: a torn trailing line.
        let path = dir.join(JOURNAL_FILE);
        let mut f = std::fs::OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"{\"schema\":\"atr-run-jou").unwrap();
        drop(f);

        let j = RunJournal::open(&dir, &core).unwrap();
        assert_eq!(j.len(), 1, "intact record survives a torn tail");
        let served = j.lookup(&point()).expect("journaled point is served");
        assert_eq!(served.ipc.to_bits(), result.ipc.to_bits());
        let body = std::fs::read_to_string(&path).unwrap();
        assert_eq!(body.lines().count(), 1, "compaction dropped the torn tail");

        // A different core config must not be served by this journal,
        // but must not destroy its records either.
        let mut other = core.clone();
        other.rob_size = 64;
        let j2 = RunJournal::open(&dir, &other).unwrap();
        assert!(j2.is_empty(), "config-digest mismatch is ignored");
        let j3 = RunJournal::open(&dir, &core).unwrap();
        assert_eq!(j3.len(), 1, "foreign-config open preserved the records");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
