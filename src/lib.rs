//! Umbrella crate for the ATR reproduction.
//!
//! Re-exports every workspace crate under one roof so that examples,
//! integration tests, and downstream users can depend on a single crate:
//!
//! ```
//! use atr::sim::config::SimConfig;
//! # let _ = SimConfig::golden_cove;
//! ```

pub use atr_analysis as analysis;
pub use atr_core as core;
pub use atr_frontend as frontend;
pub use atr_isa as isa;
pub use atr_mem as mem;
pub use atr_pipeline as pipeline;
pub use atr_sim as sim;
pub use atr_telemetry as telemetry;
pub use atr_trace as trace;
pub use atr_workload as workload;
