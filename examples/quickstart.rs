//! Quickstart: build a workload, run all four register-release schemes,
//! and print their IPC and release breakdowns.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use atr::core::ReleaseScheme;
use atr::pipeline::{CoreConfig, OooCore};
use atr::workload::{spec, Oracle};

fn main() {
    // 1. Pick a workload. The suite models every SPEC CPU 2017 benchmark
    //    of the paper's Table 2; `find_profile` matches substrings.
    let profile = spec::find_profile("x264").expect("x264 profile exists");
    let program = profile.build();
    println!("workload: {} ({} static instructions)\n", profile.name, program.len());

    // 2. Run each scheme on the paper's Golden-Cove-like core with a
    //    small 64-entry register file, where release policy matters most.
    println!(
        "{:<12} {:>8} {:>10} {:>10} {:>10} {:>10}",
        "scheme", "IPC", "commit", "precommit", "atomic", "flush"
    );
    let mut baseline_ipc = None;
    for scheme in ReleaseScheme::ALL {
        let cfg = CoreConfig::default().with_rf_size(64).with_scheme(scheme);
        let mut core = OooCore::new(cfg, Oracle::new(program.clone()));
        let stats = core.run(200_000);
        let ipc = stats.ipc();
        baseline_ipc.get_or_insert(ipc);
        println!(
            "{:<12} {:>8.3} {:>10} {:>10} {:>10} {:>10}   ({:+.2}% vs baseline)",
            scheme.label(),
            ipc,
            stats.int_prf.released_commit,
            stats.int_prf.released_precommit,
            stats.int_prf.released_atomic,
            stats.int_prf.released_flush,
            (ipc / baseline_ipc.unwrap() - 1.0) * 100.0,
        );
    }

    println!(
        "\nThe atomic scheme frees registers out of order inside atomic commit\n\
         regions (no branch, load, store, or divide between allocation and\n\
         redefinition); combined adds non-speculative early release outside them."
    );
}
