//! Wrong-path audit: demonstrates the machinery that makes ATR safe —
//! wrong-path register allocation, the §4.2.4 flush-walk double-free
//! avoidance, and the §4.1 interrupt modes — live on a branchy workload.
//!
//! ```sh
//! cargo run --release --example wrong_path_audit
//! ```

use atr::core::ReleaseScheme;
use atr::pipeline::{CoreConfig, InterruptMode, OooCore};
use atr::workload::{spec, Oracle};

fn main() {
    let profile = spec::find_profile("deepsjeng").expect("profile exists");
    let cfg = CoreConfig::default()
        .with_rf_size(96)
        .with_scheme(ReleaseScheme::Atr { redefine_delay: 0 });
    let mut core = OooCore::new(cfg, Oracle::new(profile.build()));

    println!("running {} under ATR with heavy misprediction...\n", profile.name);
    let stats = core.run(300_000);

    println!("speculation traffic:");
    println!("  fetched               {:>9}", stats.fetched);
    println!(
        "  wrong-path fetched    {:>9}  ({:.1}% of fetch bandwidth)",
        stats.wrong_path_fetched,
        stats.wrong_path_fetched as f64 / stats.fetched as f64 * 100.0
    );
    println!(
        "  wrong-path renamed    {:>9}  (these allocate registers!)",
        stats.wrong_path_renamed
    );
    println!("  flushes               {:>9}", stats.flushes);
    println!("  cond mispredict rate  {:>8.2}%", stats.mispredict_rate() * 100.0);

    println!("\nregister release audit (integer file):");
    println!("  allocations             {:>9}", stats.int_prf.allocations);
    println!("  released at commit      {:>9}", stats.int_prf.released_commit);
    println!("  released by ATR         {:>9}", stats.int_prf.released_atomic);
    println!("  reclaimed by flush walk {:>9}", stats.int_prf.released_flush);
    println!(
        "  double frees avoided    {:>9}  <- §4.2.4 walk skipping ATR-released registers",
        stats.int_prf.flush_double_free_avoided
    );
    assert_eq!(
        stats.int_prf.allocations,
        stats.int_prf.total_released()
            + (core.renamer().occupancy(atr::isa::RegClass::Int) - atr::isa::NUM_INT_ARCH_REGS)
                as u64,
        "every allocation is released exactly once (modulo live registers)"
    );
    println!("\n  every allocation accounted for exactly once ✓");

    // §4.1: interrupts. Drain mode needs no ATR support; flush mode
    // waits for the open-claim counter to reach zero.
    core.request_interrupt(InterruptMode::Drain);
    let s1 = core.run(50_000);
    println!("\ninterrupts:");
    println!("  drain-mode serviced      {:>8}", s1.interrupts);
    core.request_interrupt(InterruptMode::FlushAtRegionBoundary);
    let s2 = core.run(50_000);
    println!(
        "  flush-mode serviced      {:>8}  (waited {} cycles for open atomic claims)",
        s2.interrupts - s1.interrupts,
        s2.interrupt_wait_cycles
    );
    println!("\nexecution continued correctly after both; register state intact ✓");
}
