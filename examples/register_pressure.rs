//! Register-pressure study: sweep the physical register file from 64 to
//! 280 entries (the paper's Fig 11 axis) and watch the atomic scheme's
//! advantage shrink as pressure disappears.
//!
//! ```sh
//! cargo run --release --example register_pressure [benchmark-substring]
//! ```

use atr::core::ReleaseScheme;
use atr::pipeline::{CoreConfig, OooCore};
use atr::workload::{spec, Oracle};

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "exchange2".to_owned());
    let profile =
        spec::find_profile(&which).unwrap_or_else(|| panic!("no profile matches {which:?}"));
    let program = profile.build();
    println!("register-file sweep on {}\n", profile.name);
    println!(
        "{:>4} {:>10} {:>10} {:>9} {:>12} {:>12}",
        "rf", "baseline", "atomic", "speedup", "base occ", "atomic occ"
    );
    for rf in [64usize, 96, 128, 160, 192, 224, 256, 280] {
        let run = |scheme: ReleaseScheme| {
            let cfg = CoreConfig::default().with_rf_size(rf).with_scheme(scheme);
            let mut core = OooCore::new(cfg, Oracle::new(program.clone()));
            let stats = core.run(150_000);
            (stats.ipc(), stats.avg_int_prf_occupancy())
        };
        let (base_ipc, base_occ) = run(ReleaseScheme::Baseline);
        let (atr_ipc, atr_occ) = run(ReleaseScheme::Atr { redefine_delay: 0 });
        println!(
            "{:>4} {:>10.3} {:>10.3} {:>+8.2}% {:>12.1} {:>12.1}",
            rf,
            base_ipc,
            atr_ipc,
            (atr_ipc / base_ipc - 1.0) * 100.0,
            base_occ,
            atr_occ
        );
    }
    println!(
        "\nThe speedup decays with register file size (Fig 11) while ATR's\n\
         lower average occupancy shows registers being held for less time."
    );
}
