//! Atomic-commit-region analysis of a workload: the §3 measurements
//! (region ratios, consumer counts, lifecycle fractions, cycle gaps) on
//! one benchmark.
//!
//! ```sh
//! cargo run --release --example region_analysis [benchmark-substring]
//! ```

use atr::analysis::{atomic_region_gaps, consumer_histogram, lifecycle_breakdown, region_ratios};
use atr::isa::RegClass;
use atr::pipeline::{CoreConfig, OooCore};
use atr::workload::{spec, Oracle, WorkloadClass};

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "gcc".to_owned());
    let profile =
        spec::find_profile(&which).unwrap_or_else(|| panic!("no profile matches {which:?}"));
    let class = match profile.class {
        WorkloadClass::Int => RegClass::Int,
        WorkloadClass::Fp => RegClass::Fp,
    };

    let mut cfg = CoreConfig::default().with_rf_size(280);
    cfg.rename.collect_events = true;
    let mut core = OooCore::new(cfg, Oracle::new(profile.build()));
    let _ = core.run(200_000);
    let records = core.lifetime_log();
    println!("{}: {} register allocations analyzed\n", profile.name, records.len());

    let ratios = region_ratios(records, class, true);
    println!("region classification (Fig 6):");
    println!("  non-branch  {:>6.2}%", ratios.non_branch * 100.0);
    println!("  non-except  {:>6.2}%", ratios.non_except * 100.0);
    println!(
        "  atomic      {:>6.2}%   (paper averages: 17.04% int / 13.14% fp)\n",
        ratios.atomic * 100.0
    );

    let life = lifecycle_breakdown(records, class);
    println!("lifecycle cycle fractions (Fig 4, {} samples):", life.samples);
    println!("  in-use           {:>6.2}%", life.in_use * 100.0);
    println!(
        "  unused           {:>6.2}%   (speculative-release opportunity)",
        life.unused * 100.0
    );
    println!(
        "  verified-unused  {:>6.2}%   (non-speculative opportunity)\n",
        life.verified_unused * 100.0
    );

    let hist = consumer_histogram(records, class, 7);
    println!("consumers per atomic region (Fig 12, mean {:.2}):", hist.mean);
    for (i, frac) in hist.buckets.iter().enumerate() {
        let label = if i == hist.buckets.len() - 1 { format!(">={i}") } else { i.to_string() };
        println!("  {label:>3}: {:>6.2}%  {}", frac * 100.0, "#".repeat((frac * 60.0) as usize));
    }

    let gaps = atomic_region_gaps(records, class);
    println!("\nmean cycles after rename, within atomic regions (Fig 14):");
    println!("  to redefinition    {:>8.1}", gaps.rename_to_redefine);
    println!("  to last consume    {:>8.1}", gaps.rename_to_consume);
    println!("  to redefiner commit{:>8.1}", gaps.rename_to_commit);
    println!(
        "\nATR holds these registers only until the consume point instead of the\n\
         commit point — the gap between those two lines is the win."
    );
}
