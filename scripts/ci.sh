#!/usr/bin/env bash
# Local CI gate: formatting, lints, and a tiny-budget test pass.
#
# The tiny ATR_SIM_* budget keeps the simulation-heavy experiment tests
# fast while still executing every code path; full-budget numbers are
# regenerated with `--bin all_experiments` (see EXPERIMENTS.md).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all --check

echo "== cargo clippy -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== cargo test (tiny budget)"
ATR_SIM_WARMUP=500 ATR_SIM_INSTS=2000 ATR_SIM_PROGRESS=0 \
    cargo test --workspace --offline -q

echo "== all_experiments with rename auditor (tiny budget)"
# Re-runs the experiment matrix with the cycle-level rename/release
# auditor attached; any invariant violation panics the run. The results
# dir is redirected so the tiny-budget pass never clobbers the committed
# full-budget results/*.json. Stdout is captured to assert the
# telemetry-off default emits zero telemetry records.
audit_out="$(mktemp)"
ATR_AUDIT=1 ATR_SIM_WARMUP=500 ATR_SIM_INSTS=2000 ATR_SIM_PROGRESS=0 \
    ATR_RESULTS_DIR="$(mktemp -d)" \
    cargo run --release --offline -p atr-bench --bin all_experiments >"$audit_out"
if grep -q "atr-run-telemetry" "$audit_out"; then
    echo "FAIL: telemetry records leaked onto stdout with ATR_TELEMETRY unset" >&2
    exit 1
fi

echo "== all_experiments with telemetry + audit (tiny budget), JSONL schema check"
# With ATR_TELEMETRY=stats the executor emits one JSONL record per
# simulated point on stdout (all narrative goes to stderr); every line
# must parse and satisfy the record schema, including the CPI-stack
# Σ slots == width x cycles invariant (also asserted per-cycle in-core
# because ATR_AUDIT=1 is set).
telemetry_out="$(mktemp)"
ATR_TELEMETRY=stats ATR_AUDIT=1 ATR_SIM_WARMUP=500 ATR_SIM_INSTS=2000 \
    ATR_SIM_PROGRESS=0 ATR_RESULTS_DIR="$(mktemp -d)" \
    cargo run --release --offline -p atr-bench --bin all_experiments >"$telemetry_out"
cargo run --release --offline -p atr-bench --bin jsonl_check "$telemetry_out"

echo "== telemetry off-path overhead guard (<2%)"
# ATR_TELEMETRY=off must never be slower than stats (within 2% noise):
# a failure means the disabled path lost its gating. Fixed internal
# budget, min-of-3 walls per level; see --bin telemetry_overhead.
cargo run --release --offline -p atr-bench --bin telemetry_overhead

echo "CI OK"
