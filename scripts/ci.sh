#!/usr/bin/env bash
# Local CI gate: formatting, lints, and a tiny-budget test pass.
#
# The tiny ATR_SIM_* budget keeps the simulation-heavy experiment tests
# fast while still executing every code path; full-budget numbers are
# regenerated with `--bin all_experiments` (see EXPERIMENTS.md).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all --check

echo "== cargo clippy -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== cargo test (tiny budget)"
ATR_SIM_WARMUP=500 ATR_SIM_INSTS=2000 ATR_SIM_PROGRESS=0 \
    cargo test --workspace --offline -q

echo "== all_experiments with rename auditor (tiny budget)"
# Re-runs the experiment matrix with the cycle-level rename/release
# auditor attached; any invariant violation panics the run. The results
# dir is redirected so the tiny-budget pass never clobbers the committed
# full-budget results/*.json. Stdout is captured to assert the
# telemetry-off default emits zero telemetry records.
audit_out="$(mktemp)"
ATR_AUDIT=1 ATR_SIM_WARMUP=500 ATR_SIM_INSTS=2000 ATR_SIM_PROGRESS=0 \
    ATR_RESULTS_DIR="$(mktemp -d)" \
    cargo run --release --offline -p atr-bench --bin all_experiments >"$audit_out"
if grep -q "atr-run-telemetry" "$audit_out"; then
    echo "FAIL: telemetry records leaked onto stdout with ATR_TELEMETRY unset" >&2
    exit 1
fi

echo "== all_experiments with telemetry + audit (tiny budget), JSONL schema check"
# With ATR_TELEMETRY=stats the executor emits one JSONL record per
# simulated point on stdout (all narrative goes to stderr); every line
# must parse and satisfy the record schema, including the CPI-stack
# Σ slots == width x cycles invariant (also asserted per-cycle in-core
# because ATR_AUDIT=1 is set).
telemetry_out="$(mktemp)"
ATR_TELEMETRY=stats ATR_AUDIT=1 ATR_SIM_WARMUP=500 ATR_SIM_INSTS=2000 \
    ATR_SIM_PROGRESS=0 ATR_RESULTS_DIR="$(mktemp -d)" \
    cargo run --release --offline -p atr-bench --bin all_experiments >"$telemetry_out"
cargo run --release --offline -p atr-bench --bin jsonl_check "$telemetry_out"

echo "== telemetry off-path overhead guard (<2%)"
# ATR_TELEMETRY=off must never be slower than stats (within 2% noise):
# a failure means the disabled path lost its gating. Fixed internal
# budget, min-of-3 walls per level; see --bin telemetry_overhead.
cargo run --release --offline -p atr-bench --bin telemetry_overhead

echo "== trace capture→replay determinism gate + cache wall-clock report"
# Three tiny-budget all_experiments passes: live (no trace cache), cold
# cache (captures every program, then replays), warm cache (pure
# replay). The figure JSON fingerprints of all three must be identical
# — trace replay is required to be *bit*-identical to live oracle
# generation, and any drift in the substrate shows up here as a
# fingerprint mismatch long before it would corrupt a paper figure.
# The warm pass doubles as the cache-hit wall-clock report.
fingerprint() { cat "$1"/*.json | sha256sum | cut -d' ' -f1; }
now_ms() { date +%s%3N; }
trace_cache="$(mktemp -d)"
live_results="$(mktemp -d)"
cold_results="$(mktemp -d)"
warm_results="$(mktemp -d)"
tiny="ATR_SIM_WARMUP=500 ATR_SIM_INSTS=2000 ATR_SIM_PROGRESS=0"

t0=$(now_ms)
env $tiny ATR_RESULTS_DIR="$live_results" \
    cargo run --release --offline -p atr-bench --bin all_experiments >/dev/null
live_ms=$(( $(now_ms) - t0 ))

t0=$(now_ms)
env $tiny ATR_RESULTS_DIR="$cold_results" ATR_TRACE_CACHE="$trace_cache" \
    cargo run --release --offline -p atr-bench --bin all_experiments >/dev/null
cold_ms=$(( $(now_ms) - t0 ))

t0=$(now_ms)
env $tiny ATR_RESULTS_DIR="$warm_results" ATR_TRACE_CACHE="$trace_cache" \
    cargo run --release --offline -p atr-bench --bin all_experiments >/dev/null
warm_ms=$(( $(now_ms) - t0 ))

live_fp=$(fingerprint "$live_results")
cold_fp=$(fingerprint "$cold_results")
warm_fp=$(fingerprint "$warm_results")
if [ "$live_fp" != "$cold_fp" ] || [ "$live_fp" != "$warm_fp" ]; then
    echo "FAIL: trace replay diverged from live oracle generation" >&2
    echo "  live $live_fp / cold-cache $cold_fp / warm-cache $warm_fp" >&2
    exit 1
fi
traces=$(ls "$trace_cache" | wc -l)
if [ "$traces" -eq 0 ]; then
    echo "FAIL: the cold-cache pass captured no traces — the cache never engaged," >&2
    echo "  so the fingerprint identity above compared live runs against live runs" >&2
    exit 1
fi
echo "trace gate OK: fingerprint $live_fp ($traces cached traces)"
echo "wall clock: live ${live_ms}ms, cold-cache ${cold_ms}ms, warm-cache ${warm_ms}ms"
awk -v l="$live_ms" -v w="$warm_ms" \
    'BEGIN { printf "warm-cache speedup over live: %.2fx\n", l / w }'

echo "== journal interrupt-resume gate + journal-off/on fingerprint identity"
# A journaled all_experiments pass is SIGKILLed mid-matrix, then resumed
# with the same journal directory. The resume must (a) serve a nonzero
# number of points straight from the journal — i.e. actually skip
# re-simulation — and (b) produce figure JSON bit-identical to the
# journal-less live pass above. A third, uninterrupted journal-on pass
# asserts the journal is pure observation: fingerprints with the journal
# on and off must match exactly.
#
# The binary is exec'd directly (not via `cargo run`) so the kill hits
# the simulator process itself rather than a cargo wrapper that would
# orphan it.
cargo build --release --offline -p atr-bench --bin all_experiments
journal_dir="$(mktemp -d)"
resume_results="$(mktemp -d)"
env $tiny ATR_RESULTS_DIR="$(mktemp -d)" ATR_RUN_JOURNAL="$journal_dir" \
    target/release/all_experiments >/dev/null 2>&1 &
victim=$!
journal_file="$journal_dir/run-journal.jsonl"
for _ in $(seq 1 300); do
    kill -0 "$victim" 2>/dev/null || break
    [ -f "$journal_file" ] && [ "$(wc -l <"$journal_file")" -ge 20 ] && break
    sleep 0.1
done
kill -9 "$victim" 2>/dev/null || true
wait "$victim" 2>/dev/null || true
if [ ! -s "$journal_file" ]; then
    echo "FAIL: the killed pass journaled nothing — nothing to resume from" >&2
    exit 1
fi
echo "killed the journaled pass after $(wc -l <"$journal_file") completed point(s)"

resume_log="$(mktemp)"
env $tiny ATR_RESULTS_DIR="$resume_results" ATR_RUN_JOURNAL="$journal_dir" \
    target/release/all_experiments >/dev/null 2>"$resume_log"
served=$(sed -n 's/.*\[journal\] \([0-9]*\) of .*/\1/p' "$resume_log" | head -1)
if [ -z "$served" ] || [ "$served" -eq 0 ]; then
    echo "FAIL: the resume served no points from the journal" >&2
    sed -n 's/^/  /p' "$resume_log" | tail -20 >&2
    exit 1
fi
resume_fp=$(fingerprint "$resume_results")
if [ "$resume_fp" != "$live_fp" ]; then
    echo "FAIL: the resumed pass diverged from the uninterrupted live pass" >&2
    echo "  live $live_fp / resumed $resume_fp" >&2
    exit 1
fi
echo "resume gate OK: $served point(s) served from the journal, fingerprint identical"

journal_results="$(mktemp -d)"
env $tiny ATR_RESULTS_DIR="$journal_results" ATR_RUN_JOURNAL="$(mktemp -d)" \
    target/release/all_experiments >/dev/null
journal_fp=$(fingerprint "$journal_results")
if [ "$journal_fp" != "$live_fp" ]; then
    echo "FAIL: enabling the run journal perturbed the results" >&2
    echo "  journal-off $live_fp / journal-on $journal_fp" >&2
    exit 1
fi
echo "journal-off/on fingerprint identity OK"

echo "CI OK"
