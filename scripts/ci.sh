#!/usr/bin/env bash
# Local CI gate: formatting, lints, and a tiny-budget test pass.
#
# The tiny ATR_SIM_* budget keeps the simulation-heavy experiment tests
# fast while still executing every code path; full-budget numbers are
# regenerated with `--bin all_experiments` (see EXPERIMENTS.md).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all --check

echo "== cargo clippy -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== cargo test (tiny budget)"
ATR_SIM_WARMUP=500 ATR_SIM_INSTS=2000 ATR_SIM_PROGRESS=0 \
    cargo test --workspace --offline -q

echo "== all_experiments with rename auditor (tiny budget)"
# Re-runs the experiment matrix with the cycle-level rename/release
# auditor attached; any invariant violation panics the run. The results
# dir is redirected so the tiny-budget pass never clobbers the committed
# full-budget results/*.json.
ATR_AUDIT=1 ATR_SIM_WARMUP=500 ATR_SIM_INSTS=2000 ATR_SIM_PROGRESS=0 \
    ATR_RESULTS_DIR="$(mktemp -d)" \
    cargo run --release --offline -p atr-bench --bin all_experiments >/dev/null

echo "CI OK"
